// Quickstart: build the Pulpissimo-style SoC, run the UPEC-SSC 2-cycle
// procedure (Alg. 1 of the paper), and print the verdict.
//
//   $ ./quickstart
//
// The baseline SoC is vulnerable: victim-dependent timing differences reach
// persistent, attacker-accessible state (HWPE progress, memory contents, DMA
// status). The report lists the offending state variables and a 2-cycle
// counterexample waveform.
#include <cstdio>

#include "rtlir/pretty.h"
#include "upec/advisor.h"
#include "upec/report.h"

int main() {
  using namespace upec;

  // 1. Generate the design under verification (sizes kept small so the whole
  //    run finishes in seconds; scale up with SocConfig).
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  std::printf("SoC: %s\n\n", rtlir::summarize(*soc.design).c_str());

  // 2. Set up the verification context: the 2-safety miter, the property
  //    macros with a fully symbolic victim address range, and the S_pers
  //    classification.
  UpecContext ctx(soc);
  std::printf("%s\n", ctx.pers.describe().c_str());

  // 3. Run Algorithm 1 (2-cycle UPEC-SSC property, fixed-point iteration).
  const Alg1Result result = run_alg1(ctx);
  std::printf("%s\n", render_report(ctx, result).c_str());

  // 4. Turn the result into countermeasure proposals (see
  //    examples/countermeasure_proof for the advise -> apply -> re-verify loop).
  if (result.verdict == Verdict::Vulnerable) {
    std::printf("%s\n", render_advice(ctx, advise(ctx, result.persistent_hits)).c_str());
  }

  return result.verdict == Verdict::Vulnerable ? 0 : 1;
}
