// Observability demo: run the UPEC-SSC 2-cycle procedure (Alg. 1) with every
// observability surface enabled and write the machine-readable artifacts —
//
//   $ ./observability_demo [trace.json] [report.json]
//
//   * trace.json  — Chrome trace-event stream (load in Perfetto or
//                   chrome://tracing): encode/simplify/sweep/solve spans plus
//                   solver progress counter tracks,
//   * report.json — the upec-report-v1 JSON report (verdict, iterations,
//                   config hash, unified metrics registry),
//
// and prints the usual text report plus the progress heartbeats to stdout.
// CI runs this binary and schema-checks both artifacts with jq; the verdict
// and frontiers are bit-identical to a run with everything off
// (test_determinism pins that).
#include <cstdio>
#include <mutex>

#include "upec/report.h"
#include "upec/report_json.h"

int main(int argc, char** argv) {
  using namespace upec;

  const char* trace_path = argc > 1 ? argv[1] : "trace.json";
  const char* report_path = argc > 2 ? argv[2] : "report.json";

  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  VerifyOptions options;
  options.threads = 2;     // exercise the scheduler spans
  options.trace_path = trace_path;
  options.progress_conflicts = 2000;
  std::mutex io_mu;        // heartbeats fire on solving threads
  options.progress = [&io_mu](const ProgressEvent& ev) {
    std::lock_guard<std::mutex> lock(io_mu);
    std::printf("[progress] %-5s %8llu conflicts, %6llu restarts, %6llu learnts\n",
                ev.source.c_str(), static_cast<unsigned long long>(ev.conflicts),
                static_cast<unsigned long long>(ev.restarts),
                static_cast<unsigned long long>(ev.learnts));
  };

  Alg1Result result;
  std::string report;
  {
    UpecContext ctx(soc, options);
    result = run_alg1(ctx);
    std::printf("%s\n", render_report(ctx, result).c_str());
    report = render_json(ctx, result);
  } // context destruction flushes the trace session to trace_path

  std::FILE* f = std::fopen(report_path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", report_path);
    return 2;
  }
  std::fwrite(report.data(), 1, report.size(), f);
  std::fputc('\n', f);
  std::fclose(f);

  std::printf("wrote %s (Perfetto-loadable) and %s (upec-report-v1)\n", trace_path, report_path);
  return result.verdict == Verdict::Vulnerable ? 0 : 1;
}
