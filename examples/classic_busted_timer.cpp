// The classic BUSted-style attack of Fig. 1: the attacker configures the DMA
// and routes its completion event to the timer's hardware start input. Victim
// bus contention delays the DMA, hence the timer starts later, hence the
// COUNT register read after the context switch is smaller. The cycle-by-cycle
// divergence of a victim-active vs victim-idle pair of runs is also shown
// with the lockstep simulator — the concrete analogue of the UPEC miter.
#include <cstdio>

#include "sim/attack.h"
#include "sim/lockstep.h"
#include "sim/task.h"

int main() {
  using namespace upec;
  const soc::Soc soc = soc::build_pulpissimo();

  std::printf("classic BUSted (Fig. 1): DMA done -> timer start, COUNT vs victim activity\n\n");
  std::printf("%-18s %-12s %-10s\n", "victim accesses", "timer COUNT", "dma done");
  for (std::uint32_t secret = 0; secret <= 8; secret += 2) {
    const sim::TimerAttackResult r = sim::run_timer_attack(soc, secret);
    std::printf("%-18u %-12u %-10s\n", secret, r.timer_count,
                r.dma_done_event ? "yes" : "no");
  }

  // Lockstep divergence trace: run two copies of the SoC with identical
  // attacker setup; copy B's victim additionally stores to the public RAM.
  std::printf("\nlockstep divergence (victim idle vs one victim access):\n\n");
  rtlir::StateVarTable svt(*soc.design);
  sim::Lockstep pair(*soc.design, svt);
  sim::BusDriver cpu_a(pair.inst_a());
  sim::BusDriver cpu_b(pair.inst_b());

  const std::uint32_t ram = soc.map.region(soc::AddrMap::kPubRam).base;
  const std::uint32_t hwpe = soc.map.region(soc::AddrMap::kHwpe).base;
  // Identical preparation in both instances.
  for (sim::BusDriver* cpu : {&cpu_a, &cpu_b}) {
    cpu->run(sim::TaskScript{
        sim::store(hwpe + 0x0, ram), // DST
        sim::store(hwpe + 0x4, 16),  // LEN
        sim::store(hwpe + 0x8, 1),   // go
    });
  }
  // Victim window: instance A idles; instance B makes two back-to-back
  // protected accesses (to the last RAM word, outside the HWPE's primed
  // region) — two, so that one of them is guaranteed to collide with a
  // request slot of the initiation-interval-2 streamer.
  pair.inst_a().set_input("soc.cpu.req", 0);
  cpu_b.run_op(sim::store(ram + 0x7c, 0xdeadbeef));
  cpu_b.run_op(sim::store(ram + 0x7c, 0xdeadbee5));
  pair.inst_b().set_input("soc.cpu.req", 0);
  while (pair.inst_a().cycle() < pair.inst_b().cycle()) pair.inst_a().step();
  for (int i = 0; i < 12; ++i) pair.step();

  std::printf("%s\n", pair.describe_divergence().c_str());
  std::printf("note the pattern the formal method predicts: differences appear first in\n"
              "transient interconnect state (xbar stage registers), then reach persistent\n"
              "attacker-accessible state (hwpe.progress_q, memory words).\n");
  return 0;
}
