// Explicit multi-cycle counterexamples (Sec 3.5 / Alg. 2): two-cycle
// counterexamples hide the interesting behavior inside the symbolic starting
// state; unrolling the property makes every signal valuation explicit.
//
// On the baseline SoC, the unrolled procedure converges at k = 2 — exactly
// the "unrolled for 2 clock cycles to observe the delay of the HWPE memory
// access" of Sec 4.1 — and prints the side-by-side trace of both miter
// instances: the victim's protected access wins arbitration in one instance,
// the HWPE stalls, and its PROGRESS register diverges one cycle later.
#include <cstdio>
#include <memory>

#include "upec/report.h"

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  // Focus S_pers on the Sec 4.1 scenario (accelerator + memory device) so the
  // explicit counterexample shows the HWPE delay rather than one of the other
  // persistent sinks (DMA status, event unit, timer).
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };

  UpecContext ctx(soc, options);
  const Alg2Result result = run_alg2(ctx);
  std::printf("%s\n", render_report(ctx, result).c_str());
  return result.verdict == Verdict::Vulnerable && result.final_k == 2 ? 0 : 1;
}
