// The Sec 4.2 case study: prove the SoC secure after applying the
// countermeasure — map the security-critical victim region into the private
// memory device (its own crossbar) and restrict the DMA, the only other IP
// that can reach it, to legal configurations via firmware constraints.
//
// Expected output mirrors the paper: the procedure converges after three
// iterations and reports `secure`, with the final inductive set S satisfying
// S_pers ⊆ S ⊆ S_¬victim.
#include <cstdio>

#include "upec/report.h"

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  std::printf("baseline (victim range anywhere in RAM, no firmware constraints):\n\n");
  {
    UpecContext ctx(soc);
    const Alg1Result r = run_alg1(ctx);
    std::printf("%s\n", render_report(ctx, r).c_str());
  }

  std::printf("with the countermeasure (victim range in private RAM + DMA firmware "
              "constraints):\n\n");
  {
    // threads > 1 fans each iteration's per-state-variable checks across
    // worker solvers; the verdict and iteration shape are bit-identical to
    // the single-solver run (the report shows the per-worker breakdown).
    VerifyOptions options = countermeasure_options();
    options.threads = 2;
    UpecContext ctx(soc, options);
    const Alg1Result r = run_alg1(ctx);
    std::printf("%s\n", render_report(ctx, r).c_str());
    if (r.verdict != Verdict::Secure) return 1;
  }
  return 0;
}
