// The timer-free BUSted variant as *real software*: the SoC is built with its
// 2-stage RV32I core, and the three attack phases run as RISC-V firmware
// (assembled in-line) — the closest analogue of the paper's software-driven
// scenario that fits in one address space:
//
//   preparation — firmware programs the HWPE to overwrite a primed region,
//   recording   — a "victim" loop performs a secret number of stores to the
//                 same memory device, stealing arbitration slots,
//   retrieval   — firmware reads the PROGRESS register into x20.
//
// To make runs comparable, the harness also samples PROGRESS from outside at
// one fixed absolute cycle; the firmware's own x20 readout demonstrates that
// the attacker needs nothing but a load instruction.
#include <cstdio>
#include <vector>

#include "sim/asm.h"
#include "sim/simulator.h"
#include "soc/pulpissimo.h"

namespace rv = upec::sim::rv;

namespace {

struct Result {
  std::uint32_t progress_at_cycle = 0; // harness sample at a fixed cycle
  std::uint32_t firmware_x20 = 0;      // the attacker's own readout
};

Result run_firmware(const upec::soc::Soc& soc, std::uint32_t secret_stores) {
  using namespace upec;
  const std::uint32_t ram = soc.map.region(soc::AddrMap::kPubRam).base;
  const std::uint32_t hwpe = soc.map.region(soc::AddrMap::kHwpe).base;

  std::vector<std::uint32_t> p;
  auto emit = [&](std::vector<std::uint32_t> v) { p.insert(p.end(), v.begin(), v.end()); };

  // --- preparation: program and start the HWPE --------------------------------
  emit(rv::li32(1, hwpe));
  emit(rv::li32(2, ram));
  p.push_back(rv::sw(2, 1, 0x0));      // DST  = ram base
  p.push_back(rv::addi(3, 0, 120));    // LEN  = 120 words
  p.push_back(rv::sw(3, 1, 0x4));
  p.push_back(rv::addi(3, 0, 1));
  p.push_back(rv::sw(3, 1, 0x8));      // CTRL.go

  // --- recording: constant-time victim loop ------------------------------------
  // 8 iterations; iteration i contends (stores to the public RAM) iff
  // i <= secret, otherwise it performs the same store to the private RAM —
  // identical instruction stream either way, so the loop's own timing does
  // not encode the secret. Two back-to-back stores per iteration cover both
  // parities of the HWPE's initiation-interval-2 request slots.
  const std::uint32_t priv =
      soc.map.region(soc::AddrMap::kPrivRam).base + soc.map.region(soc::AddrMap::kPrivRam).size -
      4;
  const std::uint32_t pub_victim = ram + 0x1fc; // last word, outside the region
  emit(rv::li32(6, priv));                     // x6 = private (non-contending) word
  emit(rv::li32(10, pub_victim - priv));       // x10 = address delta to the public word
  p.push_back(rv::addi(7, 0, static_cast<std::int32_t>(secret_stores))); // x7 = secret
  p.push_back(rv::addi(5, 0, 8));              // x5 = i
  const std::int32_t loop_top = static_cast<std::int32_t>(p.size() * 4);
  p.push_back(rv::slt(8, 7, 5));               // x8 = (secret < i): no contention
  p.push_back(rv::addi(8, 8, -1));             // all-ones when contending, else 0
  p.push_back(rv::and_(9, 8, 10));             // delta or 0
  p.push_back(rv::add(9, 9, 6));               // x9 = store target
  p.push_back(rv::sw(5, 9, 0));                // two stores: both request-slot
  p.push_back(rv::sw(5, 9, 0));                // parities of the streamer covered
  p.push_back(rv::addi(5, 5, -1));
  const std::int32_t here = static_cast<std::int32_t>(p.size() * 4);
  p.push_back(rv::bne(5, 0, loop_top - here));
  // --- retrieval: read PROGRESS into x20 (fixed position in the stream) ---------
  p.push_back(rv::lw(20, 1, 0x10));
  p.push_back(rv::jal(0, 0));                  // halt

  sim::Simulator sim(*soc.design);
  const auto imem = static_cast<std::uint32_t>(soc.cpu_imem);
  for (std::size_t i = 0; i < p.size(); ++i) {
    sim.set_mem_word(imem, static_cast<std::uint32_t>(i), p[i]);
  }

  Result r;
  constexpr std::uint64_t kSampleCycle = 90;
  for (std::uint64_t c = 0; c < 400; ++c) {
    if (c == kSampleCycle) {
      r.progress_at_cycle = static_cast<std::uint32_t>(sim.output(soc::probe::kHwpeProgress));
    }
    sim.step();
  }
  r.firmware_x20 = static_cast<std::uint32_t>(
      sim.mem_word(static_cast<std::uint32_t>(soc.cpu_regfile), 20));
  return r;
}

} // namespace

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.with_cpu = true;
  cfg.pub_ram_words = 128;
  cfg.priv_ram_words = 16;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  std::printf("timer-free BUSted variant as RV32 firmware on the full-core SoC\n\n");
  std::printf("%-14s %-22s %-18s\n", "secret", "progress@cycle90", "firmware x20");
  const Result calib = run_firmware(soc, 0);
  for (std::uint32_t secret = 0; secret <= 6; ++secret) {
    const Result r = run_firmware(soc, secret);
    std::printf("%-14u %-22u %-18u\n", secret, r.progress_at_cycle, r.firmware_x20);
  }
  std::printf("\ncalibration (secret=0): progress %u. The lag below it grows with the\n"
              "secret (one progress unit per two contending stores at streamer\n"
              "initiation interval 2). The fixed-cycle column isolates the channel;\n"
              "the x20 column is what attacker software actually reads - same signal.\n",
              calib.progress_at_cycle);
  return 0;
}
