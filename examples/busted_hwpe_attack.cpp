// The paper's newly discovered, timer-free BUSted variant (Sec 4.1), run
// end-to-end on the generated RTL:
//
//   preparation — the attacker primes a public-RAM region with zeros and
//                 programs the HWPE to progressively overwrite it,
//   recording   — the victim performs a secret number of accesses to the
//                 same memory device; each one steals an arbitration slot,
//   retrieval   — the attacker reads back the overwrite progress; the lag
//                 encodes the victim's access count. No timer involved.
//
// The same scenario is then run with the victim's working set in the private
// memory (the Sec 4.2 countermeasure): the channel disappears.
#include <cstdio>

#include "sim/attack.h"

int main() {
  using namespace upec;
  const soc::Soc soc = soc::build_pulpissimo();

  std::printf("timer-free BUSted variant: HWPE overwrite progress vs victim activity\n\n");
  std::printf("%-18s %-12s %-12s %-10s\n", "victim accesses", "PROGRESS", "highwater",
              "lag");

  const std::uint32_t calibration = sim::run_hwpe_attack(soc, 0).progress_observed;
  for (std::uint32_t secret = 0; secret <= 8; ++secret) {
    const sim::HwpeAttackResult r = sim::run_hwpe_attack(soc, secret);
    std::printf("%-18u %-12u %-12u %-10d\n", secret, r.progress_observed, r.highwater_mark,
                static_cast<int>(calibration) - static_cast<int>(r.progress_observed));
  }

  std::printf("\nwith the countermeasure (victim working set in private RAM):\n\n");
  sim::AttackConfig cm;
  cm.victim_uses_private_ram = true;
  const std::uint32_t cm_calibration = sim::run_hwpe_attack(soc, 0, cm).progress_observed;
  std::printf("%-18s %-12s %-10s\n", "victim accesses", "PROGRESS", "lag");
  for (std::uint32_t secret = 0; secret <= 8; secret += 2) {
    const sim::HwpeAttackResult r = sim::run_hwpe_attack(soc, secret, cm);
    std::printf("%-18u %-12u %-10d\n", secret, r.progress_observed,
                static_cast<int>(cm_calibration) - static_cast<int>(r.progress_observed));
  }
  std::printf("\nthe lag column is the side channel: nonzero and monotone without the\n"
              "countermeasure, identically zero with it.\n");
  return 0;
}
