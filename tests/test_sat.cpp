#include "sat/solver.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <optional>

#include "util/rng.h"

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(Sat, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_TRUE(s.okay());
  s.add_clause(neg(a));
  EXPECT_FALSE(s.solve());
}

TEST(Sat, EmptyFormulaIsSat) {
  Solver s;
  s.new_var();
  EXPECT_TRUE(s.solve());
}

TEST(Sat, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  s.add_clause(pos(v[0]));
  for (int i = 0; i + 1 < 20; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  ASSERT_TRUE(s.solve());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.model_value(v[i])) << i;
}

TEST(Sat, TautologyAndDuplicatesIgnored) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)})); // tautology: dropped
  EXPECT_TRUE(s.add_clause({pos(b), pos(b), pos(b)}));
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(b));
}

// Pigeonhole principle: n+1 pigeons into n holes is UNSAT (classic hard-ish
// instance that exercises conflict analysis and learning).
TEST(Sat, Pigeonhole4Into3) {
  Solver s;
  constexpr int P = 4, H = 3;
  Var x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  EXPECT_FALSE(s.solve());
}

TEST(Sat, Pigeonhole6Into5) {
  Solver s;
  constexpr int P = 6, H = 5;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  EXPECT_FALSE(s.solve());
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b)); // a | b
  ASSERT_TRUE(s.solve({neg(a)}));
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  ASSERT_TRUE(s.solve({neg(b)}));
  EXPECT_TRUE(s.model_value(a));
  // Incremental: same solver, contradictory assumptions.
  EXPECT_FALSE(s.solve({neg(a), neg(b)}));
  // The final conflict must mention only assumption literals.
  for (Lit l : s.conflict_assumptions()) {
    EXPECT_TRUE(l.var() == a || l.var() == b);
  }
  // Solver remains usable.
  EXPECT_TRUE(s.solve());
}

TEST(Sat, ConflictAssumptionsAreSubsetAndResolveUnsat) {
  // Core contract: conflict_assumptions() returns a sorted, deduplicated
  // subset of the passed assumption literals, and re-solving with only the
  // core assumed is still UNSAT.
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var(), d = s.new_var();
  s.add_clause(neg(a), pos(b));  // a -> b
  s.add_clause(neg(b), neg(c));  // b -> ~c
  (void)d;

  const std::vector<Lit> assumptions = {pos(a), pos(c), pos(d)};
  ASSERT_FALSE(s.solve(assumptions));
  const std::vector<Lit> core = s.conflict_assumptions();
  ASSERT_FALSE(core.empty());
  EXPECT_TRUE(std::is_sorted(core.begin(), core.end()));
  EXPECT_EQ(std::adjacent_find(core.begin(), core.end()), core.end());
  for (Lit l : core) {
    EXPECT_NE(std::find(assumptions.begin(), assumptions.end(), l), assumptions.end())
        << "core literal not among the assumptions";
  }
  // d is irrelevant to the conflict; the minimized core must not include it.
  EXPECT_EQ(std::find(core.begin(), core.end(), pos(d)), core.end());
  EXPECT_FALSE(s.solve(core));
  EXPECT_TRUE(s.solve());  // solver stays usable
}

TEST(Sat, ConflictAssumptionsTraceImpliedAssumptions) {
  // The conflicting assumption c is refuted through b, which is *implied* by
  // assumption a — the core must walk the reason chain back to a, reporting
  // exactly {a, c} (as assumption literals, not negations).
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(neg(a), pos(b));  // a -> b
  s.add_clause(neg(b), neg(c));  // b -> ~c
  ASSERT_FALSE(s.solve({pos(a), pos(c)}));
  const std::vector<Lit> expected = {pos(a), pos(c)};
  EXPECT_EQ(s.conflict_assumptions(), expected);
}

TEST(Sat, ConflictAssumptionsDeduplicated) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  ASSERT_FALSE(s.solve({neg(a), neg(b), neg(a), neg(b), neg(a)}));
  const std::vector<Lit> core = s.conflict_assumptions();
  EXPECT_EQ(std::adjacent_find(core.begin(), core.end()), core.end());
  EXPECT_LE(core.size(), 2u);
  EXPECT_FALSE(s.solve(core));
}

TEST(Sat, ConflictAssumptionsEmptyOnFormulaUnsat) {
  // When the formula is UNSAT regardless of assumptions, the core is empty.
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a));
  s.add_clause(neg(a));
  ASSERT_FALSE(s.solve({pos(b)}));
  EXPECT_TRUE(s.conflict_assumptions().empty());
}

TEST(Sat, AssumptionsDoNotPersist) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.solve({pos(a)}));
  EXPECT_TRUE(s.solve({neg(a)}));
  EXPECT_TRUE(s.solve());
}

TEST(Sat, ManyAssumptions) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 300; ++i) v.push_back(s.new_var());
  // Chain: v[i] -> v[i+1]
  for (int i = 0; i + 1 < 300; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  std::vector<Lit> assumps;
  for (int i = 0; i < 299; ++i) assumps.push_back(pos(v[i]));
  ASSERT_TRUE(s.solve(assumps));
  EXPECT_TRUE(s.model_value(v[299]));
  assumps.push_back(neg(v[299]));
  EXPECT_FALSE(s.solve(assumps));
}

TEST(Sat, ConflictBudgetThrows) {
  // A hard pigeonhole with a tiny budget must interrupt, not mis-answer.
  Solver s;
  constexpr int P = 9, H = 8;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  s.set_conflict_budget(10);
  EXPECT_THROW(s.solve(), SolverInterrupted);
}

// Randomized cross-check against brute force on small instances.
class SatRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom, MatchesBruteForce) {
  Xoshiro256 rng(1000 + GetParam());
  constexpr int kVars = 10;
  const int kClauses = 3 + static_cast<int>(rng.below(50));

  std::vector<std::vector<int>> clauses; // +v / -v encoding, 1-based
  for (int c = 0; c < kClauses; ++c) {
    std::vector<int> cl;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i) {
      const int v = 1 + static_cast<int>(rng.below(kVars));
      cl.push_back(rng.chance(0.5) ? v : -v);
    }
    clauses.push_back(cl);
  }

  // Brute force.
  bool brute_sat = false;
  for (unsigned m = 0; m < (1u << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (int lit : cl) {
        const bool val = (m >> (std::abs(lit) - 1)) & 1;
        if ((lit > 0) == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(s.new_var());
  bool ok = true;
  for (const auto& cl : clauses) {
    std::vector<Lit> lits;
    for (int lit : cl) lits.push_back(Lit(vars[std::abs(lit) - 1], lit < 0));
    ok = s.add_clause(lits) && ok;
  }
  const bool solver_sat = ok && s.solve();
  EXPECT_EQ(solver_sat, brute_sat);

  if (solver_sat) {
    // The model must actually satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (int lit : cl) {
        if (s.model_value(vars[std::abs(lit) - 1]) == (lit > 0)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SatRandom, ::testing::Range(0, 40));

// Pigeonhole P into P-1, optionally guarded: every clause gets ¬guard so the
// contradiction only fires under the assumption `guard` and the solver stays
// usable (ok) after the UNSAT answer.
void add_pigeonhole(Solver& s, int pigeons, std::optional<Lit> guard = std::nullopt) {
  const int holes = pigeons - 1;
  std::vector<std::vector<Var>> x(static_cast<std::size_t>(pigeons));
  for (auto& row : x) {
    for (int h = 0; h < holes; ++h) row.push_back(s.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<Lit> c;
    if (guard) c.push_back(~*guard);
    for (int h = 0; h < holes; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        std::vector<Lit> c;
        if (guard) c.push_back(~*guard);
        c.push_back(neg(x[p1][h]));
        c.push_back(neg(x[p2][h]));
        s.add_clause(c);
      }
    }
  }
}

TEST(Sat, DistinctLevelCountBitmapSplit) {
  EXPECT_EQ(Solver::distinct_level_count({}), 0u);
  EXPECT_EQ(Solver::distinct_level_count({0}), 1u);
  EXPECT_EQ(Solver::distinct_level_count({5, 5, 5}), 1u);
  EXPECT_EQ(Solver::distinct_level_count({0, 63, 64, 127}), 4u);
  // The historical aliasing bug: selecting the high bitmap word with
  // (lv & 64) instead of (lv >= 64) filed levels 128..191 under the low word
  // again, so level 128 shared level 0's bit and 192 shared 64's — each of
  // these pairs collapsed to a count of 1.
  EXPECT_EQ(Solver::distinct_level_count({0, 128}), 2u);
  EXPECT_EQ(Solver::distinct_level_count({64, 192}), 2u);
  EXPECT_EQ(Solver::distinct_level_count({1, 129, 129}), 2u);
}

TEST(Sat, DistinctLevelCountDeepLevelsExact) {
  std::vector<int> levels;
  for (int lv = 0; lv < 200; ++lv) levels.push_back(lv);
  EXPECT_EQ(Solver::distinct_level_count(levels), 200u);
  for (int lv = 199; lv >= 0; --lv) levels.push_back(lv); // duplicates, reversed
  EXPECT_EQ(Solver::distinct_level_count(levels), 200u);
}

TEST(Sat, LearntLbdCountsDeepDecisionStack) {
  // End-to-end regression for the same aliasing bug: force a conflict whose
  // learnt clause spans ~200 distinct decision levels. Assumptions are placed
  // one per pseudo-decision level, so asserting x0..x199 and the clause pair
  //   (¬x0 ∨ … ∨ ¬x199 ∨ y) and (¬x0 ∨ … ∨ ¬x199 ∨ ¬y)
  // yields a first-UIP clause over all 200 assumption levels (assumption
  // literals have no reason, so minimization cannot shrink it). The capped
  // bitmap computed an LBD of at most 128 here.
  Solver s;
  constexpr int N = 200;
  std::vector<Var> x;
  for (int i = 0; i < N; ++i) x.push_back(s.new_var());
  const Var y = s.new_var();
  std::vector<Lit> c1, c2;
  for (Var v : x) c1.push_back(neg(v));
  c2 = c1;
  c1.push_back(pos(y));
  c2.push_back(neg(y));
  s.add_clause(c1);
  s.add_clause(c2);

  unsigned max_lbd = 0;
  s.set_export_hook(
      [&](const std::vector<Lit>&, unsigned lbd) {
        if (lbd > max_lbd) max_lbd = lbd;
      },
      /*lbd_cap=*/1u << 20, /*size_cap=*/1u << 20);

  std::vector<Lit> assumptions;
  for (Var v : x) assumptions.push_back(pos(v));
  EXPECT_FALSE(s.solve(assumptions));
  EXPECT_GE(max_lbd, 150u);
}

TEST(Sat, ExportHookRespectsCaps) {
  Solver s;
  add_pigeonhole(s, 6);
  std::uint64_t exported = 0;
  s.set_export_hook(
      [&](const std::vector<Lit>& lits, unsigned lbd) {
        ++exported;
        EXPECT_LE(lbd, 3u);
        EXPECT_LE(lits.size(), 4u);
      },
      /*lbd_cap=*/3, /*size_cap=*/4);
  EXPECT_FALSE(s.solve());
  EXPECT_EQ(s.stats().exported_clauses, exported);
  EXPECT_LE(exported, s.stats().learned_clauses);
}

TEST(Sat, ImportedUnitForcesUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  bool fed = false;
  s.set_import_hook([&](std::vector<SharedClause>& out) {
    if (!fed) {
      out.push_back(SharedClause{{neg(a)}, 1});
      fed = true;
    }
  });
  EXPECT_FALSE(s.solve());
  EXPECT_EQ(s.stats().imported_clauses, 1u);
}

TEST(Sat, ImportedClauseConstrainsModel) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b));
  bool fed = false;
  s.set_import_hook([&](std::vector<SharedClause>& out) {
    if (!fed) {
      out.push_back(SharedClause{{neg(a)}, 1});
      fed = true;
    }
  });
  ASSERT_TRUE(s.solve());
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  EXPECT_EQ(s.validate_model(), 0u);
}

TEST(Sat, ImportSimplifiesAgainstRootFacts) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var(), c = s.new_var();
  s.add_clause(pos(a)); // root fact
  bool fed = false;
  s.set_import_hook([&](std::vector<SharedClause>& out) {
    if (!fed) {
      out.push_back(SharedClause{{neg(a), pos(b)}, 2}); // ¬a false at root → unit b
      out.push_back(SharedClause{{pos(a), pos(c)}, 2}); // satisfied at root → dropped
      out.push_back(SharedClause{{Lit(Var(100), false)}, 1}); // out of range → dropped
      fed = true;
    }
  });
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(b));
  // Only the clause that actually entered the database is counted.
  EXPECT_EQ(s.stats().imported_clauses, 1u);
}

TEST(Sat, ReduceDbReclaimsArena) {
  // A small learnt-DB cap on a conflict-heavy instance forces repeated
  // reductions; deleted clauses must hand their arena storage back instead of
  // leaking it for the lifetime of the solver.
  Solver s;
  add_pigeonhole(s, 7);
  s.set_max_learnts(50);
  EXPECT_FALSE(s.solve());
  ASSERT_GT(s.stats().deleted_clauses, 0u);
  // Garbage collection keeps dead literals bounded by a quarter of the arena.
  EXPECT_LE(s.arena_garbage() * 4, s.arena_size());
  // And actually compacts: live allocation sits well below total-ever.
  EXPECT_LT(s.allocated_clauses(),
            static_cast<std::size_t>(s.stats().learned_clauses) / 2);
}

TEST(Sat, GarbageCollectionKeepsSolverUsable) {
  // Same workload but guarded by an assumption, so the solver survives the
  // UNSAT answer: after reductions + compaction all watcher and reason
  // references must still be valid for further solves in both directions.
  Solver s;
  const Var g = s.new_var();
  add_pigeonhole(s, 7, pos(g));
  s.set_max_learnts(50);
  EXPECT_FALSE(s.solve({pos(g)}));
  EXPECT_GT(s.stats().deleted_clauses, 0u);
  EXPECT_TRUE(s.okay());
  ASSERT_TRUE(s.solve()); // g is free: ¬g satisfies every guarded clause
  EXPECT_EQ(s.validate_model(), 0u);
  EXPECT_FALSE(s.solve({pos(g)})); // still UNSAT through remapped clauses
}

} // namespace
} // namespace upec::sat
