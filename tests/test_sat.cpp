#include "sat/solver.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

TEST(Sat, TrivialSat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(a));
}

TEST(Sat, TrivialUnsat) {
  Solver s;
  const Var a = s.new_var();
  s.add_clause(pos(a));
  EXPECT_TRUE(s.okay());
  s.add_clause(neg(a));
  EXPECT_FALSE(s.solve());
}

TEST(Sat, EmptyFormulaIsSat) {
  Solver s;
  s.new_var();
  EXPECT_TRUE(s.solve());
}

TEST(Sat, UnitPropagationChain) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 20; ++i) v.push_back(s.new_var());
  s.add_clause(pos(v[0]));
  for (int i = 0; i + 1 < 20; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  ASSERT_TRUE(s.solve());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(s.model_value(v[i])) << i;
}

TEST(Sat, TautologyAndDuplicatesIgnored) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  EXPECT_TRUE(s.add_clause({pos(a), neg(a)})); // tautology: dropped
  EXPECT_TRUE(s.add_clause({pos(b), pos(b), pos(b)}));
  ASSERT_TRUE(s.solve());
  EXPECT_TRUE(s.model_value(b));
}

// Pigeonhole principle: n+1 pigeons into n holes is UNSAT (classic hard-ish
// instance that exercises conflict analysis and learning).
TEST(Sat, Pigeonhole4Into3) {
  Solver s;
  constexpr int P = 4, H = 3;
  Var x[P][H];
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  EXPECT_FALSE(s.solve());
}

TEST(Sat, Pigeonhole6Into5) {
  Solver s;
  constexpr int P = 6, H = 5;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  EXPECT_FALSE(s.solve());
  EXPECT_GT(s.stats().conflicts, 0u);
}

TEST(Sat, AssumptionsSelectBranch) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(pos(a), pos(b)); // a | b
  ASSERT_TRUE(s.solve({neg(a)}));
  EXPECT_FALSE(s.model_value(a));
  EXPECT_TRUE(s.model_value(b));
  ASSERT_TRUE(s.solve({neg(b)}));
  EXPECT_TRUE(s.model_value(a));
  // Incremental: same solver, contradictory assumptions.
  EXPECT_FALSE(s.solve({neg(a), neg(b)}));
  // The final conflict must mention only assumption literals.
  for (Lit l : s.conflict_assumptions()) {
    EXPECT_TRUE(l.var() == a || l.var() == b);
  }
  // Solver remains usable.
  EXPECT_TRUE(s.solve());
}

TEST(Sat, AssumptionsDoNotPersist) {
  Solver s;
  const Var a = s.new_var();
  EXPECT_TRUE(s.solve({pos(a)}));
  EXPECT_TRUE(s.solve({neg(a)}));
  EXPECT_TRUE(s.solve());
}

TEST(Sat, ManyAssumptions) {
  Solver s;
  std::vector<Var> v;
  for (int i = 0; i < 300; ++i) v.push_back(s.new_var());
  // Chain: v[i] -> v[i+1]
  for (int i = 0; i + 1 < 300; ++i) s.add_clause(neg(v[i]), pos(v[i + 1]));
  std::vector<Lit> assumps;
  for (int i = 0; i < 299; ++i) assumps.push_back(pos(v[i]));
  ASSERT_TRUE(s.solve(assumps));
  EXPECT_TRUE(s.model_value(v[299]));
  assumps.push_back(neg(v[299]));
  EXPECT_FALSE(s.solve(assumps));
}

TEST(Sat, ConflictBudgetThrows) {
  // A hard pigeonhole with a tiny budget must interrupt, not mis-answer.
  Solver s;
  constexpr int P = 9, H = 8;
  std::vector<std::vector<Var>> x(P, std::vector<Var>(H));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < P; ++p) {
    std::vector<Lit> c;
    for (int h = 0; h < H; ++h) c.push_back(pos(x[p][h]));
    s.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) s.add_clause(neg(x[p1][h]), neg(x[p2][h]));
    }
  }
  s.set_conflict_budget(10);
  EXPECT_THROW(s.solve(), SolverInterrupted);
}

// Randomized cross-check against brute force on small instances.
class SatRandom : public ::testing::TestWithParam<int> {};

TEST_P(SatRandom, MatchesBruteForce) {
  Xoshiro256 rng(1000 + GetParam());
  constexpr int kVars = 10;
  const int kClauses = 3 + static_cast<int>(rng.below(50));

  std::vector<std::vector<int>> clauses; // +v / -v encoding, 1-based
  for (int c = 0; c < kClauses; ++c) {
    std::vector<int> cl;
    const int len = 1 + static_cast<int>(rng.below(3));
    for (int i = 0; i < len; ++i) {
      const int v = 1 + static_cast<int>(rng.below(kVars));
      cl.push_back(rng.chance(0.5) ? v : -v);
    }
    clauses.push_back(cl);
  }

  // Brute force.
  bool brute_sat = false;
  for (unsigned m = 0; m < (1u << kVars) && !brute_sat; ++m) {
    bool all = true;
    for (const auto& cl : clauses) {
      bool any = false;
      for (int lit : cl) {
        const bool val = (m >> (std::abs(lit) - 1)) & 1;
        if ((lit > 0) == val) {
          any = true;
          break;
        }
      }
      if (!any) {
        all = false;
        break;
      }
    }
    brute_sat = all;
  }

  Solver s;
  std::vector<Var> vars;
  for (int i = 0; i < kVars; ++i) vars.push_back(s.new_var());
  bool ok = true;
  for (const auto& cl : clauses) {
    std::vector<Lit> lits;
    for (int lit : cl) lits.push_back(Lit(vars[std::abs(lit) - 1], lit < 0));
    ok = s.add_clause(lits) && ok;
  }
  const bool solver_sat = ok && s.solve();
  EXPECT_EQ(solver_sat, brute_sat);

  if (solver_sat) {
    // The model must actually satisfy every clause.
    for (const auto& cl : clauses) {
      bool any = false;
      for (int lit : cl) {
        if (s.model_value(vars[std::abs(lit) - 1]) == (lit > 0)) any = true;
      }
      EXPECT_TRUE(any);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomInstances, SatRandom, ::testing::Range(0, 40));

} // namespace
} // namespace upec::sat
