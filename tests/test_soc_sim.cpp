// Behavioral tests of the generated Pulpissimo-style SoC, driven through the
// CPU/system interface exactly as software would: memory read/write, all
// peripherals, DMA copies, HWPE streaming, event routing, and — the heart of
// the paper — arbitration contention visible as timing.
#include <gtest/gtest.h>

#include "sim/task.h"
#include "soc/pulpissimo.h"
#include "soc/soc_ctrl.h"

namespace upec {
namespace {

using sim::BusDriver;
using sim::idle;
using sim::load;
using sim::Simulator;
using sim::store;
using soc::AddrMap;
using soc::Soc;

class SocSim : public ::testing::Test {
protected:
  SocSim() : soc_(soc::build_pulpissimo()), sim_(*soc_.design), cpu_(sim_) {}

  std::uint32_t base(const char* region) const { return soc_.map.region(region).base; }

  Soc soc_;
  Simulator sim_;
  BusDriver cpu_;
};

TEST_F(SocSim, DesignValidates) { EXPECT_EQ(soc_.design->validate(), ""); }

TEST_F(SocSim, NoCombinationalCycles) {
  bool cyclic = true;
  rtlir::topo_order_cells(*soc_.design, &cyclic);
  EXPECT_FALSE(cyclic);
}

TEST_F(SocSim, PublicRamReadWrite) {
  const std::uint32_t a = base(AddrMap::kPubRam);
  cpu_.run_op(store(a + 0, 0xdeadbeef));
  cpu_.run_op(store(a + 4, 0x12345678));
  EXPECT_EQ(cpu_.run_op(load(a + 0)), 0xdeadbeefu);
  EXPECT_EQ(cpu_.run_op(load(a + 4)), 0x12345678u);
}

TEST_F(SocSim, PrivateRamReadWrite) {
  const std::uint32_t a = base(AddrMap::kPrivRam);
  cpu_.run_op(store(a + 8, 0xcafe0001));
  EXPECT_EQ(cpu_.run_op(load(a + 8)), 0xcafe0001u);
}

TEST_F(SocSim, RamsAreIndependent) {
  cpu_.run_op(store(base(AddrMap::kPubRam) + 0, 0x11111111));
  cpu_.run_op(store(base(AddrMap::kPrivRam) + 0, 0x22222222));
  EXPECT_EQ(cpu_.run_op(load(base(AddrMap::kPubRam) + 0)), 0x11111111u);
  EXPECT_EQ(cpu_.run_op(load(base(AddrMap::kPrivRam) + 0)), 0x22222222u);
}

TEST_F(SocSim, SocCtrlChipIdAndScratch) {
  const std::uint32_t a = base(AddrMap::kSocCtrl);
  EXPECT_EQ(cpu_.run_op(load(a + 0)), soc::kChipId);
  cpu_.run_op(store(a + 4, 77));
  cpu_.run_op(store(a + 8, 88));
  EXPECT_EQ(cpu_.run_op(load(a + 4)), 77u);
  EXPECT_EQ(cpu_.run_op(load(a + 8)), 88u);
}

TEST_F(SocSim, GpioDirectionOutAndPads) {
  const std::uint32_t a = base(AddrMap::kGpio);
  cpu_.run_op(store(a + 0, 0x00ff)); // DIR
  cpu_.run_op(store(a + 4, 0x1234)); // OUT
  EXPECT_EQ(cpu_.run_op(load(a + 0)), 0x00ffu);
  EXPECT_EQ(cpu_.run_op(load(a + 4)), 0x1234u);
  sim_.set_input("soc.pad.gpio_in", 0xbeef);
  cpu_.drain(2); // let the pad synchronizer sample
  EXPECT_EQ(cpu_.run_op(load(a + 8)), 0xbeefu);
}

TEST_F(SocSim, TimerCountsWhenEnabled) {
  const std::uint32_t t = base(AddrMap::kTimer);
  cpu_.run_op(store(t + 0x4, 0)); // COUNT = 0
  cpu_.run_op(store(t + 0xC, 0)); // PRESCALE = 0
  cpu_.run_op(store(t + 0x0, 1)); // CTRL.enable
  cpu_.drain(10);
  const std::uint32_t c1 = cpu_.run_op(load(t + 0x4));
  EXPECT_GE(c1, 10u);
  cpu_.run_op(store(t + 0x0, 0)); // disable
  const std::uint32_t c2 = cpu_.run_op(load(t + 0x4));
  cpu_.drain(10);
  EXPECT_EQ(cpu_.run_op(load(t + 0x4)), c2) << "timer must hold when disabled";
}

TEST_F(SocSim, TimerPrescalerSlowsCounting) {
  const std::uint32_t t = base(AddrMap::kTimer);
  cpu_.run_op(store(t + 0x4, 0));
  cpu_.run_op(store(t + 0xC, 3)); // divide by 4
  cpu_.run_op(store(t + 0x0, 1));
  cpu_.drain(40);
  cpu_.run_op(store(t + 0x0, 0));
  const std::uint32_t c = cpu_.run_op(load(t + 0x4));
  EXPECT_GE(c, 8u);
  EXPECT_LE(c, 13u) << "prescaler 3 should quarter the rate";
}

TEST_F(SocSim, TimerOverflowSticky) {
  const std::uint32_t t = base(AddrMap::kTimer);
  cpu_.run_op(store(t + 0x4, 0));  // COUNT
  cpu_.run_op(store(t + 0x8, 5));  // CMP
  cpu_.run_op(store(t + 0xC, 0));  // PRESCALE
  cpu_.run_op(store(t + 0x0, 1));  // enable
  cpu_.drain(20);
  EXPECT_EQ(cpu_.run_op(load(t + 0x10)) & 1, 1u) << "overflow flag set";
  cpu_.run_op(store(t + 0x10, 1)); // W1C
  cpu_.run_op(store(t + 0x0, 0));
  EXPECT_EQ(cpu_.run_op(load(t + 0x10)) & 1, 0u) << "overflow flag cleared";
}

TEST_F(SocSim, UartBusyWhileTransmitting) {
  const std::uint32_t u = base(AddrMap::kUart);
  cpu_.run_op(store(u + 0x8, 2));    // BAUD
  cpu_.run_op(store(u + 0x0, 0x41)); // TXDATA
  EXPECT_EQ(cpu_.run_op(load(u + 0x4)) & 1, 1u) << "busy after send";
  EXPECT_EQ(cpu_.run_op(load(u + 0x0)), 0x41u);
  cpu_.drain(40);
  EXPECT_EQ(cpu_.run_op(load(u + 0x4)) & 1, 0u) << "idle after frame";
}

TEST_F(SocSim, DmaCopiesMemory) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t d = base(AddrMap::kDma);
  for (std::uint32_t i = 0; i < 4; ++i) cpu_.run_op(store(ram + 4 * i, 0xa0 + i));

  cpu_.run(sim::TaskScript{
      store(d + 0x0, ram),          // SRC
      store(d + 0x4, ram + 0x40),   // DST
      store(d + 0x8, 4),            // LEN
      store(d + 0xC, 1),            // go
  });
  cpu_.drain(60);
  EXPECT_EQ(cpu_.run_op(load(d + 0x10)) & 1, 0u) << "DMA idle after copy";
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(cpu_.run_op(load(ram + 0x40 + 4 * i)), 0xa0u + i) << "word " << i;
  }
}

TEST_F(SocSim, DmaDoneEventLatched) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t d = base(AddrMap::kDma);
  const std::uint32_t e = base(AddrMap::kEvent);
  cpu_.run(sim::TaskScript{store(e + 0x0, 0x7), // clear pending
                           store(d + 0x0, ram), store(d + 0x4, ram + 0x20),
                           store(d + 0x8, 2), store(d + 0xC, 1)});
  cpu_.drain(40);
  EXPECT_EQ(cpu_.run_op(load(e + 0x0)) & 1, 1u) << "dma_done pending bit";
  cpu_.run_op(store(e + 0x0, 1));
  EXPECT_EQ(cpu_.run_op(load(e + 0x0)) & 1, 0u) << "W1C clears";
}

TEST_F(SocSim, HwpeOverwritesPrimedRegion) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t h = base(AddrMap::kHwpe);
  for (std::uint32_t i = 0; i < 6; ++i) cpu_.run_op(store(ram + 4 * i, 0));

  cpu_.run(sim::TaskScript{
      store(h + 0x0, ram), // DST
      store(h + 0x4, 6),   // LEN
      store(h + 0x8, 1),   // go
  });
  cpu_.drain(40);
  EXPECT_EQ(cpu_.run_op(load(h + 0xC)) & 1, 0u) << "HWPE done";
  EXPECT_EQ(cpu_.run_op(load(h + 0x10)), 6u) << "PROGRESS = LEN";
  for (std::uint32_t i = 0; i < 6; ++i) {
    EXPECT_EQ(cpu_.run_op(load(ram + 4 * i)), i + 1) << "non-zero pattern at word " << i;
  }
}

TEST_F(SocSim, HwpeDoneRoutesToTimerStart) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t h = base(AddrMap::kHwpe);
  const std::uint32_t e = base(AddrMap::kEvent);
  const std::uint32_t t = base(AddrMap::kTimer);
  cpu_.run(sim::TaskScript{
      store(t + 0x4, 0), store(t + 0xC, 0), // timer ready, disabled
      store(e + 0x4, 2),                    // TRIGSEL = hwpe_done
      store(h + 0x0, ram), store(h + 0x4, 2), store(h + 0x8, 1),
  });
  cpu_.drain(30);
  const std::uint32_t c1 = cpu_.run_op(load(t + 0x4));
  EXPECT_GT(c1, 0u) << "timer started by hwpe_done event";
}

// The contention effect at the core of the paper: a CPU access stream to the
// public RAM steals arbitration slots from the HWPE (CPU has priority), so
// the HWPE makes strictly less progress than in an idle window.
TEST_F(SocSim, CpuContentionDelaysHwpe) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t h = base(AddrMap::kHwpe);

  auto run_window = [&](bool contend) {
    Simulator s(*soc_.design);
    BusDriver c(s);
    c.run(sim::TaskScript{store(h + 0x0, ram), store(h + 0x4, 16), store(h + 0x8, 1)});
    const std::uint64_t window_end = s.cycle() + 16;
    if (contend) {
      while (s.cycle() < window_end) c.run_op(store(ram + 0x40, 1));
    }
    // Align both runs to the same absolute sampling cycle.
    while (s.cycle() < window_end + 8) c.run_op(idle(1));
    return static_cast<std::uint32_t>(c.run_op(load(h + 0x10)));
  };

  const std::uint32_t progress_idle = run_window(false);
  const std::uint32_t progress_contended = run_window(true);
  EXPECT_GT(progress_idle, progress_contended)
      << "victim contention must delay the HWPE stream";
}

// The countermeasure path: accesses to the *private* RAM do not contend with
// the HWPE (separate crossbar), so progress is unaffected.
TEST_F(SocSim, PrivateAccessesDoNotDelayHwpe) {
  const std::uint32_t ram = base(AddrMap::kPubRam);
  const std::uint32_t priv = base(AddrMap::kPrivRam);
  const std::uint32_t h = base(AddrMap::kHwpe);

  auto run_window = [&](bool contend_priv) {
    Simulator s(*soc_.design);
    BusDriver c(s);
    c.run(sim::TaskScript{store(h + 0x0, ram), store(h + 0x4, 16), store(h + 0x8, 1)});
    const std::uint64_t window_end = s.cycle() + 16;
    if (contend_priv) {
      while (s.cycle() < window_end) c.run_op(store(priv + 0x10, 7));
    }
    // Align both runs to the same absolute sampling cycle.
    while (s.cycle() < window_end + 8) c.run_op(idle(1));
    return static_cast<std::uint32_t>(c.run_op(load(h + 0x10)));
  };

  EXPECT_EQ(run_window(false), run_window(true))
      << "private-RAM traffic must not influence public-side HWPE progress";
}

TEST_F(SocSim, DmaPrivateAccessWorksOnBaselineSoc) {
  const std::uint32_t priv = base(AddrMap::kPrivRam);
  const std::uint32_t pub = base(AddrMap::kPubRam);
  const std::uint32_t d = base(AddrMap::kDma);
  cpu_.run_op(store(priv + 0, 0x5ec2e7));
  cpu_.run(sim::TaskScript{store(d + 0x0, priv), store(d + 0x4, pub + 0x50),
                           store(d + 0x8, 1), store(d + 0xC, 1)});
  cpu_.drain(40);
  EXPECT_EQ(cpu_.run_op(load(pub + 0x50)), 0x5ec2e7u)
      << "baseline SoC: DMA can exfiltrate private memory (the gap the "
         "countermeasure closes)";
}

TEST_F(SocSim, HwGuardBlocksDmaPrivateAccess) {
  soc::SocConfig cfg;
  cfg.hw_private_guard = true;
  Soc guarded = soc::build_pulpissimo(cfg);
  Simulator s(*guarded.design);
  BusDriver c(s);
  const std::uint32_t priv = guarded.map.region(AddrMap::kPrivRam).base;
  const std::uint32_t pub = guarded.map.region(AddrMap::kPubRam).base;
  const std::uint32_t d = guarded.map.region(AddrMap::kDma).base;
  c.run_op(store(priv + 0, 0x5ec2e7));
  c.run_op(store(pub + 0x50, 0));
  c.run(sim::TaskScript{store(d + 0x0, priv), store(d + 0x4, pub + 0x50),
                        store(d + 0x8, 1), store(d + 0xC, 1)});
  c.drain(40);
  EXPECT_EQ(c.run_op(load(pub + 0x50)), 0u) << "guarded SoC: private read never completes";
}

} // namespace
} // namespace upec
