// Direct unit tests of the netlist interpreter: reset semantics, input
// masking, out-of-range memory behavior, per-cycle memoization, and the
// lockstep pair harness.
#include <gtest/gtest.h>

#include "rtlir/builder.h"
#include "sim/lockstep.h"
#include "sim/simulator.h"

namespace upec::sim {
namespace {

using rtlir::Builder;
using rtlir::Design;
using rtlir::MemHandle;
using rtlir::NetId;
using rtlir::RegHandle;

TEST(Simulator, ResetValuesApplied) {
  Design d;
  Builder b(d);
  RegHandle r = b.reg("r_q", 8, /*reset=*/0xA5);
  b.connect(r, b.add_const(r.q, 1));
  MemHandle m = b.memory("m", 4, 8);
  b.mem_write(m, b.zero(2), b.zero(8), b.zero(1));
  d.memories(); // silence unused warnings in some compilers

  Simulator s(d);
  EXPECT_EQ(s.reg_value(r.index), 0xA5u);
  s.step();
  EXPECT_EQ(s.reg_value(r.index), 0xA6u);
  s.reset();
  EXPECT_EQ(s.reg_value(r.index), 0xA5u);
  EXPECT_EQ(s.cycle(), 0u);
}

TEST(Simulator, InputsMaskedToWidth) {
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 4);
  b.global_output("probe", in);
  Simulator s(d);
  s.set_input("in", 0xFFF);
  EXPECT_EQ(s.output("probe"), 0xFu);
}

TEST(Simulator, UnknownNamesThrow) {
  Design d;
  Builder b(d);
  b.input("in", 4);
  Simulator s(d);
  EXPECT_THROW(s.set_input("nope", 1), std::out_of_range);
  EXPECT_THROW(s.output("nope"), std::out_of_range);
}

TEST(Simulator, OutOfRangeMemoryReadsZero) {
  // 3-word memory (addr width 2): address 3 is unmapped and reads as zero.
  Design d;
  Builder b(d);
  MemHandle m = b.memory("m", 3, 8);
  const NetId addr = b.input("addr", 2);
  b.global_output("data", b.mem_read(m, addr));
  b.mem_write(m, addr, b.constant(8, 0x55), b.input("wen", 1));

  Simulator s(d);
  for (std::uint32_t w = 0; w < 3; ++w) s.set_mem_word(m.index, w, 0x10 + w);
  s.set_input("addr", 3);
  EXPECT_EQ(s.output("data"), 0u);
  // Writes to the unmapped word are dropped (no crash, no aliasing).
  s.set_input("wen", 1);
  s.step();
  for (std::uint32_t w = 0; w < 3; ++w) EXPECT_EQ(s.mem_word(m.index, w), 0x10u + w);
}

TEST(Simulator, MemoizationInvalidatedByInputChange) {
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  b.global_output("twice", b.add(in, in));
  Simulator s(d);
  s.set_input("in", 3);
  EXPECT_EQ(s.output("twice"), 6u);
  s.set_input("in", 5); // same cycle, new value: memo must refresh
  EXPECT_EQ(s.output("twice"), 10u);
}

TEST(Simulator, WritePriorityLaterPortWins) {
  Design d;
  Builder b(d);
  MemHandle m = b.memory("m", 2, 8);
  b.mem_write(m, b.zero(1), b.constant(8, 0x11), b.one(1));
  b.mem_write(m, b.zero(1), b.constant(8, 0x22), b.one(1));
  Simulator s(d);
  s.step();
  EXPECT_EQ(s.mem_word(m.index, 0), 0x22u);
}

TEST(Lockstep, DivergenceTrackingAndHistory) {
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  RegHandle r = b.reg("r_q", 8);
  b.connect(r, in);
  rtlir::StateVarTable svt(d);

  Lockstep pair(d, svt);
  pair.set_input_both("in", 7);
  pair.step();
  EXPECT_TRUE(pair.current_divergence().empty());

  pair.inst_a().set_input("in", 1);
  pair.inst_b().set_input("in", 2);
  pair.step();
  ASSERT_EQ(pair.current_divergence().size(), 1u);
  EXPECT_EQ(svt.name(pair.current_divergence()[0]), "r_q");
  EXPECT_NE(pair.describe_divergence().find("r_q"), std::string::npos);
  ASSERT_EQ(pair.history().size(), 2u);
  EXPECT_TRUE(pair.history()[0].differing.empty());
  EXPECT_FALSE(pair.history()[1].differing.empty());
}

} // namespace
} // namespace upec::sim
