// StateSet semantics and the report renderers.
#include <gtest/gtest.h>

#include "soc/pulpissimo.h"
#include "upec/report.h"
#include "upec/state_sets.h"

namespace upec {
namespace {

TEST(StateSet, BasicOps) {
  StateSet s(10, false);
  EXPECT_EQ(s.size(), 0u);
  s.insert(3);
  s.insert(3);
  s.insert(7);
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(3));
  EXPECT_FALSE(s.contains(4));
  s.remove(3);
  s.remove(3);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(s.to_vector(), std::vector<rtlir::StateVarId>{7});
}

TEST(StateSet, FullAndEquality) {
  StateSet a(5, true), b(5, true);
  EXPECT_EQ(a.size(), 5u);
  EXPECT_EQ(a, b);
  a.remove(2);
  EXPECT_NE(a, b);
  b.remove(2);
  EXPECT_EQ(a, b);
  a.remove_all({0, 1, 3, 4});
  EXPECT_EQ(a.size(), 0u);
}

TEST(StateSet, SNotVictimExcludesPrefixes) {
  soc::SocConfig cfg;
  cfg.with_cpu = true;
  cfg.pub_ram_words = 8;
  cfg.priv_ram_words = 8;
  cfg.imem_words = 16;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  const rtlir::StateVarTable svt(*soc.design);

  const StateSet s = s_not_victim(svt); // default excludes "soc.cpu."
  std::size_t cpu_vars = 0;
  for (rtlir::StateVarId id = 0; id < svt.size(); ++id) {
    const bool is_cpu = svt.name(id).rfind("soc.cpu.", 0) == 0;
    cpu_vars += is_cpu;
    EXPECT_EQ(s.contains(id), !is_cpu) << svt.name(id);
  }
  // The core contributes its pipeline registers plus imem and regfile words:
  // Def. 1 (1) excludes all of them from S_¬victim.
  EXPECT_GE(cpu_vars, 16u + 32u + 5u);
}

TEST(Report, SecureAndVulnerableRendering) {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  {
    UpecContext ctx(soc, countermeasure_options());
    const Alg1Result r = run_alg1(ctx);
    const std::string report = render_report(ctx, r);
    EXPECT_NE(report.find("verdict: secure"), std::string::npos);
    EXPECT_NE(report.find("inductive set"), std::string::npos);
    EXPECT_NE(iteration_table(ctx, r).find("holds"), std::string::npos);
  }
  {
    UpecContext ctx(soc);
    const Alg1Result r = run_alg1(ctx);
    const std::string report = render_report(ctx, r);
    EXPECT_NE(report.find("verdict: vulnerable"), std::string::npos);
    EXPECT_NE(report.find("S_cex ∩ S_pers"), std::string::npos);
    EXPECT_NE(report.find("counterexample waveform"), std::string::npos);
  }
}

} // namespace
} // namespace upec
