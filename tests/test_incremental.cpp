// Cross-iteration incremental sweeps: persistent candidate activation
// (Miter::register_candidates / select_candidates), the shared UNSAT verdict
// cache (sat/verdict_cache.h), and UNSAT-core frontier pruning
// (upec/incremental.h).
//
// The determinism side (incremental / cache toggles × thread counts must
// produce bit-identical frontiers) is additionally pinned in
// test_determinism; this file covers the machinery itself plus the
// end-to-end work-avoidance effects.
#include <gtest/gtest.h>

#include <string>

#include "sat/backend.h"
#include "sat/verdict_cache.h"
#include "upec/report.h"
#include "upec/sweep.h"

namespace upec {
namespace {

sat::Lit pos(sat::Var v) { return sat::Lit(v, false); }
sat::Lit neg(sat::Var v) { return sat::Lit(v, true); }

soc::Soc tiny_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 8;
  cfg.priv_ram_words = 4;
  return soc::build_pulpissimo(cfg);
}

// ---------------------------------------------------------------- VerdictCache

TEST(IncrementalSweeps, VerdictCacheHitMissAndCanonicalization) {
  sat::VerdictCache cache;
  const sat::CnfSnapshot::Cursor cursor{4, 7};
  const std::vector<sat::Lit> assumptions = {pos(0), neg(1)};
  const std::vector<sat::Lit> core = {neg(1)};

  std::vector<sat::Lit> got;
  EXPECT_FALSE(cache.lookup_unsat(1, cursor, assumptions, &got));
  cache.insert_unsat(1, cursor, assumptions, core);
  EXPECT_EQ(cache.entries(), 1u);

  ASSERT_TRUE(cache.lookup_unsat(1, cursor, assumptions, &got));
  EXPECT_EQ(got, core);
  // Permuted and duplicated assumption vectors canonicalize to the same key.
  ASSERT_TRUE(cache.lookup_unsat(1, cursor, {neg(1), pos(0), neg(1)}, &got));
  EXPECT_EQ(got, core);
  // A different assumption set misses.
  EXPECT_FALSE(cache.lookup_unsat(1, cursor, {pos(0)}, &got));

  EXPECT_EQ(cache.hits(), 2u);
  EXPECT_EQ(cache.misses(), 2u);
  // Duplicate insert is idempotent.
  cache.insert_unsat(1, cursor, {neg(1), pos(0)}, core);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(IncrementalSweeps, VerdictCacheCursorAdvanceInvalidates) {
  sat::VerdictCache cache;
  const std::vector<sat::Lit> assumptions = {pos(0)};
  cache.insert_unsat(1, sat::CnfSnapshot::Cursor{2, 3}, assumptions, {pos(0)});
  // Same assumptions against a grown formula prefix: different key, miss.
  EXPECT_FALSE(cache.lookup_unsat(1, sat::CnfSnapshot::Cursor{2, 4}, assumptions, nullptr));
  EXPECT_FALSE(cache.lookup_unsat(1, sat::CnfSnapshot::Cursor{3, 3}, assumptions, nullptr));
  EXPECT_TRUE(cache.lookup_unsat(1, sat::CnfSnapshot::Cursor{2, 3}, assumptions, nullptr));
}

TEST(IncrementalSweeps, VerdictCacheStoreIdentitySeparatesFormulas) {
  // Two stores can present equal (vars, clauses) cursors while holding
  // different clauses — a simplified generation next to its original, for
  // example. Entries must never cross between them.
  sat::VerdictCache cache;
  const sat::CnfSnapshot::Cursor cursor{2, 3};
  const std::vector<sat::Lit> assumptions = {pos(0)};
  cache.insert_unsat(7, cursor, assumptions, {pos(0)});
  EXPECT_FALSE(cache.lookup_unsat(8, cursor, assumptions, nullptr));
  EXPECT_TRUE(cache.lookup_unsat(7, cursor, assumptions, nullptr));
}

TEST(IncrementalSweeps, VerdictCacheCapacityCapDropsNotCorrupts) {
  sat::VerdictCache cache;
  cache.set_max_entries(1);
  cache.insert_unsat(1, sat::CnfSnapshot::Cursor{1, 1}, {pos(0)}, {});
  cache.insert_unsat(1, sat::CnfSnapshot::Cursor{1, 1}, {pos(1)}, {});
  EXPECT_EQ(cache.entries(), 1u);
  EXPECT_TRUE(cache.lookup_unsat(1, sat::CnfSnapshot::Cursor{1, 1}, {pos(0)}, nullptr));
  EXPECT_FALSE(cache.lookup_unsat(1, sat::CnfSnapshot::Cursor{1, 1}, {pos(1)}, nullptr));
}

TEST(IncrementalSweeps, BackendsShareCacheAndReplayCores) {
  // Two backends over one store and one cache: the second backend's identical
  // query must hit the entry the first one inserted and observe the same
  // core, without any solving of its own.
  sat::CnfStore store;
  const sat::Var a = store.new_var(), b = store.new_var();
  store.add_clause({pos(a), pos(b)});
  sat::VerdictCache cache;

  sat::InprocBackend b0, b1;
  b0.set_verdict_cache(&cache);
  b1.set_verdict_cache(&cache);
  const sat::CnfSnapshot snap = store.snapshot();
  b0.sync(snap);
  b1.sync(snap);

  const std::vector<sat::Lit> as = {neg(a), neg(b)};
  ASSERT_EQ(b0.solve(as), sat::SolveStatus::Unsat);
  EXPECT_EQ(b0.cache_misses(), 1u);
  EXPECT_EQ(b0.cache_hits(), 0u);
  const std::vector<sat::Lit> core = b0.unsat_core();
  EXPECT_FALSE(core.empty());

  ASSERT_EQ(b1.solve(as), sat::SolveStatus::Unsat);
  EXPECT_EQ(b1.cache_hits(), 1u);
  EXPECT_EQ(b1.unsat_core(), core);

  // Appending to the store invalidates: after re-sync the same query misses.
  store.add_clause({pos(a), pos(b)});  // content-irrelevant growth
  const sat::CnfSnapshot snap2 = store.snapshot();
  b1.sync(snap2);
  ASSERT_EQ(b1.solve(as), sat::SolveStatus::Unsat);
  EXPECT_EQ(b1.cache_hits(), 1u);
  EXPECT_EQ(b1.cache_misses(), 1u);
  EXPECT_EQ(cache.entries(), 2u);
}

// -------------------------------------------------------------- FrontierPruner

TEST(IncrementalSweeps, PrunerFiltersOnlyWithEntailedJustification) {
  FrontierPruner pruner;
  FrontierPruner::Justification just;
  just.eq_svs = {1, 2};
  just.other_lits = {pos(40)};
  pruner.record(1, {5, 7}, std::move(just));

  const std::vector<rtlir::StateVarId> members = {5, 6, 7};
  std::vector<rtlir::StateVarId> eligible, pruned;

  // Full justification present: 5 and 7 pruned, unjustified 6 stays.
  pruner.filter(1, members, {1, 2, 3}, {pos(40).index()}, eligible, pruned);
  EXPECT_EQ(pruned, (std::vector<rtlir::StateVarId>{5, 7}));
  EXPECT_EQ(eligible, (std::vector<rtlir::StateVarId>{6}));

  // An eq dependency left the assumed set: nothing fires.
  pruner.filter(1, members, {1, 3}, {pos(40).index()}, eligible, pruned);
  EXPECT_TRUE(pruned.empty());
  EXPECT_EQ(eligible, members);

  // A macro dependency missing from the assumptions: nothing fires.
  pruner.filter(1, members, {1, 2}, {}, eligible, pruned);
  EXPECT_TRUE(pruned.empty());

  // A different frame has no records.
  pruner.filter(2, members, {1, 2}, {pos(40).index()}, eligible, pruned);
  EXPECT_TRUE(pruned.empty());

  EXPECT_EQ(pruner.total_pruned(), 2u);
}

// ------------------------------------------- persistent candidate activation

TEST(IncrementalSweeps, ActivationSelectionMatchesDirectDiffQueries) {
  const soc::Soc soc = tiny_soc();
  UpecContext ctx(soc);
  const std::vector<rtlir::StateVarId> candidates = ctx.s_pers.to_vector();
  ASSERT_GE(candidates.size(), 2u);
  constexpr unsigned kFrame = 1;
  ctx.miter.register_candidates(candidates, kFrame);

  // Empty selection closes the whole group disjunction: UNSAT.
  std::vector<encode::Lit> as;
  ctx.miter.select_candidates(kFrame, {}, as);
  EXPECT_FALSE(ctx.solver.solve(as));

  // Per-candidate selection answers exactly like assuming the diff literal.
  for (rtlir::StateVarId sv : candidates) {
    const bool direct = ctx.solver.solve({ctx.miter.diff_literal(sv, kFrame)});
    as.clear();
    ctx.miter.select_candidates(kFrame, {sv}, as);
    EXPECT_EQ(ctx.solver.solve(as), direct) << "sv " << sv;
  }

  // Late registration extends the chain without re-encoding old members.
  const std::vector<rtlir::StateVarId> all = s_not_victim(ctx.svt).to_vector();
  ASSERT_GT(all.size(), candidates.size());
  ctx.miter.register_candidates(all, kFrame);
  as.clear();
  ctx.miter.select_candidates(kFrame, {}, as);
  EXPECT_FALSE(ctx.solver.solve(as));
  as.clear();
  ctx.miter.select_candidates(kFrame, all, as);
  EXPECT_TRUE(ctx.solver.solve(as));
}

TEST(IncrementalSweeps, SchedulerSweepsStopGrowingTheStoreAndHitTheCache) {
  // Incremental mode: the first sweep registers the candidates; repeated
  // sweeps are pure assumption selection — zero store growth — and their
  // final chunk refutations (a semantic set, identical across sweeps) come
  // straight from the verdict cache.
  const soc::Soc soc = tiny_soc();
  VerifyOptions options = countermeasure_options();
  options.threads = 2;
  UpecContext ctx(soc, options);
  ASSERT_NE(ctx.scheduler, nullptr);

  const StateSet S = s_not_victim(ctx.svt);
  std::vector<encode::Lit> assumptions = ctx.macros.assumptions(1);
  for (rtlir::StateVarId sv : S.to_vector()) {
    assumptions.push_back(ctx.miter.eq_assumption(sv));
  }

  const ipc::SweepResult r1 = ctx.scheduler->sweep(ctx.miter, assumptions, S.to_vector(), 1);
  const int n1 = ctx.solver.num_vars();
  const ipc::SweepResult r2 = ctx.scheduler->sweep(ctx.miter, assumptions, S.to_vector(), 1);
  const int n2 = ctx.solver.num_vars();

  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.differing, r2.differing);
  EXPECT_EQ(n2, n1) << "second sweep must not grow the store";
  EXPECT_FALSE(r1.unsat_groups.empty());
  for (const auto& g : r1.unsat_groups) {
    // Cores are subsets of what was assumed (selectors included).
    EXPECT_FALSE(g.enabled.empty());
  }
  EXPECT_GT(r2.cache_hits, 0u) << "repeated final refutations must hit the cache";
  EXPECT_GT(r2.retained_learnts + r1.retained_learnts, 0u);
}

// ----------------------------------------------------------------- end to end

TEST(IncrementalSweeps, EngineCachesRepeatedAssumptionQueries) {
  const soc::Soc soc = tiny_soc();
  UpecContext ctx(soc);
  const std::vector<rtlir::StateVarId> candidates = ctx.s_pers.to_vector();
  ctx.miter.register_candidates(candidates, 1);

  std::vector<encode::Lit> as;
  ctx.miter.select_candidates(1, {}, as);  // trivially UNSAT selection

  std::vector<encode::Lit> core1, core2;
  const ipc::CheckResult c1 = ctx.engine.check_assumptions(as, &core1);
  ASSERT_EQ(c1.status, ipc::CheckStatus::Holds);
  EXPECT_EQ(ctx.engine.cache_hits(), 0u);
  EXPECT_EQ(ctx.engine.cache_misses(), 1u);

  const ipc::CheckResult c2 = ctx.engine.check_assumptions(as, &core2);
  ASSERT_EQ(c2.status, ipc::CheckStatus::Holds);
  EXPECT_EQ(ctx.engine.cache_hits(), 1u);
  EXPECT_EQ(core2, core1) << "a hit must replay the original core";
  EXPECT_EQ(c2.conflicts, 0u);
}

TEST(IncrementalSweeps, RerunSeededWithFinalSIsFullyPruned) {
  // After a secure Alg. 1 run, every member of the final inductive S carries
  // a refutation core whose eq dependencies lie inside S itself. Re-running
  // seeded with that S must therefore prune the entire frontier up front and
  // conclude Secure without a single solver conflict.
  const soc::Soc soc = tiny_soc();
  UpecContext ctx(soc, countermeasure_options());
  Alg1Options opts;
  opts.extract_waveform = false;

  const Alg1Result r1 = run_alg1(ctx, opts);
  ASSERT_EQ(r1.verdict, Verdict::Secure);

  Alg1Options rerun = opts;
  rerun.initial_s = r1.final_s;
  const Alg1Result r2 = run_alg1(ctx, rerun);
  EXPECT_EQ(r2.verdict, Verdict::Secure);
  ASSERT_EQ(r2.iterations.size(), 1u);
  EXPECT_EQ(r2.iterations[0].pruned, r1.final_s.size());
  EXPECT_EQ(r2.iterations[0].conflicts, 0u);
  EXPECT_TRUE(r2.final_s == r1.final_s);
  EXPECT_GT(r2.stats.pruned_candidates, 0u);

  const std::string report = render_report(ctx, r2);
  EXPECT_NE(report.find("incremental sweeps:"), std::string::npos) << report;
  EXPECT_NE(report.find("pruned"), std::string::npos) << report;
}

TEST(IncrementalSweeps, ToggleOffMatchesToggleOnAlg1) {
  // The incremental machinery only removes work: frontiers, verdicts and
  // iteration shapes are bit-identical with it on or off, for both verdicts.
  const soc::Soc soc = tiny_soc();
  Alg1Options opts;
  opts.extract_waveform = false;

  for (const bool secure : {true, false}) {
    VerifyOptions on = secure ? countermeasure_options() : VerifyOptions{};
    VerifyOptions off = on;
    off.incremental_sweeps = false;
    off.verdict_cache = false;

    UpecContext ctx_on(soc, on);
    UpecContext ctx_off(soc, off);
    const Alg1Result a = run_alg1(ctx_on, opts);
    const Alg1Result b = run_alg1(ctx_off, opts);
    SCOPED_TRACE(secure ? "secure" : "vulnerable");
    EXPECT_EQ(a.verdict, b.verdict);
    ASSERT_EQ(a.iterations.size(), b.iterations.size());
    for (std::size_t i = 0; i < a.iterations.size(); ++i) {
      EXPECT_EQ(a.iterations[i].s_size, b.iterations[i].s_size) << "iteration " << i;
      EXPECT_EQ(a.iterations[i].removed, b.iterations[i].removed) << "iteration " << i;
      EXPECT_EQ(a.iterations[i].status, b.iterations[i].status) << "iteration " << i;
    }
    EXPECT_EQ(a.persistent_hits, b.persistent_hits);
    EXPECT_EQ(a.full_cex, b.full_cex);
    EXPECT_TRUE(a.final_s == b.final_s);
    // Legacy mode reports no incremental work avoidance.
    EXPECT_EQ(b.stats.pruned_candidates, 0u);
    EXPECT_EQ(b.stats.cache_hits, 0u);
  }
}

} // namespace
} // namespace upec
