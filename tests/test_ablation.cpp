// Ablation studies and the invariant miner.
//
//  - Round-robin arbitration (vs the default fixed priority): the attack
//    class persists, and the rotating pointer itself is persistent
//    arbitration state flagged for inspection by the classifier.
//  - Hardware private guard: equivalent to the firmware countermeasure.
//  - Invariant miner: proposes register-constant candidates from random
//    simulation and discharges them inductively; on the guarded SoC it
//    proves the private-crossbar routing invariant automatically.
#include <gtest/gtest.h>

#include "sim/task.h"
#include "upec/miner.h"
#include "upec/report.h"

namespace upec {
namespace {

soc::Soc rr_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  cfg.arbiter = soc::ArbiterKind::RoundRobin;
  return soc::build_pulpissimo(cfg);
}

TEST(RoundRobin, SocStillWorks) {
  const soc::Soc soc = rr_soc();
  EXPECT_EQ(soc.design->validate(), "");
  sim::Simulator sim(*soc.design);
  sim::BusDriver cpu(sim);
  const std::uint32_t ram = soc.map.region(soc::AddrMap::kPubRam).base;
  cpu.run_op(sim::store(ram + 4, 0xabcd1234));
  EXPECT_EQ(cpu.run_op(sim::load(ram + 4)), 0xabcd1234u);
}

TEST(RoundRobin, FairnessRotatesGrants) {
  // Under continuous CPU traffic, a fixed-priority arbiter starves the HWPE;
  // round-robin must interleave.
  const soc::Soc rr = rr_soc();
  soc::SocConfig fcfg;
  fcfg.pub_ram_words = 16;
  fcfg.priv_ram_words = 8;
  const soc::Soc fixed = soc::build_pulpissimo(fcfg);

  auto progress_under_full_contention = [](const soc::Soc& soc) {
    sim::Simulator sim(*soc.design);
    sim::BusDriver cpu(sim);
    const std::uint32_t ram = soc.map.region(soc::AddrMap::kPubRam).base;
    const std::uint32_t hwpe = soc.map.region(soc::AddrMap::kHwpe).base;
    cpu.run(sim::TaskScript{sim::store(hwpe + 0x0, ram), sim::store(hwpe + 0x4, 16),
                            sim::store(hwpe + 0x8, 1)});
    // Saturate the public RAM with CPU stores: every cycle, same slave.
    sim.set_input("soc.cpu.req", 1);
    sim.set_input("soc.cpu.addr", ram + 0x3c);
    sim.set_input("soc.cpu.we", 1);
    sim.set_input("soc.cpu.wdata", 1);
    for (int i = 0; i < 24; ++i) sim.step();
    sim.set_input("soc.cpu.req", 0);
    return sim.output(soc::probe::kHwpeProgress);
  };

  const std::uint64_t fixed_progress = progress_under_full_contention(fixed);
  const std::uint64_t rr_progress = progress_under_full_contention(rr);
  EXPECT_EQ(fixed_progress, 0u) << "fixed priority starves the HWPE under CPU saturation";
  EXPECT_GT(rr_progress, 0u) << "round-robin must be fair to the HWPE";
}

TEST(RoundRobin, AttackClassPersists) {
  // Fair arbitration does not remove the channel: UPEC-SSC still finds
  // victim-dependent persistent state.
  const soc::Soc soc = rr_soc();
  UpecContext ctx(soc);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result result = run_alg1(ctx, opts);
  EXPECT_EQ(result.verdict, Verdict::Vulnerable) << render_report(ctx, result);
}

TEST(RoundRobin, PointerFlaggedForInspection) {
  const soc::Soc soc = rr_soc();
  UpecContext ctx(soc);
  bool found = false;
  for (rtlir::StateVarId sv = 0; sv < ctx.svt.size(); ++sv) {
    if (ctx.svt.name(sv).find("rr_ptr_q") != std::string::npos) {
      found = true;
      EXPECT_EQ(ctx.pers.classify(sv), Persistence::Unknown) << ctx.svt.name(sv);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Miner, FindsAndProvesGuardedRoutingInvariant) {
  // On the hardware-guarded SoC the DMA can never reach the private crossbar,
  // so its response routing constantly points at the CPU. The miner must
  // discover this and prove it inductively — the invariant the firmware
  // countermeasure otherwise supplies by hand.
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  cfg.hw_private_guard = true;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  const rtlir::StateVarTable svt(*soc.design);

  MinerOptions options;
  options.cycles = 256;
  const std::vector<MinedInvariant> mined = mine_constant_invariants(*soc.design, svt, options);

  bool found_rsel = false;
  for (const MinedInvariant& m : mined) {
    // Exact register (not the q2 pipeline stage, which is only inductive in
    // conjunction with this one).
    if (m.description.rfind("soc.xbar_priv.s0.rsel_master_q ==", 0) == 0) {
      found_rsel = true;
      EXPECT_TRUE(m.proven) << m.description;
      EXPECT_EQ(m.value, 0u);
    }
  }
  EXPECT_TRUE(found_rsel) << "miner should discover the private routing invariant";
}

TEST(Miner, DoesNotProposeLiveRegisters) {
  // With address-pool-biased stimulus, the bus fabric gets exercised, so the
  // crossbar request latches must not survive as constant candidates.
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  const rtlir::StateVarTable svt(*soc.design);
  MinerOptions options;
  options.cycles = 512;
  options.prove = false;
  for (const soc::Region& r : soc.map.regions()) {
    options.input_pool["soc.cpu.addr"].push_back(r.base);
    options.input_pool["soc.cpu.addr"].push_back(r.base + 4);
  }
  options.input_pool["soc.cpu.req"] = {1};
  const std::vector<MinedInvariant> mined = mine_constant_invariants(*soc.design, svt, options);
  for (const MinedInvariant& m : mined) {
    EXPECT_EQ(m.description.find("sreq_q"), std::string::npos) << m.description;
  }
}

TEST(Miner, ProvenInvariantsHoldInProofs) {
  // Every proven mined invariant can be assumed in a UPEC run without
  // contradicting the reachable space: the baseline verdict is unchanged.
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  cfg.hw_private_guard = true;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  const rtlir::StateVarTable svt(*soc.design);
  const std::vector<MinedInvariant> mined =
      mine_constant_invariants(*soc.design, svt, MinerOptions{.cycles = 128});
  std::size_t proven = 0;
  for (const MinedInvariant& m : mined) proven += m.proven ? 1 : 0;
  EXPECT_GT(proven, 0u);
}

} // namespace
} // namespace upec
