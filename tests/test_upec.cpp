// The headline results of the paper, as executable checks:
//  (1) UPEC-SSC on the baseline SoC finds the timer-free BUSted variant —
//      victim-dependent differences reach persistent, attacker-accessible
//      HWPE/memory state (Sec 4.1),
//  (2) the unrolled procedure needs k=2 to expose the HWPE delay explicitly,
//  (3) with the Sec 4.2 countermeasure (victim range in the private memory
//      device + DMA firmware constraints) the SoC is proven secure, in the
//      same three-iteration shape the paper reports,
//  (4) the firmware-constraint invariants are themselves inductive.
#include <gtest/gtest.h>

#include <memory>

#include "ipc/invariant.h"
#include "upec/report.h"

namespace upec {
namespace {

soc::Soc small_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

// S_pers restriction reproducing exactly the Sec 4.1 scenario: accelerator +
// memory device (no timer, no DMA status involved).
VerifyOptions hwpe_scenario_options(const soc::Soc& soc) {
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  return options;
}

TEST(UpecSsc, BaselineSocIsVulnerable) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc);
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Vulnerable) << render_report(ctx, result);
  EXPECT_FALSE(result.persistent_hits.empty());
  // Every reported hit must be persistent + attacker-accessible per Def. 2.
  for (rtlir::StateVarId sv : result.persistent_hits) {
    EXPECT_TRUE(ctx.pers.in_s_pers(sv)) << ctx.svt.name(sv);
  }
}

TEST(UpecSsc, VulnerabilityNamesHwpeOrMemoryState) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, hwpe_scenario_options(soc));
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Vulnerable) << render_report(ctx, result);
  for (rtlir::StateVarId sv : result.persistent_hits) {
    const std::string name = ctx.svt.name(sv);
    EXPECT_TRUE(name.find(".hwpe.") != std::string::npos ||
                name.find("pub_ram.mem[") != std::string::npos)
        << name;
  }
  // The HWPE leak needs one propagation step through the staged interconnect:
  // iteration 1 removes only transient state, the hit lands in iteration 2.
  ASSERT_GE(result.iterations.size(), 2u);
  EXPECT_EQ(result.iterations.front().pers_hits, 0u);
}

TEST(UpecSsc, UnrolledDetectsAtK2WithExplicitTrace) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, hwpe_scenario_options(soc));
  const Alg2Result result = run_alg2(ctx);
  ASSERT_EQ(result.verdict, Verdict::Vulnerable) << render_report(ctx, result);
  // "We unrolled for 2 clock cycles to observe the delay of the HWPE memory
  // access" — at k=1 only transient interconnect state can differ.
  EXPECT_EQ(result.final_k, 2u);
  ASSERT_TRUE(result.waveform.has_value());
  // The explicit counterexample shows at least one diverging signal.
  bool diverges = false;
  for (const auto& sig : result.waveform->signals) diverges |= sig.diverges();
  EXPECT_TRUE(diverges);
}

TEST(UpecSsc, CountermeasureProvesSecure) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, countermeasure_options());
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Secure) << render_report(ctx, result);
  // Paper (Sec 4.2): "After 3 iterations, the procedure proved the system to
  // be secure."
  EXPECT_EQ(result.iterations.size(), 3u);
  // The final set is inductive and still contains all of S_pers.
  for (rtlir::StateVarId sv : ctx.s_pers.to_vector()) {
    EXPECT_TRUE(result.final_s.contains(sv)) << ctx.svt.name(sv);
  }
}

TEST(UpecSsc, CountermeasureSecureUnderUnrolling) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, countermeasure_options());
  const Alg2Result result = run_alg2(ctx);
  EXPECT_EQ(result.verdict, Verdict::Secure) << render_report(ctx, result);
  ASSERT_TRUE(result.induction.has_value());
  EXPECT_EQ(result.induction->verdict, Verdict::Secure);
}

TEST(UpecSsc, HardwareGuardAlsoSecure) {
  // Ablation: the hardware clamp (DMA physically cut off the private xbar)
  // must be as secure as the firmware-constraint variant.
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  cfg.hw_private_guard = true;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  UpecContext ctx(soc, countermeasure_options());
  const Alg1Result result = run_alg1(ctx);
  EXPECT_EQ(result.verdict, Verdict::Secure) << render_report(ctx, result);
}

TEST(UpecSsc, VictimRangeInPublicRamDefeatsCountermeasure) {
  // Negative control: firmware constraints alone do not help if the
  // security-critical region stays in the public RAM.
  const soc::Soc soc = small_soc();
  VerifyOptions options = countermeasure_options();
  options.macros.victim_regions = {soc::AddrMap::kPubRam};
  UpecContext ctx(soc, options);
  const Alg1Result result = run_alg1(ctx);
  EXPECT_EQ(result.verdict, Verdict::Vulnerable);
}

// The derived invariant used by the countermeasure proof must itself be
// inductive: legal DMA configurations keep the DMA off the private crossbar,
// hence the private response routing never points at it (Sec 3.4's
// "invariants are straightforward to formulate").
TEST(UpecSsc, FirmwareConstraintInvariantIsInductive) {
  const soc::Soc soc = small_soc();
  const rtlir::Design& d = *soc.design;
  rtlir::StateVarTable svt(d);

  const soc::Region& pub = soc.map.region(soc::AddrMap::kPubRam);
  const soc::Region& dma_region = soc.map.region(soc::AddrMap::kDma);
  const auto src_reg = static_cast<std::uint32_t>(d.find_register("soc.dma.src_q"));
  const auto dst_reg = static_cast<std::uint32_t>(d.find_register("soc.dma.dst_q"));
  const auto rsel1 = static_cast<std::uint32_t>(d.find_register("soc.xbar_priv.s0.rsel_master_q"));
  const auto rsel2 =
      static_cast<std::uint32_t>(d.find_register("soc.xbar_priv.s0.rsel_master_q2"));
  const auto cfg_req = static_cast<std::uint32_t>(d.find_register("soc.xbar_pub.s3.sreq_q"));
  const auto cfg_addr = static_cast<std::uint32_t>(d.find_register("soc.xbar_pub.s3.saddr_q"));
  const auto cfg_we = static_cast<std::uint32_t>(d.find_register("soc.xbar_pub.s3.swe_q"));
  const auto cfg_wdata = static_cast<std::uint32_t>(d.find_register("soc.xbar_pub.s3.swdata_q"));

  std::uint32_t in_req = 0, in_addr = 0, in_we = 0, in_wdata = 0;
  for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
    const std::string& n = d.net(d.inputs()[i].net).name;
    if (n == "soc.cpu.req") in_req = i;
    if (n == "soc.cpu.addr") in_addr = i;
    if (n == "soc.cpu.we") in_we = i;
    if (n == "soc.cpu.wdata") in_wdata = i;
  }

  const soc::Region& priv = soc.map.region(soc::AddrMap::kPrivRam);
  const std::uint32_t safe_low = priv.base - (0x10000u << 2);

  ipc::Invariant inv;
  inv.name = "dma-legal-config-and-private-rsel";
  inv.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst,
                  unsigned frame) -> encode::Lit {
    // Same legality predicate the countermeasure assumptions use: the pointer
    // can never generate an address inside the private RAM.
    auto legal_dma_ptr = [&](const encode::Bits& v) {
      const encode::Lit below = cnf.v_ult(v, cnf.constant_vec(BitVec(32, safe_low)));
      const encode::Lit ge = ~cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.base)));
      const encode::Lit lt = cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.end())));
      return cnf.or2(below, cnf.and2(ge, lt));
    };
    // State part: legal config, in-flight (staged) config writes legal, and
    // routing never points at the DMA. The staged predicate matches the
    // peripheral's actual decode (offset bits only — the slave does not
    // re-check the region).
    const encode::Bits sreq = inst.reg_at(frame, cfg_req);
    const encode::Bits saddr = inst.reg_at(frame, cfg_addr);
    const encode::Bits swe = inst.reg_at(frame, cfg_we);
    const encode::Bits swdata = inst.reg_at(frame, cfg_wdata);
    const encode::Bits soff = cnf.v_slice(saddr, 2, 4);
    const encode::Lit s_off01 =
        cnf.or2(cnf.v_eq(soff, cnf.constant_vec(BitVec(4, 0))),
                cnf.v_eq(soff, cnf.constant_vec(BitVec(4, 1))));
    const encode::Lit staged_write = cnf.and_all({sreq[0], swe[0], s_off01});
    const encode::Lit staged_legal = cnf.or2(~staged_write, legal_dma_ptr(swdata));
    return cnf.and_all(
        {legal_dma_ptr(inst.reg_at(frame, src_reg)), legal_dma_ptr(inst.reg_at(frame, dst_reg)),
         staged_legal, ~inst.reg_at(frame, rsel1)[0], ~inst.reg_at(frame, rsel2)[0]});
  };
  // Environment constraint (firmware legality of configuration writes): the
  // CPU never stores an illegal pointer into the DMA SRC/DST registers. This
  // conditions the step proof; it is a firmware-development obligation, not a
  // hardware property.
  inv.constrain = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst,
                      unsigned frame) -> encode::Lit {
    auto legal_dma_ptr = [&](const encode::Bits& v) {
      const encode::Lit below = cnf.v_ult(v, cnf.constant_vec(BitVec(32, safe_low)));
      const encode::Lit ge = ~cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.base)));
      const encode::Lit lt = cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.end())));
      return cnf.or2(below, cnf.and2(ge, lt));
    };
    const encode::Bits req = inst.input_at(frame, in_req);
    const encode::Bits addr = inst.input_at(frame, in_addr);
    const encode::Bits we = inst.input_at(frame, in_we);
    const encode::Bits wdata = inst.input_at(frame, in_wdata);
    const encode::Lit in_region =
        cnf.and2(~cnf.v_ult(addr, cnf.constant_vec(BitVec(32, dma_region.base))),
                 cnf.v_ult(addr, cnf.constant_vec(BitVec(32, dma_region.end()))));
    const encode::Bits off = cnf.v_slice(addr, 2, 4);
    const encode::Lit off01 = cnf.or2(cnf.v_eq(off, cnf.constant_vec(BitVec(4, 0))),
                                      cnf.v_eq(off, cnf.constant_vec(BitVec(4, 1))));
    const encode::Lit cfg_write = cnf.and_all({req[0], we[0], in_region, off01});
    return cnf.or2(~cfg_write, legal_dma_ptr(wdata));
  };

  EXPECT_EQ(ipc::check_inductive(d, svt, inv), "");
}

TEST(UpecSsc, PersistenceClassificationShape) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc);
  // Spot-check the Def. 2 classification.
  auto classify = [&](const std::string& name) {
    for (rtlir::StateVarId sv = 0; sv < ctx.svt.size(); ++sv) {
      if (ctx.svt.name(sv) == name) return ctx.pers.classify(sv);
    }
    ADD_FAILURE() << "no such state var: " << name;
    return Persistence::Unknown;
  };
  EXPECT_EQ(classify("soc.hwpe.progress_q"), Persistence::PersistentAccessible);
  EXPECT_EQ(classify("soc.timer.count_q"), Persistence::PersistentAccessible);
  EXPECT_EQ(classify("soc.pub_ram.mem[0]"), Persistence::PersistentAccessible);
  EXPECT_EQ(classify("soc.priv_ram.mem[0]"), Persistence::PersistentInaccessible);
  EXPECT_EQ(classify("soc.xbar_pub.s0.saddr_q"), Persistence::Transient);
  EXPECT_EQ(classify("soc.pub_ram.rdata_q"), Persistence::Transient);
  EXPECT_EQ(classify("soc.hwpe.stream_stage_q"), Persistence::Transient);
  EXPECT_EQ(classify("soc.dma.rlatch_q"), Persistence::Unknown);
}


TEST(UpecSsc, TransienceAuditSeparatesTrivialFromConditional) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc);
  const TransienceAudit audit = audit_transients(ctx.svt, ctx.pers);
  auto names = [&](const std::vector<rtlir::StateVarId>& ids) {
    std::string out;
    for (auto id : ids) out += ctx.svt.name(id) + ";";
    return out;
  };
  const std::string trivial = names(audit.trivially_transient);
  const std::string conditional = names(audit.conditionally_written);
  // Request-valid latches and pulse registers are rewritten every cycle.
  EXPECT_NE(trivial.find("xbar_pub.s0.sreq_q"), std::string::npos) << trivial;
  EXPECT_NE(trivial.find("hwpe.stream_stage_q"), std::string::npos) << trivial;
  EXPECT_NE(trivial.find("dma.done_q"), std::string::npos) << trivial;
  // Payload latches hold their value while idle: flagged for justification
  // (they are inert whenever their trivially-transient valid bit is low).
  EXPECT_NE(conditional.find("xbar_pub.s0.saddr_q"), std::string::npos) << conditional;
  EXPECT_NE(conditional.find("pub_ram.rdata_q"), std::string::npos) << conditional;
}

} // namespace
} // namespace upec
