// encode/coi — static cone-of-influence analysis. Covers pruning shape (the
// cone crosses exactly k register boundaries, independent logic stays out,
// memories enter through their write ports) and pruning *correctness*: state
// outside the k-cycle cone of a property's roots cannot change the property's
// SAT answer, so clamping it to arbitrary constants is sound. The lazy
// unroller's dynamic reduction must also never materialize more nets than the
// static cone predicts.
#include <gtest/gtest.h>

#include <algorithm>

#include "encode/coi.h"
#include "encode/miter.h"
#include "encode/unroller.h"
#include "rtlir/builder.h"
#include "sat/solver.h"

namespace upec::encode {
namespace {

using rtlir::NetId;
using rtlir::StateVarId;

// x -> r1 -> r2 -> r3 chain plus an independent toggler z (z_q <- ~z_q).
struct ChainDesign {
  rtlir::Design design;
  std::unique_ptr<rtlir::StateVarTable> svt;
  NetId x;
  rtlir::RegHandle r1, r2, r3, z;

  ChainDesign() {
    rtlir::Builder b(design);
    x = b.input("x", 4);
    r1 = b.reg("r1_q", 4);
    r2 = b.reg("r2_q", 4);
    r3 = b.reg("r3_q", 4);
    z = b.reg("z_q", 4);
    b.connect(r1, x);
    b.connect(r2, r1.q);
    b.connect(r3, r2.q);
    b.connect(z, b.not_(z.q));
    svt = std::make_unique<rtlir::StateVarTable>(design);
  }

  std::vector<StateVarId> cone_vars(unsigned k) const {
    CoiResult coi = cone_of_influence(design, *svt, {r3.q}, k);
    std::sort(coi.state_vars.begin(), coi.state_vars.end());
    return coi.state_vars;
  }
};

TEST(Coi, ChainCrossesOneRegisterBoundaryPerCycle) {
  ChainDesign d;
  const StateVarId sv1 = d.svt->of_register(d.r1.index);
  const StateVarId sv2 = d.svt->of_register(d.r2.index);
  const StateVarId sv3 = d.svt->of_register(d.r3.index);

  std::vector<StateVarId> k0{sv3};
  std::vector<StateVarId> k1{sv2, sv3};
  std::vector<StateVarId> k2{sv1, sv2, sv3};
  std::sort(k0.begin(), k0.end());
  std::sort(k1.begin(), k1.end());
  std::sort(k2.begin(), k2.end());
  EXPECT_EQ(d.cone_vars(0), k0);
  EXPECT_EQ(d.cone_vars(1), k1);
  EXPECT_EQ(d.cone_vars(2), k2);
  // Saturation: the whole chain is in the cone, z never is.
  EXPECT_EQ(d.cone_vars(5), k2);
}

TEST(Coi, MonotoneInKAndBoundedByDesign) {
  ChainDesign d;
  std::size_t prev_nets = 0;
  for (unsigned k = 0; k <= 4; ++k) {
    const CoiResult coi = cone_of_influence(d.design, *d.svt, {d.r3.q}, k);
    EXPECT_LE(prev_nets, coi.reachable_nets) << "cone must grow monotonically with k";
    EXPECT_LE(coi.reachable_nets, coi.total_nets);
    prev_nets = coi.reachable_nets;
    const auto vars = d.cone_vars(k);
    for (StateVarId sv : d.cone_vars(k > 0 ? k - 1 : 0)) {
      EXPECT_TRUE(std::find(vars.begin(), vars.end(), sv) != vars.end());
    }
  }
}

TEST(Coi, MemoriesEnterThroughWritePorts) {
  rtlir::Design design;
  rtlir::Builder b(design);
  const NetId waddr = b.input("waddr", 2);
  const NetId wdata = b.input("wdata", 8);
  const rtlir::MemHandle mem = b.memory("ram", 4, 8);
  b.mem_write(mem, waddr, wdata, b.one(1));
  const rtlir::RegHandle out = b.reg("out_q", 8);
  b.connect(out, b.mem_read(mem, b.zero(2)));
  const rtlir::StateVarTable svt(design);

  // k=0: only the output register. k=1: the read crosses into the memory,
  // which contributes every word (word-level precision is the job of the
  // symbolic exemption machinery, not the static cone).
  CoiResult k0 = cone_of_influence(design, svt, {out.q}, 0);
  CoiResult k1 = cone_of_influence(design, svt, {out.q}, 1);
  EXPECT_EQ(k0.state_vars.size(), 1u);
  EXPECT_EQ(k1.state_vars.size(), 1u + 4u);
}

// Pruning correctness: clamping out-of-cone state to arbitrary constants
// must not change any property over the roots. Encode "r3 at frame k equals
// value v" twice — once free, once with z_q (outside the cone) clamped — and
// compare SAT verdicts for every v.
TEST(Coi, OutOfConeStateCannotAffectPropertySat) {
  for (const std::uint64_t clamp : {0ull, 0xFull, 0x5ull}) {
    for (unsigned v = 0; v < 16; ++v) {
      bool results[2];
      for (const bool clamp_z : {false, true}) {
        ChainDesign d;
        sat::Solver solver;
        CnfBuilder cnf(solver);
        UnrolledInstance inst(cnf, d.design, *d.svt, "coi");
        const Bits& root = inst.net_at(2, d.r3.q);
        if (clamp_z) {
          const Bits& z0 = inst.state_at(0, d.svt->of_register(d.z.index));
          for (std::size_t i = 0; i < z0.size(); ++i) {
            solver.add_clause(clamp >> i & 1 ? z0[i] : ~z0[i]);
          }
        }
        const Lit target = cnf.v_eq(root, cnf.constant_vec(BitVec(4, v)));
        results[clamp_z ? 1 : 0] = solver.solve({target});
      }
      EXPECT_EQ(results[0], results[1]) << "v=" << v << " clamp=" << clamp;
    }
  }
}

// The lazy unroller's dynamic reduction is bounded by the static cone: it
// never materializes a net image outside the k-cycle cone of what was asked.
TEST(Coi, LazyEncoderMaterializesAtMostTheStaticCone) {
  ChainDesign d;
  sat::Solver solver;
  CnfBuilder cnf(solver);
  UnrolledInstance inst(cnf, d.design, *d.svt, "coi");
  inst.net_at(2, d.r3.q);
  const CoiResult coi = cone_of_influence(d.design, *d.svt, {d.r3.q}, 2);
  EXPECT_LE(inst.encoded_net_images(), coi.reachable_nets);
  EXPECT_LT(coi.reachable_nets, coi.total_nets) << "z's toggler logic must stay out";
}

// COI-reduced vs full encoding agree on the miter-level SAT/UNSAT questions
// Alg. 1 asks: restricting the equivalence assumptions to the cone of the
// checked variable does not change the verdict.
TEST(Coi, ReducedAssumptionSetAgreesWithFullOnMiterQueries) {
  ChainDesign d;

  auto check = [&](bool only_cone_assumptions) {
    sat::Solver solver;
    encode::Miter m(solver, d.design, *d.svt, MiterOptions{});
    const StateVarId target = d.svt->of_register(d.r2.index);
    const CoiResult coi = cone_of_influence(d.design, *d.svt, {d.r2.q}, 1);
    std::vector<Lit> assumptions;
    for (StateVarId sv = 0; sv < d.svt->size(); ++sv) {
      const bool in_cone =
          std::find(coi.state_vars.begin(), coi.state_vars.end(), sv) != coi.state_vars.end();
      if (!only_cone_assumptions || in_cone) assumptions.push_back(m.eq_assumption(sv));
    }
    assumptions.push_back(m.diff_literal(target, 1));
    return solver.solve(assumptions);
  };
  // r2@1 = r1@0 and r1 is assumed equal either way: UNSAT in both encodings.
  EXPECT_FALSE(check(false));
  EXPECT_FALSE(check(true));
}

} // namespace
} // namespace upec::encode
