#include "util/bitvec.h"

#include <gtest/gtest.h>

#include "util/rng.h"

namespace upec {
namespace {

TEST(BitVec, MaskingOnConstruction) {
  EXPECT_EQ(BitVec(4, 0xff).value(), 0xfu);
  EXPECT_EQ(BitVec(64, ~0ULL).value(), ~0ULL);
  EXPECT_EQ(BitVec(1, 2).value(), 0u);
}

TEST(BitVec, BitAccess) {
  const BitVec v(8, 0b10110010);
  EXPECT_FALSE(v.bit(0));
  EXPECT_TRUE(v.bit(1));
  EXPECT_TRUE(v.bit(7));
  EXPECT_EQ(v.with_bit(0, true).value(), 0b10110011u);
  EXPECT_EQ(v.with_bit(7, false).value(), 0b00110010u);
}

TEST(BitVec, Equality) {
  EXPECT_EQ(BitVec(8, 5), BitVec(8, 5));
  EXPECT_NE(BitVec(8, 5), BitVec(9, 5));
  EXPECT_NE(BitVec(8, 5), BitVec(8, 6));
}

TEST(BitVec, MaskHelper) {
  EXPECT_EQ(BitVec::mask(0), 0u);
  EXPECT_EQ(BitVec::mask(1), 1u);
  EXPECT_EQ(BitVec::mask(32), 0xffffffffull);
  EXPECT_EQ(BitVec::mask(64), ~0ULL);
}

TEST(BitVec, HexRendering) {
  EXPECT_EQ(BitVec(8, 0xab).to_hex(), "8'hab");
  EXPECT_EQ(BitVec(12, 0xab).to_hex(), "12'h0ab");
  EXPECT_EQ(BitVec(1, 1).to_bin(), "1'b1");
  EXPECT_EQ(BitVec(4, 0b1010).to_bin(), "4'b1010");
}

TEST(Rng, Deterministic) {
  Xoshiro256 a(42), b(42), c(43);
  EXPECT_EQ(a.next(), b.next());
  EXPECT_EQ(a.next(), b.next());
  Xoshiro256 a2(42);
  EXPECT_NE(a2.next(), c.next());
}

TEST(Rng, GoldenSequenceIsStableAcrossRuns) {
  // Pinned outputs of xoshiro256** with splitmix64 seeding from seed 42.
  // Same-process equality (above) can't catch a generator change that shifts
  // every run identically; these literals do. Every randomized test in the
  // tree seeds explicitly, so this is what makes them reproducible run to
  // run and machine to machine.
  const std::uint64_t golden[] = {
      0x15780b2e0c2ec716ULL, 0x6104d9866d113a7eULL, 0xae17533239e499a1ULL,
      0xecb8ad4703b360a1ULL, 0xfde6dc7fe2ec5e64ULL,
  };
  Xoshiro256 rng(42);
  for (std::uint64_t expected : golden) EXPECT_EQ(rng.next(), expected);

  // The default seed is itself fixed, so even unseeded construction is
  // deterministic (no time()/random_device anywhere).
  Xoshiro256 def;
  EXPECT_EQ(def.next(), 0x422ea740d0977210ULL);
}

TEST(Rng, DerivedDrawsAreReproducible) {
  // below() and chance() are pure functions of the stream: two generators
  // with the same seed must agree on long mixed-draw sequences.
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(a.below(97), b.below(97));
    EXPECT_EQ(a.chance(0.3), b.chance(0.3));
  }
}

TEST(Rng, BelowIsBounded) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

} // namespace
} // namespace upec
