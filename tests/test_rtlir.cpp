#include <gtest/gtest.h>

#include "rtlir/analyze.h"
#include "rtlir/builder.h"
#include "rtlir/fold.h"
#include "rtlir/pretty.h"
#include "util/rng.h"

namespace upec::rtlir {
namespace {

TEST(Builder, ScopedNames) {
  Design d;
  Builder b(d);
  b.push_scope("soc");
  {
    Builder::Scope s(b, "ip");
    const RegHandle r = b.reg("ctrl_q", 8);
    EXPECT_EQ(d.net(r.q).name, "soc.ip.ctrl_q");
  }
  EXPECT_EQ(b.scoped("x"), "soc.x");
}

TEST(Builder, ConstantDeduplication) {
  Design d;
  Builder b(d);
  const NetId a = b.constant(32, 42);
  const NetId c = b.constant(32, 42);
  const NetId e = b.constant(16, 42);
  EXPECT_EQ(a, c);
  EXPECT_NE(a, e);
}

TEST(Builder, WidthPropagation) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 8);
  const NetId y = b.input("y", 8);
  EXPECT_EQ(d.width(b.add(x, y)), 8u);
  EXPECT_EQ(d.width(b.eq(x, y)), 1u);
  EXPECT_EQ(d.width(b.concat(x, y)), 16u);
  EXPECT_EQ(d.width(b.slice(x, 6, 3)), 4u);
  EXPECT_EQ(d.width(b.zext(x, 20)), 20u);
  EXPECT_EQ(d.width(b.red_or(x)), 1u);
}

TEST(Builder, ResizeBothDirections) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 8);
  EXPECT_EQ(d.width(b.resize(x, 4)), 4u);
  EXPECT_EQ(d.width(b.resize(x, 8)), 8u);
  EXPECT_EQ(d.width(b.resize(x, 16)), 16u);
}

TEST(Validate, CleanDesign) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 4);
  const RegHandle r = b.reg("r_q", 4);
  b.connect(r, b.add(r.q, x));
  EXPECT_EQ(d.validate(), "");
}

TEST(Validate, ReportsUnconnectedRegister) {
  Design d;
  Builder b(d);
  b.reg("dangling_q", 4);
  EXPECT_NE(d.validate().find("dangling_q"), std::string::npos);
}

TEST(Validate, ReportsWidthMismatch) {
  Design d;
  Builder b(d);
  const RegHandle r = b.reg("r_q", 4);
  // Bypass builder checks by connecting through the design directly.
  d.connect_register(r.index, b.input("x", 8), kNullNet);
  EXPECT_NE(d.validate().find("width"), std::string::npos);
}

TEST(StateVars, EnumerationAndNames) {
  Design d;
  Builder b(d);
  b.push_scope("top");
  const RegHandle r = b.reg("a_q", 4);
  b.connect(r, r.q);
  const MemHandle m = b.memory("ram", 4, 8);
  b.mem_write(m, b.zero(2), b.zero(8), b.zero(1));

  StateVarTable svt(d);
  ASSERT_EQ(svt.size(), 5u); // 1 register + 4 memory words
  EXPECT_EQ(svt.name(svt.of_register(r.index)), "top.a_q");
  EXPECT_EQ(svt.name(svt.of_mem_word(m.index, 2)), "top.ram[2]");
  EXPECT_EQ(svt.width(svt.of_mem_word(m.index, 0)), 8u);
  EXPECT_EQ(svt.ids_with_prefix("top.ram").size(), 4u);
  EXPECT_EQ(svt.ids_with_prefix("top.").size(), 5u);
}

TEST(Topo, OrdersChains) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 4);
  NetId cur = x;
  for (int i = 0; i < 10; ++i) cur = b.add_const(cur, 1);
  bool cyclic = true;
  const auto order = topo_order_cells(d, &cyclic);
  EXPECT_FALSE(cyclic);
  // Every cell must appear after its producer.
  std::vector<int> pos(d.cells().size(), -1);
  for (std::size_t i = 0; i < order.size(); ++i) pos[order[i]] = static_cast<int>(i);
  for (std::size_t ci = 0; ci < d.cells().size(); ++ci) {
    for (NetId operand : {d.cells()[ci].a, d.cells()[ci].b, d.cells()[ci].c}) {
      if (operand != kNullNet && d.net(operand).kind == NetKind::Cell) {
        EXPECT_LT(pos[d.net(operand).payload], pos[ci]);
      }
    }
  }
}

TEST(Fanin, StopsAtRegisters) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 4);
  const RegHandle r = b.reg("r_q", 4);
  const NetId sum = b.add(r.q, x);
  b.connect(r, sum);
  const NetId downstream = b.add_const(r.q, 3);

  const auto cone = comb_fanin(d, {downstream});
  EXPECT_TRUE(cone[downstream]);
  EXPECT_TRUE(cone[r.q]);
  EXPECT_FALSE(cone[sum]) << "cone must not cross the register boundary";
  EXPECT_FALSE(cone[x]);
}

TEST(Fold, PropagatesConstants) {
  Design d;
  Builder b(d);
  const NetId k = b.add(b.constant(8, 3), b.constant(8, 4));
  const NetId x = b.input("x", 8);
  const NetId masked = b.and_(x, b.zero(8)); // = 0
  const NetId sel = b.mux(b.one(1), k, x);   // = 7
  const auto vals = fold_constants(d);
  ASSERT_TRUE(vals[k].has_value());
  EXPECT_EQ(vals[k]->value(), 7u);
  ASSERT_TRUE(vals[masked].has_value());
  EXPECT_EQ(vals[masked]->value(), 0u);
  ASSERT_TRUE(vals[sel].has_value());
  EXPECT_EQ(vals[sel]->value(), 7u);
  EXPECT_FALSE(vals[x].has_value());
}

TEST(Fold, MuxSameBranches) {
  Design d;
  Builder b(d);
  const NetId s = b.input("s", 1);
  const NetId k = b.constant(4, 9);
  const NetId m = b.mux(s, k, k);
  const auto vals = fold_constants(d);
  ASSERT_TRUE(vals[m].has_value());
  EXPECT_EQ(vals[m]->value(), 9u);
}

// Property-style check: eval_cell semantics for shifts at boundary amounts.
class ShiftSemantics : public ::testing::TestWithParam<unsigned> {};

TEST_P(ShiftSemantics, ShiftsAtOrAboveWidthYieldZero) {
  const unsigned sh = GetParam();
  CellNode c;
  c.op = Op::Shl;
  const BitVec a(8, 0xff);
  const BitVec amount(8, sh);
  const BitVec r = eval_cell(c, a, amount, BitVec(1, 0), 8);
  if (sh >= 8) {
    EXPECT_EQ(r.value(), 0u);
  } else {
    EXPECT_EQ(r.value(), (0xffu << sh) & 0xffu);
  }
  CellNode c2;
  c2.op = Op::Lshr;
  const BitVec r2 = eval_cell(c2, a, amount, BitVec(1, 0), 8);
  if (sh >= 8) {
    EXPECT_EQ(r2.value(), 0u);
  } else {
    EXPECT_EQ(r2.value(), 0xffu >> sh);
  }
}

INSTANTIATE_TEST_SUITE_P(Amounts, ShiftSemantics, ::testing::Values(0u, 1u, 7u, 8u, 9u, 200u));

TEST(Stats, CountsMatch) {
  Design d;
  Builder b(d);
  const RegHandle r = b.reg("r_q", 16);
  b.connect(r, r.q);
  const MemHandle m = b.memory("ram", 8, 32);
  b.mem_write(m, b.zero(3), b.zero(32), b.zero(1));
  const DesignStats s = design_stats(d);
  EXPECT_EQ(s.registers, 1u);
  EXPECT_EQ(s.mem_words, 8u);
  EXPECT_EQ(s.state_vars, 9u);
  EXPECT_EQ(s.state_bits, 16u + 8 * 32);
  EXPECT_NE(summarize(d).find("state_bits=272"), std::string::npos);
}

} // namespace
} // namespace upec::rtlir
