// VCD writer validation: header structure, change-only sampling, and
// multi-bit value formatting, using a live SoC run as the signal source.
#include <gtest/gtest.h>

#include <sstream>

#include "sim/task.h"
#include "sim/vcd.h"
#include "soc/pulpissimo.h"

namespace upec {
namespace {

TEST(Vcd, HeaderAndInitialDump) {
  const soc::Soc soc = soc::build_pulpissimo();
  sim::Simulator s(*soc.design);
  std::ostringstream os;
  sim::VcdWriter vcd(os, s);
  vcd.add_output(soc::probe::kHwpeProgress);
  vcd.add_output(soc::probe::kCpuGnt);
  vcd.start();

  const std::string out = os.str();
  EXPECT_NE(out.find("$timescale 1ns $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 16 ! hwpe_progress $end"), std::string::npos);
  EXPECT_NE(out.find("$var wire 1 \" cpu_gnt $end"), std::string::npos);
  EXPECT_NE(out.find("$enddefinitions $end"), std::string::npos);
  EXPECT_NE(out.find("$dumpvars"), std::string::npos);
}

TEST(Vcd, OnlyChangesAreDumped) {
  const soc::Soc soc = soc::build_pulpissimo();
  sim::Simulator s(*soc.design);
  sim::BusDriver cpu(s);
  std::ostringstream os;
  sim::VcdWriter vcd(os, s);
  const rtlir::StateVarTable svt(*soc.design);
  const auto timer_count =
      static_cast<std::uint32_t>(soc.design->find_register("soc.timer.count_q"));
  vcd.add_state(svt, svt.of_register(timer_count));
  vcd.start();

  // Idle cycles: the timer is disabled, nothing changes, no timestamps.
  for (int i = 0; i < 5; ++i) {
    s.step();
    vcd.sample();
  }
  const std::size_t idle_len = os.str().size();
  EXPECT_EQ(os.str().find('#'), std::string::npos) << "no change -> no timestamp";

  // Enable the timer; count changes every cycle now.
  const std::uint32_t timer = soc.map.region(soc::AddrMap::kTimer).base;
  cpu.run_op(sim::store(timer + 0xC, 0));
  cpu.run_op(sim::store(timer + 0x0, 1));
  for (int i = 0; i < 5; ++i) {
    s.step();
    vcd.sample();
  }
  EXPECT_GT(os.str().size(), idle_len);
  EXPECT_NE(os.str().find('#'), std::string::npos);
}

TEST(Vcd, MultiBitFormatting) {
  const soc::Soc soc = soc::build_pulpissimo();
  sim::Simulator s(*soc.design);
  std::ostringstream os;
  sim::VcdWriter vcd(os, s);
  const rtlir::StateVarTable svt(*soc.design);
  const auto scratch =
      static_cast<std::uint32_t>(soc.design->find_register("soc.soc_ctrl.scratch0_q"));
  s.set_reg(scratch, 0b1010);
  vcd.add_state(svt, svt.of_register(scratch));
  vcd.start();
  EXPECT_NE(os.str().find("b1010 !"), std::string::npos);
}

} // namespace
} // namespace upec
