// Worker-to-worker learned-clause sharing: the ClauseChannel protocol, the
// InprocBackend wiring, budget-exhaustion reporting through the scheduler,
// and the activation-literal retirement that keeps the shared store from
// accumulating dead violation clauses across sweep rounds.
//
// The determinism side (sharing on/off × thread counts must produce
// bit-identical frontiers) is pinned in test_determinism; this file covers
// the machinery itself.
#include <gtest/gtest.h>

#include "sat/backend.h"
#include "sat/share.h"
#include "sat/snapshot.h"
#include "upec/report.h"

namespace upec {
namespace {

sat::Lit pos(sat::Var v) { return sat::Lit(v, false); }
sat::Lit neg(sat::Var v) { return sat::Lit(v, true); }

// Pigeonhole P into P-1 pushed into a sink (Solver or CnfStore tee).
void add_pigeonhole(sat::ClauseSink& sink, int pigeons) {
  const int holes = pigeons - 1;
  std::vector<std::vector<sat::Var>> x(static_cast<std::size_t>(pigeons));
  for (auto& row : x) {
    for (int h = 0; h < holes; ++h) row.push_back(sink.new_var());
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(pos(x[p][h]));
    sink.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        sink.add_clause({neg(x[p1][h]), neg(x[p2][h])});
      }
    }
  }
}

TEST(ClauseSharing, ChannelCollectSkipsOwnAndAdvancesCursor) {
  sat::ClauseChannel ch;
  std::vector<sat::SharedClause> out;
  std::size_t cursor0 = 0, cursor1 = 0;
  EXPECT_EQ(ch.collect(0, cursor0, out), 0u);
  EXPECT_TRUE(out.empty());

  ch.publish(0, {pos(1), neg(2)}, 2);
  ch.publish(1, {pos(3)}, 1);
  EXPECT_EQ(ch.published(), 2u);

  // Reader 0 sees only worker 1's clause.
  EXPECT_EQ(ch.collect(0, cursor0, out), 1u);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].lits, (std::vector<sat::Lit>{pos(3)}));
  EXPECT_EQ(out[0].lbd, 1u);
  // Cursor advanced: nothing new on a second collect.
  EXPECT_EQ(ch.collect(0, cursor0, out), 0u);
  EXPECT_EQ(out.size(), 1u);

  // Reader 1 starts from scratch and sees only worker 0's clause.
  std::vector<sat::SharedClause> out1;
  EXPECT_EQ(ch.collect(1, cursor1, out1), 1u);
  ASSERT_EQ(out1.size(), 1u);
  EXPECT_EQ(out1[0].lits, (std::vector<sat::Lit>{pos(1), neg(2)}));
  EXPECT_EQ(out1[0].lbd, 2u);

  // A third party (distinct reader id) sees both.
  std::vector<sat::SharedClause> out2;
  std::size_t cursor2 = 0;
  EXPECT_EQ(ch.collect(7, cursor2, out2), 2u);
}

TEST(ClauseSharing, TwoSolversExchangeThroughChannel) {
  // Solver 0 proves a pigeonhole UNSAT and exports its glue clauses; solver 1,
  // loaded with the same formula plus an indicator that keeps it satisfiable,
  // imports them at its restart boundaries and must stay correct.
  sat::ClauseChannel ch;
  sat::Solver a;
  add_pigeonhole(a, 7);
  a.set_export_hook(
      [&](const std::vector<sat::Lit>& lits, unsigned lbd) { ch.publish(0, lits, lbd); },
      ch.lbd_cap(), ch.size_cap());
  EXPECT_FALSE(a.solve());
  EXPECT_GT(a.stats().exported_clauses, 0u);
  EXPECT_EQ(ch.published(), a.stats().exported_clauses);

  sat::Solver b;
  add_pigeonhole(b, 7);
  std::size_t cursor = 0;
  b.set_import_hook([&](std::vector<sat::SharedClause>& out) { ch.collect(1, cursor, out); });
  EXPECT_FALSE(b.solve());
  EXPECT_GT(b.stats().imported_clauses, 0u);
  // Everything worker 0 published is foreign to worker 1; at most that many
  // enter (root-satisfied / simplified-away clauses are not counted).
  EXPECT_LE(b.stats().imported_clauses, ch.published());
}

TEST(ClauseSharing, BackendReportsUnknownOnBudget) {
  sat::CnfStore store;
  add_pigeonhole(store, 9);
  sat::InprocBackend backend(/*conflict_budget=*/5);
  backend.sync(store.snapshot());
  EXPECT_EQ(backend.solve({}), sat::SolveStatus::Unknown);
}

TEST(ClauseSharing, BackendsShareThroughChannelAgainstOneStore) {
  // The scheduler wiring in miniature: two backends over one store and one
  // channel. Backend 0 proves UNSAT first and fills the channel; backend 1
  // then imports real traffic while reproducing the same answer.
  sat::CnfStore store;
  add_pigeonhole(store, 7);
  sat::ClauseChannel ch;
  sat::InprocBackend b0(0, &ch, 0);
  sat::InprocBackend b1(0, &ch, 1);
  b0.sync(store.snapshot());
  b1.sync(store.snapshot());
  EXPECT_EQ(b0.solve({}), sat::SolveStatus::Unsat);
  EXPECT_GT(ch.published(), 0u);
  EXPECT_EQ(b1.solve({}), sat::SolveStatus::Unsat);
  EXPECT_GT(b1.stats().imported_clauses, 0u);
  EXPECT_EQ(b0.stats().imported_clauses, 0u); // nothing foreign existed for b0
}

soc::Soc tiny_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 8;
  cfg.priv_ram_words = 4;
  return soc::build_pulpissimo(cfg);
}

VerifyOptions budget_options(unsigned threads, bool share) {
  VerifyOptions options;
  options.conflict_budget = 1;
  options.threads = threads;
  options.share_clauses = share;
  return options;
}

TEST(ClauseSharing, BudgetExhaustionReportsUnknownAcrossThreadCounts) {
  // Conflict budget 1 exhausts inside the first sweep: SolverInterrupted →
  // backend Unknown → scheduler Unknown → Verdict::Unknown, identically for
  // every thread count (sharing off keeps even the partial differing lists
  // comparable — import timing cannot perturb who hits the budget first).
  const soc::Soc soc = tiny_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result t1 = verify_2cycle(soc, budget_options(1, false), opts);
  ASSERT_EQ(t1.verdict, Verdict::Unknown);
  ASSERT_EQ(t1.iterations.size(), 1u);
  EXPECT_EQ(t1.iterations.back().status, ipc::CheckStatus::Unknown);
  for (unsigned threads : {2u, 4u}) {
    const Alg1Result par = verify_2cycle(soc, budget_options(threads, false), opts);
    EXPECT_EQ(par.verdict, Verdict::Unknown) << threads;
    ASSERT_EQ(par.iterations.size(), t1.iterations.size()) << threads;
    EXPECT_EQ(par.iterations.back().status, ipc::CheckStatus::Unknown) << threads;
  }
}

TEST(ClauseSharing, BudgetExhaustionWithSharingStillUnknown) {
  // With sharing on, which worker trips the budget first may vary, but the
  // headline status cannot: some worker always exhausts it.
  const soc::Soc soc = tiny_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result result = verify_2cycle(soc, budget_options(4, true), opts);
  EXPECT_EQ(result.verdict, Verdict::Unknown);
}

TEST(ClauseSharing, SharingProducesTrafficAndConsistentCounters) {
  // The secure workload is UNSAT-heavy, so real traffic must flow, the
  // scheduler's aggregate counters must match the per-worker statistics, and
  // the report must surface the exchange.
  const soc::Soc soc = tiny_soc();
  VerifyOptions options = countermeasure_options();
  options.threads = 4;
  options.share_clauses = true;
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result result = run_alg1(ctx, opts);
  EXPECT_EQ(result.verdict, Verdict::Secure);

  ASSERT_EQ(result.stats.per_worker.size(), 4u);
  std::uint64_t exported = 0, imported = 0;
  for (const auto& w : result.stats.per_worker) {
    exported += w.exported_clauses;
    imported += w.imported_clauses;
  }
  EXPECT_GT(exported, 0u);
  EXPECT_GT(imported, 0u);
  EXPECT_EQ(result.stats.total.exported_clauses, exported);
  EXPECT_EQ(result.stats.total.imported_clauses, imported);
  ASSERT_NE(ctx.scheduler, nullptr);
  EXPECT_EQ(ctx.scheduler->shared_clauses(), exported);

  const std::string report = render_report(ctx, result);
  EXPECT_NE(report.find("shared clauses"), std::string::npos) << report;
  EXPECT_NE(report.find("exported"), std::string::npos) << report;
}

TEST(ClauseSharing, SharingOffPublishesNothing) {
  const soc::Soc soc = tiny_soc();
  VerifyOptions options = countermeasure_options();
  options.threads = 2;
  options.share_clauses = false;
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result result = run_alg1(ctx, opts);
  EXPECT_EQ(result.verdict, Verdict::Secure);
  ASSERT_NE(ctx.scheduler, nullptr);
  EXPECT_EQ(ctx.scheduler->shared_clauses(), 0u);
  EXPECT_EQ(result.stats.total.exported_clauses, 0u);
  EXPECT_EQ(result.stats.total.imported_clauses, 0u);
}

TEST(ClauseSharing, ActivationLiteralsRetireAndStoreGrowthIsBounded) {
  // Legacy (re-encoding) sweep mode: repeated sweeps over the same candidates
  // must only grow the store by the fresh activation literals of each round —
  // the diff encoding is reused — and every activation literal must be pinned
  // false (retired) once its round is over. An unpinned act var would read
  // true under the solver's positive default phase, so reading false is the
  // retirement signal. (The incremental mode grows the store not at all after
  // the first sweep — pinned by test_incremental.)
  const soc::Soc soc = tiny_soc();
  VerifyOptions options;
  options.threads = 2;
  options.incremental_sweeps = false;
  options.verdict_cache = false;
  UpecContext ctx(soc, options);
  ASSERT_NE(ctx.scheduler, nullptr);

  const std::vector<rtlir::StateVarId> candidates = ctx.s_pers.to_vector();
  ASSERT_GE(candidates.size(), 2u);
  constexpr unsigned kFrame = 1;

  const ipc::SweepResult r1 = ctx.scheduler->sweep(ctx.miter, {}, candidates, kFrame);
  const int n1 = ctx.solver.num_vars();
  const ipc::SweepResult r2 = ctx.scheduler->sweep(ctx.miter, {}, candidates, kFrame);
  const int n2 = ctx.solver.num_vars();
  const ipc::SweepResult r3 = ctx.scheduler->sweep(ctx.miter, {}, candidates, kFrame);
  const int n3 = ctx.solver.num_vars();

  // Same semantic answer each time.
  EXPECT_EQ(r1.status, r2.status);
  EXPECT_EQ(r1.differing, r2.differing);
  EXPECT_EQ(r2.differing, r3.differing);

  // Steady state: growth per sweep is exactly the activation literals, one
  // per (worker, round) at most.
  EXPECT_EQ(n3 - n2, n2 - n1);
  EXPECT_GT(n3 - n2, 0);
  EXPECT_LE(static_cast<unsigned>(n3 - n2), r3.rounds * ctx.scheduler->workers());

  // All activation literals of the last sweep were created in [n2, n3); after
  // the sweep they are retired (root unit ¬act), so a fresh model reads every
  // one of them false.
  ASSERT_TRUE(ctx.solver.solve());
  for (int v = n2; v < n3; ++v) {
    EXPECT_FALSE(ctx.solver.model_value(static_cast<sat::Var>(v))) << "act var " << v;
  }
}

} // namespace
} // namespace upec
