// The countermeasure advisor: suggested mitigations must match the sinks the
// proofs find, and the advise → apply → re-verify loop must converge to a
// secure design (the paper's proposed design methodology, prototyped).
#include <gtest/gtest.h>

#include <memory>

#include "upec/advisor.h"
#include "upec/report.h"

namespace upec {
namespace {

soc::Soc small_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

TEST(Advisor, HwpeScenarioSuggestsIsolationOrConstraints) {
  const soc::Soc soc = small_soc();
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  UpecContext ctx(soc, options);
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Vulnerable);

  const std::vector<Suggestion> advice = advise(ctx, result.persistent_hits);
  ASSERT_FALSE(advice.empty());
  bool actionable = false;
  for (const Suggestion& s : advice) {
    EXPECT_TRUE(s.subsystem == "hwpe" || s.subsystem == "pub_ram") << s.subsystem;
    actionable |= s.kind == MitigationKind::PrivateMemoryMapping ||
                  s.kind == MitigationKind::FirmwareConstraints;
    EXPECT_FALSE(s.evidence.empty());
  }
  EXPECT_TRUE(actionable);
  const std::string text = render_advice(ctx, advice);
  EXPECT_NE(text.find("countermeasure suggestions"), std::string::npos);
}

TEST(Advisor, AdviseApplyReverifyConverges) {
  // The methodology loop: run, take the suggested fix (private mapping +
  // firmware constraints — exactly countermeasure_options()), re-run, secure.
  const soc::Soc soc = small_soc();
  UpecContext vulnerable_ctx(soc);
  const Alg1Result first = run_alg1(vulnerable_ctx);
  ASSERT_EQ(first.verdict, Verdict::Vulnerable);
  const std::vector<Suggestion> advice = advise(vulnerable_ctx, first.persistent_hits);
  ASSERT_FALSE(advice.empty());

  bool suggests_mapping_or_constraints = false;
  for (const Suggestion& s : advice) {
    suggests_mapping_or_constraints |= s.kind == MitigationKind::PrivateMemoryMapping ||
                                       s.kind == MitigationKind::FirmwareConstraints;
  }
  ASSERT_TRUE(suggests_mapping_or_constraints);

  UpecContext fixed_ctx(soc, countermeasure_options());
  const Alg1Result second = run_alg1(fixed_ctx);
  EXPECT_EQ(second.verdict, Verdict::Secure) << render_report(fixed_ctx, second);
}

TEST(Advisor, TimerHitCarriesInsufficiencyWarning) {
  // Force the timer into S_pers focus; the advisor must warn that timer
  // access control alone does not stop the timer-free variant (Sec 4.1).
  const soc::Soc soc = small_soc();
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    return svt->name(sv).find(".timer.") != std::string::npos;
  };
  UpecContext ctx(soc, options);
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Vulnerable) << render_report(ctx, result);
  const std::vector<Suggestion> advice = advise(ctx, result.persistent_hits);
  ASSERT_EQ(advice.size(), 1u);
  EXPECT_EQ(advice[0].kind, MitigationKind::TimerAccessControl);
  EXPECT_NE(advice[0].rationale.find("insufficient"), std::string::npos);
}

TEST(Advisor, SecureResultNeedsNoAdvice) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, countermeasure_options());
  const Alg1Result result = run_alg1(ctx);
  ASSERT_EQ(result.verdict, Verdict::Secure);
  EXPECT_TRUE(advise(ctx, result.persistent_hits).empty());
  EXPECT_NE(render_advice(ctx, {}).find("nothing to mitigate"), std::string::npos);
}

} // namespace
} // namespace upec
