// End-to-end attack validation: the three-phase scenarios of Sec 2.2 / 4.1
// executed on the generated RTL must actually leak (baseline SoC) and must
// stop leaking once the victim's working set moves to the private memory
// device (the Sec 4.2 countermeasure).
#include <gtest/gtest.h>

#include "sim/attack.h"

namespace upec {
namespace {

using sim::AttackConfig;
using sim::HwpeAttackResult;
using sim::run_hwpe_attack;
using sim::run_timer_attack;
using sim::TimerAttackResult;

class HwpeAttack : public ::testing::Test {
protected:
  soc::Soc soc_ = soc::build_pulpissimo();
};

TEST_F(HwpeAttack, ZeroAccessBaseline) {
  const HwpeAttackResult r = run_hwpe_attack(soc_, 0);
  EXPECT_GT(r.progress_observed, 0u) << "HWPE must have made progress in the window";
  EXPECT_EQ(r.progress_at_stop, r.highwater_mark)
      << "PROGRESS register and primed-region scan must agree";
}

TEST_F(HwpeAttack, ProgressDecreasesWithVictimActivity) {
  // The channel: each victim access to the shared memory device delays the
  // HWPE stream, so observed progress decreases monotonically.
  std::vector<std::uint32_t> progress;
  for (std::uint32_t accesses : {0u, 2u, 4u, 6u}) {
    progress.push_back(run_hwpe_attack(soc_, accesses).progress_observed);
  }
  for (std::size_t i = 1; i < progress.size(); ++i) {
    EXPECT_LT(progress[i], progress[i - 1])
        << "more victim accesses must mean less HWPE progress (step " << i << ")";
  }
}

TEST_F(HwpeAttack, AttackerDecodesAccessCount) {
  // Calibrate with zero accesses, then decode: the streamer has initiation
  // interval 2, so every two victim accesses cost exactly one progress unit —
  // the attacker recovers the access count at that resolution.
  const std::uint32_t calibration = run_hwpe_attack(soc_, 0).progress_observed;
  for (std::uint32_t secret : {2u, 4u, 6u, 8u}) {
    const std::uint32_t observed = run_hwpe_attack(soc_, secret).progress_observed;
    EXPECT_EQ(calibration - observed, secret / 2)
        << "primed-region lag must reveal the victim access count (secret=" << secret << ")";
  }
}

TEST_F(HwpeAttack, MemoryHighwaterMatchesProgress) {
  for (std::uint32_t secret : {1u, 3u, 5u}) {
    const HwpeAttackResult r = run_hwpe_attack(soc_, secret);
    EXPECT_EQ(r.progress_at_stop, r.highwater_mark)
        << "the attacker needs no HWPE register read: the primed memory "
           "region itself encodes the progress";
  }
}

TEST_F(HwpeAttack, CountermeasureClosesChannel) {
  AttackConfig cfg;
  cfg.victim_uses_private_ram = true; // security-critical region in private RAM
  const std::uint32_t baseline = run_hwpe_attack(soc_, 0, cfg).progress_observed;
  for (std::uint32_t secret : {1u, 3u, 6u}) {
    EXPECT_EQ(run_hwpe_attack(soc_, secret, cfg).progress_observed, baseline)
        << "victim activity on the private crossbar must be invisible";
  }
}

class TimerAttack : public ::testing::Test {
protected:
  soc::Soc soc_ = soc::build_pulpissimo();
};

TEST_F(TimerAttack, DmaDoneStartsTimer) {
  const TimerAttackResult r = run_timer_attack(soc_, 0);
  EXPECT_TRUE(r.dma_done_event);
  EXPECT_GT(r.timer_count, 0u) << "timer started by the DMA-done event";
}

TEST_F(TimerAttack, CountDecreasesWithVictimActivity) {
  // Victim contention delays DMA completion, hence the timer starts later and
  // shows a smaller count at the fixed retrieval point (Fig. 1).
  std::vector<std::uint32_t> counts;
  for (std::uint32_t accesses : {0u, 2u, 4u}) {
    counts.push_back(run_timer_attack(soc_, accesses).timer_count);
  }
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[2]);
}

TEST_F(TimerAttack, CountermeasureClosesChannel) {
  AttackConfig cfg;
  cfg.victim_uses_private_ram = true;
  const std::uint32_t baseline = run_timer_attack(soc_, 0, cfg).timer_count;
  for (std::uint32_t secret : {2u, 4u}) {
    EXPECT_EQ(run_timer_attack(soc_, secret, cfg).timer_count, baseline);
  }
}

} // namespace
} // namespace upec
