// RV32I core validation: directed programs, and randomized cross-checks of
// the RTL pipeline (soc/cpu.h, executing inside the full SoC) against the
// architectural reference ISS (sim/iss.h). Architectural state — register
// file and RAM contents — must match instruction for instruction.
#include <gtest/gtest.h>

#include <memory>

#include "sim/asm.h"
#include "sim/iss.h"
#include "sim/task.h"
#include "soc/pulpissimo.h"
#include "util/rng.h"

namespace upec {
namespace {

namespace rv = sim::rv;

soc::Soc cpu_soc() {
  soc::SocConfig cfg;
  cfg.with_cpu = true;
  cfg.pub_ram_words = 32;
  cfg.priv_ram_words = 16;
  return soc::build_pulpissimo(cfg);
}

// Runs a program on the RTL SoC until the PC sticks (jump-to-self) or the
// cycle budget is exhausted; returns the simulator for state inspection.
struct RtlRun {
  soc::Soc soc = cpu_soc();
  std::unique_ptr<sim::Simulator> sim;
  unsigned retired = 0;

  explicit RtlRun(const std::vector<std::uint32_t>& program, unsigned max_cycles = 3000) {
    sim = std::make_unique<sim::Simulator>(*soc.design);
    const auto imem = static_cast<std::uint32_t>(soc.cpu_imem);
    for (std::size_t i = 0; i < program.size(); ++i) {
      sim->set_mem_word(imem, static_cast<std::uint32_t>(i), program[i]);
    }
    std::uint64_t stable_pc = ~0ull;
    unsigned stable_count = 0;
    for (unsigned c = 0; c < max_cycles; ++c) {
      retired += sim->output(soc::probe::kCpuRetired) & 1;
      sim->step();
      const std::uint64_t pc = sim->output(soc::probe::kCpuPc);
      if (pc == stable_pc) {
        if (++stable_count > 8) break; // spinning on jump-to-self
      } else {
        stable_pc = pc;
        stable_count = 0;
      }
    }
  }

  std::uint32_t reg(unsigned i) const {
    return static_cast<std::uint32_t>(
        sim->mem_word(static_cast<std::uint32_t>(soc.cpu_regfile), i));
  }
  std::uint32_t ram_word(std::uint32_t w) const {
    return static_cast<std::uint32_t>(sim->mem_word(soc.pub_ram_mem, w));
  }
};

std::vector<std::uint32_t> with_halt(std::vector<std::uint32_t> prog) {
  prog.push_back(rv::jal(0, 0));
  return prog;
}

TEST(Cpu, ArithmeticBasics) {
  std::vector<std::uint32_t> p = {
      rv::addi(1, 0, 5),        // x1 = 5
      rv::addi(2, 0, 7),        // x2 = 7
      rv::add(3, 1, 2),         // x3 = 12
      rv::sub(4, 1, 2),         // x4 = -2
      rv::xori(5, 3, 0xff),     // x5 = 12 ^ 255
      rv::slli(6, 1, 4),        // x6 = 80
      rv::sltiu(7, 1, 6),       // x7 = 1
      rv::slt(8, 4, 1),         // x8 = (-2 < 5) = 1
      rv::srai(9, 4, 1),        // x9 = -1
  };
  RtlRun run(with_halt(p));
  EXPECT_EQ(run.reg(1), 5u);
  EXPECT_EQ(run.reg(2), 7u);
  EXPECT_EQ(run.reg(3), 12u);
  EXPECT_EQ(run.reg(4), static_cast<std::uint32_t>(-2));
  EXPECT_EQ(run.reg(5), 12u ^ 255u);
  EXPECT_EQ(run.reg(6), 80u);
  EXPECT_EQ(run.reg(7), 1u);
  EXPECT_EQ(run.reg(8), 1u);
  EXPECT_EQ(run.reg(9), static_cast<std::uint32_t>(-1));
}

TEST(Cpu, X0IsHardwiredZero) {
  std::vector<std::uint32_t> p = {
      rv::addi(0, 0, 123), // write to x0 dropped
      rv::add(1, 0, 0),    // x1 = 0
  };
  RtlRun run(with_halt(p));
  EXPECT_EQ(run.reg(0), 0u);
  EXPECT_EQ(run.reg(1), 0u);
}

TEST(Cpu, LoadStoreRoundtrip) {
  soc::Soc probe_soc = cpu_soc();
  const std::uint32_t ram = probe_soc.map.region(soc::AddrMap::kPubRam).base;
  std::vector<std::uint32_t> p = rv::li32(1, ram);
  p.push_back(rv::addi(2, 0, 0x2a));
  p.push_back(rv::sw(2, 1, 8));  // ram[2] = 42
  p.push_back(rv::lw(3, 1, 8));  // x3 = 42
  p.push_back(rv::addi(4, 3, 1)); // x4 = 43 (load-use across the stall)
  RtlRun run(with_halt(p));
  EXPECT_EQ(run.ram_word(2), 0x2au);
  EXPECT_EQ(run.reg(3), 0x2au);
  EXPECT_EQ(run.reg(4), 0x2bu);
}

TEST(Cpu, BranchesAndLoop) {
  // x2 = sum 1..5 via a backward branch.
  std::vector<std::uint32_t> p = {
      rv::addi(1, 0, 5),   // x1 = 5 (counter)
      rv::addi(2, 0, 0),   // x2 = 0 (sum)
      rv::add(2, 2, 1),    // loop: sum += counter
      rv::addi(1, 1, -1),  // counter--
      rv::bne(1, 0, -8),   // back to loop
      rv::addi(3, 0, 1),   // after loop
  };
  RtlRun run(with_halt(p));
  EXPECT_EQ(run.reg(2), 15u);
  EXPECT_EQ(run.reg(3), 1u);
}

TEST(Cpu, JalLinksAndJalrReturns) {
  // call +3 instructions ahead; callee sets x5 and returns via ra.
  std::vector<std::uint32_t> p = {
      rv::jal(1, 12),      // 0x00: call 0x0C
      rv::addi(6, 0, 9),   // 0x04: after return
      rv::jal(0, 12),      // 0x08: jump to halt (0x14)
      rv::addi(5, 0, 4),   // 0x0C: callee
      rv::jalr(0, 1, 0),   // 0x10: return to 0x04
      rv::jal(0, 0),       // 0x14: halt
  };
  RtlRun run(p);
  EXPECT_EQ(run.reg(1), 4u); // link = 0x04
  EXPECT_EQ(run.reg(5), 4u);
  EXPECT_EQ(run.reg(6), 9u);
}

TEST(Cpu, TakenBranchSquashesFetchedSlot) {
  std::vector<std::uint32_t> p = {
      rv::addi(1, 0, 1),
      rv::beq(1, 1, 8),    // taken: skip the next instruction
      rv::addi(2, 0, 99),  // must be squashed
      rv::addi(3, 0, 3),
  };
  RtlRun run(with_halt(p));
  EXPECT_EQ(run.reg(2), 0u) << "squashed slot must not retire";
  EXPECT_EQ(run.reg(3), 3u);
}

TEST(Cpu, DriveTimerViaStore) {
  // Real software talking to a peripheral: enable the timer, spin, read it.
  soc::Soc probe_soc = cpu_soc();
  const std::uint32_t timer = probe_soc.map.region(soc::AddrMap::kTimer).base;
  std::vector<std::uint32_t> p = rv::li32(1, timer);
  p.push_back(rv::addi(2, 0, 1));
  p.push_back(rv::sw(2, 1, 0));     // CTRL.enable = 1
  for (int i = 0; i < 6; ++i) p.push_back(rv::nop());
  p.push_back(rv::lw(3, 1, 4));     // x3 = COUNT
  RtlRun run(with_halt(p));
  EXPECT_GT(run.reg(3), 0u);
  EXPECT_LT(run.reg(3), 64u);
}

// --- randomized RTL-vs-ISS cross-validation ----------------------------------------

class CpuRandom : public ::testing::TestWithParam<int> {};

TEST_P(CpuRandom, MatchesIss) {
  Xoshiro256 rng(31000 + GetParam());
  const soc::Soc layout = cpu_soc();
  const std::uint32_t ram = layout.map.region(soc::AddrMap::kPubRam).base;

  // Random straight-line program over x1..x7 with occasional RAM accesses;
  // x8 holds the RAM base. Forward-only control flow keeps termination easy.
  std::vector<std::uint32_t> p = rv::li32(8, ram);
  const unsigned body = 20 + static_cast<unsigned>(rng.below(25));
  for (unsigned i = 0; i < body; ++i) {
    const auto rd = static_cast<std::uint32_t>(1 + rng.below(7));
    const auto ra = static_cast<std::uint32_t>(rng.below(9)); // may be x0 or x8
    const auto rb = static_cast<std::uint32_t>(1 + rng.below(7));
    const auto imm = static_cast<std::int32_t>(rng.below(2048)) - 1024;
    switch (rng.below(12)) {
      case 0: p.push_back(rv::addi(rd, ra, imm)); break;
      case 1: p.push_back(rv::add(rd, ra, rb)); break;
      case 2: p.push_back(rv::sub(rd, ra, rb)); break;
      case 3: p.push_back(rv::xori(rd, ra, imm)); break;
      case 4: p.push_back(rv::and_(rd, ra, rb)); break;
      case 5: p.push_back(rv::or_(rd, ra, rb)); break;
      case 6: p.push_back(rv::slli(rd, ra, static_cast<std::uint32_t>(rng.below(31)))); break;
      case 7: p.push_back(rv::srai(rd, ra, static_cast<std::uint32_t>(rng.below(31)))); break;
      case 8: p.push_back(rv::slt(rd, ra, rb)); break;
      case 9: p.push_back(rv::sltu(rd, ra, rb)); break;
      case 10: // store to a random RAM word
        p.push_back(rv::sw(rb, 8, static_cast<std::int32_t>(4 * rng.below(24))));
        break;
      default: // load from a random RAM word
        p.push_back(rv::lw(rd, 8, static_cast<std::int32_t>(4 * rng.below(24))));
        break;
    }
  }
  p = with_halt(p);

  sim::Iss iss(p);
  iss.run(10000);

  RtlRun rtl(p);
  for (unsigned r = 1; r < 32; ++r) {
    EXPECT_EQ(rtl.reg(r), iss.reg(r)) << "x" << r << " seed " << GetParam();
  }
  for (std::uint32_t w = 0; w < 24; ++w) {
    EXPECT_EQ(rtl.ram_word(w), iss.load(ram + 4 * w)) << "ram word " << w;
  }
}

INSTANTIATE_TEST_SUITE_P(Programs, CpuRandom, ::testing::Range(0, 30));

TEST(Cpu, RandomProgramsWithBranches) {
  // Forward branches with bounded skip distances, cross-checked against the
  // ISS; covers taken/not-taken squash behavior over many shapes.
  for (int seed = 0; seed < 10; ++seed) {
    Xoshiro256 rng(77000 + seed);
    std::vector<std::uint32_t> p;
    for (int i = 0; i < 24; ++i) {
      const auto rd = static_cast<std::uint32_t>(1 + rng.below(6));
      const auto ra = static_cast<std::uint32_t>(1 + rng.below(6));
      const auto rb = static_cast<std::uint32_t>(1 + rng.below(6));
      switch (rng.below(5)) {
        case 0: p.push_back(rv::addi(rd, ra, static_cast<std::int32_t>(rng.below(64)))); break;
        case 1: p.push_back(rv::add(rd, ra, rb)); break;
        case 2: p.push_back(rv::beq(ra, rb, 8)); break;  // skip one
        case 3: p.push_back(rv::bne(ra, rb, 12)); break; // skip two
        default: p.push_back(rv::blt(ra, rb, 8)); break;
      }
    }
    p = with_halt(p);
    // The skip targets may land on the halt; pad generously.
    p.push_back(rv::jal(0, 0));
    p.push_back(rv::jal(0, 0));

    sim::Iss iss(p);
    iss.run(10000);
    RtlRun rtl(p);
    for (unsigned r = 1; r < 8; ++r) {
      EXPECT_EQ(rtl.reg(r), iss.reg(r)) << "x" << r << " seed " << seed;
    }
  }
}


TEST(Cpu, FirmwareLevelContentionChannel) {
  // End-to-end regression of the firmware attack demo: a constant-time
  // victim loop whose stores target the public RAM steals HWPE arbitration
  // slots; the same loop redirected at the private RAM does not. Progress is
  // sampled at a fixed absolute cycle.
  soc::SocConfig cfg;
  cfg.with_cpu = true;
  cfg.pub_ram_words = 128;
  cfg.priv_ram_words = 16;
  const soc::Soc soc = soc::build_pulpissimo(cfg);
  const std::uint32_t ram = soc.map.region(soc::AddrMap::kPubRam).base;
  const std::uint32_t hwpe = soc.map.region(soc::AddrMap::kHwpe).base;
  const std::uint32_t priv = soc.map.region(soc::AddrMap::kPrivRam).base;

  auto run = [&](bool contend) {
    std::vector<std::uint32_t> p;
    auto emit = [&](std::vector<std::uint32_t> v) { p.insert(p.end(), v.begin(), v.end()); };
    emit(rv::li32(1, hwpe));
    emit(rv::li32(2, ram));
    p.push_back(rv::sw(2, 1, 0x0));
    p.push_back(rv::addi(3, 0, 120));
    p.push_back(rv::sw(3, 1, 0x4));
    p.push_back(rv::addi(3, 0, 1));
    p.push_back(rv::sw(3, 1, 0x8));
    emit(rv::li32(4, contend ? ram + 0x1fc : priv + 4));
    p.push_back(rv::addi(5, 0, 8));
    const auto top = static_cast<std::int32_t>(p.size() * 4);
    p.push_back(rv::sw(5, 4, 0));
    p.push_back(rv::sw(5, 4, 0));
    p.push_back(rv::addi(5, 5, -1));
    const auto here = static_cast<std::int32_t>(p.size() * 4);
    p.push_back(rv::bne(5, 0, top - here));
    p.push_back(rv::jal(0, 0));

    sim::Simulator s(*soc.design);
    for (std::size_t i = 0; i < p.size(); ++i) {
      s.set_mem_word(static_cast<std::uint32_t>(soc.cpu_imem), static_cast<std::uint32_t>(i),
                     p[i]);
    }
    for (int c = 0; c < 80; ++c) s.step();
    return s.output(soc::probe::kHwpeProgress);
  };

  const std::uint64_t idle = run(false);
  const std::uint64_t contended = run(true);
  EXPECT_GT(idle, 0u);
  EXPECT_LT(contended, idle)
      << "firmware stores to the shared memory device must delay the HWPE";
}

} // namespace
} // namespace upec
