// Cross-validation of the CNF encoder against the concrete simulator: for
// random circuits and random stimuli, the bit-blasted unrolling must agree
// with cycle-accurate evaluation. This pins down that the formal engine and
// the attack-simulation engine see the same hardware semantics.
#include <gtest/gtest.h>
#include "sat/solver.h"

#include "encode/coi.h"
#include "encode/miter.h"
#include "encode/unroller.h"
#include "rtlir/builder.h"
#include "sim/simulator.h"
#include "util/rng.h"

namespace upec::encode {
namespace {

using rtlir::Builder;
using rtlir::Design;
using rtlir::MemHandle;
using rtlir::NetId;
using rtlir::RegHandle;

// Constrain an input image to a concrete value.
void fix_input(sat::Solver& s, CnfBuilder& cnf, const Bits& image, std::uint64_t value) {
  for (std::size_t i = 0; i < image.size(); ++i) {
    s.add_clause((value >> i) & 1 ? image[i] : ~image[i]);
  }
}

std::uint64_t model_of(const sat::Solver& s, const Bits& image) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    if (s.model_value(image[i])) v |= 1ull << i;
  }
  return v;
}

TEST(Unroller, CombinationalOpsMatchSimulator) {
  Design d;
  Builder b(d);
  const NetId x = b.input("x", 8);
  const NetId y = b.input("y", 8);
  const NetId sh = b.input("sh", 4);

  std::vector<NetId> probes = {
      b.add(x, y),       b.sub(x, y),     b.and_(x, y),   b.or_(x, y),  b.xor_(x, y),
      b.not_(x),         b.eq(x, y),      b.ult(x, y),    b.ule(x, y),  b.shl(x, sh),
      b.lshr(x, sh),     b.concat(x, y),  b.slice(x, 6, 2), b.zext(x, 14), b.red_or(x),
      b.red_and(x),      b.mux(b.bit(x, 0), x, y),
  };

  rtlir::StateVarTable svt(d);
  Xoshiro256 rng(77);
  for (int trial = 0; trial < 30; ++trial) {
    const std::uint64_t vx = rng.below(256), vy = rng.below(256), vsh = rng.below(16);

    sim::Simulator simulator(d);
    simulator.set_input("x", vx);
    simulator.set_input("y", vy);
    simulator.set_input("sh", vsh);

    sat::Solver solver;
    CnfBuilder cnf(solver);
    UnrolledInstance inst(cnf, d, svt, "t");
    // Touch all probe images, then fix inputs and solve.
    std::vector<Bits> images;
    for (NetId p : probes) images.push_back(inst.net_at(0, p));
    fix_input(solver, cnf, inst.input_at(0, 0), vx);
    fix_input(solver, cnf, inst.input_at(0, 1), vy);
    fix_input(solver, cnf, inst.input_at(0, 2), vsh);
    ASSERT_TRUE(solver.solve());

    for (std::size_t i = 0; i < probes.size(); ++i) {
      EXPECT_EQ(model_of(solver, images[i]), simulator.value(probes[i]))
          << "probe " << i << " trial " << trial;
    }
  }
}

// A small sequential design: accumulator + memory, unrolled k cycles, checked
// against the simulator from a known starting state.
TEST(Unroller, SequentialUnrollingMatchesSimulator) {
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  const NetId wen = b.input("wen", 1);
  const RegHandle acc = b.reg("acc_q", 8);
  b.connect(acc, b.add(acc.q, in));
  const MemHandle mem = b.memory("m", 4, 8);
  const NetId addr = b.slice(acc.q, 1, 0);
  b.mem_write(mem, addr, b.xor_(acc.q, in), wen);
  const NetId rd = b.mem_read(mem, addr);
  const NetId probe = b.add(rd, acc.q);

  rtlir::StateVarTable svt(d);
  Xoshiro256 rng(123);

  constexpr unsigned K = 5;
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::uint64_t> ins(K), wens(K);
    for (unsigned k = 0; k < K; ++k) {
      ins[k] = rng.below(256);
      wens[k] = rng.below(2);
    }

    sim::Simulator simulator(d);
    // Randomize starting state, mirroring it into the CNF below.
    const std::uint64_t acc0 = rng.below(256);
    std::vector<std::uint64_t> mem0(4);
    simulator.set_reg(acc.index, acc0);
    for (unsigned w = 0; w < 4; ++w) {
      mem0[w] = rng.below(256);
      simulator.set_mem_word(mem.index, w, mem0[w]);
    }

    sat::Solver solver;
    CnfBuilder cnf(solver);
    UnrolledInstance inst(cnf, d, svt, "t");

    std::vector<Bits> probe_images;
    for (unsigned k = 0; k <= K; ++k) probe_images.push_back(inst.net_at(k, probe));
    // Pin the symbolic start and all inputs.
    fix_input(solver, cnf, inst.reg_at(0, acc.index), acc0);
    for (unsigned w = 0; w < 4; ++w) {
      fix_input(solver, cnf, inst.mem_word_at(0, mem.index, w), mem0[w]);
    }
    for (unsigned k = 0; k < K; ++k) {
      fix_input(solver, cnf, inst.input_at(k, 0), ins[k]);
      fix_input(solver, cnf, inst.input_at(k, 1), wens[k]);
    }
    ASSERT_TRUE(solver.solve());

    for (unsigned k = 0; k <= K; ++k) {
      simulator.set_input("in", ins[k < K ? k : K - 1]);
      simulator.set_input("wen", wens[k < K ? k : K - 1]);
      EXPECT_EQ(model_of(solver, probe_images[k]), simulator.value(probe))
          << "frame " << k << " trial " << trial;
      if (k < K) simulator.step();
    }
  }
}

TEST(Unroller, StableInputsSharedAcrossFrames) {
  Design d;
  Builder b(d);
  b.input("stable_cfg", 8, /*stable=*/true);
  b.input("free", 8);
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  CnfBuilder cnf(solver);
  UnrolledInstance inst(cnf, d, svt, "t");
  EXPECT_EQ(inst.input_at(0, 0), inst.input_at(3, 0)) << "stable input: one image";
  EXPECT_NE(inst.input_at(0, 1), inst.input_at(3, 1)) << "free input: fresh per frame";
}

TEST(Unroller, SymbolicStartAllowsAllStates) {
  // From a symbolic starting state, any register value must be reachable at
  // frame 0 — this is the IPC "all histories" property.
  Design d;
  Builder b(d);
  const RegHandle r = b.reg("r_q", 8, /*reset=*/0);
  b.connect(r, b.add_const(r.q, 1));
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  CnfBuilder cnf(solver);
  UnrolledInstance inst(cnf, d, svt, "t");
  const Bits r0 = inst.reg_at(0, r.index);
  fix_input(solver, cnf, r0, 0xAB);
  ASSERT_TRUE(solver.solve());
  // And the successor is forced by the transition relation.
  const Bits r1 = inst.reg_at(1, r.index);
  ASSERT_TRUE(solver.solve());
  EXPECT_EQ(model_of(solver, r1), 0xACu);
}

TEST(Miter, SharedInputsEnforceEquality) {
  Design d;
  Builder b(d);
  const NetId shared_in = b.input("pad", 8);
  const NetId cpu_in = b.input("cpu.data", 8);
  const RegHandle r = b.reg("r_q", 8);
  b.connect(r, b.add(shared_in, cpu_in));
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  MiterOptions opts;
  opts.per_instance = [](const std::string& name) { return name.rfind("cpu.", 0) == 0; };
  Miter miter(solver, d, svt, opts);

  // Shared input: the same literals; per-instance input: distinct.
  EXPECT_EQ(miter.inst_a().input_at(0, 0), miter.inst_b().input_at(0, 0));
  EXPECT_NE(miter.inst_a().input_at(0, 1), miter.inst_b().input_at(0, 1));
}

TEST(Miter, EqAssumptionForcesEquality) {
  Design d;
  Builder b(d);
  const NetId in = b.input("cpu.in", 8);
  const RegHandle r = b.reg("r_q", 8);
  b.connect(r, b.add(r.q, in));
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  MiterOptions opts;
  opts.per_instance = [](const std::string& name) { return name.rfind("cpu.", 0) == 0; };
  Miter miter(solver, d, svt, opts);

  const rtlir::StateVarId sv = svt.of_register(r.index);
  const Lit eq = miter.eq_assumption(sv);
  const Lit diff0 = miter.diff_literal(sv, 0);
  // Equal at 0 and different at 0 is contradictory.
  EXPECT_FALSE(solver.solve({eq, diff0}));
  // Different next state is reachable via differing per-instance inputs.
  const Lit diff1 = miter.diff_literal(sv, 1);
  ASSERT_TRUE(solver.solve({eq, diff1}));
  EXPECT_TRUE(miter.differs_in_model(sv, 1));
  EXPECT_FALSE(miter.differs_in_model(sv, 0));
}

TEST(Miter, SharedPrefixBindsInstanceB) {
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  const RegHandle r = b.reg("r_q", 8);
  b.connect(r, in);
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  MiterOptions opts;
  opts.shared_prefix = true;
  Miter miter(solver, d, svt, opts);
  miter.bind_shared_prefix({svt.of_register(r.index)});
  EXPECT_EQ(miter.inst_a().reg_at(0, r.index), miter.inst_b().reg_at(0, r.index));
}

TEST(Coi, TwoCycleConeIsSmall) {
  // Chain of registers: a 2-cycle property on the head only reaches 2 stages.
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 4);
  NetId cur = in;
  std::vector<RegHandle> regs;
  for (int i = 0; i < 10; ++i) {
    RegHandle r = b.reg("r" + std::to_string(i) + "_q", 4);
    b.connect(r, cur);
    regs.push_back(r);
    cur = r.q;
  }
  rtlir::StateVarTable svt(d);
  const auto coi = cone_of_influence(d, svt, {regs[9].q}, 2);
  // Reaches r9 (root), r8, r7 — exactly three state variables.
  EXPECT_EQ(coi.state_vars.size(), 3u);
  EXPECT_LT(coi.reachable_nets, d.num_nets());
}

} // namespace
} // namespace upec::encode
