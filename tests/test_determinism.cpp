// Multi-threaded verification must be bit-identical to single-threaded.
//
// The scheduler's guarantee (ipc/scheduler.h): the per-iteration
// counterexample sets are semantic — {sv : diff(sv) satisfiable} — so
// verdicts, iteration shapes, leaking-variable sets and frame counts cannot
// depend on the thread count, worker partition, or CDCL model order. These
// tests pin that contract on both headline workloads (vulnerable baseline,
// secure countermeasure) for Alg. 1 and Alg. 2.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>

#include "upec/report.h"

namespace upec {
namespace {

soc::Soc small_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

VerifyOptions with_threads(VerifyOptions options, unsigned threads) {
  options.threads = threads;
  return options;
}

VerifyOptions with_sharing(VerifyOptions options, unsigned threads, bool share) {
  options.threads = threads;
  options.share_clauses = share;
  return options;
}

// S_pers restricted to the Sec 4.1 scenario (accelerator + public memory),
// mirroring test_upec.
VerifyOptions hwpe_scenario_options(const soc::Soc& soc) {
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  return options;
}

void expect_same_alg1(const Alg1Result& seq, const Alg1Result& par) {
  EXPECT_EQ(seq.verdict, par.verdict);
  ASSERT_EQ(seq.iterations.size(), par.iterations.size());
  for (std::size_t i = 0; i < seq.iterations.size(); ++i) {
    const IterationLog& a = seq.iterations[i];
    const IterationLog& b = par.iterations[i];
    EXPECT_EQ(a.s_size, b.s_size) << "iteration " << i;
    EXPECT_EQ(a.cex_size, b.cex_size) << "iteration " << i;
    EXPECT_EQ(a.pers_hits, b.pers_hits) << "iteration " << i;
    EXPECT_EQ(a.status, b.status) << "iteration " << i;
    EXPECT_EQ(a.removed, b.removed) << "iteration " << i;  // sorted in both modes
  }
  EXPECT_EQ(seq.persistent_hits, par.persistent_hits);
  EXPECT_EQ(seq.full_cex, par.full_cex);
  EXPECT_EQ(seq.final_s == par.final_s, true);
  EXPECT_EQ(seq.waveform.has_value(), par.waveform.has_value());
}

TEST(Determinism, VulnerableAlg1IdenticalAcrossThreadCounts) {
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_threads({}, 1));
  const Alg1Result par = verify_2cycle(soc, with_threads({}, 4));
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  expect_same_alg1(seq, par);
  EXPECT_TRUE(seq.stats.per_worker.empty());
  EXPECT_EQ(par.stats.per_worker.size(), 4u);
}

TEST(Determinism, SecureAlg1IdenticalAcrossThreadCounts) {
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_threads(countermeasure_options(), 1));
  const Alg1Result par = verify_2cycle(soc, with_threads(countermeasure_options(), 4));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  expect_same_alg1(seq, par);
}

TEST(Determinism, SecureAlg1AlsoMatchesOddThreadCount) {
  // The partition (round-robin over W chunks) must not leak into results:
  // W=3 splits every iteration differently than W=4 yet must agree.
  const soc::Soc soc = small_soc();
  const Alg1Result a = verify_2cycle(soc, with_threads(countermeasure_options(), 3));
  const Alg1Result b = verify_2cycle(soc, with_threads(countermeasure_options(), 4));
  expect_same_alg1(a, b);
}

TEST(Determinism, SecureClauseSharingToggleIdenticalAcrossThreadCounts) {
  // Imported clauses are implied by the shared store, so toggling sharing —
  // and the thread count with it — can change how fast each chunk's verdict
  // is reached, never which verdict. The secure workload is the UNSAT-heavy
  // one where sharing actually moves the search around.
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_sharing(countermeasure_options(), 1, false));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  for (unsigned threads : {3u, 4u}) {
    for (bool share : {false, true}) {
      const Alg1Result par =
          verify_2cycle(soc, with_sharing(countermeasure_options(), threads, share));
      SCOPED_TRACE("threads=" + std::to_string(threads) + " share=" + std::to_string(share));
      expect_same_alg1(seq, par);
    }
  }
}

TEST(Determinism, VulnerableClauseSharingToggleIdentical) {
  // Same toggle on the vulnerable baseline: the saturated counterexample
  // frontiers (SAT-side harvesting) must not react to sharing either.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result seq = verify_2cycle(soc, with_sharing({}, 1, false), opts);
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  for (bool share : {false, true}) {
    const Alg1Result par = verify_2cycle(soc, with_sharing({}, 4, share), opts);
    SCOPED_TRACE(share ? "sharing on" : "sharing off");
    expect_same_alg1(seq, par);
  }
}

VerifyOptions with_incremental(VerifyOptions options, unsigned threads, bool incremental) {
  options.threads = threads;
  options.incremental_sweeps = incremental;
  options.verdict_cache = incremental;
  return options;
}

TEST(Determinism, SecureIncrementalToggleIdenticalAcrossThreadCounts) {
  // Persistent-activation sweeps, the verdict cache and core pruning only
  // remove re-proving work; the semantic frontiers cannot react to either
  // toggle or to the thread count. Baseline is the legacy re-encode path.
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_incremental(countermeasure_options(), 1, false));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  for (unsigned threads : {1u, 3u, 4u}) {
    const Alg1Result par =
        verify_2cycle(soc, with_incremental(countermeasure_options(), threads, true));
    SCOPED_TRACE("threads=" + std::to_string(threads) + " incremental=on");
    expect_same_alg1(seq, par);
  }
}

TEST(Determinism, VulnerableIncrementalToggleIdentical) {
  // Same toggle on the vulnerable baseline: SAT-side counterexample
  // harvesting must not react to persistent activation or cached UNSATs.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result seq = verify_2cycle(soc, with_incremental({}, 1, false), opts);
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  for (unsigned threads : {1u, 4u}) {
    const Alg1Result par = verify_2cycle(soc, with_incremental({}, threads, true), opts);
    SCOPED_TRACE("threads=" + std::to_string(threads) + " incremental=on");
    expect_same_alg1(seq, par);
  }
}

VerifyOptions with_portfolio(VerifyOptions options, unsigned threads, unsigned members) {
  options.threads = threads;
  options.portfolio = members;
  return options;
}

TEST(Determinism, SecurePortfolioToggleIdenticalAcrossThreadCounts) {
  // Portfolio racing changes which member answers first, never which answer
  // comes back: SAT models are validated/harvested against the snapshot and
  // UNSAT is sound from any member. The frontiers must be bit-identical with
  // the portfolio on or off, at any thread count.
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_threads(countermeasure_options(), 1));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  for (unsigned threads : {1u, 3u}) {
    const Alg1Result par =
        verify_2cycle(soc, with_portfolio(countermeasure_options(), threads, 2));
    SCOPED_TRACE("threads=" + std::to_string(threads) + " portfolio=2");
    expect_same_alg1(seq, par);
  }
}

TEST(Determinism, VulnerablePortfolioToggleIdentical) {
  // Same toggle on the vulnerable baseline: racing must not change which
  // counterexample frontier the saturation converges on.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result seq = verify_2cycle(soc, with_threads({}, 1), opts);
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  for (unsigned threads : {1u, 4u}) {
    const Alg1Result par = verify_2cycle(soc, with_portfolio({}, threads, 2), opts);
    SCOPED_TRACE("threads=" + std::to_string(threads) + " portfolio=2");
    expect_same_alg1(seq, par);
  }
}

VerifyOptions with_preprocess(VerifyOptions options, unsigned threads, bool preprocess) {
  options.threads = threads;
  options.preprocess = preprocess;
  return options;
}

TEST(Determinism, SecurePreprocessToggleIdenticalAcrossThreadCounts) {
  // Snapshot preprocessing rewrites only what workers hydrate, under the
  // frozen-variable contract: every assumed or harvested literal survives
  // verbatim and all other rewriting is consequence-only. Frontiers and
  // verdicts therefore cannot react to the toggle or the thread count. The
  // legacy single-solver run (threads = 1, preprocessing inert) is the
  // baseline the whole matrix must match.
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_preprocess(countermeasure_options(), 1, false));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  for (unsigned threads : {1u, 3u, 4u}) {
    for (bool preprocess : {false, true}) {
      const Alg1Result par =
          verify_2cycle(soc, with_preprocess(countermeasure_options(), threads, preprocess));
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " preprocess=" + std::to_string(preprocess));
      expect_same_alg1(seq, par);
      if (preprocess && threads > 1) {
        // The simplifier really ran, shrank the formula, and never touched a
        // frozen variable (the soundness tripwire).
        EXPECT_GE(par.stats.simplify.runs, 1u);
        EXPECT_GT(par.stats.simplify.eliminated_vars, 0u);
        EXPECT_EQ(par.stats.simplify.frozen_eliminations, 0u);
        EXPECT_LT(par.stats.simplify.output_clauses, par.stats.simplify.input_clauses);
      } else if (threads == 1) {
        EXPECT_EQ(par.stats.simplify.runs, 0u);  // no scheduler, no preprocessing
      }
    }
  }
}

TEST(Determinism, VulnerablePreprocessToggleIdentical) {
  // Same toggle on the vulnerable baseline: SAT-side counterexample
  // harvesting reads frozen diff literals only, so saturated frontiers must
  // not react to which model the simplified search happens to find.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result seq = verify_2cycle(soc, with_preprocess({}, 1, false), opts);
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  for (unsigned threads : {1u, 4u}) {
    for (bool preprocess : {false, true}) {
      const Alg1Result par = verify_2cycle(soc, with_preprocess({}, threads, preprocess), opts);
      SCOPED_TRACE("threads=" + std::to_string(threads) +
                   " preprocess=" + std::to_string(preprocess));
      expect_same_alg1(seq, par);
    }
  }
}

TEST(Determinism, VulnerableAlg2PreprocessToggleIdentical) {
  // Alg. 2 grows the store every frame, so each frame forces a fresh
  // simplified generation and a worker rebuild — the store-identity reset
  // path. Results must still match the unpreprocessed run exactly.
  const soc::Soc soc = small_soc();
  const Alg2Result off = verify_unrolled(soc, with_preprocess(hwpe_scenario_options(soc), 4, false));
  const Alg2Result on = verify_unrolled(soc, with_preprocess(hwpe_scenario_options(soc), 4, true));
  ASSERT_EQ(off.verdict, Verdict::Vulnerable);
  EXPECT_EQ(off.verdict, on.verdict);
  EXPECT_EQ(off.final_k, on.final_k);
  ASSERT_EQ(off.steps.size(), on.steps.size());
  for (std::size_t i = 0; i < off.steps.size(); ++i) {
    EXPECT_EQ(off.steps[i].k, on.steps[i].k) << "step " << i;
    EXPECT_EQ(off.steps[i].iteration.removed, on.steps[i].iteration.removed) << "step " << i;
  }
  EXPECT_EQ(off.persistent_hits, on.persistent_hits);
  EXPECT_EQ(off.full_cex, on.full_cex);
  EXPECT_EQ(on.stats.simplify.frozen_eliminations, 0u);
}

TEST(Determinism, VulnerableAlg2IdenticalAcrossThreadCounts) {
  const soc::Soc soc = small_soc();
  const Alg2Result seq = verify_unrolled(soc, with_threads(hwpe_scenario_options(soc), 1));
  const Alg2Result par = verify_unrolled(soc, with_threads(hwpe_scenario_options(soc), 4));
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  EXPECT_EQ(seq.verdict, par.verdict);
  EXPECT_EQ(seq.final_k, par.final_k);
  ASSERT_EQ(seq.steps.size(), par.steps.size());
  for (std::size_t i = 0; i < seq.steps.size(); ++i) {
    EXPECT_EQ(seq.steps[i].k, par.steps[i].k) << "step " << i;
    EXPECT_EQ(seq.steps[i].iteration.s_size, par.steps[i].iteration.s_size) << "step " << i;
    EXPECT_EQ(seq.steps[i].iteration.removed, par.steps[i].iteration.removed) << "step " << i;
  }
  EXPECT_EQ(seq.persistent_hits, par.persistent_hits);
  EXPECT_EQ(seq.full_cex, par.full_cex);
  EXPECT_EQ(seq.waveform.has_value(), par.waveform.has_value());
}

VerifyOptions with_trace(VerifyOptions options, unsigned threads, const std::string& path) {
  options.threads = threads;
  options.trace_path = path;
  return options;
}

TEST(Determinism, VulnerableTraceToggleIdentical) {
  // Tracing only records — spans and counters observe the run without
  // synchronizing it differently or touching the solvers. Verdicts and
  // frontiers must be bit-identical with the trace session on or off, at any
  // thread count.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result seq = verify_2cycle(soc, with_threads({}, 1), opts);
  ASSERT_EQ(seq.verdict, Verdict::Vulnerable);
  for (unsigned threads : {1u, 4u}) {
    const std::string path = ::testing::TempDir() + "upec_determinism_trace_" +
                             std::to_string(threads) + ".json";
    const Alg1Result traced = verify_2cycle(soc, with_trace({}, threads, path), opts);
    SCOPED_TRACE("threads=" + std::to_string(threads) + " trace=on");
    expect_same_alg1(seq, traced);
  }
}

VerifyOptions with_progress(VerifyOptions options, unsigned threads, std::uint64_t every) {
  options.threads = threads;
  options.progress_conflicts = every;
  return options;
}

TEST(Determinism, SecureProgressToggleIdentical) {
  // The progress hook samples counters the solver already maintains and the
  // deadline clock only inside the callback — it must never steer the
  // search. Secure (UNSAT-heavy) workload, heartbeats on main and workers.
  const soc::Soc soc = small_soc();
  const Alg1Result seq = verify_2cycle(soc, with_threads(countermeasure_options(), 1));
  ASSERT_EQ(seq.verdict, Verdict::Secure);
  for (unsigned threads : {1u, 4u}) {
    VerifyOptions options = with_progress(countermeasure_options(), threads, 512);
    std::atomic<std::uint64_t> heartbeats{0};
    options.progress = [&heartbeats](const ProgressEvent&) { ++heartbeats; };
    const Alg1Result par = verify_2cycle(soc, std::move(options));
    SCOPED_TRACE("threads=" + std::to_string(threads) + " progress=on");
    expect_same_alg1(seq, par);
    EXPECT_GT(heartbeats.load(), 0u);
  }
}

TEST(Determinism, NonSaturatingModeBypassesSchedulerAndStaysIdentical) {
  // saturate_cex = false is a single-model ablation; it must run on the main
  // solver even under threads > 1 so its (model-order-dependent) results
  // cannot diverge across thread counts.
  const soc::Soc soc = small_soc();
  Alg1Options opts;
  opts.saturate_cex = false;
  opts.extract_waveform = false;

  UpecContext seq_ctx(soc, with_threads({}, 1));
  UpecContext par_ctx(soc, with_threads({}, 4));
  const Alg1Result seq = run_alg1(seq_ctx, opts);
  const Alg1Result par = run_alg1(par_ctx, opts);
  expect_same_alg1(seq, par);
  // No sweep ran on the workers.
  std::uint64_t worker_solves = 0;
  for (const auto& w : par.stats.per_worker) worker_solves += w.solve_calls;
  EXPECT_EQ(worker_solves, 0u);
}

TEST(Determinism, WorkerBreakdownAppearsInReport) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc, with_threads(hwpe_scenario_options(soc), 2));
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result result = run_alg1(ctx, opts);
  ASSERT_EQ(result.stats.per_worker.size(), 2u);
  // Workers actually solved (the sweep ran there, not on the main solver).
  std::uint64_t worker_solves = 0;
  for (const auto& w : result.stats.per_worker) worker_solves += w.solve_calls;
  EXPECT_GT(worker_solves, 0u);
  const std::string report = render_report(ctx, result);
  EXPECT_NE(report.find("+ 2 workers"), std::string::npos) << report;
  EXPECT_NE(report.find("worker 1:"), std::string::npos) << report;
}

} // namespace
} // namespace upec
