// Formal micro-properties of the SoC fabric, checked exhaustively over
// symbolic inputs and symbolic starting states with the same encoder the
// UPEC-SSC proofs use — one-hot arbitration, routing consistency, and
// protocol invariants that the higher-level security proofs rely on.
#include <gtest/gtest.h>
#include "sat/solver.h"

#include "encode/unroller.h"
#include "ipc/invariant.h"
#include "soc/pulpissimo.h"

namespace upec {
namespace {

soc::SocConfig small() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return cfg;
}

class SocFormal : public ::testing::Test {
protected:
  SocFormal()
      : soc_(soc::build_pulpissimo(small())),
        svt_(*soc_.design),
        cnf_(solver_),
        inst_(cnf_, *soc_.design, svt_, "f") {}

  // True iff the 1-bit probes can simultaneously take the given values for
  // SOME input/state assignment at frame `f`.
  bool satisfiable(const std::vector<std::pair<std::string, bool>>& shape, unsigned f = 0) {
    std::vector<sat::Lit> as;
    for (const auto& [name, val] : shape) {
      const rtlir::NetId net = soc_.design->find_output(name);
      EXPECT_NE(net, rtlir::kNullNet) << name;
      const encode::Bits& image = inst_.net_at(f, net);
      as.push_back(val ? image[0] : ~image[0]);
    }
    return solver_.solve(as);
  }

  soc::Soc soc_;
  rtlir::StateVarTable svt_;
  sat::Solver solver_;
  encode::CnfBuilder cnf_;
  encode::UnrolledInstance inst_;
};

TEST_F(SocFormal, GrantsArePerSlaveOneHot) {
  // For every public-crossbar slave, no two masters can be granted at once —
  // exhaustive over all inputs and all (even unreachable) states.
  // Re-build the SoC with grant probes exported.
  soc::Soc s = soc::build_pulpissimo(small());
  // Grants are internal; verify via the xbar structure instead: encode the
  // merged request's well-formedness — for slave 0, the granted master count
  // is <= 1 by construction of the priority chain. We check the observable
  // consequence: cpu_gnt and hwpe_gnt_pub cannot both be true while both
  // target the public RAM. Conservative observable: if HWPE is granted on the
  // public crossbar in the same cycle the CPU is granted, the CPU's grant
  // must come from a *different* slave (the private crossbar or another
  // peripheral); with the CPU addressing the public RAM it is impossible.
  const rtlir::NetId cpu_gnt = soc_.design->find_output(soc::probe::kCpuGnt);
  const rtlir::NetId hwpe_gnt = soc_.design->find_output(soc::probe::kHwpeGntPub);
  const rtlir::NetId hwpe_busy = soc_.design->find_output(soc::probe::kHwpeBusy);
  ASSERT_NE(cpu_gnt, rtlir::kNullNet);

  // Pin the CPU request to the pub-RAM base and the HWPE DST likewise.
  const rtlir::Design& d = *soc_.design;
  std::uint32_t in_req = 0, in_addr = 0;
  for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
    const std::string& n = d.net(d.inputs()[i].net).name;
    if (n == "soc.cpu.req") in_req = i;
    if (n == "soc.cpu.addr") in_addr = i;
  }
  const std::uint32_t pub = soc_.map.region(soc::AddrMap::kPubRam).base;
  std::vector<sat::Lit> as;
  const encode::Bits& req = inst_.input_at(0, in_req);
  const encode::Bits& addr = inst_.input_at(0, in_addr);
  as.push_back(req[0]);
  for (unsigned i = 0; i < 32; ++i) as.push_back((pub >> i) & 1 ? addr[i] : ~addr[i]);
  const auto dst = static_cast<std::uint32_t>(d.find_register("soc.hwpe.dst_q"));
  const auto prog = static_cast<std::uint32_t>(d.find_register("soc.hwpe.progress_q"));
  const encode::Bits& dstv = inst_.reg_at(0, dst);
  const encode::Bits& progv = inst_.reg_at(0, prog);
  for (unsigned i = 0; i < 32; ++i) as.push_back((pub >> i) & 1 ? dstv[i] : ~dstv[i]);
  for (unsigned i = 0; i < 16; ++i) as.push_back(~progv[i]); // progress = 0
  as.push_back(inst_.net_at(0, hwpe_busy)[0]);
  as.push_back(inst_.net_at(0, hwpe_gnt)[0]); // HWPE granted...
  as.push_back(inst_.net_at(0, cpu_gnt)[0]);  // ...and CPU granted too?
  EXPECT_FALSE(solver_.solve(as))
      << "CPU and HWPE cannot both win the public-RAM arbitration";
}

TEST_F(SocFormal, CpuPriorityOverHwpe) {
  // Whenever the CPU requests the public RAM, it is granted — regardless of
  // any other master's behavior (fixed priority, index 0).
  const rtlir::Design& d = *soc_.design;
  std::uint32_t in_req = 0, in_addr = 0;
  for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
    const std::string& n = d.net(d.inputs()[i].net).name;
    if (n == "soc.cpu.req") in_req = i;
    if (n == "soc.cpu.addr") in_addr = i;
  }
  const std::uint32_t pub = soc_.map.region(soc::AddrMap::kPubRam).base;
  std::vector<sat::Lit> as;
  const encode::Bits& req = inst_.input_at(0, in_req);
  const encode::Bits& addr = inst_.input_at(0, in_addr);
  as.push_back(req[0]);
  for (unsigned i = 0; i < 32; ++i) as.push_back((pub >> i) & 1 ? addr[i] : ~addr[i]);
  const rtlir::NetId cpu_gnt = soc_.design->find_output(soc::probe::kCpuGnt);
  as.push_back(~inst_.net_at(0, cpu_gnt)[0]); // CPU denied?
  EXPECT_FALSE(solver_.solve(as)) << "the CPU has top priority on every slave";
}

TEST_F(SocFormal, HwpeProgressNeverExceedsLen) {
  // Inductive invariant: running -> progress < len. This is the functional
  // backbone of the attack analysis (PROGRESS counts written words).
  const rtlir::Design& d = *soc_.design;
  const auto prog = static_cast<std::uint32_t>(d.find_register("soc.hwpe.progress_q"));
  const auto len = static_cast<std::uint32_t>(d.find_register("soc.hwpe.len_q"));
  const auto running = static_cast<std::uint32_t>(d.find_register("soc.hwpe.running_q"));
  ipc::Invariant inv;
  inv.name = "hwpe: running -> progress < len";
  inv.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    const encode::Lit lt = cnf.v_ult(inst.reg_at(f, prog), inst.reg_at(f, len));
    return cnf.or2(~inst.reg_at(f, running)[0], lt);
  };
  EXPECT_EQ(ipc::check_inductive(d, svt_, inv), "");
}

TEST_F(SocFormal, DmaStateEncodingClosed) {
  // The DMA FSM never leaves its 4 defined states (trivially true for a
  // 2-bit register, kept as a template for wider FSMs) and, inductively,
  // an idle DMA never raises its done pulse two cycles later without a
  // transfer in between: done_q -> previous cycle was a write-grant.
  const rtlir::Design& d = *soc_.design;
  const auto done = static_cast<std::uint32_t>(d.find_register("soc.dma.done_q"));
  const auto state = static_cast<std::uint32_t>(d.find_register("soc.dma.state_q"));
  // From any state with DMA idle at t, done_q cannot be set at t+2 unless the
  // FSM left idle in between — i.e. idle at t and idle at t+1 implies no done
  // at t+2. (The FSM needs >= 2 cycles from idle to a completed word.)
  std::vector<sat::Lit> as;
  as.push_back(cnf_.v_eq(inst_.reg_at(0, state), cnf_.constant_vec(BitVec(2, 0))));
  as.push_back(cnf_.v_eq(inst_.reg_at(1, state), cnf_.constant_vec(BitVec(2, 0))));
  as.push_back(inst_.reg_at(2, done)[0]);
  EXPECT_FALSE(solver_.solve(as));
}

TEST_F(SocFormal, SramDataPathIsolation) {
  // Write data cannot teleport between the two RAM banks within one cycle:
  // from equal starting states, a private-RAM write leaves the public bank
  // identical (checked per word on a small bank, exhaustively).
  // This is the structural separation the countermeasure builds on.
  const rtlir::Design& d = *soc_.design;
  // Pin the private xbar staged request to a write; ask for any public word
  // to change.
  const auto sreq = static_cast<std::uint32_t>(d.find_register("soc.xbar_priv.s0.sreq_q"));
  const auto swe = static_cast<std::uint32_t>(d.find_register("soc.xbar_priv.s0.swe_q"));
  const auto pub_sreq = static_cast<std::uint32_t>(d.find_register("soc.xbar_pub.s0.sreq_q"));
  std::vector<sat::Lit> as;
  as.push_back(inst_.reg_at(0, sreq)[0]);
  as.push_back(inst_.reg_at(0, swe)[0]);
  as.push_back(~inst_.reg_at(0, pub_sreq)[0]); // no staged public access
  // Some public word differs between t and t+1?
  std::vector<sat::Lit> changed;
  for (std::uint32_t w = 0; w < small().pub_ram_words; ++w) {
    const encode::Bits& now = inst_.mem_word_at(0, soc_.pub_ram_mem, w);
    const encode::Bits& next = inst_.mem_word_at(1, soc_.pub_ram_mem, w);
    changed.push_back(~cnf_.v_eq(now, next));
  }
  as.push_back(cnf_.or_all(changed));
  EXPECT_FALSE(solver_.solve(as))
      << "a private write must not modify the public bank";
}

} // namespace
} // namespace upec
