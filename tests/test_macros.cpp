// SAT-level semantics of the UPEC-SSC property macros: what
// Victim_Task_Executing permits and forbids, the symbolic victim range
// well-formedness, and the per-word exemption condition.
#include <gtest/gtest.h>

#include "upec/engine.h"

namespace upec {
namespace {

class Macros : public ::testing::Test {
protected:
  Macros()
      : soc_(soc::build_pulpissimo(small())),
        ctx_(soc_) {}

  static soc::SocConfig small() {
    soc::SocConfig cfg;
    cfg.pub_ram_words = 16;
    cfg.priv_ram_words = 8;
    return cfg;
  }

  // CPU interface images of both instances at frame 0.
  struct CpuPair {
    encode::Bits req_a, addr_a, we_a, wdata_a;
    encode::Bits req_b, addr_b, we_b, wdata_b;
  };
  CpuPair cpu_pair() {
    const rtlir::Design& d = *soc_.design;
    auto idx = [&](const char* name) -> std::uint32_t {
      for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
        if (d.net(d.inputs()[i].net).name == name) return i;
      }
      throw std::runtime_error("input?");
    };
    CpuPair p;
    p.req_a = ctx_.miter.inst_a().input_at(0, idx("soc.cpu.req"));
    p.addr_a = ctx_.miter.inst_a().input_at(0, idx("soc.cpu.addr"));
    p.we_a = ctx_.miter.inst_a().input_at(0, idx("soc.cpu.we"));
    p.wdata_a = ctx_.miter.inst_a().input_at(0, idx("soc.cpu.wdata"));
    p.req_b = ctx_.miter.inst_b().input_at(0, idx("soc.cpu.req"));
    p.addr_b = ctx_.miter.inst_b().input_at(0, idx("soc.cpu.addr"));
    p.we_b = ctx_.miter.inst_b().input_at(0, idx("soc.cpu.we"));
    p.wdata_b = ctx_.miter.inst_b().input_at(0, idx("soc.cpu.wdata"));
    return p;
  }

  void pin(const encode::Bits& image, std::uint64_t v, std::vector<encode::Lit>& as) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      as.push_back((v >> i) & 1 ? image[i] : ~image[i]);
    }
  }

  soc::Soc soc_;
  UpecContext ctx_;
};

TEST_F(Macros, ProtectedAccessesMayDiffer) {
  // A accesses a private-RAM word, B idles: allowed when the victim range
  // covers that word.
  const CpuPair p = cpu_pair();
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t priv = soc_.map.region(soc::AddrMap::kPrivRam).base;
  pin(p.req_a, 1, as);
  pin(p.addr_a, priv + 4, as);
  pin(p.req_b, 0, as);
  EXPECT_TRUE(ctx_.solver.solve(as));
}

TEST_F(Macros, NonProtectedAccessesForcedEqual) {
  // A makes a peripheral access (never inside the victim range), B idles:
  // VTE must reject the pair.
  const CpuPair p = cpu_pair();
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t gpio = soc_.map.region(soc::AddrMap::kGpio).base;
  pin(p.req_a, 1, as);
  pin(p.addr_a, gpio, as);
  pin(p.req_b, 0, as);
  EXPECT_FALSE(ctx_.solver.solve(as));
}

TEST_F(Macros, NonProtectedPayloadForcedEqual) {
  // Both access the same non-protected address but with different data.
  const CpuPair p = cpu_pair();
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t gpio = soc_.map.region(soc::AddrMap::kGpio).base;
  pin(p.req_a, 1, as);
  pin(p.addr_a, gpio, as);
  pin(p.we_a, 1, as);
  pin(p.wdata_a, 0x1111, as);
  pin(p.req_b, 1, as);
  pin(p.addr_b, gpio, as);
  pin(p.we_b, 1, as);
  pin(p.wdata_b, 0x2222, as);
  EXPECT_FALSE(ctx_.solver.solve(as));
}

TEST_F(Macros, EqualNonProtectedTrafficAccepted) {
  const CpuPair p = cpu_pair();
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t gpio = soc_.map.region(soc::AddrMap::kGpio).base;
  for (auto* image : {&p.req_a, &p.req_b}) pin(*image, 1, as);
  for (auto* image : {&p.addr_a, &p.addr_b}) pin(*image, gpio, as);
  for (auto* image : {&p.we_a, &p.we_b}) pin(*image, 1, as);
  for (auto* image : {&p.wdata_a, &p.wdata_b}) pin(*image, 0x77, as);
  EXPECT_TRUE(ctx_.solver.solve(as));
}

TEST_F(Macros, VictimRangeConfinedToAllowedRegions) {
  // The symbolic range cannot start in a peripheral block.
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t timer = soc_.map.region(soc::AddrMap::kTimer).base;
  pin(ctx_.macros.victim_lo(), timer, as);
  EXPECT_FALSE(ctx_.solver.solve(as));
}

TEST_F(Macros, VictimRangeMustBeOrdered) {
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t pub = soc_.map.region(soc::AddrMap::kPubRam).base;
  pin(ctx_.macros.victim_lo(), pub + 8, as);
  pin(ctx_.macros.victim_hi(), pub + 4, as); // hi < lo
  EXPECT_FALSE(ctx_.solver.solve(as));
}

TEST_F(Macros, VictimRangeCannotSpanRegions) {
  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  const std::uint32_t priv = soc_.map.region(soc::AddrMap::kPrivRam).base;
  const std::uint32_t pub = soc_.map.region(soc::AddrMap::kPubRam).base;
  pin(ctx_.macros.victim_lo(), priv, as);
  pin(ctx_.macros.victim_hi(), pub + 4, as);
  EXPECT_FALSE(ctx_.solver.solve(as));
}

TEST_F(Macros, ExemptionCoversExactlyTheRange) {
  // Pin the range to the first two private words; word 0 must be exemptable,
  // word 4 must not.
  const std::uint32_t priv = soc_.map.region(soc::AddrMap::kPrivRam).base;
  const rtlir::StateVarId w0 = rtlir::StateVarTable(*soc_.design).of_mem_word(
      soc_.priv_ram_mem, 0);
  const rtlir::StateVarId w4 = rtlir::StateVarTable(*soc_.design).of_mem_word(
      soc_.priv_ram_mem, 4);
  const encode::Lit ex0 = ctx_.miter.exempt_lit(w0);
  const encode::Lit ex4 = ctx_.miter.exempt_lit(w4);

  std::vector<encode::Lit> as = ctx_.macros.assumptions(1);
  pin(ctx_.macros.victim_lo(), priv, as);
  pin(ctx_.macros.victim_hi(), priv + 7, as);
  auto with = [&](encode::Lit extra) {
    std::vector<encode::Lit> v = as;
    v.push_back(extra);
    return v;
  };
  EXPECT_TRUE(ctx_.solver.solve(with(ex0))) << "word 0 is inside the range";
  EXPECT_FALSE(ctx_.solver.solve(with(~ex0))) << "word 0 cannot be non-exempt";
  EXPECT_FALSE(ctx_.solver.solve(with(ex4))) << "word 4 is outside the range";
}

TEST_F(Macros, RegistersAreNeverExempt) {
  const rtlir::StateVarTable svt(*soc_.design);
  const auto reg = static_cast<std::uint32_t>(soc_.design->find_register("soc.hwpe.progress_q"));
  const encode::Lit ex = ctx_.miter.exempt_lit(svt.of_register(reg));
  EXPECT_TRUE(ctx_.miter.cnf().is_false(ex));
}

TEST_F(Macros, PostVictimFramesForceEqualInterfaces) {
  // Frame 2 is outside the "during t..t+1" victim window: requests must be
  // identical across instances.
  const rtlir::Design& d = *soc_.design;
  std::uint32_t in_req = 0;
  for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
    if (d.net(d.inputs()[i].net).name == "soc.cpu.req") in_req = i;
  }
  std::vector<encode::Lit> as = ctx_.macros.assumptions(3);
  pin(ctx_.miter.inst_a().input_at(2, in_req), 1, as);
  pin(ctx_.miter.inst_b().input_at(2, in_req), 0, as);
  EXPECT_FALSE(ctx_.solver.solve(as));
}

} // namespace
} // namespace upec
