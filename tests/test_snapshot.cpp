// The shared clause database under the multi-solver architecture:
// CnfStore/CnfSnapshot recording + hydration, TeeSink lockstep, the
// InprocBackend sync protocol, and the snapshot DIMACS export of a full
// miter encoding (round-tripped through read_dimacs and cross-checked
// against an in-process solve of the same query).
#include <gtest/gtest.h>

#include <sstream>

#include "encode/miter.h"
#include "rtlir/builder.h"
#include "sat/backend.h"
#include "sat/dimacs.h"
#include "sat/snapshot.h"

namespace upec {
namespace {

using sat::Lit;
using sat::Var;

TEST(CnfStore, RecordsVarsAndClauses) {
  sat::CnfStore store;
  const Var a = store.new_var();
  const Var b = store.new_var();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(store.num_vars(), 2);
  EXPECT_TRUE(store.add_clause(Lit(a, false), Lit(b, true)));
  store.add_clause(Lit(b, false));
  EXPECT_EQ(store.num_clauses(), 2u);

  std::vector<std::vector<Lit>> seen;
  store.snapshot().for_each_clause([&](const std::vector<Lit>& c) { seen.push_back(c); });
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0], (std::vector<Lit>{Lit(a, false), Lit(b, true)}));
  EXPECT_EQ(seen[1], (std::vector<Lit>{Lit(b, false)}));
}

TEST(CnfSnapshot, BoundsAreImmutableWhileStoreGrows) {
  sat::CnfStore store;
  const Var a = store.new_var();
  store.add_clause(Lit(a, false));
  const sat::CnfSnapshot snap = store.snapshot();

  const Var b = store.new_var();
  store.add_clause(Lit(b, true));
  EXPECT_EQ(snap.num_vars(), 1);
  EXPECT_EQ(snap.num_clauses(), 1u);
  EXPECT_EQ(store.num_vars(), 2);
  EXPECT_EQ(store.num_clauses(), 2u);

  sat::Solver solver;
  snap.load_into(solver);
  EXPECT_EQ(solver.num_vars(), 1);
}

TEST(CnfSnapshot, CursorReplaysOnlyTheDelta) {
  sat::CnfStore store;
  const Var a = store.new_var();
  const Var b = store.new_var();
  store.add_clause(Lit(a, false), Lit(b, false));

  sat::Solver solver;
  sat::CnfSnapshot::Cursor cursor;
  EXPECT_TRUE(store.snapshot().load_into(solver, cursor));
  EXPECT_EQ(solver.num_vars(), 2);
  EXPECT_TRUE(solver.solve({}));

  // Grow the store; a second sync must only replay the new suffix (the
  // cursor-advanced solver would go inconsistent if clauses were replayed
  // twice into freshly created duplicate variables).
  const Var c = store.new_var();
  store.add_clause(Lit(c, false));
  store.add_clause(Lit(a, true));
  EXPECT_TRUE(store.snapshot().load_into(solver, cursor));
  EXPECT_EQ(solver.num_vars(), 3);
  EXPECT_EQ(cursor.clauses, 3u);
  ASSERT_TRUE(solver.solve({}));
  EXPECT_FALSE(solver.model_value(a));
  EXPECT_TRUE(solver.model_value(b));
  EXPECT_TRUE(solver.model_value(c));
}

TEST(TeeSink, KeepsSolverAndStoreInLockstep) {
  sat::CnfStore store;
  sat::Solver solver;
  sat::TeeSink tee(solver, store);

  const Var a = tee.new_var();
  const Var b = tee.new_var();
  tee.add_clause(Lit(a, false), Lit(b, false));
  tee.add_clause(Lit(a, true), Lit(b, true));
  EXPECT_EQ(solver.num_vars(), store.num_vars());
  EXPECT_EQ(store.num_clauses(), 2u);

  // A solver hydrated from the store answers exactly like the tee'd one.
  sat::Solver replica;
  store.snapshot().load_into(replica);
  for (const bool a_true : {false, true}) {
    const std::vector<Lit> as{Lit(a, !a_true)};
    EXPECT_EQ(solver.solve(as), replica.solve(as));
  }
}

TEST(InprocBackend, SyncSolveAndModel) {
  sat::CnfStore store;
  const Var a = store.new_var();
  const Var b = store.new_var();
  store.add_clause(Lit(a, false), Lit(b, false));

  sat::InprocBackend backend;
  backend.sync(store.snapshot());
  EXPECT_EQ(backend.solve({Lit(a, true)}), sat::SolveStatus::Sat);
  EXPECT_TRUE(backend.model_value(Lit(b, false)));

  store.add_clause(Lit(b, true));
  backend.sync(store.snapshot());
  EXPECT_EQ(backend.solve({Lit(a, true)}), sat::SolveStatus::Unsat);
  EXPECT_GE(backend.stats().solve_calls, 2u);
}

// A two-register pipeline a_q <- x, b_q <- a_q, encoded as a miter into a
// pure CnfStore (no solver anywhere during encoding).
struct PipelineMiter {
  rtlir::Design design;
  std::unique_ptr<rtlir::StateVarTable> svt;
  sat::CnfStore store;
  std::unique_ptr<encode::Miter> miter;
  rtlir::StateVarId a_sv, b_sv;

  PipelineMiter() {
    rtlir::Builder b(design);
    const rtlir::NetId x = b.input("x", 1);
    const rtlir::RegHandle ra = b.reg("a_q", 1);
    const rtlir::RegHandle rb = b.reg("b_q", 1);
    b.connect(ra, x);
    b.connect(rb, ra.q);
    svt = std::make_unique<rtlir::StateVarTable>(design);
    a_sv = svt->of_register(ra.index);
    b_sv = svt->of_register(rb.index);
    miter = std::make_unique<encode::Miter>(store, design, *svt, encode::MiterOptions{});
  }
};

TEST(SnapshotDimacs, MiterExportRoundTripsAndAgreesWithInprocSolve) {
  PipelineMiter pm;
  // b_q at frame 1 is a_q at frame 0: it can differ across the instances
  // unless a_q is assumed equal.
  const Lit eq_a = pm.miter->eq_assumption(pm.a_sv);
  const Lit diff_b = pm.miter->diff_literal(pm.b_sv, 1);
  const sat::CnfSnapshot snap = pm.store.snapshot();

  const std::vector<std::vector<Lit>> queries = {
      {diff_b},        // SAT: frame-0 a_q unconstrained
      {eq_a, diff_b},  // UNSAT: a_q equal forces b_q equal at frame 1
  };
  for (const std::vector<Lit>& assumptions : queries) {
    // Reference answer: a solver hydrated straight from the snapshot.
    sat::Solver direct;
    ASSERT_TRUE(snap.load_into(direct));
    const bool expect_sat = direct.solve(assumptions);

    // DIMACS round trip with the assumptions frozen as unit clauses.
    std::ostringstream os;
    sat::write_dimacs(os, snap, assumptions);
    std::istringstream is(os.str());
    sat::Solver reread;
    ASSERT_TRUE(sat::read_dimacs(is, reread)) << os.str();
    EXPECT_EQ(reread.num_vars(), snap.num_vars());
    EXPECT_EQ(reread.okay() && reread.solve({}), expect_sat);
  }
}

TEST(SnapshotDimacs, HeaderCountsMatchBody) {
  PipelineMiter pm;
  pm.miter->diff_literal(pm.b_sv, 1);
  const sat::CnfSnapshot snap = pm.store.snapshot();
  std::ostringstream os;
  sat::write_dimacs(os, snap);

  std::istringstream is(os.str());
  std::string p, cnf;
  long vars = 0, clauses = 0;
  ASSERT_TRUE(is >> p >> cnf >> vars >> clauses);
  EXPECT_EQ(p, "p");
  EXPECT_EQ(vars, snap.num_vars());
  EXPECT_EQ(clauses, static_cast<long>(snap.num_clauses()));
}

} // namespace
} // namespace upec
