// Tests of the IPC layer: bounded checks with symbolic starting states,
// counterexample waveform extraction, and the inductive-invariant machinery
// (including the environment-constraint split used by firmware constraints).
#include <gtest/gtest.h>
#include "sat/solver.h"

#include "ipc/cex.h"
#include "ipc/engine.h"
#include "ipc/invariant.h"
#include "rtlir/builder.h"

namespace upec::ipc {
namespace {

using rtlir::Builder;
using rtlir::Design;
using rtlir::NetId;
using rtlir::RegHandle;

// A saturating counter: counts up to 200 and holds. Reset 0.
struct SatCounter {
  Design d;
  std::uint32_t reg = 0;
  NetId q = rtlir::kNullNet;

  SatCounter() {
    Builder b(d);
    RegHandle r = b.reg("cnt_q", 8);
    const NetId at_max = b.eq_const(r.q, 200);
    b.connect(r, b.mux(at_max, r.q, b.add_const(r.q, 1)));
    reg = r.index;
    q = r.q;
  }
};

TEST(Invariant, InductiveBoundHolds) {
  SatCounter c;
  rtlir::StateVarTable svt(c.d);
  Invariant inv;
  inv.name = "cnt <= 200";
  inv.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    return ~cnf.v_ult(cnf.constant_vec(BitVec(8, 200)), inst.reg_at(f, c.reg));
  };
  EXPECT_EQ(check_inductive(c.d, svt, inv), "");
}

TEST(Invariant, NonInductiveBoundRejectedAtStep) {
  SatCounter c;
  rtlir::StateVarTable svt(c.d);
  Invariant inv;
  inv.name = "cnt <= 100"; // true from reset for a while, but not inductive
  inv.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    return ~cnf.v_ult(cnf.constant_vec(BitVec(8, 100)), inst.reg_at(f, c.reg));
  };
  const std::string err = check_inductive(c.d, svt, inv);
  EXPECT_NE(err.find("not inductive"), std::string::npos) << err;
}

TEST(Invariant, ResetViolationRejectedAtBase) {
  SatCounter c;
  rtlir::StateVarTable svt(c.d);
  Invariant inv;
  inv.name = "cnt >= 1"; // false in reset
  inv.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    return cnf.v_ult(cnf.constant_vec(BitVec(8, 0)), inst.reg_at(f, c.reg));
  };
  const std::string err = check_inductive(c.d, svt, inv);
  EXPECT_NE(err.find("reset state"), std::string::npos) << err;
}

TEST(Invariant, EnvironmentConstraintEnablesInduction) {
  // r' = r | in: "r == 0" is inductive only under the environment constraint
  // "in == 0".
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  RegHandle r = b.reg("r_q", 8);
  b.connect(r, b.or_(r.q, in));
  rtlir::StateVarTable svt(d);

  Invariant without;
  without.name = "r == 0";
  without.build = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    return cnf.v_eq(inst.reg_at(f, r.index), cnf.constant_vec(BitVec(8, 0)));
  };
  EXPECT_NE(check_inductive(d, svt, without), "");

  Invariant with = without;
  with.constrain = [&](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst, unsigned f) {
    return cnf.v_eq(inst.input_at(f, 0), cnf.constant_vec(BitVec(8, 0)));
  };
  EXPECT_EQ(check_inductive(d, svt, with), "");
}

TEST(Engine, HoldsViolatedAndViolationAny) {
  // Single register copying an input; "r@1 == 0x5A is unreachable" is false.
  Design d;
  Builder b(d);
  const NetId in = b.input("in", 8);
  RegHandle r = b.reg("r_q", 8);
  b.connect(r, in);
  rtlir::StateVarTable svt(d);

  sat::Solver solver;
  encode::CnfBuilder cnf(solver);
  encode::UnrolledInstance inst(cnf, d, svt, "t");
  Engine engine(solver);

  const encode::Lit is_5a =
      cnf.v_eq(inst.reg_at(1, r.index), cnf.constant_vec(BitVec(8, 0x5A)));

  BoundedProperty reachable;
  reachable.window = 1;
  reachable.violation = engine.violation_any(cnf, {is_5a});
  EXPECT_EQ(engine.check(reachable).status, CheckStatus::Violated);

  // An unsatisfiable violation: r@1 equals the input yet differs from it.
  const encode::Lit eq_in = cnf.v_eq(inst.reg_at(1, r.index), inst.input_at(0, 0));
  BoundedProperty impossible;
  impossible.window = 1;
  impossible.violation = engine.violation_any(cnf, {cnf.and2(eq_in, ~eq_in)});
  EXPECT_EQ(engine.check(impossible).status, CheckStatus::Holds);
}

TEST(Engine, ConflictBudgetReportsUnknown) {
  // Pigeonhole 9/8 wrapped as a property with a tiny budget.
  sat::Solver solver;
  encode::CnfBuilder cnf(solver);
  Engine engine(solver);
  constexpr int P = 9, H = 8;
  std::vector<std::vector<encode::Lit>> x(P);
  for (auto& row : x) row = cnf.fresh_vec(H);
  for (int p = 0; p < P; ++p) {
    std::vector<sat::Lit> c(x[p].begin(), x[p].end());
    cnf.add_clause(c);
  }
  for (int h = 0; h < H; ++h) {
    for (int p1 = 0; p1 < P; ++p1) {
      for (int p2 = p1 + 1; p2 < P; ++p2) cnf.add_clause({~x[p1][h], ~x[p2][h]});
    }
  }
  solver.set_conflict_budget(20);
  BoundedProperty prop;
  prop.violation = cnf.lit_true();
  EXPECT_EQ(engine.check(prop).status, CheckStatus::Unknown);
}

TEST(Waveform, DivergenceMarking) {
  SignalTrace tr;
  tr.name = "x";
  tr.inst_a = {1, 2, 3};
  tr.inst_b = {1, 2, 4};
  EXPECT_TRUE(tr.diverges());
  SignalTrace same = tr;
  same.inst_b = tr.inst_a;
  EXPECT_FALSE(same.diverges());

  Waveform wf;
  wf.frames = 2;
  wf.signals = {tr, same};
  const std::string all = wf.pretty(false);
  EXPECT_NE(all.find("3/4*"), std::string::npos);
  const std::string diverging_only = wf.pretty(true);
  EXPECT_NE(diverging_only.find("x"), std::string::npos);
  // Exactly one signal row survives the filter.
  EXPECT_EQ(diverging_only.find("3/4*"), diverging_only.rfind("3/4*"));
}

} // namespace
} // namespace upec::ipc
