// sat::Simplifier: SatELite-style preprocessing over CnfSnapshots.
//
// The contracts under test (sat/simplify.h):
//  * equisatisfiability — under assumptions over frozen variables, the
//    simplified formula answers exactly like the original;
//  * frozen variables are never eliminated (the soundness tripwire);
//  * reconstruct() turns any model of the simplified formula into a model of
//    the original one;
//  * each technique actually fires on its textbook case;
//  * simplification is idempotent (a fixed point re-simplifies to itself) and
//    the generation cache reuses identical requests.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sat/simplify.h"
#include "sat/snapshot.h"
#include "sat/solver.h"

namespace upec::sat {
namespace {

Lit pos(int v) { return Lit(v, false); }
Lit neg(int v) { return Lit(v, true); }

void fill(CnfStore& store, int nvars, const std::vector<Clause>& clauses) {
  for (int v = 0; v < nvars; ++v) store.new_var();
  for (const Clause& c : clauses) store.add_clause(c);
}

bool lit_true(const std::vector<bool>& model, Lit l) {
  return model[static_cast<std::size_t>(l.var())] != l.sign();
}

bool satisfies(const std::vector<bool>& model, const std::vector<Clause>& clauses) {
  for (const Clause& c : clauses) {
    bool sat = false;
    for (Lit l : c) {
      if (lit_true(model, l)) {
        sat = true;
        break;
      }
    }
    if (!sat) return false;
  }
  return true;
}

// Solves a snapshot from scratch; nullopt = UNSAT, otherwise a full model.
std::optional<std::vector<bool>> solve(const CnfSnapshot& snap,
                                       const std::vector<Lit>& assumptions = {}) {
  Solver solver;
  if (!snap.load_into(solver)) return std::nullopt;
  if (!solver.solve(assumptions)) return std::nullopt;
  std::vector<bool> model(static_cast<std::size_t>(snap.num_vars()));
  for (int v = 0; v < snap.num_vars(); ++v) {
    model[static_cast<std::size_t>(v)] = solver.model_value(pos(v));
  }
  return model;
}

TEST(Simplify, SubsumptionRemovesSupersetClause) {
  CnfStore store;
  fill(store, 3, {{pos(0), pos(1)}, {pos(0), pos(1), pos(2)}});
  SimplifyOptions opts;
  opts.bve = false;
  opts.probing = false;
  Simplifier simp(opts);
  simp.simplify(store.snapshot(), {});
  EXPECT_EQ(simp.stats().subsumed_clauses, 1u);
  EXPECT_EQ(simp.stats().output_clauses, 1u);
}

TEST(Simplify, SelfSubsumingResolutionStrengthens) {
  // C = (a | b), D = (a | ~b | c): the resolvent of C and D on b is (a | c),
  // which subsumes D — D must be strengthened to (a | c).
  CnfStore store;
  fill(store, 3, {{pos(0), pos(1)}, {pos(0), neg(1), pos(2)}});
  SimplifyOptions opts;
  opts.bve = false;
  opts.probing = false;
  Simplifier simp(opts);
  simp.simplify(store.snapshot(), {});
  EXPECT_EQ(simp.stats().strengthened_clauses, 1u);
  EXPECT_EQ(simp.stats().output_clauses, 2u);
  EXPECT_EQ(simp.stats().output_literals, 4u);  // (a b), (a c)
}

TEST(Simplify, FailedLiteralProbingFixesVariable) {
  // (~a | b), (~a | ~b): assuming a propagates b and ~b — a fails, ~a becomes
  // a root unit.
  CnfStore store;
  fill(store, 2, {{neg(0), pos(1)}, {neg(0), neg(1)}});
  SimplifyOptions opts;
  opts.subsumption = false;
  opts.bve = false;
  Simplifier simp(opts);
  const CnfSnapshot view = simp.simplify(store.snapshot(), {0, 1});
  EXPECT_GE(simp.stats().failed_literals, 1u);
  EXPECT_GE(simp.stats().fixed_vars, 1u);
  EXPECT_FALSE(solve(view, {pos(0)}).has_value());  // a now refuted outright
  EXPECT_TRUE(solve(view, {neg(0)}).has_value());
}

TEST(Simplify, BveEliminatesGateAndReconstructsModel) {
  // Tseitin AND gate x = a & b with a, b frozen: every resolvent on x is
  // tautological, so x is eliminated and the output formula is empty. A model
  // of the empty output must reconstruct to a model of the gate clauses.
  const std::vector<Clause> gate = {
      {neg(2), pos(0)}, {neg(2), pos(1)}, {pos(2), neg(0), neg(1)}};
  CnfStore store;
  fill(store, 3, gate);
  Simplifier simp;
  simp.simplify(store.snapshot(), {0, 1});
  EXPECT_EQ(simp.stats().eliminated_vars, 1u);
  EXPECT_EQ(simp.stats().frozen_eliminations, 0u);
  EXPECT_EQ(simp.stats().output_clauses, 0u);

  // Try every assignment of the frozen variables: reconstruction must repair
  // x to match a & b each time.
  for (bool a : {false, true}) {
    for (bool b : {false, true}) {
      std::vector<bool> model = {a, b, false};
      simp.reconstruct(model);
      EXPECT_TRUE(satisfies(model, gate)) << "a=" << a << " b=" << b;
      EXPECT_EQ(model[2], a && b);
    }
  }
}

TEST(Simplify, FrozenVariablesAreNeverEliminated) {
  const std::vector<Clause> gate = {
      {neg(2), pos(0)}, {neg(2), pos(1)}, {pos(2), neg(0), neg(1)}};
  CnfStore store;
  fill(store, 3, gate);
  Simplifier simp;
  simp.simplify(store.snapshot(), {0, 1, 2});
  EXPECT_EQ(simp.stats().eliminated_vars, 0u);
  EXPECT_EQ(simp.stats().frozen_eliminations, 0u);
  EXPECT_EQ(simp.stats().output_clauses, 3u);
}

TEST(Simplify, GenerationCacheReusesAndInvalidates) {
  CnfStore store;
  fill(store, 3, {{pos(0), pos(1)}, {pos(0), pos(1), pos(2)}});
  Simplifier simp;
  simp.simplify(store.snapshot(), {0});
  EXPECT_EQ(simp.stats().runs, 1u);
  // Same prefix, frozen subset of the cached set: reuse.
  simp.simplify(store.snapshot(), {});
  EXPECT_EQ(simp.stats().runs, 1u);
  EXPECT_EQ(simp.stats().reuses, 1u);
  // Larger frozen set: must re-run (variable 2 was eligible before).
  simp.simplify(store.snapshot(), {0, 1, 2});
  EXPECT_EQ(simp.stats().runs, 2u);
  // Store growth invalidates.
  store.add_clause({neg(2)});
  simp.simplify(store.snapshot(), {0, 1, 2});
  EXPECT_EQ(simp.stats().runs, 3u);
}

TEST(Simplify, RefutedFormulaYieldsEmptyClause) {
  CnfStore store;
  fill(store, 2, {{pos(0)}, {neg(0), pos(1)}, {neg(0), neg(1)}});
  Simplifier simp;
  const CnfSnapshot view = simp.simplify(store.snapshot(), {0, 1});
  EXPECT_TRUE(simp.output_unsat());
  EXPECT_FALSE(solve(view).has_value());
}

// Deterministic random CNF around the 3-SAT phase transition: hard enough
// that all three techniques fire, small enough to solve exhaustively.
std::vector<Clause> random_cnf(std::mt19937& rng, int nvars, std::size_t nclauses) {
  std::uniform_int_distribution<int> var(0, nvars - 1);
  std::uniform_int_distribution<int> coin(0, 1);
  std::uniform_int_distribution<int> width(1, 3);
  std::vector<Clause> out;
  out.reserve(nclauses);
  for (std::size_t i = 0; i < nclauses; ++i) {
    Clause c;
    const int w = width(rng) == 1 ? 2 : 3;  // mostly ternary, some binary
    for (int j = 0; j < w; ++j) c.push_back(Lit(var(rng), coin(rng) == 1));
    out.push_back(std::move(c));
  }
  return out;
}

TEST(Simplify, RandomCorpusVerdictEquivalenceAndReconstruction) {
  // For each random formula and each assumption set over frozen variables:
  // the simplified formula's verdict matches the original's, and a SAT
  // model — after reconstruct() — satisfies the original formula.
  std::mt19937 rng(0xC0FFEE);
  const int nvars = 24;
  const std::vector<Var> frozen = {0, 1, 2, 3, 4, 5};
  std::uniform_int_distribution<int> coin(0, 1);
  for (int round = 0; round < 25; ++round) {
    const std::vector<Clause> formula = random_cnf(rng, nvars, 95);
    CnfStore store;
    fill(store, nvars, formula);
    const CnfSnapshot original = store.snapshot();
    Simplifier simp;
    const CnfSnapshot view = simp.simplify(original, frozen);
    ASSERT_EQ(simp.stats().frozen_eliminations, 0u);

    for (int trial = 0; trial < 4; ++trial) {
      std::vector<Lit> assumptions;
      for (Var v : frozen) {
        if (trial > 0 && coin(rng) == 1) assumptions.push_back(Lit(v, coin(rng) == 1));
      }
      const auto base = solve(original, assumptions);
      const auto simplified = solve(view, assumptions);
      ASSERT_EQ(base.has_value(), simplified.has_value())
          << "round " << round << " trial " << trial;
      if (!simplified) continue;
      std::vector<bool> model = *simplified;
      simp.reconstruct(model);
      EXPECT_TRUE(satisfies(model, formula)) << "round " << round << " trial " << trial;
      for (Lit a : assumptions) {
        EXPECT_TRUE(lit_true(model, a)) << "round " << round << " trial " << trial;
      }
    }
  }
}

TEST(Simplify, FixedPointIsIdempotent) {
  // Re-simplifying a simplified formula (same frozen set, fresh Simplifier)
  // must change nothing: the output is a fixed point of all three techniques.
  std::mt19937 rng(0x5EED);
  const std::vector<Var> frozen = {0, 1, 2, 3};
  for (int round = 0; round < 10; ++round) {
    const std::vector<Clause> formula = random_cnf(rng, 20, 70);
    CnfStore store;
    fill(store, 20, formula);
    SimplifyOptions opts;
    opts.max_rounds = 50;  // run all the way to the fixed point
    Simplifier first(opts);
    const CnfSnapshot once = first.simplify(store.snapshot(), frozen);
    if (first.output_unsat()) continue;
    Simplifier second(opts);
    second.simplify(once, frozen);
    EXPECT_EQ(second.stats().eliminated_vars, 0u) << "round " << round;
    EXPECT_EQ(second.stats().subsumed_clauses, 0u) << "round " << round;
    EXPECT_EQ(second.stats().strengthened_clauses, 0u) << "round " << round;
    EXPECT_EQ(second.stats().failed_literals, 0u) << "round " << round;
    EXPECT_EQ(second.stats().output_clauses, first.stats().output_clauses) << "round " << round;
    EXPECT_EQ(second.stats().output_literals, first.stats().output_literals) << "round " << round;
  }
}

} // namespace
} // namespace upec::sat
