// util::ThreadPool — the batch-barrier substrate under the check scheduler.
// The contract the scheduler depends on: run_all returns only after every
// task ran (happens-before for result merging), batches can be issued
// back-to-back, and task exceptions surface after the batch completed instead
// of abandoning it.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>

#include "util/thread_pool.h"

namespace upec::util {
namespace {

TEST(ThreadPool, RunsEveryTaskExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::atomic<int>> runs(64);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    tasks.push_back([&runs, i] { runs[i].fetch_add(1); });
  }
  pool.run_all(std::move(tasks));
  for (const auto& r : runs) EXPECT_EQ(r.load(), 1);
}

TEST(ThreadPool, BarrierMakesWorkerWritesVisible) {
  ThreadPool pool(3);
  // Plain (non-atomic) per-task slots: legal because each slot is written by
  // exactly one task and read only after the run_all barrier.
  std::vector<int> out(100, 0);
  std::vector<std::function<void()>> tasks;
  for (std::size_t i = 0; i < out.size(); ++i) {
    tasks.push_back([&out, i] { out[i] = static_cast<int>(i) + 1; });
  }
  pool.run_all(std::move(tasks));
  EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 100 * 101 / 2);
}

TEST(ThreadPool, BackToBackBatchesReuseWorkers) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 5; ++i) tasks.push_back([&total] { total.fetch_add(1); });
    pool.run_all(std::move(tasks));
  }
  EXPECT_EQ(total.load(), 250);
}

TEST(ThreadPool, ExceptionSurfacesAfterBatchCompletes) {
  ThreadPool pool(2);
  std::atomic<int> finished{0};
  std::vector<std::function<void()>> tasks;
  tasks.push_back([] { throw std::runtime_error("task 0 failed"); });
  for (int i = 0; i < 8; ++i) tasks.push_back([&finished] { finished.fetch_add(1); });
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::runtime_error);
  // The batch is never abandoned half-finished.
  EXPECT_EQ(finished.load(), 8);
}

TEST(ThreadPool, FirstExceptionInTaskOrderWinsAcrossMultipleThrowers) {
  // Several tasks throw; the contract is "first exception in *task order*"
  // regardless of which worker finishes first, so the caller sees a
  // deterministic error. Task 2 throws logic_error, task 5 runtime_error:
  // logic_error must surface.
  ThreadPool pool(3);
  std::atomic<int> finished{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 8; ++i) {
    if (i == 2) {
      tasks.push_back([] { throw std::logic_error("task 2"); });
    } else if (i == 5) {
      tasks.push_back([] { throw std::runtime_error("task 5"); });
    } else {
      tasks.push_back([&finished] { finished.fetch_add(1); });
    }
  }
  EXPECT_THROW(pool.run_all(std::move(tasks)), std::logic_error);
  EXPECT_EQ(finished.load(), 6);
}

TEST(ThreadPool, NonStdExceptionPayloadIsCapturedNotTerminate) {
  // Solver backends throw sat::SolverInterrupted, which is NOT derived from
  // std::exception. If the worker's catch were `catch (const std::exception&)`
  // this would escape the thread body and std::terminate the process.
  struct Interrupted {
    int code;
  };
  ThreadPool pool(2);
  bool caught = false;
  try {
    pool.run_all({[] { throw Interrupted{42}; }});
  } catch (const Interrupted& e) {
    caught = true;
    EXPECT_EQ(e.code, 42);
  }
  EXPECT_TRUE(caught);
}

TEST(ThreadPool, PoolStaysUsableAfterThrowingBatch) {
  // A throwing batch must not poison the pool: subsequent batches run
  // normally and deliver their own results (the scheduler reuses one pool
  // across every sweep of a verification run).
  ThreadPool pool(2);
  for (int round = 0; round < 3; ++round) {
    EXPECT_THROW(pool.run_all({[] { throw std::runtime_error("boom"); }}), std::runtime_error);
    std::atomic<int> ok{0};
    std::vector<std::function<void()>> tasks;
    for (int i = 0; i < 6; ++i) tasks.push_back([&ok] { ok.fetch_add(1); });
    pool.run_all(std::move(tasks));
    EXPECT_EQ(ok.load(), 6);
  }
}

TEST(ThreadPool, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int ran = 0;
  pool.run_all({[&ran] { ++ran; }, [&ran] { ++ran; }});
  EXPECT_EQ(ran, 2);
  EXPECT_THROW(pool.run_all({[] { throw std::logic_error("inline"); }}), std::logic_error);
}

TEST(ThreadPool, EmptyBatchIsANoOp) {
  ThreadPool pool(2);
  pool.run_all({});
}

} // namespace
} // namespace upec::util
