// VCD round-trip: drive a scripted waveform through the writer, then parse
// the emitted VCD back with a minimal reader and check the reconstructed
// waveform equals the script under VCD last-value-hold semantics. A golden
// full-text test additionally pins the exact emitted bytes so any format
// drift (spacing, radix, change-only policy) is caught deliberately.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "sim/vcd.h"
#include "soc/pulpissimo.h"

namespace upec {
namespace {

// Runs the fixed script against soc_ctrl.scratch0_q and returns the VCD text.
// set_reg happens after step() so the sampled value at cycle t is script[t].
std::string emit_scripted_vcd(const std::vector<std::uint64_t>& script) {
  const soc::Soc soc = soc::build_pulpissimo();
  sim::Simulator s(*soc.design);
  std::ostringstream os;
  sim::VcdWriter vcd(os, s);
  const rtlir::StateVarTable svt(*soc.design);
  const auto reg = soc.design->find_register("soc.soc_ctrl.scratch0_q");
  EXPECT_GE(reg, 0) << "scratch0_q register renamed?";
  if (reg < 0) return "";
  const auto scratch = static_cast<std::uint32_t>(reg);
  s.set_reg(scratch, 0);
  vcd.add_state(svt, svt.of_register(scratch));
  vcd.start();
  for (std::uint64_t v : script) {
    s.step();
    s.set_reg(scratch, v);
    vcd.sample();
  }
  return os.str();
}

// Minimal single-channel VCD reader: returns time -> value for the channel
// with identifier code `id`, including the $dumpvars initial value at time 0.
std::map<std::uint64_t, std::uint64_t> parse_vcd(const std::string& text,
                                                 const std::string& id) {
  std::map<std::uint64_t, std::uint64_t> changes;
  std::istringstream is(text);
  std::string line;
  std::uint64_t now = 0;
  bool in_values = false;
  while (std::getline(is, line)) {
    if (line.rfind("$enddefinitions", 0) == 0 || line == "$dumpvars") {
      in_values = true;
      continue;
    }
    if (!in_values || line.empty() || line[0] == '$') continue;
    if (line[0] == '#') {
      now = std::stoull(line.substr(1));
    } else if (line[0] == 'b') {
      const auto space = line.find(' ');
      EXPECT_NE(space, std::string::npos) << "bad value line: " << line;
      if (line.substr(space + 1) == id) {
        changes[now] = std::stoull(line.substr(1, space - 1), nullptr, 2);
      }
    } else if (line[0] == '0' || line[0] == '1') {
      if (line.substr(1) == id) changes[now] = line[0] - '0';
    }
  }
  return changes;
}

TEST(VcdRoundTrip, ScriptedWaveformSurvivesParseBack) {
  const std::vector<std::uint64_t> script = {5, 5, 12, 0, 0, 255, 255, 1};
  const std::string text = emit_scripted_vcd(script);
  const auto changes = parse_vcd(text, "!");

  // Reconstruct with last-value-hold: sample time t is cycle t (start() dumps
  // the initial 0 at time 0, the first sample lands at #1).
  std::uint64_t last = 0;
  ASSERT_TRUE(changes.count(0));
  EXPECT_EQ(changes.at(0), 0u);
  for (std::size_t t = 0; t < script.size(); ++t) {
    const auto it = changes.find(t + 1);
    if (it != changes.end()) last = it->second;
    EXPECT_EQ(last, script[t]) << "cycle " << t;
  }

  // Change-only policy: number of dumped changes == number of actual changes
  // in the script (plus the initial dump).
  std::size_t expected_changes = 1;
  std::uint64_t prev = 0;
  for (std::uint64_t v : script) {
    if (v != prev) ++expected_changes;
    prev = v;
  }
  EXPECT_EQ(changes.size(), expected_changes);
}

TEST(VcdRoundTrip, GoldenWaveform) {
  const std::string golden =
      "$timescale 1ns $end\n"
      "$scope module soc $end\n"
      "$var wire 32 ! soc.soc_ctrl.scratch0_q $end\n"
      "$upscope $end\n"
      "$enddefinitions $end\n"
      "$dumpvars\n"
      "b0 !\n"
      "$end\n"
      "#1\n"
      "b101 !\n"
      "#3\n"
      "b1100 !\n"
      "#4\n"
      "b0 !\n"
      "#6\n"
      "b11111111 !\n";
  EXPECT_EQ(emit_scripted_vcd({5, 5, 12, 0, 0, 255}), golden);
}

} // namespace
} // namespace upec
