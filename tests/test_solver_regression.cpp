// Regression suite for the CDCL core driven through the DIMACS layer: small
// hand-written instances with known SAT/UNSAT answers, unit-propagation
// chains, conflict-learning edge cases, and write->read round-trips.
#include "sat/dimacs.h"
#include "sat/solver.h"

#include <gtest/gtest.h>

#include <sstream>

namespace upec::sat {
namespace {

Lit pos(Var v) { return Lit(v, false); }
Lit neg(Var v) { return Lit(v, true); }

// Parses `text` into a fresh solver; fails the test on malformed input.
void load(Solver& s, const std::string& text) {
  std::istringstream is(text);
  ASSERT_TRUE(read_dimacs(is, s)) << "malformed DIMACS:\n" << text;
}

TEST(SolverRegression, HandWrittenSatInstance) {
  Solver s;
  load(s, "c simple satisfiable 2-SAT instance\n"
          "p cnf 3 4\n"
          "1 2 0\n"
          "-1 3 0\n"
          "-2 -3 0\n"
          "1 -3 0\n");
  EXPECT_EQ(s.num_vars(), 3);
  EXPECT_TRUE(s.solve());
  EXPECT_EQ(s.validate_model(), 0u);
}

TEST(SolverRegression, HandWrittenUnsatInstance) {
  // All four sign combinations over two variables: classic minimal UNSAT.
  Solver s;
  load(s, "p cnf 2 4\n"
          "1 2 0\n"
          "1 -2 0\n"
          "-1 2 0\n"
          "-1 -2 0\n");
  EXPECT_FALSE(s.solve());
}

TEST(SolverRegression, UnitPropagationChain) {
  // 1 is forced; implications 1->2->3->4 must all propagate without a
  // single decision.
  Solver s;
  load(s, "p cnf 4 4\n"
          "1 0\n"
          "-1 2 0\n"
          "-2 3 0\n"
          "-3 4 0\n");
  EXPECT_TRUE(s.solve());
  for (Var v = 0; v < 4; ++v) EXPECT_TRUE(s.model_value(v)) << "var " << v;
  // Everything is forced by unit propagation: no conflict/backtrack search.
  EXPECT_EQ(s.stats().conflicts, 0u);
}

TEST(SolverRegression, ContradictoryUnitsAreTriviallyUnsat) {
  Solver s;
  load(s, "p cnf 1 2\n"
          "1 0\n"
          "-1 0\n");
  EXPECT_FALSE(s.okay());
  EXPECT_FALSE(s.solve());
}

TEST(SolverRegression, UnitChainIntoConflict) {
  // Propagation alone (no decisions) derives 2 and 3 from 1, then clause
  // (-2 -3) is violated: level-0 conflict, UNSAT without search.
  Solver s;
  load(s, "p cnf 3 4\n"
          "1 0\n"
          "-1 2 0\n"
          "-1 3 0\n"
          "-2 -3 0\n");
  EXPECT_FALSE(s.solve());
}

TEST(SolverRegression, PigeonholeForcesConflictLearning) {
  // PHP(4,3): 4 pigeons, 3 holes. Var p*3+h+1 = "pigeon p in hole h".
  // UNSAT, and small enough to finish instantly, but requires real search:
  // the solver must go through conflicts and learn clauses.
  std::ostringstream cnf;
  cnf << "p cnf 12 22\n";
  for (int p = 0; p < 4; ++p) { // every pigeon somewhere
    for (int h = 0; h < 3; ++h) cnf << (p * 3 + h + 1) << ' ';
    cnf << "0\n";
  }
  for (int h = 0; h < 3; ++h) { // no two pigeons share a hole
    for (int p1 = 0; p1 < 4; ++p1) {
      for (int p2 = p1 + 1; p2 < 4; ++p2) {
        cnf << -(p1 * 3 + h + 1) << ' ' << -(p2 * 3 + h + 1) << " 0\n";
      }
    }
  }
  Solver s;
  load(s, cnf.str());
  EXPECT_FALSE(s.solve());
  EXPECT_GT(s.stats().conflicts, 0u);
  EXPECT_GT(s.stats().learned_clauses, 0u);
}

TEST(SolverRegression, SolvableUnderAssumptionsStaysIncremental) {
  // (1 or 2) with assumption -1 forces 2; assuming both negated is UNSAT
  // and the final conflict must point at the assumptions.
  Solver s;
  load(s, "p cnf 2 1\n"
          "1 2 0\n");
  EXPECT_TRUE(s.solve({neg(0)}));
  EXPECT_TRUE(s.model_value(Var{1}));
  EXPECT_FALSE(s.solve({neg(0), neg(1)}));
  EXPECT_FALSE(s.conflict_assumptions().empty());
  EXPECT_TRUE(s.solve()); // clauses persist, solver still usable
}

TEST(SolverRegression, RoundTripPreservesVerdictSat) {
  Solver a;
  load(a, "p cnf 4 5\n"
          "1 -2 0\n"
          "2 3 4 0\n"
          "-3 -4 0\n"
          "-1 3 0\n"
          "2 -4 0\n");
  EXPECT_TRUE(a.solve());

  std::ostringstream dumped;
  write_dimacs(dumped, a);

  Solver b;
  load(b, dumped.str());
  EXPECT_EQ(b.num_vars(), a.num_vars());
  EXPECT_TRUE(b.solve());
  EXPECT_EQ(b.validate_model(), 0u);
}

TEST(SolverRegression, RoundTripPreservesVerdictUnsat) {
  Solver a;
  load(a, "p cnf 3 8\n"
          "1 2 3 0\n" "1 2 -3 0\n" "1 -2 3 0\n" "1 -2 -3 0\n"
          "-1 2 3 0\n" "-1 2 -3 0\n" "-1 -2 3 0\n" "-1 -2 -3 0\n");

  std::ostringstream dumped;
  write_dimacs(dumped, a);

  Solver b;
  load(b, dumped.str());
  EXPECT_FALSE(b.solve());
  EXPECT_FALSE(a.solve());
}

TEST(SolverRegression, RoundTripFreezesAssumptionsAsUnits) {
  // write_dimacs(assumptions) appends the assumptions as unit clauses: the
  // reloaded standalone instance must agree with solve-under-assumptions.
  Solver a;
  const Var x = a.new_var();
  const Var y = a.new_var();
  a.add_clause(pos(x), pos(y));
  a.add_clause(neg(x), neg(y));
  ASSERT_TRUE(a.solve({pos(x)}));

  std::ostringstream dumped;
  write_dimacs(dumped, a, {pos(x)});

  Solver b;
  load(b, dumped.str());
  EXPECT_TRUE(b.solve());
  EXPECT_TRUE(b.model_value(x));
  EXPECT_FALSE(b.model_value(y));
}

TEST(SolverRegression, ReaderRejectsMalformedInput) {
  const char* bad[] = {
      "1 2 0\n",                // clause before header
      "p cnf 2 1\n1 2\n",       // missing 0 terminator
      "p cnf 2 1\n1 x 0\n",     // non-integer literal
      "p dnf 2 1\n1 2 0\n",     // wrong format tag
      "p cnf 2\n1 2 0\n",       // truncated header must not eat a literal
      "p cnf 2 1 junk\n1 0\n",  // trailing junk on the header line
      "p cnf 1 1\np cnf 1 1\n1 0\n",         // duplicate header
      "p cnf 3 2\n1 c2 0\n3 0\n",            // typo'd literal is not a comment
      "p cnf 2 2\n1 0\n",                    // fewer clauses than declared
      "p cnf 1 1\n1 0\n1 0\n",               // more clauses than declared
      "p cnf 2 1\n3 0\n",                    // literal outside declared range
      "p cnf 2 1\n4294967296 0\n",           // literal exceeds Var range
      "p cnf 9999999999 0\n",                // declared vars exceed Lit packing
      "p cnf 2 1\n99999999999999999999 0\n", // strtol overflow
      "p cnf 2 1\n-9223372036854775808 0\n", // LONG_MIN: negation must not UB
  };
  for (const char* text : bad) {
    Solver s;
    std::istringstream is(text);
    EXPECT_FALSE(read_dimacs(is, s)) << "accepted malformed:\n" << text;
  }
}

TEST(SolverRegression, ReaderAcceptsCommentsAndMultiLineClauses) {
  Solver s;
  load(s, "c leading comment\n"
          "c---- separator style with no space after the c ----\n"
          "p cnf 3 2\n"
          "c mid-stream comment\n"
          "1 2\n"
          "3 0\n"
          "-1 -2 -3 0\n");
  EXPECT_TRUE(s.solve());
  EXPECT_EQ(s.validate_model(), 0u);
}

} // namespace
} // namespace upec::sat
