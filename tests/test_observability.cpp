// Observability stack: the JSON writer/parser pair, the unified metrics
// registry and its aggregation identities, the Chrome trace-event stream,
// the upec-report-v1 JSON report, and the solver progress hooks.
//
// The parse-back tests use the strict util::parse_json reader deliberately:
// every artifact the engine emits must survive a reader that rejects
// everything RFC 8259 rejects, and the trace stream must additionally obey
// the structural discipline Perfetto assumes (monotone timestamps, balanced
// per-thread spans).
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "upec/report.h"
#include "upec/report_json.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace upec {
namespace {

soc::Soc small_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// ---------------------------------------------------------------------------
// JsonUtil: the dependency-free writer/parser pair in util/json.h.
// ---------------------------------------------------------------------------

TEST(JsonUtil, WriterEscapesAndParserRoundTrips) {
  util::JsonWriter w;
  w.begin_object();
  w.key("plain").value("hello");
  w.key("tricky").value(std::string_view("q\"b\\c\x01nl\ntab\tü", 15));
  w.key("num").value(std::uint64_t{18446744073709551615ULL});
  w.key("neg").value(std::int64_t{-42});
  w.key("flag").value(true);
  w.key("none").value_null();
  w.key("arr").begin_array().value(1).value(2).end_array();
  w.end_object();

  util::JsonValue v;
  std::string error;
  ASSERT_TRUE(util::parse_json(w.str(), v, &error)) << error << "\n" << w.str();
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("plain")->string, "hello");
  EXPECT_EQ(v.find("tricky")->string, std::string("q\"b\\c\x01nl\ntab\tü", 15));
  EXPECT_EQ(v.find("neg")->number, -42.0);
  EXPECT_TRUE(v.find("flag")->boolean);
  EXPECT_TRUE(v.find("none")->is_null());
  ASSERT_EQ(v.find("arr")->array.size(), 2u);
  EXPECT_EQ(v.find("arr")->array[1].number, 2.0);
}

TEST(JsonUtil, ObjectsPreserveMemberOrder) {
  util::JsonValue v;
  ASSERT_TRUE(util::parse_json(R"({"z": 1, "a": 2, "m": 3})", v));
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "z");
  EXPECT_EQ(v.object[1].first, "a");
  EXPECT_EQ(v.object[2].first, "m");
}

TEST(JsonUtil, ParserAcceptsSurrogatePairs) {
  util::JsonValue v;
  ASSERT_TRUE(util::parse_json(R"("\ud83d\ude00")", v));
  EXPECT_EQ(v.string, "\xF0\x9F\x98\x80"); // U+1F600
}

TEST(JsonUtil, ParserRejectsMalformedDocuments) {
  const char* bad[] = {
      "",                    // empty
      "{\"a\": 1,}",         // trailing comma
      "{\"a\": 1} x",        // trailing garbage
      "[1, 2",               // unterminated array
      "{\"a\"}",             // key without value
      "01",                  // leading zero
      "\"\x01\"",            // bare control character
      "\"\\x41\"",           // invalid escape
      "\"unterminated",      // unterminated string
      "truth",               // mangled literal
      "+1",                  // stray sign
  };
  for (const char* doc : bad) {
    util::JsonValue v;
    std::string error;
    EXPECT_FALSE(util::parse_json(doc, v, &error)) << "accepted: " << doc;
    EXPECT_FALSE(error.empty());
  }
}

TEST(JsonUtil, NonFiniteDoublesSerializeAsNull) {
  util::JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::infinity());
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(0.5);
  w.end_array();
  util::JsonValue v;
  ASSERT_TRUE(util::parse_json(w.str(), v));
  ASSERT_EQ(v.array.size(), 3u);
  EXPECT_TRUE(v.array[0].is_null());
  EXPECT_TRUE(v.array[1].is_null());
  EXPECT_EQ(v.array[2].number, 0.5);
}

// ---------------------------------------------------------------------------
// MetricsRegistry: merge semantics (counters sum, gauges max), prefixing,
// filtering, and the stable JSON serialization.
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CountersSumAndGaugesMax) {
  util::MetricsSnapshot a;
  a.add_counter("conflicts", 10);
  a.set_gauge("learnts", 7);
  util::MetricsSnapshot b;
  b.add_counter("conflicts", 32);
  b.set_gauge("learnts", 3);
  a.merge(b);
  EXPECT_EQ(a.get("conflicts"), 42u);
  EXPECT_EQ(a.get("learnts"), 7u); // max, not sum
  a.add_counter("conflicts", 8);   // add_counter accumulates
  EXPECT_EQ(a.get("conflicts"), 50u);
  a.set_gauge("learnts", 5);       // set_gauge keeps the max
  EXPECT_EQ(a.get("learnts"), 7u);
}

TEST(MetricsRegistry, MergePrefixedBuildsHierarchy) {
  util::MetricsSnapshot leaf;
  leaf.add_counter("conflicts", 5);
  util::MetricsSnapshot root;
  root.merge_prefixed("sat.solver.w3.", leaf);
  root.merge_prefixed("sat.solver.total.", leaf);
  EXPECT_TRUE(root.has("sat.solver.w3.conflicts"));
  EXPECT_EQ(root.get("sat.solver.total.conflicts"), 5u);
  EXPECT_FALSE(root.has("conflicts"));
}

TEST(MetricsRegistry, FilteredSelectsPrefixes) {
  util::MetricsSnapshot m;
  m.add_counter("sat.solver.total.conflicts", 1);
  m.add_counter("sat.channel.exported", 2);
  m.add_counter("upec.cache.hits", 3);
  const util::MetricsSnapshot f = m.filtered({"upec.", "sat.channel."});
  EXPECT_EQ(f.size(), 2u);
  EXPECT_TRUE(f.has("upec.cache.hits"));
  EXPECT_FALSE(f.has("sat.solver.total.conflicts"));
  EXPECT_EQ(m.filtered({}).size(), 3u); // empty list = everything
}

TEST(MetricsRegistry, JsonSerializationIsSortedAndRoundTrips) {
  util::MetricsSnapshot m;
  m.add_counter("z.last", 3);
  m.add_counter("a.first", 1);
  m.set_gauge("m.middle", 2);
  util::JsonValue v;
  ASSERT_TRUE(util::parse_json(m.to_json(), v));
  ASSERT_EQ(v.object.size(), 3u);
  EXPECT_EQ(v.object[0].first, "a.first"); // lexicographic, always
  EXPECT_EQ(v.object[1].first, "m.middle");
  EXPECT_EQ(v.object[2].first, "z.last");
  EXPECT_EQ(v.number_or("m.middle", 0), 2.0);
}

// ---------------------------------------------------------------------------
// MetricsAggregation: the counter-drift regression. Every aggregate the run
// reports must be the registry merge of its parts — main + workers, worker =
// its portfolio members — with nothing counted twice or dropped.
// ---------------------------------------------------------------------------

TEST(MetricsAggregation, TotalsEqualSumOfPartsUnderPortfolio) {
  const soc::Soc soc = small_soc();
  VerifyOptions options = countermeasure_options();
  options.threads = 2;
  options.portfolio = 2;
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  ASSERT_EQ(r.verdict, Verdict::Secure);

  const util::MetricsSnapshot& m = r.stats.metrics;
  const char* leaves[] = {"conflicts",        "decisions",       "propagations",
                          "restarts",         "learned_clauses", "deleted_clauses",
                          "exported_clauses", "imported_clauses", "solve_calls"};
  ASSERT_EQ(r.stats.per_worker.size(), 2u);
  ASSERT_EQ(r.stats.per_worker_members.size(), 2u);
  for (const char* leaf : leaves) {
    // total = main + sum of workers, in the registry itself.
    std::uint64_t worker_sum = 0;
    for (unsigned w = 0; w < 2; ++w) {
      const std::string wp = "sat.solver.w" + std::to_string(w) + ".";
      worker_sum += m.get(wp + leaf);
      // worker = sum of its portfolio members.
      const auto& members = r.stats.per_worker_members[w];
      ASSERT_EQ(members.size(), 2u) << "worker " << w;
      std::uint64_t member_sum = 0;
      for (unsigned j = 0; j < members.size(); ++j) {
        member_sum += m.get(wp + "m" + std::to_string(j) + "." + leaf);
      }
      EXPECT_EQ(m.get(wp + leaf), member_sum) << wp << leaf;
    }
    EXPECT_EQ(m.get(std::string("sat.solver.total.") + leaf),
              m.get(std::string("sat.solver.main.") + leaf) + worker_sum)
        << leaf;
  }
  // The typed structs are derived from the same registry — they must agree
  // with it, and member rows must sum to their worker row.
  EXPECT_EQ(r.stats.total.conflicts, m.get("sat.solver.total.conflicts"));
  for (unsigned w = 0; w < 2; ++w) {
    std::uint64_t member_conflicts = 0;
    for (const sat::SolverStats& ms : r.stats.per_worker_members[w]) {
      member_conflicts += ms.conflicts;
    }
    EXPECT_EQ(r.stats.per_worker[w].conflicts, member_conflicts) << "worker " << w;
  }
  // Channel counters mirror the totals.
  EXPECT_EQ(m.get("sat.channel.exported"), r.stats.total.exported_clauses);
  EXPECT_EQ(m.get("sat.channel.imported"), r.stats.total.imported_clauses);
}

TEST(MetricsAggregation, SingleSolverRunHasNoWorkerEntries) {
  const soc::Soc soc = small_soc();
  UpecContext ctx(soc);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  const util::MetricsSnapshot& m = r.stats.metrics;
  EXPECT_TRUE(r.stats.per_worker.empty());
  EXPECT_FALSE(m.has("sat.solver.w0.conflicts"));
  EXPECT_EQ(m.get("sat.solver.total.conflicts"), m.get("sat.solver.main.conflicts"));
  EXPECT_EQ(r.stats.total.conflicts, m.get("sat.solver.main.conflicts"));
}

// ---------------------------------------------------------------------------
// TraceEvents: arm a session through VerifyOptions, then parse the emitted
// stream back with the strict reader and check the structural discipline a
// trace viewer assumes.
// ---------------------------------------------------------------------------

TEST(TraceEvents, StreamParsesBackStrictlyAndSpansBalance) {
  const std::string path = ::testing::TempDir() + "upec_trace_events.json";
  {
    const soc::Soc soc = small_soc();
    VerifyOptions options;
    options.threads = 2;
    options.trace_path = path;
    options.progress_conflicts = 500;
    UpecContext ctx(soc, options);
    Alg1Options opts;
    opts.extract_waveform = false;
    const Alg1Result r = run_alg1(ctx, opts);
    ASSERT_EQ(r.verdict, Verdict::Vulnerable);
  } // context destruction flushes the session

  const std::string doc = slurp(path);
  ASSERT_FALSE(doc.empty());
  util::JsonValue v;
  std::string error;
  ASSERT_TRUE(util::parse_json(doc, v, &error)) << error;
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.find("displayTimeUnit")->string, "ms");
  const util::JsonValue* events = v.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_FALSE(events->array.empty());

  double last_ts = -1.0;
  std::map<std::uint64_t, std::vector<std::pair<double, double>>> open; // tid -> [start,end)
  std::map<std::string, int> names;
  for (const util::JsonValue& e : events->array) {
    ASSERT_TRUE(e.is_object());
    const util::JsonValue* name = e.find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_FALSE(name->string.empty());
    names[name->string]++;
    const std::string& ph = e.find("ph")->string;
    EXPECT_TRUE(ph == "X" || ph == "i" || ph == "C") << ph;
    const double ts = e.number_or("ts", -1);
    ASSERT_GE(ts, 0.0);
    EXPECT_GE(ts, last_ts) << "timestamps must be sorted";
    last_ts = ts;
    EXPECT_EQ(e.number_or("pid", 0), 1.0);
    const auto tid = static_cast<std::uint64_t>(e.number_or("tid", 0));
    EXPECT_GE(tid, 1u);
    if (ph == "X") {
      const double dur = e.number_or("dur", -1);
      ASSERT_GE(dur, 0.0) << "complete events carry a duration";
      // Span discipline per thread: RAII spans on one thread either nest or
      // are disjoint — a partial overlap means an unbalanced span.
      auto& stack = open[tid];
      while (!stack.empty() && ts >= stack.back().second) stack.pop_back();
      if (!stack.empty()) {
        EXPECT_LE(ts + dur, stack.back().second)
            << name->string << " partially overlaps an enclosing span";
      }
      stack.emplace_back(ts, ts + dur);
    } else if (ph == "i") {
      EXPECT_EQ(e.find("s")->string, "t");
    } else { // counter
      const util::JsonValue* args = e.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_GE(args->number_or("value", -1), 0.0);
    }
  }

  // The spans this run must have produced (threads=2, preprocessing on,
  // incremental sweeps on, progress armed; encode.touch_probes would need
  // waveform extraction, which this run skips).
  for (const char* required :
       {"alg1.run", "alg1.iteration", "upec.sweep_frame", "scheduler.sweep",
        "solve.inproc", "sync.inproc", "simplify.run", "encode.register_candidates"}) {
    EXPECT_GT(names[required], 0) << "missing span: " << required;
  }
  EXPECT_EQ(names["alg1.run"], 1);
  // Progress heartbeats became counter tracks for the workers.
  EXPECT_GT(names["solver.w0.conflicts"] + names["solver.w1.conflicts"] +
                names["solver.main.conflicts"],
            0);
}

TEST(TraceEvents, SecondSessionIsInertWhileOneIsArmed) {
  const std::string a_path = ::testing::TempDir() + "upec_trace_a.json";
  const std::string b_path = ::testing::TempDir() + "upec_trace_b.json";
  EXPECT_FALSE(util::trace::enabled());
  {
    util::trace::TraceSession a(a_path);
    EXPECT_TRUE(a.active());
    EXPECT_TRUE(util::trace::enabled());
    util::trace::TraceSession b(b_path); // nested: stays inert, records nothing
    EXPECT_FALSE(b.active());
    { util::trace::Span s("test.span", "test"); }
    EXPECT_TRUE(util::trace::enabled()); // b's destruction must not disarm a
  }
  EXPECT_FALSE(util::trace::enabled());
  util::JsonValue v;
  ASSERT_TRUE(util::parse_json(slurp(a_path), v));
  ASSERT_EQ(v.find("traceEvents")->array.size(), 1u);
  EXPECT_EQ(v.find("traceEvents")->array[0].find("name")->string, "test.span");
}

TEST(TraceEvents, RecordersAreNoOpsWithoutASession) {
  EXPECT_FALSE(util::trace::enabled());
  // Must not crash, allocate buffers, or leave state behind.
  util::trace::Span s("orphan", "test");
  s.arg("k", std::uint64_t{1});
  util::trace::instant("orphan.instant", "test");
  util::trace::counter("orphan.counter", 7);
}

// ---------------------------------------------------------------------------
// JsonReport: render_json parse-back, agreement with the typed result, and
// the config-hash contract.
// ---------------------------------------------------------------------------

TEST(JsonReport, Alg1ReportParsesBackAndMatchesResult) {
  const soc::Soc soc = small_soc();
  VerifyOptions options;
  options.threads = 2;
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  ASSERT_EQ(r.verdict, Verdict::Vulnerable);

  const std::string doc = render_json(ctx, r);
  util::JsonValue v;
  std::string error;
  ASSERT_TRUE(util::parse_json(doc, v, &error)) << error;
  EXPECT_EQ(v.find("schema")->string, "upec-report-v1");
  EXPECT_EQ(v.find("algorithm")->string, "alg1");
  EXPECT_EQ(v.find("verdict")->string, verdict_name(r.verdict));
  EXPECT_EQ(v.find("timed_out")->boolean, r.timed_out);
  ASSERT_EQ(v.find("iterations")->array.size(), r.iterations.size());
  for (std::size_t i = 0; i < r.iterations.size(); ++i) {
    const util::JsonValue& it = v.find("iterations")->array[i];
    EXPECT_EQ(it.number_or("s_size", -1), static_cast<double>(r.iterations[i].s_size));
    EXPECT_EQ(it.find("removed")->array.size(), r.iterations[i].removed.size());
  }
  EXPECT_EQ(v.find("persistent_hits")->array.size(), r.persistent_hits.size());
  EXPECT_EQ(v.find("full_cex")->array.size(), r.full_cex.size());

  // Counter totals in the report equal the text report's source of truth.
  const util::JsonValue* metrics = v.find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->number_or("sat.solver.total.conflicts", -1),
            static_cast<double>(r.stats.total.conflicts));
  EXPECT_EQ(metrics->number_or("sat.solver.total.solve_calls", -1),
            static_cast<double>(r.stats.total.solve_calls));
  EXPECT_EQ(metrics->number_or("upec.cache.hits", -1),
            static_cast<double>(r.stats.cache_hits));

  // config echo + hash: 16 lowercase hex digits, stable against re-rendering.
  const std::string& hash = v.find("config_hash")->string;
  ASSERT_EQ(hash.size(), 16u);
  for (char c : hash) {
    EXPECT_TRUE((c >= '0' && c <= '9') || (c >= 'a' && c <= 'f')) << hash;
  }
  EXPECT_EQ(hash, config_hash(ctx.options));
  EXPECT_EQ(v.find("config")->number_or("threads", 0), 2.0);
}

TEST(JsonReport, Alg2ReportParsesBack) {
  const soc::Soc soc = small_soc();
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  VerifyOptions options;
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  UpecContext ctx(soc, options);
  Alg2Options alg;
  alg.extract_waveform = false;
  const Alg2Result r = run_alg2(ctx, alg);

  util::JsonValue v;
  std::string error;
  ASSERT_TRUE(util::parse_json(render_json(ctx, r), v, &error)) << error;
  EXPECT_EQ(v.find("schema")->string, "upec-report-v1");
  EXPECT_EQ(v.find("algorithm")->string, "alg2");
  EXPECT_EQ(v.find("verdict")->string, verdict_name(r.verdict));
  EXPECT_EQ(v.find("final_k")->number, static_cast<double>(r.final_k));
  ASSERT_EQ(v.find("iterations")->array.size(), r.steps.size());
  for (std::size_t i = 0; i < r.steps.size(); ++i) {
    EXPECT_EQ(v.find("iterations")->array[i].number_or("k", -1),
              static_cast<double>(r.steps[i].k));
  }
  const util::JsonValue* induction = v.find("induction");
  ASSERT_NE(induction, nullptr);
  EXPECT_EQ(induction->is_null(), !r.induction.has_value());
}

TEST(JsonReport, ConfigHashIgnoresObservabilityAndTracksConfig) {
  VerifyOptions base;
  const std::string h0 = config_hash(base);

  VerifyOptions observed = base;
  observed.trace_path = "/tmp/some_trace.json";
  observed.progress_conflicts = 1024;
  observed.progress = [](const ProgressEvent&) {};
  EXPECT_EQ(config_hash(observed), h0) << "observability must not change the hash";

  VerifyOptions threaded = base;
  threaded.threads = 4;
  EXPECT_NE(config_hash(threaded), h0);
  VerifyOptions secured = countermeasure_options();
  EXPECT_NE(config_hash(secured), h0);
}

// ---------------------------------------------------------------------------
// ProgressHook: cadence, cumulative counters, and source labels.
// ---------------------------------------------------------------------------

TEST(ProgressHook, FiresAtCadenceWithCumulativeCounters) {
  const soc::Soc soc = small_soc();
  std::mutex mu;
  std::vector<ProgressEvent> events;
  VerifyOptions options;
  options.progress_conflicts = 256;
  options.progress = [&](const ProgressEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(ev);
  };
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  ASSERT_EQ(r.verdict, Verdict::Vulnerable);

  ASSERT_FALSE(events.empty());
  std::uint64_t last = 0;
  for (const ProgressEvent& ev : events) {
    EXPECT_EQ(ev.source, "main"); // threads == 1: only the main solver solves
    EXPECT_GT(ev.conflicts, 0u);
    EXPECT_EQ(ev.conflicts % 256, 0u) << "cadence is a conflict-count multiple";
    EXPECT_GT(ev.conflicts, last) << "cumulative counter must increase";
    last = ev.conflicts;
    EXPECT_FALSE(ev.deadline_remaining_ms.has_value()); // no deadline configured
  }
  EXPECT_LE(last, r.stats.total.conflicts);
}

TEST(ProgressHook, WorkersReportUnderTheirLabel) {
  const soc::Soc soc = small_soc();
  std::mutex mu;
  std::map<std::string, std::uint64_t> per_source;
  VerifyOptions options;
  options.threads = 2;
  options.deadline_ms = 600'000; // deadline present => remaining_ms reported
  options.progress_conflicts = 256;
  bool deadline_seen = false;
  options.progress = [&](const ProgressEvent& ev) {
    std::lock_guard<std::mutex> lock(mu);
    per_source[ev.source] = ev.conflicts;
    deadline_seen = deadline_seen || ev.deadline_remaining_ms.has_value();
  };
  UpecContext ctx(soc, options);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  ASSERT_EQ(r.verdict, Verdict::Vulnerable);

  ASSERT_FALSE(per_source.empty());
  for (const auto& [source, conflicts] : per_source) {
    EXPECT_TRUE(source == "main" || source == "w0" || source == "w1") << source;
    EXPECT_GT(conflicts, 0u);
  }
  // The sweep work happens on the workers; at least one must have reported.
  EXPECT_TRUE(per_source.count("w0") != 0 || per_source.count("w1") != 0);
  EXPECT_TRUE(deadline_seen);
}

} // namespace
} // namespace upec
