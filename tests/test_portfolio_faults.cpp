// Fault-tolerance suites for the external-solver stack: Subprocess
// supervision, the strict DIMACS-output parse, PipeBackend under every
// FaultInjector class, SupervisedBackend's retry/quarantine/degrade policy,
// and PortfolioBackend racing. The contract pinned throughout: a misbehaving
// external solver may cost time, never an answer, never a *wrong* answer, and
// never a leaked child.
//
// This binary re-execs itself as the solver child (sat::self_solver_main), so
// it defines its own main() — see the bottom of the file — and the whole
// fork/pipe/parse path runs without any system SAT solver installed.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/types.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sat/backend.h"
#include "sat/dimacs.h"
#include "sat/fault.h"
#include "sat/pipe_backend.h"
#include "sat/portfolio.h"
#include "sat/supervise.h"
#include "upec/engine.h"
#include "util/subprocess.h"

namespace upec {
namespace {

using sat::LBool;
using sat::Lit;
using sat::SolveStatus;

// Once solve() returned, the child must be reaped: not running, not a zombie.
// kill(pid, 0) still succeeds on a zombie, so ESRCH is the full assertion.
void expect_reaped(pid_t pid) {
  ASSERT_GT(pid, 0);
  errno = 0;
  EXPECT_EQ(kill(pid, 0), -1) << "child " << pid << " still exists";
  EXPECT_EQ(errno, ESRCH);
}

// (x1 ∨ x2) ∧ (¬x1 ∨ x3): satisfiable; UNSAT under {¬x2, ¬x3}.
class FaultBackendTest : public ::testing::Test {
protected:
  void SetUp() override {
    for (int i = 0; i < 3; ++i) store_.new_var();
    store_.add_clause(std::vector<Lit>{Lit(0, false), Lit(1, false)});
    store_.add_clause(std::vector<Lit>{Lit(0, true), Lit(2, false)});
  }

  std::vector<Lit> unsat_assumptions() const { return {Lit(1, true), Lit(2, true)}; }

  sat::PipeOptions pipe_options(const std::string& fault_spec = "",
                                std::uint32_t deadline_ms = 10'000) const {
    sat::PipeOptions po;
    po.argv = sat::self_solver_argv(fault_spec);
    po.solve_deadline_ms = deadline_ms;
    po.term_grace_ms = 100;
    return po;
  }

  sat::CnfStore store_;
};

// --- strict output parse (hostile corpus) -----------------------------------

struct ParseCase {
  const char* name;
  const char* text;
  const char* error_substr;  // expected in SolverOutput::error
};

TEST(ParseSolverOutput, AcceptsWellFormedUnsat) {
  const sat::SolverOutput out = sat::parse_solver_output("c comment\ns UNSATISFIABLE\n", 3);
  EXPECT_EQ(out.status, SolveStatus::Unsat);
  EXPECT_TRUE(out.error.empty());
}

TEST(ParseSolverOutput, AcceptsWellFormedSatModel) {
  // Multi-v-line model, \r\n endings, no trailing newline on the last line.
  const sat::SolverOutput out =
      sat::parse_solver_output("s SATISFIABLE\r\nv 1 -2\r\nv 3 0", 3);
  ASSERT_EQ(out.status, SolveStatus::Sat);
  ASSERT_EQ(out.model.size(), 3u);
  EXPECT_EQ(out.model[0], LBool::True);
  EXPECT_EQ(out.model[1], LBool::False);
  EXPECT_EQ(out.model[2], LBool::True);
}

TEST(ParseSolverOutput, RejectsHostileCorpus) {
  const ParseCase cases[] = {
      {"empty", "", "no status line"},
      {"comments only", "c hi\nc there\n", "no status line"},
      {"truncated model", "s SATISFIABLE\nv 1 -2 3\n", "missing terminating 0"},
      {"conflicting literals", "s SATISFIABLE\nv 1 -1 0\n", "conflicting model literals"},
      {"wrong status", "s MAYBE\n", "unrecognized status line"},
      {"status with junk", "s SATISFIABLE yes really\nv 1 2 3 0\n", "malformed status line"},
      {"duplicate status", "s UNSATISFIABLE\ns UNSATISFIABLE\n", "duplicate status line"},
      {"model before status", "v 1 0\ns SATISFIABLE\n", "model line without SAT status"},
      {"model under unsat", "s UNSATISFIABLE\nv 1 0\n", "model line without SAT status"},
      {"literal out of range", "s SATISFIABLE\nv 1 4 0\n", "out of range"},
      {"non-numeric token", "s SATISFIABLE\nv 1 two 0\n", "non-numeric model token"},
      {"token after zero", "s SATISFIABLE\nv 1 0 2\n", "after terminating 0"},
      {"model after zero", "s SATISFIABLE\nv 1 0\nv 2 0\n", "after terminating 0"},
      {"junk line", "s SATISFIABLE\nwat\nv 1 0\n", "unrecognized output line"},
      {"binary noise", "\x7f\x45\x4c\x46\x01\xfe\ns SATISFIABLE\nv 1 0\n",
       "unrecognized output line"},
  };
  for (const ParseCase& c : cases) {
    SCOPED_TRACE(c.name);
    const sat::SolverOutput out = sat::parse_solver_output(c.text, 3);
    EXPECT_EQ(out.status, SolveStatus::Unknown);
    EXPECT_TRUE(out.model.empty());
    EXPECT_NE(out.error.find(c.error_substr), std::string::npos)
        << "error was: " << out.error;
  }
}

TEST(ParseSolverOutput, NulInsideTokenIsRejected) {
  const std::string text("s SATISFIABLE\nv 1\0 2 0\n", 23);
  const sat::SolverOutput out = sat::parse_solver_output(text, 3);
  EXPECT_EQ(out.status, SolveStatus::Unknown);
}

TEST(FaultInjectorSpec, ParseRoundTrips) {
  for (const char* spec : {"", "crash:3", "hang", "garbage", "partial", "slow:25", "bogus"}) {
    EXPECT_EQ(sat::FaultInjector::parse(spec).spec(), spec);
  }
  EXPECT_EQ(sat::FaultInjector::parse("no-such-fault").kind, sat::FaultInjector::Kind::None);
  EXPECT_EQ(sat::FaultInjector::parse("slow").arg, 50u);  // default sleep
}

// --- Subprocess supervision ---------------------------------------------------

TEST(Subprocess, RoundTripsThroughChildStdio) {
  util::Subprocess child;
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "cat"}));
  const auto deadline = util::Subprocess::Clock::now() + std::chrono::seconds(10);
  const std::string msg = "hello through the pipe\n";
  ASSERT_TRUE(child.write_all(msg.data(), msg.size(), deadline));
  child.close_stdin();
  std::string out;
  ASSERT_TRUE(child.read_all(out, deadline, 1 << 20));
  EXPECT_EQ(out, msg);
  const util::Subprocess::ExitStatus st = child.terminate(std::chrono::milliseconds(100));
  EXPECT_TRUE(st.exited);
  EXPECT_EQ(st.code, 0);
}

TEST(Subprocess, DestructorNeverLeaksAChild) {
  pid_t pid = -1;
  {
    util::Subprocess child;
    ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "sleep 100"}));
    pid = child.pid();
    // Dropped without terminate(): the destructor must kill and reap.
  }
  expect_reaped(pid);
}

TEST(Subprocess, TerminateEscalatesToSigkillOnTermIgnorers) {
  util::Subprocess child;
  ASSERT_TRUE(child.spawn(sat::self_solver_argv("hang")));
  const pid_t pid = child.pid();
  // The hang child parses stdin before misbehaving, so feed it a formula.
  const std::string dimacs = "p cnf 1 1\n1 0\n";
  const auto deadline = util::Subprocess::Clock::now() + std::chrono::seconds(10);
  ASSERT_TRUE(child.write_all(dimacs.data(), dimacs.size(), deadline));
  child.close_stdin();
  std::string out;
  EXPECT_FALSE(  // silent forever: the read must give up at its deadline
      child.read_all(out, util::Subprocess::Clock::now() + std::chrono::milliseconds(200),
                     1 << 20));
  const util::Subprocess::ExitStatus st = child.terminate(std::chrono::milliseconds(100));
  EXPECT_TRUE(st.signaled);
  EXPECT_EQ(st.sig, SIGKILL);  // SIGTERM was ignored; the ladder went all the way
  expect_reaped(pid);
}

TEST(Subprocess, ReadHonorsDeadlineAgainstSilentChild) {
  util::Subprocess child;
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "sleep 100"}));
  std::string out;
  const auto t0 = util::Subprocess::Clock::now();
  EXPECT_FALSE(child.read_all(out, t0 + std::chrono::milliseconds(150), 1 << 20));
  EXPECT_LT(util::Subprocess::Clock::now() - t0, std::chrono::seconds(5));
  child.kill_and_reap();
}

TEST(Subprocess, CancelFlagAbortsBlockedReadQuickly) {
  std::atomic<bool> cancel{true};
  util::Subprocess child;
  child.set_cancel_flag(&cancel);
  ASSERT_TRUE(child.spawn({"/bin/sh", "-c", "sleep 100"}));
  std::string out;
  const auto t0 = util::Subprocess::Clock::now();
  // Deadline is far away; the pre-set cancel flag must abort within a slice.
  EXPECT_FALSE(child.read_all(out, t0 + std::chrono::seconds(30), 1 << 20));
  EXPECT_LT(util::Subprocess::Clock::now() - t0, std::chrono::seconds(2));
  child.kill_and_reap();
}

// --- incremental DIMACS serialization (DimacsCache) ----------------------------

TEST(DimacsCache, ByteIdenticalToWriteDimacsAcrossGrowthAndStoreSwitch) {
  // PipeBackend streams DimacsCache output to the child instead of a fresh
  // write_dimacs — so the cache's bytes must match write_dimacs exactly on
  // every path: first serialization, assumption-only re-write, delta append
  // after store growth, and rebuild after a store switch.
  const auto uncached = [](const sat::CnfSnapshot& snap, const std::vector<Lit>& assumptions) {
    std::ostringstream os;
    sat::write_dimacs(os, snap, assumptions);
    return std::move(os).str();
  };
  const auto cached = [](sat::DimacsCache& cache, const sat::CnfSnapshot& snap,
                         const std::vector<Lit>& assumptions) {
    std::ostringstream os;
    cache.write(os, snap, assumptions);
    return std::move(os).str();
  };

  sat::CnfStore store;
  for (int i = 0; i < 3; ++i) store.new_var();
  store.add_clause(std::vector<Lit>{Lit(0, false), Lit(1, false)});
  store.add_clause(std::vector<Lit>{Lit(0, true), Lit(2, false)});

  sat::DimacsCache cache;
  const sat::CnfSnapshot s1 = store.snapshot();
  EXPECT_EQ(cached(cache, s1, {}), uncached(s1, {}));
  const std::uint64_t after_first = cache.bytes_serialized();
  EXPECT_GT(after_first, 0u);

  // Same snapshot, different assumptions: the clause body is reused verbatim.
  const std::vector<Lit> assumptions{Lit(1, true), Lit(2, true)};
  EXPECT_EQ(cached(cache, s1, assumptions), uncached(s1, assumptions));
  EXPECT_EQ(cache.bytes_serialized(), after_first);

  // Store growth: only the appended clause is serialized, output still exact.
  store.new_var();
  store.add_clause(std::vector<Lit>{Lit(2, true), Lit(3, false)});
  const sat::CnfSnapshot s2 = store.snapshot();
  const std::string full2 = uncached(s2, assumptions);
  EXPECT_EQ(cached(cache, s2, assumptions), full2);
  const std::uint64_t delta = cache.bytes_serialized() - after_first;
  EXPECT_GT(delta, 0u);
  EXPECT_LT(delta, after_first);  // strictly less than re-serializing the prefix

  // Store switch (new identity, e.g. a fresh preprocessor generation): the
  // stale body is dropped and the new formula serialized from scratch.
  sat::CnfStore other;
  for (int i = 0; i < 2; ++i) other.new_var();
  other.add_clause(std::vector<Lit>{Lit(0, false)});
  other.add_clause(std::vector<Lit>{Lit(1, true)});
  const sat::CnfSnapshot s3 = other.snapshot();
  EXPECT_EQ(cached(cache, s3, {}), uncached(s3, {}));

  // And back to the first store: the cache must not resurrect the other body.
  EXPECT_EQ(cached(cache, s2, assumptions), full2);
}

// --- PipeBackend end-to-end (self-exec solver) ---------------------------------

TEST_F(FaultBackendTest, SelfExecSolverAnswersSat) {
  sat::PipeBackend backend(pipe_options());
  backend.sync(store_.snapshot());
  ASSERT_EQ(backend.solve({}), SolveStatus::Sat) << backend.last_error();
  // The validated model must satisfy both clauses through model_value().
  EXPECT_TRUE(backend.model_value(Lit(0, false)) || backend.model_value(Lit(1, false)));
  EXPECT_TRUE(backend.model_value(Lit(0, true)) || backend.model_value(Lit(2, false)));
  expect_reaped(backend.last_pid());
}

TEST_F(FaultBackendTest, SelfExecSolverAnswersUnsatWithFullCore) {
  sat::PipeBackend backend(pipe_options());
  backend.sync(store_.snapshot());
  ASSERT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat) << backend.last_error();
  // External solvers emit no core; the full sorted assumption set stands in.
  std::vector<Lit> expected = unsat_assumptions();
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(backend.unsat_core(), expected);
  expect_reaped(backend.last_pid());
}

TEST_F(FaultBackendTest, EveryNonTimeoutFaultYieldsUnknownAndNoZombie) {
  for (const char* spec : {"crash:0", "crash:1", "garbage", "partial", "bogus"}) {
    SCOPED_TRACE(spec);
    sat::PipeBackend backend(pipe_options(spec));
    backend.sync(store_.snapshot());
    EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
    EXPECT_FALSE(backend.last_error().empty());
    EXPECT_FALSE(backend.last_timed_out());  // failures, not wall-clock hits
    expect_reaped(backend.last_pid());
  }
}

TEST_F(FaultBackendTest, BogusModelIsCaughtByValidation) {
  // The "bogus" child claims SAT with all variables false — which violates
  // (x1 ∨ x2). A lying solver must cost a solve, never a verdict.
  sat::PipeBackend backend(pipe_options("bogus"));
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
  EXPECT_NE(backend.last_error().find("does not satisfy"), std::string::npos)
      << backend.last_error();
  expect_reaped(backend.last_pid());
}

TEST_F(FaultBackendTest, HangingChildHitsDeadlineAndIsKilled) {
  sat::PipeBackend backend(pipe_options("hang", /*deadline_ms=*/250));
  backend.sync(store_.snapshot());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
  EXPECT_TRUE(backend.last_timed_out());
  // Deadline + SIGTERM grace + slack; never the child's "forever".
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  EXPECT_TRUE(backend.last_exit().signaled);
  expect_reaped(backend.last_pid());
}

TEST_F(FaultBackendTest, SlowWriterHitsMidStreamDeadline) {
  // 400 ms per output line against a 150 ms budget: the read deadline must
  // fire mid-stream, not wait for the child to finish.
  sat::PipeBackend backend(pipe_options("slow:400", /*deadline_ms=*/150));
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
  EXPECT_TRUE(backend.last_timed_out());
  expect_reaped(backend.last_pid());
}

TEST_F(FaultBackendTest, MissingBinaryYieldsUnknown) {
  sat::PipeOptions po;
  po.argv = {"/nonexistent/not-a-solver"};
  po.solve_deadline_ms = 2'000;
  sat::PipeBackend backend(po);
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
  EXPECT_FALSE(backend.last_error().empty());
}

TEST_F(FaultBackendTest, ExpiredGlobalDeadlineShortCircuits) {
  sat::PipeBackend backend(pipe_options());
  backend.sync(store_.snapshot());
  backend.set_deadline(std::chrono::steady_clock::now() - std::chrono::seconds(1));
  EXPECT_EQ(backend.solve({}), SolveStatus::Unknown);
  EXPECT_TRUE(backend.last_timed_out());
  backend.clear_deadline();
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat) << backend.last_error();
}

// --- SupervisedBackend policy ---------------------------------------------------

TEST_F(FaultBackendTest, SupervisorDegradesCrashingSolverToFallback) {
  sat::SuperviseOptions so;
  so.max_restarts = 2;
  so.backoff_ms = 1;
  sat::SupervisedBackend backend(pipe_options("crash:0"), so);
  backend.sync(store_.snapshot());
  // The external endpoint never answers, the caller still gets verdicts.
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
  EXPECT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat);
  const sat::BackendHealth h = backend.health();
  EXPECT_EQ(h.solves, 2u);
  EXPECT_EQ(h.sat, 1u);
  EXPECT_EQ(h.unsat, 1u);
  EXPECT_EQ(h.degraded_solves, 2u);
  EXPECT_EQ(h.restarts, 4u);  // max_restarts retries per solve
  EXPECT_EQ(h.external_failures, 6u);  // (1 + max_restarts) children per solve
  expect_reaped(backend.external().last_pid());
}

TEST_F(FaultBackendTest, SupervisorQuarantinesAfterConsecutiveDegradations) {
  sat::SuperviseOptions so;
  so.max_restarts = 0;
  so.quarantine_after = 2;
  so.backoff_ms = 1;
  sat::SupervisedBackend backend(pipe_options("garbage"), so);
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
  EXPECT_FALSE(backend.health().quarantined);
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
  EXPECT_TRUE(backend.health().quarantined);
  // Quarantined: no further children are spawned, answers keep coming.
  const std::size_t children_before = backend.external().stats().solve_calls;
  EXPECT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat);
  EXPECT_EQ(backend.external().stats().solve_calls, children_before);
  EXPECT_EQ(backend.health().degraded_solves, 3u);
}

TEST_F(FaultBackendTest, SupervisorNeverRetriesTimeouts) {
  sat::SuperviseOptions so;
  so.max_restarts = 3;  // would triple the damage if timeouts were retried
  so.backoff_ms = 1;
  sat::SupervisedBackend backend(pipe_options("hang", /*deadline_ms=*/200), so);
  backend.sync(store_.snapshot());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);  // fallback answers
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
  const sat::BackendHealth h = backend.health();
  EXPECT_EQ(h.timeouts, 1u);
  EXPECT_EQ(h.restarts, 0u);  // degrade immediately, don't re-run the hang
  EXPECT_EQ(h.degraded_solves, 1u);
}

TEST_F(FaultBackendTest, HealthySupervisedSolverNeverDegrades) {
  sat::SupervisedBackend backend(pipe_options(), {});
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
  EXPECT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat);
  const sat::BackendHealth h = backend.health();
  EXPECT_EQ(h.degraded_solves, 0u);
  EXPECT_EQ(h.external_failures, 0u);
  EXPECT_FALSE(h.quarantined);
}

// --- PortfolioBackend racing ----------------------------------------------------

TEST_F(FaultBackendTest, PortfolioAnswersMatchSingleSolver) {
  sat::PortfolioOptions po;
  po.members = 3;
  sat::PortfolioBackend backend(po);
  backend.sync(store_.snapshot());
  EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
  EXPECT_GE(backend.last_winner(), 0);
  EXPECT_TRUE(backend.model_value(Lit(0, false)) || backend.model_value(Lit(1, false)));
  EXPECT_TRUE(backend.model_value(Lit(0, true)) || backend.model_value(Lit(2, false)));

  EXPECT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat);
  // Any member's core is sound: a subset of the assumptions.
  for (Lit l : backend.unsat_core()) {
    EXPECT_TRUE(l == Lit(1, true) || l == Lit(2, true));
  }
  std::uint64_t wins = 0;
  for (std::uint64_t w : backend.member_wins()) wins += w;
  EXPECT_EQ(wins, 2u);
}

TEST_F(FaultBackendTest, PortfolioSurvivesFaultyExternalMember) {
  for (const char* spec : {"crash:0", "bogus", "garbage"}) {
    SCOPED_TRACE(spec);
    sat::PortfolioOptions po;
    po.members = 2;
    po.external = true;
    po.pipe = pipe_options(spec, /*deadline_ms=*/2'000);
    po.supervise.max_restarts = 0;
    po.supervise.quarantine_after = 1;
    sat::PortfolioBackend backend(po);
    backend.sync(store_.snapshot());
    EXPECT_EQ(backend.member_count(), 3u);
    // The faulty external member can only lose the race; verdicts hold.
    EXPECT_EQ(backend.solve({}), SolveStatus::Sat);
    EXPECT_EQ(backend.solve(unsat_assumptions()), SolveStatus::Unsat);
  }
}

// --- full verification stack under external faults ------------------------------

TEST(FaultEndToEnd, HostileExternalSolverCannotChangeTheVerdict) {
  // The whole Alg. 1 run with every worker solve first offered to a
  // garbage-printing external solver: the supervisor quarantines it after the
  // first degraded solve and the verdict must equal the in-proc baseline.
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  Alg1Options alg;
  alg.extract_waveform = false;
  const Alg1Result baseline = verify_2cycle(soc, {}, alg);
  ASSERT_EQ(baseline.verdict, Verdict::Vulnerable);

  VerifyOptions options;
  options.external_solver = sat::self_solver_argv("garbage");
  options.supervise.max_restarts = 0;
  options.supervise.quarantine_after = 1;
  const Alg1Result hostile = verify_2cycle(soc, options, alg);

  EXPECT_EQ(hostile.verdict, baseline.verdict);
  EXPECT_EQ(hostile.persistent_hits, baseline.persistent_hits);
  EXPECT_EQ(hostile.full_cex, baseline.full_cex);
  ASSERT_EQ(hostile.stats.per_worker_health.size(), 1u);
  const sat::BackendHealth& h = hostile.stats.per_worker_health[0];
  EXPECT_TRUE(h.quarantined);
  EXPECT_GE(h.external_failures, 1u);
  EXPECT_GE(h.degraded_solves, 1u);
}

} // namespace
} // namespace upec

// Self-exec hook: when spawned with the solver flag this process *is* the
// external DIMACS solver (plus its injected fault) and must never run the
// test suite — which is why this file links gtest, not gtest_main.
int main(int argc, char** argv) {
  const int solver_rc = upec::sat::self_solver_main(argc, argv);
  if (solver_rc >= 0) return solver_rc;
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
