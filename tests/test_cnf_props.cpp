// Property-based validation of the Tseitin gate library: for random operand
// values, every word-level CNF operator must agree with native 64-bit
// arithmetic, and algebraic identities must hold as UNSAT queries (i.e. no
// assignment can distinguish the two sides).
#include <gtest/gtest.h>
#include "sat/solver.h"

#include "encode/cnf.h"
#include "util/rng.h"

namespace upec::encode {
namespace {

class CnfOpRandom : public ::testing::TestWithParam<int> {
protected:
  std::uint64_t eval(const Bits& image, const sat::Solver& s) {
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < image.size(); ++i) {
      if (s.model_value(image[i])) v |= 1ull << i;
    }
    return v;
  }
};

TEST_P(CnfOpRandom, ConcreteOperandsMatchNativeArithmetic) {
  Xoshiro256 rng(9000 + GetParam());
  const unsigned w = 1 + rng.below(16);
  const std::uint64_t mask = BitVec::mask(w);
  const std::uint64_t va = rng.next() & mask;
  const std::uint64_t vb = rng.next() & mask;

  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Bits a = cnf.constant_vec(BitVec(w, va));
  const Bits b = cnf.constant_vec(BitVec(w, vb));

  // Constant folding should make most results literal constants already, but
  // we check through the solver to also cover mixed cases below.
  ASSERT_TRUE(solver.solve());
  EXPECT_EQ(eval(cnf.v_add(a, b), solver), (va + vb) & mask);
  EXPECT_EQ(eval(cnf.v_sub(a, b), solver), (va - vb) & mask);
  EXPECT_EQ(eval(cnf.v_and(a, b), solver), va & vb);
  EXPECT_EQ(eval(cnf.v_or(a, b), solver), va | vb);
  EXPECT_EQ(eval(cnf.v_xor(a, b), solver), va ^ vb);
  EXPECT_EQ(eval(cnf.v_not(a), solver), ~va & mask);
  EXPECT_EQ(solver.model_value(cnf.v_eq(a, b)), va == vb);
  EXPECT_EQ(solver.model_value(cnf.v_ult(a, b)), va < vb);
}

TEST_P(CnfOpRandom, SymbolicOperandsMatchNativeArithmetic) {
  Xoshiro256 rng(4500 + GetParam());
  const unsigned w = 1 + rng.below(12);
  const std::uint64_t mask = BitVec::mask(w);
  const std::uint64_t va = rng.next() & mask;
  const std::uint64_t vb = rng.next() & mask;
  const std::uint64_t sh = rng.below(w + 3);

  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Bits a = cnf.fresh_vec(w);
  const Bits b = cnf.fresh_vec(w);
  const Bits amt = cnf.fresh_vec(5);

  const Bits sum = cnf.v_add(a, b);
  const Bits dif = cnf.v_sub(a, b);
  const Bits shl = cnf.v_shl(a, amt);
  const Bits shr = cnf.v_lshr(a, amt);
  const Lit lt = cnf.v_ult(a, b);
  const Lit eq = cnf.v_eq(a, b);

  auto pin = [&](const Bits& image, std::uint64_t value) {
    for (std::size_t i = 0; i < image.size(); ++i) {
      solver.add_clause((value >> i) & 1 ? image[i] : ~image[i]);
    }
  };
  pin(a, va);
  pin(b, vb);
  pin(amt, sh);
  ASSERT_TRUE(solver.solve());

  EXPECT_EQ(eval(sum, solver), (va + vb) & mask);
  EXPECT_EQ(eval(dif, solver), (va - vb) & mask);
  EXPECT_EQ(eval(shl, solver), sh >= w ? 0 : (va << sh) & mask);
  EXPECT_EQ(eval(shr, solver), sh >= w ? 0 : va >> sh);
  EXPECT_EQ(solver.model_value(lt), va < vb);
  EXPECT_EQ(solver.model_value(eq), va == vb);
}

TEST_P(CnfOpRandom, AlgebraicIdentitiesAreUnsat) {
  // (a+b)-b == a, a^a == 0, a<b <=> !(b<=a): checked as "no distinguishing
  // assignment exists" over fully symbolic operands.
  Xoshiro256 rng(7100 + GetParam());
  const unsigned w = 1 + rng.below(10);

  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Bits a = cnf.fresh_vec(w);
  const Bits b = cnf.fresh_vec(w);

  const Bits roundtrip = cnf.v_sub(cnf.v_add(a, b), b);
  const Lit rt_differs = ~cnf.v_eq(roundtrip, a);
  EXPECT_FALSE(solver.solve({rt_differs})) << "(a+b)-b must equal a";

  const Lit xor_self = cnf.v_red_or(cnf.v_xor(a, a));
  EXPECT_FALSE(solver.solve({xor_self})) << "a^a must be zero";

  const Lit lt = cnf.v_ult(a, b);
  const Lit ge = ~cnf.v_ult(a, b);
  EXPECT_FALSE(solver.solve({lt, ge}));

  // Mux select laws: mux(s,x,x) == x.
  const Lit s = cnf.fresh();
  const Bits m = cnf.v_mux(s, a, a);
  EXPECT_FALSE(solver.solve({~cnf.v_eq(m, a)}));

  // Commutativity of add.
  EXPECT_FALSE(solver.solve({~cnf.v_eq(cnf.v_add(a, b), cnf.v_add(b, a))}));
}

TEST_P(CnfOpRandom, SliceConcatRoundtrip) {
  Xoshiro256 rng(8200 + GetParam());
  const unsigned lo_w = 1 + rng.below(8);
  const unsigned hi_w = 1 + rng.below(8);

  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Bits hi = cnf.fresh_vec(hi_w);
  const Bits lo = cnf.fresh_vec(lo_w);
  const Bits cat = cnf.v_concat(hi, lo);
  ASSERT_EQ(cat.size(), hi_w + lo_w);

  const Bits lo_back = cnf.v_slice(cat, 0, lo_w);
  const Bits hi_back = cnf.v_slice(cat, lo_w, hi_w);
  EXPECT_FALSE(solver.solve({~cnf.v_eq(lo_back, lo)}));
  EXPECT_FALSE(solver.solve({~cnf.v_eq(hi_back, hi)}));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CnfOpRandom, ::testing::Range(0, 25));

TEST(CnfBuilder, ConstantFoldingAvoidsVariables) {
  sat::Solver solver;
  CnfBuilder cnf(solver);
  const std::uint64_t before = cnf.num_aux_vars();
  const Bits a = cnf.constant_vec(BitVec(16, 0x1234));
  const Bits b = cnf.constant_vec(BitVec(16, 0x00ff));
  cnf.v_and(a, b);
  cnf.v_or(a, b);
  cnf.v_xor(a, b);
  cnf.v_mux(cnf.lit_true(), a, b);
  EXPECT_EQ(cnf.num_aux_vars(), before) << "all-constant gates must fold away";
}

TEST(CnfBuilder, SingleBitFolds) {
  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Lit x = cnf.fresh();
  EXPECT_EQ(cnf.and2(x, cnf.lit_true()), x);
  EXPECT_TRUE(cnf.is_false(cnf.and2(x, cnf.lit_false())));
  EXPECT_EQ(cnf.and2(x, x), x);
  EXPECT_TRUE(cnf.is_false(cnf.and2(x, ~x)));
  EXPECT_EQ(cnf.xor2(x, cnf.lit_false()), x);
  EXPECT_EQ(cnf.xor2(x, cnf.lit_true()), ~x);
  EXPECT_TRUE(cnf.is_false(cnf.xor2(x, x)));
  EXPECT_TRUE(cnf.is_true(cnf.xor2(x, ~x)));
  EXPECT_EQ(cnf.mux(cnf.lit_true(), x, ~x), x);
  EXPECT_EQ(cnf.mux(cnf.lit_false(), x, ~x), ~x);
  const Lit y = cnf.fresh();
  EXPECT_EQ(cnf.mux(y, cnf.lit_true(), cnf.lit_false()), y);
}

// Exhaustive truth tables for every single-bit Tseitin gate over FREE
// variables (no constant folding path): for each input row the gate output
// must be forced to the expected value, checked both ways — the expected
// polarity is satisfiable and the flipped polarity is UNSAT.
TEST(CnfBuilder, GateTruthTables) {
  struct Gate {
    const char* name;
    Lit (CnfBuilder::*fn)(Lit, Lit);
    bool table[4]; // indexed by a*2 + b
  };
  const Gate gates[] = {
      {"and2", &CnfBuilder::and2, {false, false, false, true}},
      {"or2", &CnfBuilder::or2, {false, true, true, true}},
      {"xor2", &CnfBuilder::xor2, {false, true, true, false}},
      {"xnor2", &CnfBuilder::xnor2, {true, false, false, true}},
  };
  for (const Gate& g : gates) {
    sat::Solver solver;
    CnfBuilder cnf(solver);
    const Lit a = cnf.fresh();
    const Lit b = cnf.fresh();
    const Lit out = (cnf.*g.fn)(a, b);

    for (int row = 0; row < 4; ++row) {
      const bool va = (row >> 1) & 1;
      const bool vb = row & 1;
      const bool expect = g.table[row];
      const std::vector<Lit> in = {va ? a : ~a, vb ? b : ~b};
      std::vector<Lit> good = in, bad = in;
      good.push_back(expect ? out : ~out);
      bad.push_back(expect ? ~out : out);
      EXPECT_TRUE(solver.solve(good)) << g.name << " row " << row;
      EXPECT_FALSE(solver.solve(bad)) << g.name << " row " << row;
    }
  }
}

// Same exhaustive check for the 3-input mux(sel, t, f).
TEST(CnfBuilder, MuxTruthTable) {
  sat::Solver solver;
  CnfBuilder cnf(solver);
  const Lit sel = cnf.fresh();
  const Lit t = cnf.fresh();
  const Lit f = cnf.fresh();
  const Lit out = cnf.mux(sel, t, f);
  for (int row = 0; row < 8; ++row) {
    const bool vs = (row >> 2) & 1;
    const bool vt = (row >> 1) & 1;
    const bool vf = row & 1;
    const bool expect = vs ? vt : vf;
    const std::vector<Lit> in = {vs ? sel : ~sel, vt ? t : ~t, vf ? f : ~f};
    std::vector<Lit> good = in, bad = in;
    good.push_back(expect ? out : ~out);
    bad.push_back(expect ? ~out : out);
    EXPECT_TRUE(solver.solve(good)) << "mux row " << row;
    EXPECT_FALSE(solver.solve(bad)) << "mux row " << row;
  }
}

} // namespace
} // namespace upec::encode
