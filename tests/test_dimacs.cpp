// DIMACS export: format conformance and round-trip through a tiny
// independent DIMACS evaluator (parse + check against the model).
#include <gtest/gtest.h>

#include <sstream>

#include "encode/cnf.h"
#include "sat/dimacs.h"

namespace upec::sat {
namespace {

TEST(Dimacs, HeaderAndClauseLines) {
  Solver s;
  const Var a = s.new_var(), b = s.new_var();
  s.add_clause(Lit(a, false), Lit(b, true));
  s.add_clause(Lit(b, false));

  std::ostringstream os;
  write_dimacs(os, s);
  const std::string out = os.str();
  EXPECT_EQ(out.rfind("p cnf 2 ", 0), 0u) << out;
  EXPECT_NE(out.find("1 -2 0"), std::string::npos);
  EXPECT_NE(out.find("\n2 0"), std::string::npos) << "level-0 unit exported";
}

TEST(Dimacs, AssumptionsBecomeUnits) {
  Solver s;
  const Var a = s.new_var();
  std::ostringstream os;
  write_dimacs(os, s, {Lit(a, true)});
  EXPECT_NE(os.str().find("-1 0"), std::string::npos);
}

TEST(Dimacs, ExportedInstanceConsistentWithModel) {
  // Build a small circuit, solve, then re-check the model against the parsed
  // DIMACS — an independent path through the clause database.
  Solver s;
  encode::CnfBuilder cnf(s);
  const encode::Bits x = cnf.fresh_vec(6);
  const encode::Bits y = cnf.fresh_vec(6);
  const Lit eq = cnf.v_eq(cnf.v_add(x, y), cnf.constant_vec(BitVec(6, 17)));
  ASSERT_TRUE(s.solve({eq}));

  std::ostringstream os;
  write_dimacs(os, s, {eq});
  std::istringstream is(os.str());

  std::string p, kind;
  int vars = 0, clauses = 0;
  is >> p >> kind >> vars >> clauses;
  ASSERT_EQ(p, "p");
  ASSERT_EQ(kind, "cnf");
  ASSERT_EQ(vars, s.num_vars());

  int parsed = 0;
  bool all_sat = true;
  std::vector<long> clause;
  long lit = 0;
  while (is >> lit) {
    if (lit != 0) {
      clause.push_back(lit);
      continue;
    }
    ++parsed;
    bool any = false;
    for (long l : clause) {
      const Var v = static_cast<Var>(std::abs(l) - 1);
      if (s.model_value(v) == (l > 0)) any = true;
    }
    all_sat = all_sat && any;
    clause.clear();
  }
  EXPECT_EQ(parsed, clauses);
  EXPECT_TRUE(all_sat) << "model must satisfy the exported instance";
}

} // namespace
} // namespace upec::sat
