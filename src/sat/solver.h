// From-scratch CDCL SAT solver.
//
// This is the decision engine underneath the IPC layer: every UPEC-SSC
// property check bit-blasts to one incremental SAT query. The design follows
// the classic MiniSat architecture (Eén & Sörensson):
//   - two-watched-literal propagation,
//   - first-UIP conflict analysis with clause minimization,
//   - VSIDS decision heuristic with phase saving,
//   - Luby-sequence restarts,
//   - learned-clause database reduction driven by LBD (glue),
//   - solving under assumptions for incremental use (the Alg. 1 / Alg. 2
//     loops re-solve the same transition relation with shrinking state sets,
//     so clauses are kept across calls and only the assumption set changes).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <limits>
#include <optional>
#include <vector>

#include "sat/clause_sink.h"
#include "sat/types.h"

namespace upec::sat {

struct SolverStats {
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learned_clauses = 0;
  std::uint64_t deleted_clauses = 0;
  std::uint64_t solve_calls = 0;
  // Learned-clause sharing (zero unless hooks are installed, see below).
  std::uint64_t exported_clauses = 0;
  std::uint64_t imported_clauses = 0;
};

inline SolverStats& operator+=(SolverStats& a, const SolverStats& b) {
  a.decisions += b.decisions;
  a.propagations += b.propagations;
  a.conflicts += b.conflicts;
  a.restarts += b.restarts;
  a.learned_clauses += b.learned_clauses;
  a.deleted_clauses += b.deleted_clauses;
  a.solve_calls += b.solve_calls;
  a.exported_clauses += b.exported_clauses;
  a.imported_clauses += b.imported_clauses;
  return a;
}

// Delta between two cumulative snapshots (after - before), for per-check and
// per-worker accounting.
inline SolverStats operator-(SolverStats a, const SolverStats& b) {
  a.decisions -= b.decisions;
  a.propagations -= b.propagations;
  a.conflicts -= b.conflicts;
  a.restarts -= b.restarts;
  a.learned_clauses -= b.learned_clauses;
  a.deleted_clauses -= b.deleted_clauses;
  a.solve_calls -= b.solve_calls;
  a.exported_clauses -= b.exported_clauses;
  a.imported_clauses -= b.imported_clauses;
  return a;
}

// Periodic progress heartbeat, surfaced every N conflicts through the hook
// installed with set_progress_hook(). Purely observational: the solver's
// search is identical with or without a hook installed (the deadline
// remaining is *sampled* for the report, never branched on here).
struct SolverProgress {
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnts = 0; // live learnt clauses right now
  // Milliseconds until the installed deadline fires; negative once past it;
  // nullopt when no deadline is installed.
  std::optional<std::int64_t> deadline_remaining_ms;
};
using ProgressHook = std::function<void(const SolverProgress&)>;

// A learnt clause in transit between solvers (see sat/share.h). The LBD rides
// along so the importer can slot the clause into its reduce_db policy without
// recomputing glue against levels it never saw.
struct SharedClause {
  std::vector<Lit> lits;
  std::uint32_t lbd = 0;
};

class Solver final : public ClauseSink, public ModelSource {
public:
  Solver();

  // --- Problem construction (ClauseSink) -------------------------------------
  Var new_var() override;
  int num_vars() const override { return static_cast<int>(assigns_.size()); }

  // Adds a clause; returns false if the formula became trivially UNSAT.
  bool add_clause(const std::vector<Lit>& lits) override;
  using ClauseSink::add_clause;

  // Drops the entire clause database (problem + learnt) and all per-variable
  // search state, returning the solver to the freshly-constructed state —
  // except that configuration survives: conflict budget, deadline, cancel
  // flag, restart unit, phase seed (the initial-phase RNG stream restarts so
  // variables re-created after the reset get the same polarities a fresh
  // solver with that seed would give them), sharing hooks, and the learnt-DB
  // threshold. Cumulative stats_ also survive — a reset is a rebuild step in
  // one solver's life, not a new solver. Used when a backend's snapshot
  // switches stores (preprocessing emits each simplified generation into a
  // fresh CnfStore) and the worker must re-hydrate from scratch.
  void reset();

  // --- Solving ---------------------------------------------------------------
  // Solve under the given assumptions. Clauses persist across calls.
  bool solve(const std::vector<Lit>& assumptions = {});

  // After solve() returned true: value of a variable in the model. Variables
  // created after the solve read as false.
  bool model_value(Var v) const {
    const auto i = static_cast<std::size_t>(v);
    return i < model_.size() && model_[i] == LBool::True;
  }
  bool model_value(Lit l) const override { return model_value(l.var()) != l.sign(); }

  // After solve() returned false: a deduplicated, sorted subset of the
  // assumption literals responsible for the UNSAT answer (the "final
  // conflict" core). Guarantees:
  //   * every returned literal was passed in `assumptions` verbatim,
  //   * re-solving under the returned subset alone is again UNSAT,
  //   * assumptions that were merely *implied* by others are traced through
  //     their reason clauses back to genuine assumption decisions (each
  //     reason is walked at most once), so they never appear in the core.
  // Empty when the formula is UNSAT independent of the assumptions.
  const std::vector<Lit>& conflict_assumptions() const { return conflict_; }

  const SolverStats& stats() const { return stats_; }

  // Iterates all live problem (non-learnt) clauses; used by the DIMACS dump,
  // model validation in tests, and debugging tooling. Unit clauses absorbed
  // into level-0 assignments are reported as single-literal clauses.
  void for_each_problem_clause(const std::function<void(const std::vector<Lit>&)>& fn) const;

  // After a satisfiable solve: checks the model against every problem clause
  // and level-0 unit; returns the number of violated clauses (0 = valid).
  std::size_t validate_model() const;

  // Budget: abort solve() (returning UNSAT=false is wrong, so solve() throws
  // SolverInterrupted) after this many conflicts. 0 = no limit.
  void set_conflict_budget(std::uint64_t budget) { conflict_budget_ = budget; }

  // Wall-clock deadline: solve() throws SolverInterrupted{Deadline} once the
  // clock passes `t`. Checked at solve entry, at every restart boundary, and
  // every 512 conflicts (restart intervals grow with the Luby sequence, so a
  // long UNSAT proof would otherwise overshoot the deadline unboundedly).
  // This is the same deadline machinery supervised subprocess backends get
  // from the OS — in-proc solvers honor it cooperatively. Persists across
  // solve() calls until cleared.
  void set_deadline(std::chrono::steady_clock::time_point t) { deadline_ = t; }
  void clear_deadline() { deadline_.reset(); }

  // Cooperative cancellation for portfolio racing: while `*flag` is true,
  // solve() aborts with SolverInterrupted{Cancelled} at the next conflict or
  // decision (a relaxed atomic load per step — negligible against BCP). The
  // flag must outlive the solver or be cleared with nullptr. The solver is
  // left at decision level 0 and stays fully usable.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }

  // --- portfolio diversity ------------------------------------------------
  // Restart pacing: conflicts-until-restart is luby(2, k) * unit (default
  // 100, MiniSat's pacing). Portfolio members diversify the search by running
  // different units against the same formula.
  void set_restart_unit(unsigned unit) { restart_unit_ = unit == 0 ? 100 : unit; }
  // Initial phase diversity: with a nonzero seed, variables created from now
  // on get a pseudo-random initial polarity instead of the default negative
  // one. Phase saving still overrides the initial value after the first
  // backtrack, so this perturbs where the search *starts*, not how it learns.
  void set_phase_seed(std::uint64_t seed) {
    phase_seed_ = seed;
    phase_rng_state_ = seed * 0x9e3779b97f4a7c15ULL + 1;
  }

  // Progress heartbeat: invoke `hook` whenever the cumulative conflict count
  // is a multiple of `every_conflicts` (0 or an empty hook disarms it). The
  // hook runs on the solving thread, inside the conflict loop — keep it
  // cheap and never let it touch the solver. Survives reset().
  void set_progress_hook(ProgressHook hook, std::uint64_t every_conflicts) {
    progress_hook_ = std::move(hook);
    progress_every_ = progress_hook_ ? every_conflicts : 0;
  }

  bool okay() const { return ok_; }

  // --- learned-clause sharing --------------------------------------------------
  // Export: called at learn time for every learnt clause with LBD <= lbd_cap
  // and size <= size_cap (units export with LBD 1). The clause is implied by
  // the clause database alone — assumptions are decisions, never premises —
  // so it is sound to add it to any solver whose database is a superset.
  using ExportHook = std::function<void(const std::vector<Lit>&, unsigned lbd)>;
  void set_export_hook(ExportHook hook, unsigned lbd_cap, std::uint32_t size_cap) {
    export_hook_ = std::move(hook);
    export_lbd_cap_ = lbd_cap;
    export_size_cap_ = size_cap;
  }

  // Import: called at restart boundaries (solve() entry and every Luby
  // restart) to drain foreign clauses. Import never perturbs in-flight
  // analysis: when the hook yields clauses the solver first backtracks to the
  // root level, attaches them there (simplified against root facts), and only
  // then re-propagates — the decision loop redoes the assumptions.
  using ImportHook = std::function<void(std::vector<SharedClause>&)>;
  void set_import_hook(ImportHook hook) { import_hook_ = std::move(hook); }

  // Number of distinct values among `levels`. This is the LBD ("glue") count
  // of a learnt clause given its literals' decision levels. Levels 0..127 go
  // through a two-word bitmap; deeper levels use an exact small-set fallback
  // (a learnt clause rarely spans >128 distinct levels). Public + static so
  // regression tests can pin the level-aliasing bug class directly.
  static unsigned distinct_level_count(const std::vector<int>& levels);

  // --- observability for tests -------------------------------------------------
  // Learnt-DB reduction threshold (default 8192, grows 10% per reduction).
  void set_max_learnts(std::uint64_t n) { max_learnts_ = n; }
  std::size_t arena_size() const { return lit_arena_.size(); }
  // Live learnt clauses currently attached — the database the incremental
  // sweeps retain across rounds and iterations (reported by the verifier).
  std::size_t num_learnts() const { return learnts_.size(); }
  // Literals owned by deleted clauses still occupying the arena. Bounded by
  // garbage collection in reduce_db: never exceeds 1/4 of the arena.
  std::size_t arena_garbage() const { return garbage_lits_; }
  std::size_t allocated_clauses() const { return clauses_.size(); }

private:
  struct ClauseData {
    std::uint32_t offset;   // into literal arena
    std::uint32_t size;
    float activity = 0.0f;
    std::uint32_t lbd = 0;
    bool learned = false;
    bool deleted = false;
  };
  using ClauseRef = std::uint32_t;
  static constexpr ClauseRef kNoClause = std::numeric_limits<ClauseRef>::max();

  struct Watcher {
    ClauseRef cref;
    Lit blocker;
  };

  struct VarInfo {
    ClauseRef reason = kNoClause;
    std::int32_t level = 0;
  };

  // --- internals -------------------------------------------------------------
  Lit* clause_lits(ClauseRef c) { return lit_arena_.data() + clauses_[c].offset; }
  const Lit* clause_lits(ClauseRef c) const { return lit_arena_.data() + clauses_[c].offset; }

  LBool value(Var v) const { return assigns_[static_cast<std::size_t>(v)]; }
  LBool value(Lit l) const {
    LBool v = assigns_[static_cast<std::size_t>(l.var())];
    return l.sign() ? lbool_not(v) : v;
  }

  ClauseRef alloc_clause(const std::vector<Lit>& lits, bool learned);
  void attach_clause(ClauseRef c);
  void detach_clause(ClauseRef c);

  void uncheckedEnqueue(Lit p, ClauseRef from);
  // Drains the import hook into import_buf_; if clauses arrived, backtracks
  // to the root and attaches them. Returns false on a root-level conflict
  // (the formula, shared clauses included, is UNSAT outright).
  bool import_foreign();
  // Rebuilds lit_arena_/clauses_ without deleted clauses, remapping every
  // live ClauseRef (watchers, learnts_, trail reasons).
  void garbage_collect();
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel, unsigned& out_lbd);
  bool lit_redundant(Lit p, std::uint32_t abstract_levels);
  void analyze_final(Lit p);
  void cancel_until(int level);
  Lit pick_branch_lit();
  void reduce_db();
  void var_bump_activity(Var v);
  void var_decay_activity() { var_inc_ *= (1.0 / 0.95); }
  void cla_bump_activity(ClauseData& c);

  int decision_level() const { return static_cast<int>(trail_lim_.size()); }

  // order heap (binary max-heap on activity)
  void heap_insert(Var v);
  void heap_update(Var v);
  Var heap_pop();
  bool heap_empty() const { return heap_.empty(); }
  void heap_percolate_up(int i);
  void heap_percolate_down(int i);
  bool heap_lt(Var a, Var b) const { return activity_[a] > activity_[b]; }

  static double luby(double y, int x);

  // --- state -----------------------------------------------------------------
  bool ok_ = true;
  std::vector<Lit> lit_arena_;
  std::vector<ClauseData> clauses_;
  std::vector<ClauseRef> learnts_;
  std::vector<std::vector<Watcher>> watches_; // indexed by literal index

  std::vector<LBool> assigns_;
  std::vector<LBool> model_;
  std::vector<signed char> phase_; // saved phase per var
  std::vector<VarInfo> var_info_;
  std::vector<double> activity_;
  std::vector<char> seen_;
  std::vector<Lit> analyze_stack_;
  std::vector<Lit> analyze_toclear_;

  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<int> heap_;     // heap of vars
  std::vector<int> heap_pos_; // var -> index in heap_ or -1

  std::vector<Lit> assumptions_;
  std::vector<Lit> conflict_;

  double var_inc_ = 1.0;
  float cla_inc_ = 1.0f;
  std::uint64_t max_learnts_ = 8192;
  std::uint64_t conflict_budget_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  unsigned restart_unit_ = 100;
  std::uint64_t phase_seed_ = 0;       // 0 = default negative initial phase
  std::uint64_t phase_rng_state_ = 0;  // splitmix64 stream for initial phases

  // Learned-clause sharing (inert unless hooks installed).
  ExportHook export_hook_;
  unsigned export_lbd_cap_ = 0;
  std::uint32_t export_size_cap_ = 0;
  ImportHook import_hook_;
  std::vector<SharedClause> import_buf_;

  // Progress heartbeat (inert unless installed).
  ProgressHook progress_hook_;
  std::uint64_t progress_every_ = 0;

  std::vector<int> lbd_levels_;     // scratch for the per-conflict LBD count
  std::size_t garbage_lits_ = 0;    // arena literals held by deleted clauses

  SolverStats stats_;
};

// Thrown when a solve() is aborted without an answer; callers treat it as
// "unknown". The reason distinguishes resource exhaustion (budget), the
// wall-clock deadline (reported upward as `timed_out`), and cooperative
// cancellation (a portfolio sibling answered first).
struct SolverInterrupted {
  enum class Reason : std::uint8_t { Budget, Deadline, Cancelled };
  Reason reason = Reason::Budget;
};

} // namespace upec::sat
