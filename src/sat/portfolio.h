// PortfolioBackend: races diverse solver configurations on one query,
// first definitive answer wins.
//
// Members are in-proc CDCL solvers over the same synced snapshot, each with a
// different restart pacing and initial-phase stream (member 0 keeps the
// default configuration, so a 1-member portfolio behaves exactly like a plain
// InprocBackend). Members exchange learnt clauses through the run's
// ClauseChannel like ordinary workers — a portfolio is sharing plus racing.
// Optionally one supervised external solver joins the race.
//
// Determinism: racing is safe because answers are *semantic*. A SAT answer
// carries a model the caller validates/harvests against the snapshot; an
// UNSAT answer's core is sound from any member. Which member wins can vary
// run to run — which verdict comes back cannot. (test_determinism pins the
// end-to-end consequence: identical verification results with the portfolio
// on or off.)
//
// Loser cancellation: the winner flips a shared atomic; in-proc losers abort
// at their next conflict/decision (SolverInterrupted{Cancelled}, solver left
// at level 0 and reusable), an external loser's child I/O aborts within
// ~10 ms and the child is terminated. solve() joins every member before
// returning, so no member touches shared state after the barrier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/backend.h"
#include "sat/supervise.h"

namespace upec::sat {

struct PortfolioOptions {
  // In-proc racers; 0 is normalized to 1. Member m > 0 gets a diversified
  // restart unit and a seeded initial-phase stream derived from `seed`.
  unsigned members = 2;
  std::uint64_t conflict_budget = 0;
  std::uint64_t seed = 0x5eedULL;
  // Optionally race one supervised external solver alongside the in-proc
  // members ("supervised portfolio mode").
  bool external = false;
  PipeOptions pipe;
  SuperviseOptions supervise;
};

class PortfolioBackend final : public SolverBackend {
public:
  // Members publish/import on `channel` with ids worker_id_base + m — the
  // caller must keep these globally unique across all backends on the
  // channel (the scheduler uses worker * members_per_worker + m).
  explicit PortfolioBackend(PortfolioOptions options, ClauseChannel* channel = nullptr,
                            unsigned worker_id_base = 0);

  void sync(const CnfSnapshot& snap) override;
  SolveStatus solve(const std::vector<Lit>& assumptions) override;
  const std::vector<Lit>& unsat_core() const override;
  bool model_value(Lit l) const override;
  const SolverStats& stats() const override;  // summed over members

  std::uint64_t cache_hits() const override;
  std::uint64_t cache_misses() const override;
  std::size_t live_learnts() const override;

  void set_deadline(std::chrono::steady_clock::time_point t) override;
  void clear_deadline() override;
  bool last_timed_out() const override { return last_timed_out_; }
  BackendHealth health() const override;
  // One entry per participant (in-proc members, then the external racer),
  // summing exactly to stats() — the report's member breakdown.
  std::vector<SolverStats> member_stats() const override;
  // Forwards the heartbeat to every in-proc member. The external child has
  // no hook; its lifecycle shows up in the trace instead.
  void set_progress(ProgressHook hook, std::uint64_t every_conflicts) override;

  void set_verdict_cache(VerdictCache* cache);

  unsigned member_count() const { return static_cast<unsigned>(all_.size()); }
  // Which member answered each won solve (diversity diagnostics in bench).
  const std::vector<std::uint64_t>& member_wins() const { return wins_; }
  int last_winner() const { return winner_; }
  InprocBackend& inproc_member(unsigned m) { return *members_[m]; }
  SupervisedBackend* external_member() { return external_.get(); }

private:
  std::vector<std::unique_ptr<InprocBackend>> members_;
  std::unique_ptr<SupervisedBackend> external_;
  std::vector<SolverBackend*> all_;  // members_ then external_
  std::atomic<bool> cancel_{false};
  int winner_ = -1;
  std::vector<std::uint64_t> wins_;
  BackendHealth health_;
  bool last_timed_out_ = false;
  mutable SolverStats stats_agg_;
  std::vector<Lit> no_core_;
};

} // namespace upec::sat
