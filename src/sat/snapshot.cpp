#include "sat/snapshot.h"

#include <atomic>
#include <cassert>

namespace upec::sat {

std::uint64_t CnfStore::next_id() {
  static std::atomic<std::uint64_t> counter{1};
  return counter.fetch_add(1, std::memory_order_relaxed);
}

Var CnfStore::new_var() {
  std::lock_guard<std::mutex> lock(mu_);
  return num_vars_++;
}

bool CnfStore::add_clause(const std::vector<Lit>& lits) {
  std::lock_guard<std::mutex> lock(mu_);
  ClauseRange range;
  range.offset = arena_.size();
  range.size = static_cast<std::uint32_t>(lits.size());
  arena_.insert(arena_.end(), lits.begin(), lits.end());
  clauses_.push_back(range);
  return true;
}

int CnfStore::num_vars() const {
  std::lock_guard<std::mutex> lock(mu_);
  return num_vars_;
}

std::size_t CnfStore::num_clauses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return clauses_.size();
}

CnfSnapshot CnfStore::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return CnfSnapshot(this, num_vars_, clauses_.size());
}

std::uint64_t CnfSnapshot::store_id() const { return store_ == nullptr ? 0 : store_->id_; }

void CnfSnapshot::for_each_clause(
    const std::function<void(const std::vector<Lit>&)>& fn) const {
  for_each_clause(0, fn);
}

void CnfSnapshot::for_each_clause(
    std::size_t first, const std::function<void(const std::vector<Lit>&)>& fn) const {
  if (store_ == nullptr) return;
  std::vector<Lit> clause;
  std::lock_guard<std::mutex> lock(store_->mu_);
  for (std::size_t i = first; i < num_clauses_; ++i) {
    const CnfStore::ClauseRange& range = store_->clauses_[i];
    clause.assign(store_->arena_.begin() + range.offset,
                  store_->arena_.begin() + range.offset + range.size);
    fn(clause);
  }
}

bool CnfSnapshot::load_into(ClauseSink& sink, Cursor& cursor) const {
  if (store_ == nullptr) return true;
  assert(cursor.vars <= num_vars_ && cursor.clauses <= num_clauses_);
  for (; cursor.vars < num_vars_; ++cursor.vars) sink.new_var();

  // Copy the delta out under the lock, then feed the sink outside it: the
  // sink side (watch-list setup, unit propagation) dominates replay cost, and
  // keeping it unlocked lets several workers hydrate concurrently.
  std::vector<Lit> arena_delta;
  std::vector<CnfStore::ClauseRange> clause_delta;
  {
    std::lock_guard<std::mutex> lock(store_->mu_);
    clause_delta.assign(store_->clauses_.begin() + cursor.clauses,
                        store_->clauses_.begin() + num_clauses_);
    if (!clause_delta.empty()) {
      const std::size_t begin = clause_delta.front().offset;
      const std::size_t end = clause_delta.back().offset + clause_delta.back().size;
      arena_delta.assign(store_->arena_.begin() + begin, store_->arena_.begin() + end);
      for (CnfStore::ClauseRange& r : clause_delta) r.offset -= begin;
    }
  }

  bool ok = true;
  std::vector<Lit> clause;
  for (const CnfStore::ClauseRange& range : clause_delta) {
    clause.assign(arena_delta.begin() + range.offset,
                  arena_delta.begin() + range.offset + range.size);
    ok = sink.add_clause(clause) && ok;
  }
  cursor.clauses = num_clauses_;
  return ok;
}

} // namespace upec::sat
