// Shared clause database for multi-solver verification.
//
// CnfStore is an append-only recording ClauseSink: the encode layer emits
// into it (usually through a TeeSink that also feeds the main solver), and
// any number of worker solvers hydrate from it. CnfSnapshot is an immutable
// view of a store prefix — (num_vars, num_clauses) bounds taken at a point in
// time — so a worker can be brought up to a well-defined cut of the formula
// regardless of what the encoder appends afterwards. Incremental catch-up is
// cursor-based: a worker that already consumed a prefix only replays the
// delta, which is what makes per-check hydration cheap in the Alg. 1 / Alg. 2
// loops (the formula grows by a handful of activation clauses per iteration).
//
// Thread-safety: appends and reads are serialized on an internal mutex. The
// intended protocol is single-producer (the encoding thread, between
// scheduler barriers) / multi-consumer (worker hydration), but the store does
// not depend on that discipline for memory safety.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "sat/clause_sink.h"

namespace upec::sat {

class CnfStore;

// Immutable view of the first `num_clauses` clauses / `num_vars` variables of
// a CnfStore. Cheap to copy; valid as long as the store outlives it.
class CnfSnapshot {
public:
  CnfSnapshot() = default;

  int num_vars() const { return num_vars_; }
  std::size_t num_clauses() const { return num_clauses_; }

  // Identity of the backing store (0 for a default-constructed snapshot).
  // Two snapshots with equal bounds but different store ids describe
  // different formulas — consumers that cache per-snapshot state (replay
  // cursors, serialized DIMACS, verdicts) must key on this.
  std::uint64_t store_id() const;

  // Iterates the snapshot's clauses in emission order.
  void for_each_clause(const std::function<void(const std::vector<Lit>&)>& fn) const;

  // Same, but only clauses in [first, num_clauses). Lets a consumer that
  // already processed a prefix walk just the delta.
  void for_each_clause(std::size_t first,
                       const std::function<void(const std::vector<Lit>&)>& fn) const;

  // Replay position of a sink that is being kept in sync with a store.
  struct Cursor {
    int vars = 0;
    std::size_t clauses = 0;
  };

  // Replays the delta between `cursor` and this snapshot into `sink` and
  // advances the cursor. Returns false if the sink reported trivial UNSAT.
  // The cursor must belong to a sink that has only ever been fed from this
  // snapshot's store (same variable numbering).
  bool load_into(ClauseSink& sink, Cursor& cursor) const;
  bool load_into(ClauseSink& sink) const {
    Cursor cursor;
    return load_into(sink, cursor);
  }

private:
  friend class CnfStore;
  CnfSnapshot(const CnfStore* store, int vars, std::size_t clauses)
      : store_(store), num_vars_(vars), num_clauses_(clauses) {}

  const CnfStore* store_ = nullptr;
  int num_vars_ = 0;
  std::size_t num_clauses_ = 0;
};

class CnfStore final : public ClauseSink {
public:
  CnfStore() = default;
  CnfStore(const CnfStore&) = delete;
  CnfStore& operator=(const CnfStore&) = delete;

  Var new_var() override;
  bool add_clause(const std::vector<Lit>& lits) override;
  using ClauseSink::add_clause;
  int num_vars() const override;

  std::size_t num_clauses() const;

  // Process-unique, never reused (monotone counter starting at 1). See
  // CnfSnapshot::store_id().
  std::uint64_t id() const { return id_; }

  // Immutable view of everything emitted so far.
  CnfSnapshot snapshot() const;

private:
  friend class CnfSnapshot;

  struct ClauseRange {
    std::size_t offset;   // into arena_; size_t so multi-gigaclause stores can't wrap
    std::uint32_t size;
  };

  static std::uint64_t next_id();

  const std::uint64_t id_ = next_id();
  mutable std::mutex mu_;
  int num_vars_ = 0;
  std::vector<Lit> arena_;
  std::vector<ClauseRange> clauses_;
};

} // namespace upec::sat
