#include "sat/metrics.h"

#include <cmath>

namespace upec::sat {

void append_metrics(util::MetricsSnapshot& out, const SolverStats& stats) {
  out.add_counter("conflicts", stats.conflicts);
  out.add_counter("decisions", stats.decisions);
  out.add_counter("deleted_clauses", stats.deleted_clauses);
  out.add_counter("exported_clauses", stats.exported_clauses);
  out.add_counter("imported_clauses", stats.imported_clauses);
  out.add_counter("learned_clauses", stats.learned_clauses);
  out.add_counter("propagations", stats.propagations);
  out.add_counter("restarts", stats.restarts);
  out.add_counter("solve_calls", stats.solve_calls);
}

SolverStats solver_stats_from_metrics(const util::MetricsSnapshot& snap,
                                      const std::string& prefix) {
  SolverStats s;
  s.conflicts = snap.get(prefix + "conflicts");
  s.decisions = snap.get(prefix + "decisions");
  s.deleted_clauses = snap.get(prefix + "deleted_clauses");
  s.exported_clauses = snap.get(prefix + "exported_clauses");
  s.imported_clauses = snap.get(prefix + "imported_clauses");
  s.learned_clauses = snap.get(prefix + "learned_clauses");
  s.propagations = snap.get(prefix + "propagations");
  s.restarts = snap.get(prefix + "restarts");
  s.solve_calls = snap.get(prefix + "solve_calls");
  return s;
}

void append_metrics(util::MetricsSnapshot& out, const SimplifyStats& stats) {
  out.add_counter("eliminated_vars", stats.eliminated_vars);
  out.add_counter("failed_literals", stats.failed_literals);
  out.add_counter("fixed_vars", stats.fixed_vars);
  out.add_counter("frozen_eliminations", stats.frozen_eliminations);
  out.add_counter("resolvents_added", stats.resolvents_added);
  out.add_counter("reuses", stats.reuses);
  out.add_counter("rounds", stats.rounds);
  out.add_counter("runs", stats.runs);
  out.add_counter("strengthened_clauses", stats.strengthened_clauses);
  out.add_counter("subsumed_clauses", stats.subsumed_clauses);
  out.add_counter("wall_us",
                  static_cast<std::uint64_t>(std::llround(stats.seconds * 1e6)));
  out.set_gauge("input_clauses", stats.input_clauses);
  out.set_gauge("input_literals", stats.input_literals);
  out.set_gauge("input_vars", static_cast<std::uint64_t>(
                                  stats.input_vars < 0 ? 0 : stats.input_vars));
  out.set_gauge("output_clauses", stats.output_clauses);
  out.set_gauge("output_literals", stats.output_literals);
}

void append_metrics(util::MetricsSnapshot& out, const BackendHealth& health) {
  out.add_counter("cancelled", health.cancelled);
  out.add_counter("degraded_solves", health.degraded_solves);
  out.add_counter("external_failures", health.external_failures);
  out.add_counter("restarts", health.restarts);
  out.add_counter("sat", health.sat);
  out.add_counter("solves", health.solves);
  out.add_counter("timeouts", health.timeouts);
  out.add_counter("unknown", health.unknown);
  out.add_counter("unsat", health.unsat);
  out.set_gauge("quarantined", health.quarantined ? 1 : 0);
}

} // namespace upec::sat
