#include "sat/share.h"

namespace upec::sat {

void ClauseChannel::publish(unsigned source, const std::vector<Lit>& lits, unsigned lbd) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry e;
  e.source = source;
  e.lbd = lbd;
  e.offset = arena_.size();
  e.size = static_cast<std::uint32_t>(lits.size());
  arena_.insert(arena_.end(), lits.begin(), lits.end());
  entries_.push_back(e);
  count_.store(entries_.size(), std::memory_order_release);
}

std::size_t ClauseChannel::collect(unsigned reader, std::size_t& cursor,
                                   std::vector<SharedClause>& out) const {
  // Fast path: nothing published since this reader's cursor — one atomic
  // load, no lock. This is the overwhelmingly common case at restart
  // boundaries of a worker that is ahead of its peers.
  if (count_.load(std::memory_order_acquire) <= cursor) return 0;

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t appended = 0;
  for (std::size_t i = cursor; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    if (e.source == reader) continue;
    SharedClause sc;
    sc.lits.assign(arena_.begin() + static_cast<std::ptrdiff_t>(e.offset),
                   arena_.begin() + static_cast<std::ptrdiff_t>(e.offset + e.size));
    sc.lbd = e.lbd;
    out.push_back(std::move(sc));
    ++appended;
  }
  cursor = entries_.size();
  return appended;
}

} // namespace upec::sat
