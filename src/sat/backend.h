// SolverBackend: a solving endpoint behind the shared clause database.
//
// A backend receives the formula exclusively through CnfSnapshot syncs and
// answers assumption-based queries; it never sees the encode layer. This is
// the seam that lets the check scheduler treat its workers uniformly today
// (in-process CDCL solvers hydrated from the store) and lets future PRs plug
// in external or portfolio solvers (e.g. a DIMACS-pipe backend over the
// snapshot export in sat/dimacs.h) without touching the verification loops.
#pragma once

#include <cstdint>

#include "sat/share.h"
#include "sat/snapshot.h"
#include "sat/solver.h"

namespace upec::sat {

enum class SolveStatus : std::uint8_t { Sat, Unsat, Unknown };

class SolverBackend : public ModelSource {
public:
  // Brings the backend's clause database up to `snap`. Snapshots must come
  // from one store and be passed in non-decreasing order.
  virtual void sync(const CnfSnapshot& snap) = 0;

  // Solves under assumptions against the last synced snapshot. Unknown means
  // a resource budget was exhausted.
  virtual SolveStatus solve(const std::vector<Lit>& assumptions) = 0;

  virtual const SolverStats& stats() const = 0;
};

// In-process backend: owns a from-scratch CDCL solver kept in sync with the
// store via a replay cursor. Clauses and the solver's learned-clause database
// persist across solve calls, so a worker that is always handed the same
// slice of the problem benefits from incremental solving exactly like the
// single-solver setup did.
class InprocBackend final : public SolverBackend {
public:
  // With a channel, the backend's solver exports its learnt clauses (under
  // the channel's LBD/size caps) tagged with `worker_id` and imports foreign
  // clauses at its restart boundaries. `channel` must outlive the backend;
  // nullptr disables sharing entirely.
  explicit InprocBackend(std::uint64_t conflict_budget = 0, ClauseChannel* channel = nullptr,
                         unsigned worker_id = 0)
      : channel_(channel), worker_id_(worker_id) {
    solver_.set_conflict_budget(conflict_budget);
    if (channel_ != nullptr) {
      solver_.set_export_hook(
          [this](const std::vector<Lit>& lits, unsigned lbd) {
            channel_->publish(worker_id_, lits, lbd);
          },
          channel_->lbd_cap(), channel_->size_cap());
      solver_.set_import_hook([this](std::vector<SharedClause>& out) {
        channel_->collect(worker_id_, channel_cursor_, out);
      });
    }
  }

  void sync(const CnfSnapshot& snap) override { ok_ = snap.load_into(solver_, cursor_) && ok_; }

  SolveStatus solve(const std::vector<Lit>& assumptions) override {
    if (!ok_) return SolveStatus::Unsat;
    try {
      return solver_.solve(assumptions) ? SolveStatus::Sat : SolveStatus::Unsat;
    } catch (const SolverInterrupted&) {
      return SolveStatus::Unknown;
    }
  }

  bool model_value(Lit l) const override { return solver_.model_value(l); }
  const SolverStats& stats() const override { return solver_.stats(); }

  Solver& solver() { return solver_; }
  const Solver& solver() const { return solver_; }

private:
  Solver solver_;
  CnfSnapshot::Cursor cursor_;
  ClauseChannel* channel_ = nullptr;
  unsigned worker_id_ = 0;
  std::size_t channel_cursor_ = 0;
  bool ok_ = true;
};

} // namespace upec::sat
