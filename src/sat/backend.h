// SolverBackend: a solving endpoint behind the shared clause database.
//
// A backend receives the formula exclusively through CnfSnapshot syncs and
// answers assumption-based queries; it never sees the encode layer. This is
// the seam that lets the check scheduler treat its workers uniformly today
// (in-process CDCL solvers hydrated from the store) and lets future PRs plug
// in external or portfolio solvers (e.g. a DIMACS-pipe backend over the
// snapshot export in sat/dimacs.h) without touching the verification loops.
#pragma once

#include <chrono>
#include <cstdint>

#include "sat/share.h"
#include "sat/snapshot.h"
#include "sat/solver.h"
#include "sat/verdict_cache.h"
#include "util/trace.h"

namespace upec::sat {

enum class SolveStatus : std::uint8_t { Sat, Unsat, Unknown };

inline const char* to_string(SolveStatus s) {
  switch (s) {
  case SolveStatus::Sat: return "sat";
  case SolveStatus::Unsat: return "unsat";
  case SolveStatus::Unknown: return "unknown";
  }
  return "unknown";
}

// Robustness counters for supervised / portfolio backends: how often the
// endpoint answered, failed, was restarted, timed out, fell back to the
// in-proc solver, or got quarantined. Plain in-proc backends report zeros
// (they cannot fail externally). Aggregated per worker into the report.
struct BackendHealth {
  std::uint64_t solves = 0;
  std::uint64_t sat = 0;
  std::uint64_t unsat = 0;
  std::uint64_t unknown = 0;            // no answer after every recovery step
  std::uint64_t external_failures = 0;  // child solves that produced no verdict
  std::uint64_t restarts = 0;           // retry attempts after such failures
  std::uint64_t timeouts = 0;           // failures that were wall-clock hits
  std::uint64_t degraded_solves = 0;    // answered by the in-proc fallback
  std::uint64_t cancelled = 0;          // portfolio losers stopped by a winner
  bool quarantined = false;             // endpoint benched for this run
};

inline BackendHealth& operator+=(BackendHealth& a, const BackendHealth& b) {
  a.solves += b.solves;
  a.sat += b.sat;
  a.unsat += b.unsat;
  a.unknown += b.unknown;
  a.external_failures += b.external_failures;
  a.restarts += b.restarts;
  a.timeouts += b.timeouts;
  a.degraded_solves += b.degraded_solves;
  a.cancelled += b.cancelled;
  a.quarantined = a.quarantined || b.quarantined;
  return a;
}

class SolverBackend : public ModelSource {
public:
  // Brings the backend's clause database up to `snap`. Snapshots must come
  // from one store and be passed in non-decreasing order.
  virtual void sync(const CnfSnapshot& snap) = 0;

  // Solves under assumptions against the last synced snapshot. Unknown means
  // a resource budget was exhausted.
  virtual SolveStatus solve(const std::vector<Lit>& assumptions) = 0;

  // After solve() returned Unsat: the subset of the assumptions responsible
  // (see Solver::conflict_assumptions). Empty when the formula itself is
  // UNSAT. On a verdict-cache hit this is the stored core of the original
  // refutation, so callers never observe a difference between a cached and a
  // fresh UNSAT answer.
  virtual const std::vector<Lit>& unsat_core() const = 0;

  virtual const SolverStats& stats() const = 0;

  // Verdict-cache traffic and learnt-database retention, for the per-worker
  // report breakdowns. Backends without a cache report zeros.
  virtual std::uint64_t cache_hits() const { return 0; }
  virtual std::uint64_t cache_misses() const { return 0; }
  virtual std::size_t live_learnts() const { return 0; }

  // Wall-clock deadline: solves started after set_deadline answer Unknown
  // (with last_timed_out() == true) once the clock passes `t`. Persists until
  // cleared. Backends honor it cooperatively (in-proc: restart boundaries and
  // conflict checkpoints) or through the OS (external children get killed).
  virtual void set_deadline(std::chrono::steady_clock::time_point /*t*/) {}
  virtual void clear_deadline() {}

  // True iff the last solve() returned Unknown because of the wall clock
  // (deadline or per-solve timeout), as opposed to a conflict budget,
  // cancellation, or an external-solver failure. Drives the `timed_out`
  // reason in verification reports.
  virtual bool last_timed_out() const { return false; }

  // Robustness counters (see BackendHealth). Zeros for plain backends.
  virtual BackendHealth health() const { return {}; }

  // Per-member breakdown for composite backends (portfolio): one SolverStats
  // per participant, summing exactly to stats(). Empty for single-solver
  // backends — callers treat that as "stats() is the only participant".
  virtual std::vector<SolverStats> member_stats() const { return {}; }

  // Installs a progress heartbeat on every in-proc solver this backend owns
  // (see Solver::set_progress_hook). External children have no hook; their
  // lifecycles are traced instead. Default: no-op.
  virtual void set_progress(ProgressHook /*hook*/, std::uint64_t /*every_conflicts*/) {}
};

// In-process backend: owns a from-scratch CDCL solver kept in sync with the
// store via a replay cursor. Clauses and the solver's learned-clause database
// persist across solve calls, so a worker that is always handed the same
// slice of the problem benefits from incremental solving exactly like the
// single-solver setup did.
class InprocBackend final : public SolverBackend {
public:
  // With a channel, the backend's solver exports its learnt clauses (under
  // the channel's LBD/size caps) tagged with `worker_id` and imports foreign
  // clauses at its restart boundaries. `channel` must outlive the backend;
  // nullptr disables sharing entirely.
  explicit InprocBackend(std::uint64_t conflict_budget = 0, ClauseChannel* channel = nullptr,
                         unsigned worker_id = 0)
      : channel_(channel), worker_id_(worker_id) {
    solver_.set_conflict_budget(conflict_budget);
    if (channel_ != nullptr) {
      solver_.set_export_hook(
          [this](const std::vector<Lit>& lits, unsigned lbd) {
            channel_->publish(worker_id_, lits, lbd);
          },
          channel_->lbd_cap(), channel_->size_cap());
      solver_.set_import_hook([this](std::vector<SharedClause>& out) {
        channel_->collect(worker_id_, channel_cursor_, out);
      });
    }
  }

  // Replays the snapshot delta into the solver. When the snapshot's backing
  // store changes identity (preprocessing emits each simplified generation
  // into a fresh CnfStore), the solver is rebuilt from scratch — clause
  // database dropped, configuration and cumulative stats kept, channel
  // replay restarted — and the whole new store is hydrated. Learnt clauses
  // cross store generations soundly in both directions: every simplified
  // clause is a consequence of the original formula, so anything learnt from
  // one generation is implied by every other.
  void sync(const CnfSnapshot& snap) override {
    util::trace::Span span("sync.inproc", "sat");
    span.arg("store", snap.store_id());
    if (snap.store_id() != store_id_) {
      if (store_id_ != 0) {
        solver_.reset();
        channel_cursor_ = 0;
        ok_ = true;
      }
      store_id_ = snap.store_id();
      cursor_ = CnfSnapshot::Cursor{};
    }
    ok_ = snap.load_into(solver_, cursor_) && ok_;
  }

  // Consult `cache` (shared with other backends and the main check path;
  // may be nullptr) before every solve. Must outlive the backend.
  void set_verdict_cache(VerdictCache* cache) { cache_ = cache; }

  SolveStatus solve(const std::vector<Lit>& assumptions) override {
    util::trace::Span span("solve.inproc", "solve");
    const std::uint64_t conflicts_before = solver_.stats().conflicts;
    const SolveStatus status = solve_impl(assumptions);
    span.arg("status", to_string(status));
    span.arg("conflicts", solver_.stats().conflicts - conflicts_before);
    return status;
  }

  const std::vector<Lit>& unsat_core() const override { return core_; }

  bool model_value(Lit l) const override { return solver_.model_value(l); }
  const SolverStats& stats() const override { return solver_.stats(); }
  std::uint64_t cache_hits() const override { return cache_hits_; }
  std::uint64_t cache_misses() const override { return cache_misses_; }
  std::size_t live_learnts() const override { return solver_.num_learnts(); }

  void set_deadline(std::chrono::steady_clock::time_point t) override { solver_.set_deadline(t); }
  void clear_deadline() override { solver_.clear_deadline(); }
  bool last_timed_out() const override { return last_timed_out_; }
  void set_progress(ProgressHook hook, std::uint64_t every_conflicts) override {
    solver_.set_progress_hook(std::move(hook), every_conflicts);
  }

  Solver& solver() { return solver_; }
  const Solver& solver() const { return solver_; }

private:
  SolveStatus solve_impl(const std::vector<Lit>& assumptions) {
    core_.clear();
    last_timed_out_ = false;
    if (!ok_) return SolveStatus::Unsat; // formula UNSAT outright: empty core
    if (cache_ != nullptr) {
      if (cache_->lookup_unsat(store_id_, cursor_, assumptions, &core_)) {
        ++cache_hits_;
        return SolveStatus::Unsat;
      }
      ++cache_misses_;
    }
    try {
      if (solver_.solve(assumptions)) return SolveStatus::Sat;
      core_ = solver_.conflict_assumptions();
      if (cache_ != nullptr) cache_->insert_unsat(store_id_, cursor_, assumptions, core_);
      return SolveStatus::Unsat;
    } catch (const SolverInterrupted& e) {
      last_timed_out_ = e.reason == SolverInterrupted::Reason::Deadline;
      return SolveStatus::Unknown;
    }
  }

  Solver solver_;
  CnfSnapshot::Cursor cursor_;
  std::uint64_t store_id_ = 0;
  ClauseChannel* channel_ = nullptr;
  unsigned worker_id_ = 0;
  std::size_t channel_cursor_ = 0;
  VerdictCache* cache_ = nullptr;
  std::vector<Lit> core_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
  bool last_timed_out_ = false;
  bool ok_ = true;
};

} // namespace upec::sat
