// ClauseChannel: lock-minimal learned-clause exchange between the worker
// solvers of one ipc::CheckScheduler.
//
// Every worker hydrates from the same CnfStore, so a learnt clause derived by
// one worker is implied by every other worker's clause database (learnt
// clauses are consequences of the database alone — assumptions enter CDCL as
// decisions, never as premises). Sharing them is therefore sound, and it
// attacks the measured T-SCALE-MT cost: chunked per-worker saturation
// re-proves ~2-2.5x of the UNSAT CPU that a single big disjunction proves
// once, largely through re-derived conflict clauses.
//
// Protocol:
//  * Producers publish at learn time, pre-filtered by the exporting solver to
//    LBD <= lbd_cap() and size <= size_cap() (glue clauses travel, noise
//    stays home).
//  * Consumers collect with a private cursor and see only foreign clauses
//    (their own exports are skipped). Import happens at the importer's
//    restart boundaries (sat::Solver::set_import_hook), never mid-analysis.
//  * "Lock-minimal": the common collect case — nothing new since the cursor —
//    is a single acquire load, no mutex. Publishes and non-empty collects
//    serialize on one short critical section around the append-only arena.
//
// The channel is append-only for the lifetime of a scheduler; entries are a
// few dozen literals each (size-capped), so memory stays far below the
// per-worker clause databases they deduplicate.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

#include "sat/solver.h"

namespace upec::sat {

class ClauseChannel {
public:
  // Defaults follow the Glucose lineage: share real glue (small LBD), bound
  // the payload so pathological long clauses never travel.
  static constexpr unsigned kDefaultLbdCap = 6;
  static constexpr std::uint32_t kDefaultSizeCap = 32;

  explicit ClauseChannel(unsigned lbd_cap = kDefaultLbdCap,
                         std::uint32_t size_cap = kDefaultSizeCap)
      : lbd_cap_(lbd_cap), size_cap_(size_cap) {}
  ClauseChannel(const ClauseChannel&) = delete;
  ClauseChannel& operator=(const ClauseChannel&) = delete;

  unsigned lbd_cap() const { return lbd_cap_; }
  std::uint32_t size_cap() const { return size_cap_; }

  // Appends `lits` (a learnt clause of worker `source`) to the channel.
  void publish(unsigned source, const std::vector<Lit>& lits, unsigned lbd);

  // Appends to `out` every clause published since `*cursor` by a worker
  // other than `reader`, then advances the cursor. Returns the number of
  // clauses appended.
  std::size_t collect(unsigned reader, std::size_t& cursor,
                      std::vector<SharedClause>& out) const;

  // Total clauses ever published (all sources).
  std::size_t published() const { return count_.load(std::memory_order_acquire); }

private:
  struct Entry {
    std::uint32_t source;
    std::uint32_t lbd;
    std::size_t offset;  // into arena_
    std::uint32_t size;
  };

  const unsigned lbd_cap_;
  const std::uint32_t size_cap_;
  mutable std::mutex mu_;
  // Published entry count, readable without the mutex: written with release
  // after the entry is fully in place, read with acquire by the collect fast
  // path.
  std::atomic<std::size_t> count_{0};
  std::vector<Lit> arena_;
  std::vector<Entry> entries_;
};

} // namespace upec::sat
