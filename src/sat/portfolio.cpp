#include "sat/portfolio.h"

#include <thread>

namespace upec::sat {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

// Diversified restart pacing per member (member 0 keeps the default 100).
// Mixing short, long, and default units is the classic portfolio spread:
// short units favor SAT witnesses, long units favor UNSAT proofs.
constexpr unsigned kRestartUnits[] = {100, 40, 250, 140, 400, 70, 180, 550};

} // namespace

PortfolioBackend::PortfolioBackend(PortfolioOptions options, ClauseChannel* channel,
                                   unsigned worker_id_base) {
  const unsigned members = options.members == 0 ? 1 : options.members;
  std::uint64_t stream = options.seed;
  members_.reserve(members);
  for (unsigned m = 0; m < members; ++m) {
    auto backend =
        std::make_unique<InprocBackend>(options.conflict_budget, channel, worker_id_base + m);
    backend->solver().set_cancel_flag(&cancel_);
    const std::uint64_t member_seed = splitmix64(stream);
    if (m > 0) {
      backend->solver().set_restart_unit(
          kRestartUnits[m % (sizeof kRestartUnits / sizeof *kRestartUnits)]);
      backend->solver().set_phase_seed(member_seed | 1);  // nonzero: seeded phases on
    }
    all_.push_back(backend.get());
    members_.push_back(std::move(backend));
  }
  if (options.external) {
    external_ = std::make_unique<SupervisedBackend>(options.pipe, options.supervise,
                                                    options.conflict_budget, channel,
                                                    worker_id_base + members);
    external_->set_cancel_flag(&cancel_);
    all_.push_back(external_.get());
  }
  wins_.assign(all_.size(), 0);
}

void PortfolioBackend::sync(const CnfSnapshot& snap) {
  for (SolverBackend* b : all_) b->sync(snap);
}

void PortfolioBackend::set_deadline(std::chrono::steady_clock::time_point t) {
  for (SolverBackend* b : all_) b->set_deadline(t);
}

void PortfolioBackend::clear_deadline() {
  for (SolverBackend* b : all_) b->clear_deadline();
}

void PortfolioBackend::set_verdict_cache(VerdictCache* cache) {
  for (auto& m : members_) m->set_verdict_cache(cache);
  if (external_) external_->set_verdict_cache(cache);
}

SolveStatus PortfolioBackend::solve(const std::vector<Lit>& assumptions) {
  util::trace::Span span("portfolio.race", "portfolio");
  span.arg("members", static_cast<std::uint64_t>(all_.size()));
  ++health_.solves;
  last_timed_out_ = false;
  winner_ = -1;
  cancel_.store(false, std::memory_order_relaxed);

  std::atomic<int> winner{-1};
  std::vector<SolveStatus> status(all_.size(), SolveStatus::Unknown);
  const auto race = [&](int m) {
    const SolveStatus st = all_[static_cast<std::size_t>(m)]->solve(assumptions);
    status[static_cast<std::size_t>(m)] = st;
    if (st != SolveStatus::Unknown) {
      int expected = -1;
      if (winner.compare_exchange_strong(expected, m)) {
        cancel_.store(true, std::memory_order_relaxed);
      }
    }
  };

  if (all_.size() == 1) {
    race(0);
  } else {
    std::vector<std::thread> racers;
    racers.reserve(all_.size() - 1);
    for (int m = 1; m < static_cast<int>(all_.size()); ++m) racers.emplace_back(race, m);
    race(0);  // member 0 races on the caller's thread
    for (std::thread& t : racers) t.join();  // barrier: no member outlives solve()
  }

  winner_ = winner.load(std::memory_order_relaxed);
  span.arg("winner",
           winner_ >= 0 ? std::to_string(winner_) : std::string("none"));
  if (winner_ < 0) {
    // Nobody answered: budgets/deadlines all around. Timed-out only if some
    // member actually hit the wall clock (losers cancelled by a winner can't
    // reach here — there is no winner).
    ++health_.unknown;
    for (const SolverBackend* b : all_) last_timed_out_ = last_timed_out_ || b->last_timed_out();
    return SolveStatus::Unknown;
  }
  ++wins_[static_cast<std::size_t>(winner_)];
  for (std::size_t m = 0; m < all_.size(); ++m) {
    if (static_cast<int>(m) != winner_ && status[m] == SolveStatus::Unknown) {
      ++health_.cancelled;
    }
  }
  const SolveStatus st = status[static_cast<std::size_t>(winner_)];
  (st == SolveStatus::Sat ? health_.sat : health_.unsat) += 1;
  return st;
}

const std::vector<Lit>& PortfolioBackend::unsat_core() const {
  return winner_ >= 0 ? all_[static_cast<std::size_t>(winner_)]->unsat_core() : no_core_;
}

bool PortfolioBackend::model_value(Lit l) const {
  return winner_ >= 0 && all_[static_cast<std::size_t>(winner_)]->model_value(l);
}

const SolverStats& PortfolioBackend::stats() const {
  stats_agg_ = {};
  for (const SolverBackend* b : all_) stats_agg_ += b->stats();
  return stats_agg_;
}

std::uint64_t PortfolioBackend::cache_hits() const {
  std::uint64_t n = 0;
  for (const SolverBackend* b : all_) n += b->cache_hits();
  return n;
}

std::uint64_t PortfolioBackend::cache_misses() const {
  std::uint64_t n = 0;
  for (const SolverBackend* b : all_) n += b->cache_misses();
  return n;
}

std::size_t PortfolioBackend::live_learnts() const {
  std::size_t n = 0;
  for (const SolverBackend* b : all_) n += b->live_learnts();
  return n;
}

BackendHealth PortfolioBackend::health() const {
  BackendHealth h = health_;
  if (external_) h += external_->health();
  return h;
}

std::vector<SolverStats> PortfolioBackend::member_stats() const {
  std::vector<SolverStats> out;
  out.reserve(all_.size());
  for (const SolverBackend* b : all_) out.push_back(b->stats());
  return out;
}

void PortfolioBackend::set_progress(ProgressHook hook, std::uint64_t every_conflicts) {
  for (auto& m : members_) m->set_progress(hook, every_conflicts);
}

} // namespace upec::sat
