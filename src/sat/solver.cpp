#include "sat/solver.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace upec::sat {

Solver::Solver() = default;

void Solver::reset() {
  ok_ = true;
  lit_arena_.clear();
  clauses_.clear();
  learnts_.clear();
  watches_.clear();
  assigns_.clear();
  model_.clear();
  phase_.clear();
  var_info_.clear();
  activity_.clear();
  seen_.clear();
  analyze_stack_.clear();
  analyze_toclear_.clear();
  trail_.clear();
  trail_lim_.clear();
  qhead_ = 0;
  heap_.clear();
  heap_pos_.clear();
  assumptions_.clear();
  conflict_.clear();
  var_inc_ = 1.0;
  cla_inc_ = 1.0f;
  import_buf_.clear();
  lbd_levels_.clear();
  garbage_lits_ = 0;
  // Restart the initial-phase stream (set_phase_seed's derivation) so the
  // rebuilt variable range is phased exactly like a fresh seeded solver.
  phase_rng_state_ = phase_seed_ == 0 ? 0 : phase_seed_ * 0x9e3779b97f4a7c15ULL + 1;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(assigns_.size());
  assigns_.push_back(LBool::Undef);
  if (phase_seed_ == 0) {
    phase_.push_back(0);
  } else {
    // splitmix64 step: one deterministic pseudo-random initial polarity per
    // variable, fixed by the seed — independent of solve order or timing.
    std::uint64_t z = (phase_rng_state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    phase_.push_back((z ^ (z >> 31)) & 1 ? 1 : -1);
  }
  var_info_.push_back(VarInfo{});
  activity_.push_back(0.0);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

Solver::ClauseRef Solver::alloc_clause(const std::vector<Lit>& lits, bool learned) {
  ClauseData cd;
  cd.offset = static_cast<std::uint32_t>(lit_arena_.size());
  cd.size = static_cast<std::uint32_t>(lits.size());
  cd.learned = learned;
  lit_arena_.insert(lit_arena_.end(), lits.begin(), lits.end());
  clauses_.push_back(cd);
  return static_cast<ClauseRef>(clauses_.size() - 1);
}

void Solver::attach_clause(ClauseRef c) {
  const Lit* lits = clause_lits(c);
  assert(clauses_[c].size >= 2);
  watches_[(~lits[0]).index()].push_back(Watcher{c, lits[1]});
  watches_[(~lits[1]).index()].push_back(Watcher{c, lits[0]});
}

void Solver::detach_clause(ClauseRef c) {
  const Lit* lits = clause_lits(c);
  for (int i = 0; i < 2; ++i) {
    auto& ws = watches_[(~lits[i]).index()];
    for (std::size_t j = 0; j < ws.size(); ++j) {
      if (ws[j].cref == c) {
        ws[j] = ws.back();
        ws.pop_back();
        break;
      }
    }
  }
}

bool Solver::add_clause(const std::vector<Lit>& lits_in) {
  if (!ok_) return false;
  // Clause addition must happen at the root level: literal values consulted
  // below for simplification are only trustworthy there. A previous solve()
  // may have left assumption decisions on the trail (e.g. after an UNSAT
  // answer); clear them first.
  cancel_until(0);

  std::vector<Lit> lits = lits_in;
  std::sort(lits.begin(), lits.end());
  // Remove duplicates; detect tautologies and already-satisfied clauses.
  std::vector<Lit> out;
  Lit prev = Lit::undef();
  for (Lit l : lits) {
    if (value(l) == LBool::True || l == ~prev) return true; // satisfied / tautology
    if (value(l) != LBool::False && l != prev) {
      out.push_back(l);
      prev = l;
    }
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    uncheckedEnqueue(out[0], kNoClause);
    ok_ = (propagate() == kNoClause);
    return ok_;
  }
  ClauseRef c = alloc_clause(out, /*learned=*/false);
  attach_clause(c);
  return true;
}

void Solver::uncheckedEnqueue(Lit p, ClauseRef from) {
  assert(value(p) == LBool::Undef);
  assigns_[static_cast<std::size_t>(p.var())] = lbool_from(!p.sign());
  var_info_[static_cast<std::size_t>(p.var())] = VarInfo{from, decision_level()};
  trail_.push_back(p);
}

Solver::ClauseRef Solver::propagate() {
  ClauseRef confl = kNoClause;
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_.propagations;
    auto& ws = watches_[p.index()];
    std::size_t i = 0, j = 0;
    const std::size_t n = ws.size();
    while (i < n) {
      const Watcher w = ws[i++];
      if (value(w.blocker) == LBool::True) {
        ws[j++] = w;
        continue;
      }
      ClauseData& cd = clauses_[w.cref];
      Lit* lits = clause_lits(w.cref);
      // Make sure the false literal is lits[1].
      const Lit false_lit = ~p;
      if (lits[0] == false_lit) std::swap(lits[0], lits[1]);
      assert(lits[1] == false_lit);

      const Lit first = lits[0];
      if (first != w.blocker && value(first) == LBool::True) {
        ws[j++] = Watcher{w.cref, first};
        continue;
      }
      // Look for a new literal to watch.
      bool found = false;
      for (std::uint32_t k = 2; k < cd.size; ++k) {
        if (value(lits[k]) != LBool::False) {
          std::swap(lits[1], lits[k]);
          watches_[(~lits[1]).index()].push_back(Watcher{w.cref, first});
          found = true;
          break;
        }
      }
      if (found) continue;

      // Clause is unit or conflicting.
      ws[j++] = Watcher{w.cref, first};
      if (value(first) == LBool::False) {
        confl = w.cref;
        qhead_ = trail_.size();
        while (i < n) ws[j++] = ws[i++];
      } else {
        uncheckedEnqueue(first, w.cref);
      }
    }
    ws.resize(j);
    if (confl != kNoClause) break;
  }
  return confl;
}

void Solver::var_bump_activity(Var v) {
  activity_[static_cast<std::size_t>(v)] += var_inc_;
  if (activity_[static_cast<std::size_t>(v)] > 1e100) {
    for (auto& a : activity_) a *= 1e-100;
    var_inc_ *= 1e-100;
  }
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) heap_update(v);
}

void Solver::cla_bump_activity(ClauseData& c) {
  c.activity += cla_inc_;
  if (c.activity > 1e20f) {
    for (ClauseRef cr : learnts_) clauses_[cr].activity *= 1e-20f;
    cla_inc_ *= 1e-20f;
  }
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& out_learnt, int& out_btlevel,
                     unsigned& out_lbd) {
  int path_count = 0;
  Lit p = Lit::undef();
  out_learnt.clear();
  out_learnt.push_back(Lit::undef()); // reserve slot for the asserting literal
  std::size_t index = trail_.size();

  do {
    assert(confl != kNoClause);
    ClauseData& cd = clauses_[confl];
    if (cd.learned) cla_bump_activity(cd);
    Lit* lits = clause_lits(confl);
    for (std::uint32_t k = (p == Lit::undef()) ? 0 : 1; k < cd.size; ++k) {
      const Lit q = lits[k];
      const Var v = q.var();
      if (!seen_[static_cast<std::size_t>(v)] && var_info_[static_cast<std::size_t>(v)].level > 0) {
        seen_[static_cast<std::size_t>(v)] = 1;
        var_bump_activity(v);
        if (var_info_[static_cast<std::size_t>(v)].level >= decision_level()) {
          ++path_count;
        } else {
          out_learnt.push_back(q);
        }
      }
    }
    // Select next literal on the trail to expand.
    while (!seen_[static_cast<std::size_t>(trail_[index - 1].var())]) --index;
    p = trail_[--index];
    confl = var_info_[static_cast<std::size_t>(p.var())].reason;
    seen_[static_cast<std::size_t>(p.var())] = 0;
    --path_count;
  } while (path_count > 0);
  out_learnt[0] = ~p;

  // Conflict-clause minimization (recursive, abstraction-guided).
  analyze_toclear_ = out_learnt;
  std::uint32_t abstract_levels = 0;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const int lv = var_info_[static_cast<std::size_t>(out_learnt[i].var())].level;
    abstract_levels |= 1u << (lv & 31);
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < out_learnt.size(); ++i) {
    const Var v = out_learnt[i].var();
    if (var_info_[static_cast<std::size_t>(v)].reason == kNoClause ||
        !lit_redundant(out_learnt[i], abstract_levels)) {
      out_learnt[keep++] = out_learnt[i];
    }
  }
  out_learnt.resize(keep);
  for (Lit l : analyze_toclear_) seen_[static_cast<std::size_t>(l.var())] = 0;

  // Compute backtrack level and LBD.
  if (out_learnt.size() == 1) {
    out_btlevel = 0;
  } else {
    std::size_t max_i = 1;
    for (std::size_t i = 2; i < out_learnt.size(); ++i) {
      if (var_info_[static_cast<std::size_t>(out_learnt[i].var())].level >
          var_info_[static_cast<std::size_t>(out_learnt[max_i].var())].level) {
        max_i = i;
      }
    }
    std::swap(out_learnt[1], out_learnt[max_i]);
    out_btlevel = var_info_[static_cast<std::size_t>(out_learnt[1].var())].level;
  }
  // LBD: number of distinct decision levels in the learnt clause.
  lbd_levels_.clear();
  for (Lit l : out_learnt) {
    lbd_levels_.push_back(var_info_[static_cast<std::size_t>(l.var())].level);
  }
  out_lbd = distinct_level_count(lbd_levels_);
}

unsigned Solver::distinct_level_count(const std::vector<int>& levels) {
  // Levels 0..127 via a two-word bitmap. The former `lv & 64` word select
  // aliased level 128 onto level 0's bit (and generally lv onto lv mod 128),
  // undercounting LBD on deep searches — which would let the wrong clauses
  // survive reduce_db and leak through an LBD-capped export policy. Levels
  // >= 128 therefore use an exact (small, rare) fallback set.
  unsigned count = 0;
  std::uint64_t seen_lo = 0, seen_hi = 0;
  std::vector<int> deep;
  for (const int lv : levels) {
    if (lv < 128) {
      std::uint64_t& word = (lv >= 64) ? seen_hi : seen_lo;
      const std::uint64_t bit = 1ULL << (lv & 63);
      if (!(word & bit)) {
        word |= bit;
        ++count;
      }
    } else if (std::find(deep.begin(), deep.end(), lv) == deep.end()) {
      deep.push_back(lv);
      ++count;
    }
  }
  return count;
}

bool Solver::lit_redundant(Lit p, std::uint32_t abstract_levels) {
  analyze_stack_.clear();
  analyze_stack_.push_back(p);
  const std::size_t top = analyze_toclear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const ClauseRef reason = var_info_[static_cast<std::size_t>(q.var())].reason;
    assert(reason != kNoClause);
    const ClauseData& cd = clauses_[reason];
    const Lit* lits = clause_lits(reason);
    for (std::uint32_t k = 1; k < cd.size; ++k) {
      const Lit r = lits[k];
      const Var v = r.var();
      const int lv = var_info_[static_cast<std::size_t>(v)].level;
      if (!seen_[static_cast<std::size_t>(v)] && lv > 0) {
        if (var_info_[static_cast<std::size_t>(v)].reason != kNoClause &&
            ((1u << (lv & 31)) & abstract_levels)) {
          seen_[static_cast<std::size_t>(v)] = 1;
          analyze_stack_.push_back(r);
          analyze_toclear_.push_back(r);
        } else {
          for (std::size_t j = top; j < analyze_toclear_.size(); ++j) {
            seen_[static_cast<std::size_t>(analyze_toclear_[j].var())] = 0;
          }
          analyze_toclear_.resize(top);
          return false;
        }
      }
    }
  }
  return true;
}

// Final-conflict analysis: called when placing assumption ~p found it already
// falsified. Produces in conflict_ the core — the subset of the assumption
// literals that jointly force the contradiction. The refuted assumption (~p)
// is in the core by construction; every other trail literal that contributed
// is either a genuine assumption decision (reason == kNoClause, recorded
// verbatim) or was *implied*, in which case its reason clause is expanded and
// the walk recurses toward the decisions that fed it. The seen_ flags make
// the recursion a single backwards trail scan — each variable's reason is
// walked at most once — and the result is deduplicated and sorted so callers
// (verdict cache, core pruning) can use it as a canonical set.
void Solver::analyze_final(Lit p) {
  conflict_.clear();
  conflict_.push_back(~p);
  if (decision_level() == 0) {
    return;
  }
  seen_[static_cast<std::size_t>(p.var())] = 1;
  for (std::size_t i = trail_.size(); i-- > static_cast<std::size_t>(trail_lim_[0]);) {
    const Var v = trail_[i].var();
    if (!seen_[static_cast<std::size_t>(v)]) continue;
    const ClauseRef reason = var_info_[static_cast<std::size_t>(v)].reason;
    if (reason == kNoClause) {
      assert(var_info_[static_cast<std::size_t>(v)].level > 0);
      // Decisions above the root are exactly the assumption placements, and
      // the trail holds the assumption literal as passed by the caller.
      conflict_.push_back(trail_[i]);
    } else {
      const ClauseData& cd = clauses_[reason];
      const Lit* lits = clause_lits(reason);
      for (std::uint32_t k = 1; k < cd.size; ++k) {
        if (var_info_[static_cast<std::size_t>(lits[k].var())].level > 0) {
          seen_[static_cast<std::size_t>(lits[k].var())] = 1;
        }
      }
    }
    seen_[static_cast<std::size_t>(v)] = 0;
  }
  seen_[static_cast<std::size_t>(p.var())] = 0;
  std::sort(conflict_.begin(), conflict_.end());
  conflict_.erase(std::unique(conflict_.begin(), conflict_.end()), conflict_.end());
}

void Solver::cancel_until(int level) {
  if (decision_level() <= level) return;
  for (std::size_t c = trail_.size(); c-- > static_cast<std::size_t>(trail_lim_[level]);) {
    const Var v = trail_[c].var();
    assigns_[static_cast<std::size_t>(v)] = LBool::Undef;
    phase_[static_cast<std::size_t>(v)] = trail_[c].sign() ? -1 : 1;
    if (heap_pos_[static_cast<std::size_t>(v)] < 0) heap_insert(v);
  }
  qhead_ = static_cast<std::size_t>(trail_lim_[level]);
  trail_.resize(static_cast<std::size_t>(trail_lim_[level]));
  trail_lim_.resize(static_cast<std::size_t>(level));
}

Lit Solver::pick_branch_lit() {
  Var next = kUndefVar;
  while (next == kUndefVar || value(next) != LBool::Undef) {
    if (heap_empty()) return Lit::undef();
    next = heap_pop();
  }
  const signed char ph = phase_[static_cast<std::size_t>(next)];
  return Lit(next, ph < 0);
}

void Solver::reduce_db() {
  // Keep clauses with small LBD; delete the less active half of the rest.
  std::sort(learnts_.begin(), learnts_.end(), [this](ClauseRef a, ClauseRef b) {
    const ClauseData& ca = clauses_[a];
    const ClauseData& cb = clauses_[b];
    if (ca.lbd != cb.lbd) return ca.lbd > cb.lbd;
    return ca.activity < cb.activity;
  });
  std::vector<ClauseRef> kept;
  kept.reserve(learnts_.size());
  const std::size_t target = learnts_.size() / 2;
  for (std::size_t i = 0; i < learnts_.size(); ++i) {
    ClauseRef cr = learnts_[i];
    ClauseData& cd = clauses_[cr];
    bool locked = false;
    // A clause is locked if it is the reason for a current assignment.
    const Lit l0 = clause_lits(cr)[0];
    if (value(l0) == LBool::True &&
        var_info_[static_cast<std::size_t>(l0.var())].reason == cr) {
      locked = true;
    }
    if (i < target && cd.lbd > 2 && !locked) {
      detach_clause(cr);
      cd.deleted = true;
      garbage_lits_ += cd.size;
      ++stats_.deleted_clauses;
    } else {
      kept.push_back(cr);
    }
  }
  learnts_ = std::move(kept);
  // Deleted clauses are detached (no watcher refs) and never reasons (locked
  // clauses are kept), so their storage is reclaimable. Compact once a
  // quarter of the arena is dead; without this, lit_arena_/clauses_ grow
  // monotonically — an unbounded leak over long portfolio runs.
  if (garbage_lits_ * 4 > lit_arena_.size()) garbage_collect();
}

void Solver::garbage_collect() {
  std::vector<ClauseRef> remap(clauses_.size(), kNoClause);
  std::vector<ClauseData> live_clauses;
  std::vector<Lit> live_arena;
  live_clauses.reserve(clauses_.size());
  live_arena.reserve(lit_arena_.size() - garbage_lits_);
  for (ClauseRef c = 0; c < static_cast<ClauseRef>(clauses_.size()); ++c) {
    const ClauseData& cd = clauses_[c];
    if (cd.deleted) continue;
    remap[c] = static_cast<ClauseRef>(live_clauses.size());
    ClauseData nd = cd;
    nd.offset = static_cast<std::uint32_t>(live_arena.size());
    live_arena.insert(live_arena.end(), lit_arena_.begin() + cd.offset,
                      lit_arena_.begin() + cd.offset + cd.size);
    live_clauses.push_back(nd);
  }
  // Remap every live ClauseRef: the learnt list, all watchers, and the
  // reasons of assigned variables (only trail entries can be consulted as
  // reasons; stale refs on unassigned variables are never dereferenced).
  for (ClauseRef& cr : learnts_) cr = remap[cr];
  for (auto& ws : watches_) {
    for (Watcher& w : ws) w.cref = remap[w.cref];
  }
  for (const Lit p : trail_) {
    ClauseRef& reason = var_info_[static_cast<std::size_t>(p.var())].reason;
    if (reason != kNoClause) reason = remap[reason];
  }
  clauses_ = std::move(live_clauses);
  lit_arena_ = std::move(live_arena);
  garbage_lits_ = 0;
}

bool Solver::import_foreign() {
  if (import_buf_.empty()) return true;
  assert(decision_level() == 0);
  bool enqueued = false;
  for (const SharedClause& sc : import_buf_) {
    // Simplify against root-level facts before attaching: a clause whose
    // watched literals are already false would never wake propagation again,
    // and a model could silently violate it.
    std::vector<Lit> out;
    out.reserve(sc.lits.size());
    bool satisfied = false;
    bool in_range = true;
    for (const Lit l : sc.lits) {
      if (static_cast<std::size_t>(l.var()) >= assigns_.size()) {
        in_range = false;  // exporter ran ahead of our snapshot; drop
        break;
      }
      const LBool v = value(l);
      if (v == LBool::True) {
        satisfied = true;
        break;
      }
      if (v == LBool::Undef) out.push_back(l);
    }
    if (!in_range || satisfied) continue;
    ++stats_.imported_clauses;
    if (out.empty()) {
      ok_ = false;
      break;
    }
    if (out.size() == 1) {
      uncheckedEnqueue(out[0], kNoClause);
      enqueued = true;
    } else {
      const ClauseRef cr = alloc_clause(out, /*learned=*/true);
      clauses_[cr].lbd = std::min<std::uint32_t>(sc.lbd != 0 ? sc.lbd : 2,
                                                 static_cast<std::uint32_t>(out.size()));
      attach_clause(cr);
      learnts_.push_back(cr);
    }
  }
  import_buf_.clear();
  if (ok_ && enqueued && propagate() != kNoClause) ok_ = false;
  return ok_;
}

double Solver::luby(double y, int x) {
  int size = 1, seq = 0;
  while (size < x + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != x) {
    size = (size - 1) >> 1;
    --seq;
    x = x % size;
  }
  return std::pow(y, seq);
}

bool Solver::solve(const std::vector<Lit>& assumptions) {
  ++stats_.solve_calls;
  assumptions_ = assumptions;
  conflict_.clear();
  model_.clear();
  if (!ok_) return false;

  cancel_until(0);

  const auto past_deadline = [this] {
    return deadline_ && std::chrono::steady_clock::now() >= *deadline_;
  };
  const auto cancelled = [this] {
    return cancel_flag_ != nullptr && cancel_flag_->load(std::memory_order_relaxed);
  };
  if (past_deadline()) throw SolverInterrupted{SolverInterrupted::Reason::Deadline};
  if (cancelled()) throw SolverInterrupted{SolverInterrupted::Reason::Cancelled};

  // Solve entry is a restart boundary: drain foreign clauses accumulated
  // since the last call before any search starts.
  if (import_hook_) {
    import_hook_(import_buf_);
    if (!import_foreign()) return false;
  }

  int restart_count = 0;
  std::uint64_t conflicts_until_restart =
      static_cast<std::uint64_t>(luby(2.0, restart_count) * restart_unit_);
  std::uint64_t conflicts_this_restart = 0;
  const std::uint64_t budget_start = stats_.conflicts;

  for (;;) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_.conflicts;
      ++conflicts_this_restart;
      if (conflict_budget_ && stats_.conflicts - budget_start > conflict_budget_) {
        cancel_until(0);
        throw SolverInterrupted{SolverInterrupted::Reason::Budget};
      }
      if (cancelled()) {
        cancel_until(0);
        throw SolverInterrupted{SolverInterrupted::Reason::Cancelled};
      }
      if ((stats_.conflicts & 511) == 0 && past_deadline()) {
        cancel_until(0);
        throw SolverInterrupted{SolverInterrupted::Reason::Deadline};
      }
      if (progress_every_ != 0 && stats_.conflicts % progress_every_ == 0) {
        SolverProgress p;
        p.conflicts = stats_.conflicts;
        p.restarts = stats_.restarts;
        p.learnts = learnts_.size();
        if (deadline_) {
          p.deadline_remaining_ms =
              std::chrono::duration_cast<std::chrono::milliseconds>(
                  *deadline_ - std::chrono::steady_clock::now())
                  .count();
        }
        progress_hook_(p);
      }
      if (decision_level() == 0) {
        // Conflict independent of assumptions: formula is UNSAT outright.
        ok_ = false;
        return false;
      }
      std::vector<Lit> learnt;
      int bt_level = 0;
      unsigned lbd = 0;
      analyze(confl, learnt, bt_level, lbd);
      if (export_hook_ && lbd <= export_lbd_cap_ && learnt.size() <= export_size_cap_) {
        ++stats_.exported_clauses;
        export_hook_(learnt, lbd);
      }
      // Never backtrack past the assumptions: redo them via the decision loop.
      cancel_until(bt_level);
      if (learnt.size() == 1) {
        if (value(learnt[0]) == LBool::Undef) {
          uncheckedEnqueue(learnt[0], kNoClause);
        } else if (value(learnt[0]) == LBool::False) {
          ok_ = false;
          return false;
        }
      } else {
        const ClauseRef cr = alloc_clause(learnt, /*learned=*/true);
        clauses_[cr].lbd = lbd;
        attach_clause(cr);
        learnts_.push_back(cr);
        ++stats_.learned_clauses;
        uncheckedEnqueue(learnt[0], cr);
      }
      var_decay_activity();
      if (learnts_.size() >= max_learnts_) {
        reduce_db();
        max_learnts_ = max_learnts_ + max_learnts_ / 10;
      }
    } else {
      if (conflicts_this_restart >= conflicts_until_restart &&
          decision_level() > static_cast<int>(assumptions_.size())) {
        ++stats_.restarts;
        ++restart_count;
        conflicts_this_restart = 0;
        conflicts_until_restart =
            static_cast<std::uint64_t>(luby(2.0, restart_count) * restart_unit_);
        // A restart boundary is the canonical deadline check (mirrors the
        // supervised subprocess deadline, see set_deadline).
        if (past_deadline()) {
          cancel_until(0);
          throw SolverInterrupted{SolverInterrupted::Reason::Deadline};
        }
        // A restart is the only in-solve import point: no analysis is in
        // flight. Foreign clauses must attach at the root, so only pay the
        // full backtrack when something actually arrived.
        if (import_hook_) import_hook_(import_buf_);
        if (!import_buf_.empty()) {
          cancel_until(0);
          if (!import_foreign()) return false;
        } else {
          cancel_until(static_cast<int>(assumptions_.size()));
        }
        continue;
      }
      // Place assumptions as pseudo-decisions first.
      Lit next = Lit::undef();
      while (decision_level() < static_cast<int>(assumptions_.size())) {
        const Lit a = assumptions_[static_cast<std::size_t>(decision_level())];
        if (value(a) == LBool::True) {
          trail_lim_.push_back(static_cast<int>(trail_.size())); // dummy level
        } else if (value(a) == LBool::False) {
          analyze_final(~a);
          cancel_until(0);
          return false;
        } else {
          next = a;
          break;
        }
      }
      if (next == Lit::undef()) {
        if (cancelled()) {
          cancel_until(0);
          throw SolverInterrupted{SolverInterrupted::Reason::Cancelled};
        }
        ++stats_.decisions;
        next = pick_branch_lit();
        if (next == Lit::undef()) {
          // All variables assigned: model found.
          model_.assign(assigns_.begin(), assigns_.end());
          cancel_until(0);
          return true;
        }
      }
      trail_lim_.push_back(static_cast<int>(trail_.size()));
      uncheckedEnqueue(next, kNoClause);
    }
  }
}


void Solver::for_each_problem_clause(
    const std::function<void(const std::vector<Lit>&)>& fn) const {
  std::vector<Lit> tmp;
  for (const ClauseData& cd : clauses_) {
    if (cd.learned || cd.deleted) continue;
    tmp.assign(lit_arena_.begin() + cd.offset, lit_arena_.begin() + cd.offset + cd.size);
    fn(tmp);
  }
  // Level-0 units (facts) that never became stored clauses.
  for (std::size_t i = 0; i < trail_.size(); ++i) {
    const Var v = trail_[i].var();
    if (var_info_[static_cast<std::size_t>(v)].level != 0) break;
    if (var_info_[static_cast<std::size_t>(v)].reason == kNoClause) {
      tmp.assign(1, trail_[i]);
      fn(tmp);
    }
  }
}

std::size_t Solver::validate_model() const {
  std::size_t violated = 0;
  for_each_problem_clause([&](const std::vector<Lit>& clause) {
    for (Lit l : clause) {
      if (model_value(l)) return;
    }
    ++violated;
  });
  return violated;
}

// --- binary max-heap on VSIDS activity ---------------------------------------

void Solver::heap_insert(Var v) {
  if (heap_pos_[static_cast<std::size_t>(v)] >= 0) return;
  heap_pos_[static_cast<std::size_t>(v)] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_percolate_up(static_cast<int>(heap_.size()) - 1);
}

void Solver::heap_update(Var v) {
  const int i = heap_pos_[static_cast<std::size_t>(v)];
  if (i < 0) return;
  heap_percolate_up(i);
  heap_percolate_down(heap_pos_[static_cast<std::size_t>(v)]);
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[static_cast<std::size_t>(top)] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[static_cast<std::size_t>(heap_[0])] = 0;
    heap_percolate_down(0);
  }
  return top;
}

void Solver::heap_percolate_up(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  while (i > 0) {
    const int parent = (i - 1) >> 1;
    if (!heap_lt(v, heap_[static_cast<std::size_t>(parent)])) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(parent)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = parent;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

void Solver::heap_percolate_down(int i) {
  const Var v = heap_[static_cast<std::size_t>(i)];
  const int n = static_cast<int>(heap_.size());
  for (;;) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n &&
        heap_lt(heap_[static_cast<std::size_t>(child + 1)], heap_[static_cast<std::size_t>(child)])) {
      ++child;
    }
    if (!heap_lt(heap_[static_cast<std::size_t>(child)], v)) break;
    heap_[static_cast<std::size_t>(i)] = heap_[static_cast<std::size_t>(child)];
    heap_pos_[static_cast<std::size_t>(heap_[static_cast<std::size_t>(i)])] = i;
    i = child;
  }
  heap_[static_cast<std::size_t>(i)] = v;
  heap_pos_[static_cast<std::size_t>(v)] = i;
}

} // namespace upec::sat
