// Adapters between the sat layer's typed stats structs and the unified
// util::MetricsSnapshot registry (util/metrics.h).
//
// Naming convention: the adapters emit *unprefixed* leaf names (`conflicts`,
// `health.timeouts`, ...); the aggregation point prefixes each component's
// snapshot into the run-level registry via merge_prefixed — e.g.
// `sat.solver.w3.` + `conflicts`. This keeps one component's serialization
// in one place while the hierarchy stays a call-site concern.
#pragma once

#include <string>

#include "sat/backend.h"
#include "sat/simplify.h"
#include "sat/solver.h"
#include "util/metrics.h"

namespace upec::sat {

// SolverStats <-> snapshot. Every field is a counter; round-trips exactly.
void append_metrics(util::MetricsSnapshot& out, const SolverStats& stats);
SolverStats solver_stats_from_metrics(const util::MetricsSnapshot& snap,
                                      const std::string& prefix = "");

// SimplifyStats: activity fields are counters; last-run formula sizes are
// gauges; `seconds` becomes the `wall_us` counter (integral microseconds).
void append_metrics(util::MetricsSnapshot& out, const SimplifyStats& stats);

// BackendHealth (call-site prefix, e.g. `sat.health.w3.`); `quarantined` is
// a 0/1 gauge, everything else counters.
void append_metrics(util::MetricsSnapshot& out, const BackendHealth& health);

} // namespace upec::sat
