#include "sat/dimacs.h"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <sstream>
#include <string>

namespace upec::sat {

namespace {
long as_dimacs(Lit l) {
  const long v = l.var() + 1; // DIMACS variables are 1-based
  return l.sign() ? -v : v;
}
} // namespace

void write_dimacs(std::ostream& os, const Solver& solver, const std::vector<Lit>& assumptions) {
  std::size_t count = assumptions.size();
  solver.for_each_problem_clause([&](const std::vector<Lit>&) { ++count; });

  os << "p cnf " << solver.num_vars() << ' ' << count << '\n';
  solver.for_each_problem_clause([&](const std::vector<Lit>& clause) {
    for (Lit l : clause) os << as_dimacs(l) << ' ';
    os << "0\n";
  });
  for (Lit a : assumptions) os << as_dimacs(a) << " 0\n";
}

void write_dimacs(std::ostream& os, const CnfSnapshot& snapshot,
                  const std::vector<Lit>& assumptions) {
  os << "p cnf " << snapshot.num_vars() << ' ' << snapshot.num_clauses() + assumptions.size()
     << '\n';
  snapshot.for_each_clause([&](const std::vector<Lit>& clause) {
    for (Lit l : clause) os << as_dimacs(l) << ' ';
    os << "0\n";
  });
  for (Lit a : assumptions) os << as_dimacs(a) << " 0\n";
}

void DimacsCache::write(std::ostream& os, const CnfSnapshot& snapshot,
                        const std::vector<Lit>& assumptions) {
  const std::uint64_t sid = snapshot.store_id();
  // A different store, a shrunk clause view, or a shrunk variable range means
  // the cached body does not describe a prefix of this snapshot. A zero store
  // id (default-constructed snapshot) is never cached — two empty snapshots
  // from different origins are indistinguishable by id.
  if (sid == 0 || sid != store_id_ || snapshot.num_clauses() < clauses_ ||
      snapshot.num_vars() < vars_) {
    body_.clear();
    clauses_ = 0;
  }
  if (snapshot.num_clauses() > clauses_) {
    std::ostringstream delta;
    snapshot.for_each_clause(clauses_, [&](const std::vector<Lit>& clause) {
      for (Lit l : clause) delta << as_dimacs(l) << ' ';
      delta << "0\n";
    });
    std::string text = std::move(delta).str();
    bytes_serialized_ += text.size();
    body_ += text;
    clauses_ = snapshot.num_clauses();
  }
  store_id_ = sid;
  vars_ = snapshot.num_vars();

  os << "p cnf " << snapshot.num_vars() << ' ' << snapshot.num_clauses() + assumptions.size()
     << '\n';
  os << body_;
  for (Lit a : assumptions) os << as_dimacs(a) << " 0\n";
}

bool read_dimacs(std::istream& is, Solver& solver) {
  // Lit packs a variable as 2*v+sign into int32_t, so the largest safe
  // zero-based variable index is (INT32_MAX - 1) / 2.
  constexpr long kMaxVars = (std::numeric_limits<Var>::max() - 1) / 2;
  bool saw_header = false;
  long declared_vars = 0;
  long declared_clauses = 0;
  std::vector<std::vector<Lit>> clauses; // staged until the whole file parses
  std::vector<Lit> clause;
  std::string line;

  // Line-based so that comments are recognized only at line starts (the
  // DIMACS convention) — a stray "c2" typo'd literal mid-clause must be a
  // parse error, not a silently swallowed comment.
  while (std::getline(is, line)) {
    std::istringstream ls(line);
    std::string tok;
    if (!(ls >> tok)) continue;  // blank line
    if (tok[0] == 'c') continue; // comment line
    if (tok == "p") {
      std::string fmt, extra;
      if (saw_header || !(ls >> fmt >> declared_vars >> declared_clauses) ||
          fmt != "cnf" || (ls >> extra) || declared_vars < 0 ||
          declared_vars > kMaxVars || declared_clauses < 0) {
        return false;
      }
      saw_header = true;
      continue;
    }

    // Clause literals; a clause may span lines, so keep accumulating.
    do {
      char* end = nullptr;
      errno = 0;
      const long v = std::strtol(tok.c_str(), &end, 10);
      if (!saw_header || end == tok.c_str() || *end != '\0' || errno == ERANGE) {
        return false;
      }
      // Bound before negating: -LONG_MIN is signed-overflow UB.
      if (v > kMaxVars || v < -kMaxVars) return false;
      if (v == 0) {
        if (static_cast<long>(clauses.size()) >= declared_clauses) return false;
        clauses.push_back(std::move(clause));
        clause.clear();
        continue;
      }
      const long var1 = v < 0 ? -v : v;
      if (var1 > declared_vars) return false; // literal outside declared range
      clause.push_back(Lit(static_cast<Var>(var1 - 1), v < 0));
    } while (ls >> tok);
  }
  // A final clause without its 0 terminator, or a clause count that does not
  // match the header (e.g. a file truncated at a line boundary), is malformed.
  if (!saw_header || !clause.empty() ||
      static_cast<long>(clauses.size()) != declared_clauses) {
    return false;
  }

  // Only mutate the solver once the whole file validated: malformed input
  // (including a corrupt header declaring a huge variable count) leaves the
  // solver untouched instead of half-loaded or OOM-killed mid-allocation.
  while (solver.num_vars() < declared_vars) solver.new_var();
  for (const auto& c : clauses) solver.add_clause(c);
  return true;
}

} // namespace upec::sat
