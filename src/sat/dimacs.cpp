#include "sat/dimacs.h"

namespace upec::sat {

namespace {
long as_dimacs(Lit l) {
  const long v = l.var() + 1; // DIMACS variables are 1-based
  return l.sign() ? -v : v;
}
} // namespace

void write_dimacs(std::ostream& os, const Solver& solver, const std::vector<Lit>& assumptions) {
  std::size_t count = assumptions.size();
  solver.for_each_problem_clause([&](const std::vector<Lit>&) { ++count; });

  os << "p cnf " << solver.num_vars() << ' ' << count << '\n';
  solver.for_each_problem_clause([&](const std::vector<Lit>& clause) {
    for (Lit l : clause) os << as_dimacs(l) << ' ';
    os << "0\n";
  });
  for (Lit a : assumptions) os << as_dimacs(a) << " 0\n";
}

} // namespace upec::sat
