#include "sat/supervise.h"

#include <time.h>

namespace upec::sat {

namespace {

void sleep_backoff(std::uint32_t ms) {
  if (ms == 0) return;
  timespec ts{static_cast<time_t>(ms / 1000), static_cast<long>(ms % 1000) * 1'000'000L};
  while (nanosleep(&ts, &ts) != 0) {
  }
}

} // namespace

SupervisedBackend::SupervisedBackend(PipeOptions pipe, SuperviseOptions options,
                                     std::uint64_t fallback_conflict_budget,
                                     ClauseChannel* channel, unsigned worker_id)
    : pipe_(std::move(pipe)),
      fallback_(fallback_conflict_budget, channel, worker_id),
      options_(options) {}

void SupervisedBackend::sync(const CnfSnapshot& snap) {
  pipe_.sync(snap);
  fallback_.sync(snap);
}

void SupervisedBackend::set_deadline(std::chrono::steady_clock::time_point t) {
  pipe_.set_deadline(t);
  fallback_.set_deadline(t);
}

void SupervisedBackend::clear_deadline() {
  pipe_.clear_deadline();
  fallback_.clear_deadline();
}

void SupervisedBackend::set_cancel_flag(const std::atomic<bool>* flag) {
  cancel_flag_ = flag;
  pipe_.set_cancel_flag(flag);
  fallback_.solver().set_cancel_flag(flag);
}

SolveStatus SupervisedBackend::solve(const std::vector<Lit>& assumptions) {
  ++health_.solves;
  last_timed_out_ = false;
  answered_by_fallback_ = false;

  const auto cancelled = [this] {
    return cancel_flag_ != nullptr && cancel_flag_->load(std::memory_order_relaxed);
  };

  if (!health_.quarantined) {
    unsigned attempt = 0;
    for (;;) {
      const SolveStatus st = pipe_.solve(assumptions);
      if (st != SolveStatus::Unknown) {
        consecutive_degraded_ = 0;
        (st == SolveStatus::Sat ? health_.sat : health_.unsat) += 1;
        return st;
      }
      if (cancelled()) {
        // A portfolio sibling answered; this is not the endpoint's fault.
        ++health_.cancelled;
        ++health_.unknown;
        return SolveStatus::Unknown;
      }
      ++health_.external_failures;
      if (pipe_.last_timed_out()) {
        // The query's wall budget is spent — retrying a hang only doubles
        // the damage. Degrade this solve immediately.
        ++health_.timeouts;
        break;
      }
      if (attempt >= options_.max_restarts) break;
      ++attempt;
      ++health_.restarts;
      sleep_backoff(options_.backoff_ms << (attempt - 1));
    }
    if (++consecutive_degraded_ >= options_.quarantine_after) health_.quarantined = true;
  }

  // Graceful degradation: the embedded in-proc worker answers instead.
  ++health_.degraded_solves;
  answered_by_fallback_ = true;
  const SolveStatus st = fallback_.solve(assumptions);
  switch (st) {
    case SolveStatus::Sat: ++health_.sat; break;
    case SolveStatus::Unsat: ++health_.unsat; break;
    case SolveStatus::Unknown:
      ++health_.unknown;
      if (cancelled()) ++health_.cancelled;
      last_timed_out_ = fallback_.last_timed_out() || pipe_.last_timed_out();
      break;
  }
  return st;
}

const std::vector<Lit>& SupervisedBackend::unsat_core() const {
  return answered_by_fallback_ ? fallback_.unsat_core() : pipe_.unsat_core();
}

bool SupervisedBackend::model_value(Lit l) const {
  return answered_by_fallback_ ? fallback_.model_value(l) : pipe_.model_value(l);
}

const SolverStats& SupervisedBackend::stats() const {
  stats_agg_ = pipe_.stats();
  stats_agg_ += fallback_.stats();
  return stats_agg_;
}

} // namespace upec::sat
