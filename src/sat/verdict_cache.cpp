#include "sat/verdict_cache.h"

#include <algorithm>

namespace upec::sat {

std::vector<Lit> VerdictCache::canonical(const std::vector<Lit>& assumptions) {
  std::vector<Lit> key = assumptions;
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  return key;
}

std::uint64_t VerdictCache::hash_key(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                                     const std::vector<Lit>& key) {
  // FNV-1a over (store id, cursor, literal indexes).
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 1099511628211ull;
  };
  mix(store_id);
  mix(static_cast<std::uint64_t>(cursor.vars));
  mix(static_cast<std::uint64_t>(cursor.clauses));
  for (Lit l : key) mix(static_cast<std::uint64_t>(static_cast<std::uint32_t>(l.index())));
  return h;
}

bool VerdictCache::lookup_unsat(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                                const std::vector<Lit>& assumptions,
                                std::vector<Lit>* core_out) {
  const std::vector<Lit> key = canonical(assumptions);
  const std::uint64_t h = hash_key(store_id, cursor, key);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = map_.find(h);
  if (it != map_.end()) {
    for (const Entry& e : it->second) {
      if (e.store_id == store_id && e.cursor.vars == cursor.vars &&
          e.cursor.clauses == cursor.clauses && e.key == key) {
        ++hits_;
        if (core_out != nullptr) *core_out = e.core;
        return true;
      }
    }
  }
  ++misses_;
  return false;
}

void VerdictCache::insert_unsat(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                                const std::vector<Lit>& assumptions,
                                const std::vector<Lit>& core) {
  std::vector<Lit> key = canonical(assumptions);
  const std::uint64_t h = hash_key(store_id, cursor, key);
  std::lock_guard<std::mutex> lock(mu_);
  if (size_ >= max_entries_) return;
  std::vector<Entry>& chain = map_[h];
  for (const Entry& e : chain) {
    if (e.store_id == store_id && e.cursor.vars == cursor.vars &&
        e.cursor.clauses == cursor.clauses && e.key == key) {
      return; // duplicate (two workers raced on the same query)
    }
  }
  chain.push_back(Entry{store_id, cursor, std::move(key), core});
  ++size_;
}

std::uint64_t VerdictCache::hits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return hits_;
}

std::uint64_t VerdictCache::misses() const {
  std::lock_guard<std::mutex> lock(mu_);
  return misses_;
}

std::size_t VerdictCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return size_;
}

} // namespace upec::sat
