// Abstract emission and inspection interfaces that decouple the encode layer
// from any concrete solver.
//
//  * ClauseSink — where Tseitin encoders emit variables and clauses. Both the
//    live CDCL Solver and the recording CnfStore implement it, so the same
//    encoding pass can drive a single incremental solver, a shared clause
//    database for a pool of worker solvers, or both at once (TeeSink).
//
//  * ModelSource — where model values are read back after a satisfiable
//    solve. Abstracting this lets the miter's counterexample inspection run
//    against any worker solver's model, not just the one the CNF was first
//    encoded into.
#pragma once

#include <cassert>
#include <vector>

#include "sat/types.h"

namespace upec::sat {

class ClauseSink {
public:
  virtual ~ClauseSink() = default;

  virtual Var new_var() = 0;
  // Returns false if the formula became trivially UNSAT (sinks that only
  // record always return true).
  virtual bool add_clause(const std::vector<Lit>& lits) = 0;
  virtual int num_vars() const = 0;

  bool add_clause(Lit a) { return add_clause(std::vector<Lit>{a}); }
  bool add_clause(Lit a, Lit b) { return add_clause(std::vector<Lit>{a, b}); }
  bool add_clause(Lit a, Lit b, Lit c) { return add_clause(std::vector<Lit>{a, b, c}); }
};

class ModelSource {
public:
  virtual ~ModelSource() = default;
  // Value of a literal in the most recent satisfying assignment.
  virtual bool model_value(Lit l) const = 0;
};

// Fans every emission out to two sinks. The UPEC context tees the encode
// layer into its main solver (always current, models readable immediately)
// and the shared CnfStore (worker solvers hydrate from it on demand). Both
// sinks must allocate identical variable numbering, which holds whenever they
// start empty and receive every emission through the tee.
class TeeSink final : public ClauseSink {
public:
  TeeSink(ClauseSink& primary, ClauseSink& secondary)
      : primary_(primary), secondary_(secondary) {
    assert(primary_.num_vars() == secondary_.num_vars());
  }

  Var new_var() override {
    const Var v = primary_.new_var();
    const Var w = secondary_.new_var();
    assert(v == w);
    (void)w;
    return v;
  }

  bool add_clause(const std::vector<Lit>& lits) override {
    const bool ok = primary_.add_clause(lits);
    secondary_.add_clause(lits);
    return ok;
  }

  using ClauseSink::add_clause;

  int num_vars() const override { return primary_.num_vars(); }

private:
  ClauseSink& primary_;
  ClauseSink& secondary_;
};

} // namespace upec::sat
