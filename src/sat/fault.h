// Deterministic fault injection for the external-solver path.
//
// The supervision stack (sat/supervise.h) exists because real external
// solvers crash, hang, get OOM-killed mid-print, and emit garbage. None of
// those happen on demand in CI, so the embedded self-exec solver
// (sat::self_solver_main) accepts a fault spec and misbehaves *on purpose*,
// in exactly one of the ways below, at a deterministic point in its output.
// test_portfolio_faults drives every class through the full backend →
// supervisor → scheduler path and asserts the contract: a faulty solver may
// cost time, never an answer — and never a *wrong* answer.
//
// Specs are the wire format (they ride in the child's argv):
//   ""          — behave correctly
//   "crash:N"   — SIGKILL self after writing N output lines (OOM-kill shape)
//   "hang"      — ignore SIGTERM and sleep forever instead of answering
//                 (forces the supervisor's SIGTERM → grace → SIGKILL ladder)
//   "garbage"   — print binary noise instead of a result, exit 0
//   "partial"   — print `s SATISFIABLE` and a truncated `v` line with no
//                 terminating 0, exit 0 (killed-mid-print shape)
//   "slow:MS"   — sleep MS milliseconds before each output line (tests the
//                 mid-stream read deadline)
//   "bogus"     — claim SAT with a fabricated all-false model regardless of
//                 the real verdict (a *lying* solver; caught by the
//                 backend's model validation against the snapshot)
#pragma once

#include <string>
#include <string_view>

namespace upec::sat {

struct FaultInjector {
  enum class Kind : unsigned char {
    None,
    CrashAfterLines,
    Hang,
    Garbage,
    PartialModel,
    SlowWrite,
    BogusModel,
  };

  Kind kind = Kind::None;
  unsigned arg = 0;  // lines for crash, milliseconds for slow

  static FaultInjector parse(std::string_view spec) {
    FaultInjector f;
    const std::size_t colon = spec.find(':');
    const std::string_view name = spec.substr(0, colon);
    unsigned arg = 0;
    if (colon != std::string_view::npos) {
      for (char c : spec.substr(colon + 1)) {
        if (c < '0' || c > '9') break;
        arg = arg * 10 + static_cast<unsigned>(c - '0');
      }
    }
    if (name == "crash") {
      f.kind = Kind::CrashAfterLines;
      f.arg = arg;
    } else if (name == "hang") {
      f.kind = Kind::Hang;
    } else if (name == "garbage") {
      f.kind = Kind::Garbage;
    } else if (name == "partial") {
      f.kind = Kind::PartialModel;
    } else if (name == "slow") {
      f.kind = Kind::SlowWrite;
      f.arg = arg == 0 ? 50 : arg;
    } else if (name == "bogus") {
      f.kind = Kind::BogusModel;
    }
    return f;
  }

  std::string spec() const {
    switch (kind) {
      case Kind::None: return "";
      case Kind::CrashAfterLines: return "crash:" + std::to_string(arg);
      case Kind::Hang: return "hang";
      case Kind::Garbage: return "garbage";
      case Kind::PartialModel: return "partial";
      case Kind::SlowWrite: return "slow:" + std::to_string(arg);
      case Kind::BogusModel: return "bogus";
    }
    return "";
  }
};

} // namespace upec::sat
