// Simplifier: SatELite-style CNF preprocessing over an immutable CnfSnapshot
// (Eén & Biere, "Effective Preprocessing in SAT through Variable and Clause
// Elimination" — the same lineage the CDCL solver itself follows).
//
// The sweep loops hydrate the *same* bit-blasted transition relation into
// every scheduler worker and then burn ~10^8 propagations on it per bench
// row. Preprocessing shrinks that formula once, on the calling thread, and
// the saving pays off in every worker, every solve, every iteration. Three
// techniques run to a fixed point under deterministic effort budgets:
//
//   * backward subsumption + self-subsuming resolution (strengthening) —
//     equivalence-preserving clause removal / literal removal, guided by
//     64-bit clause signatures;
//   * bounded variable elimination (BVE): a non-frozen variable is resolved
//     away when the non-tautological resolvent count does not exceed the
//     number of removed clauses plus a growth budget; the removed clauses go
//     onto a reconstruction stack;
//   * failed-literal probing at root level: assume l, propagate; a conflict
//     asserts ~l as a root unit.
//
// Soundness contract, in two halves:
//
//   1. Frozen variables. Everything the caller will ever assume, read from a
//      model, or otherwise address by name must be declared frozen — the
//      encode/upec layers own that list (Miter::frozen_vars,
//      UpecContext::frozen_vars). Frozen variables are never eliminated and
//      therefore mean the same thing in the simplified formula. Assuming an
//      *eliminated* variable would silently constrain nothing, which is why
//      the frozen set is a soundness input, not a tuning knob. Subsumption,
//      strengthening and probing are equivalence-preserving, so they need no
//      protection: every clause of the simplified formula is a consequence
//      of the original, and the two formulas agree on all frozen variables.
//      Consequences: UNSAT under assumptions over frozen vars transfers to
//      the original formula verbatim, a SAT model's frozen-variable values
//      are original-formula values as-is, and learnt clauses may flow freely
//      between solvers holding different generations (or the original).
//
//   2. Reconstruction. reconstruct(model) replays the elimination stack in
//      reverse, fixing each eliminated variable so its removed clauses are
//      satisfied (always possible: the resolvents were in the formula the
//      model satisfies). The result is a model of the *original* formula, so
//      validate_model-style checks answer in original terms. Only needed
//      when a caller wants values of non-frozen variables — the sweep
//      harvest reads frozen diff literals only and skips it.
//
// Generation caching: simplify() memoizes on (store id, cursor, frozen set).
// A repeated call with the same input prefix and a frozen set that is a
// *subset* of the cached one returns the cached generation without work —
// this is what makes "simplify once per iteration" one real simplification
// per Alg. 1 run (the store freezes after iteration 0 and the frontier only
// shrinks). Each generation is materialized into a fresh private CnfStore,
// so downstream consumers (backend sync cursors, the verdict cache, DIMACS
// caches) see a new store id and invalidate naturally.
//
// Determinism: all effort budgets are operation counters, never wall clock,
// and every pass iterates in a fixed order — the output formula is a pure
// function of (input formula, frozen set, options). The scheduler relies on
// this for thread-count-independent frontiers.
//
// Thread-safety: none. simplify() runs on the scheduler's calling thread
// between fan-out barriers; the returned snapshot is then read concurrently
// through CnfSnapshot's own locking. The snapshot is valid until the *next*
// simplify() call that starts a new generation.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sat/snapshot.h"
#include "sat/types.h"

namespace upec::sat {

struct SimplifyOptions {
  bool subsumption = true;
  bool bve = true;
  bool probing = true;
  // Fixed-point rounds cap per run (each round: subsume, eliminate, probe).
  unsigned max_rounds = 3;
  // BVE: skip variables with more than this many occurrences in either
  // polarity (the classic quadratic-blowup guard).
  std::size_t bve_occurrence_cap = 10;
  // BVE: eliminate only if #resolvents <= #removed clauses + bve_growth.
  int bve_growth = 0;
  // Literal-comparison budget for the subsumption pass, per run. Exhaustion
  // stops the pass cleanly (fewer clauses removed, never a wrong formula).
  std::uint64_t subsumption_budget = 50'000'000;
  // Propagation-step budget for failed-literal probing, per run.
  std::uint64_t probe_budget = 20'000'000;
};

struct SimplifyStats {
  std::uint64_t runs = 0;    // real simplifications
  std::uint64_t reuses = 0;  // generation-cache hits
  std::uint64_t rounds = 0;  // fixed-point rounds across all runs
  std::uint64_t eliminated_vars = 0;
  // Tripwire: eliminations of frozen variables. Any nonzero value is a bug
  // in the frozen-set plumbing (asserted on by tests and the T-PREP bench).
  std::uint64_t frozen_eliminations = 0;
  std::uint64_t subsumed_clauses = 0;
  std::uint64_t strengthened_clauses = 0;
  std::uint64_t failed_literals = 0;
  std::uint64_t fixed_vars = 0;  // root-level assignments discovered
  std::uint64_t resolvents_added = 0;
  // Last run's input/output formula sizes.
  int input_vars = 0;
  std::size_t input_clauses = 0;
  std::uint64_t input_literals = 0;
  std::size_t output_clauses = 0;
  std::uint64_t output_literals = 0;
  double seconds = 0.0;  // summed over runs
};

class Simplifier {
public:
  explicit Simplifier(SimplifyOptions options = {});
  ~Simplifier();
  Simplifier(const Simplifier&) = delete;
  Simplifier& operator=(const Simplifier&) = delete;

  // Simplifies `snap` under the frozen-variable contract above and returns a
  // snapshot of an internally-owned store holding the simplified formula
  // (same variable numbering; eliminated variables simply stop occurring).
  // Root-level facts are emitted as unit clauses, so hydrating the result
  // into a fresh solver reproduces them. If simplification refutes the
  // formula outright the result contains an empty clause. The returned
  // snapshot is invalidated by the next simplify() call that misses the
  // generation cache.
  CnfSnapshot simplify(const CnfSnapshot& snap, const std::vector<Var>& frozen);

  // Extends/repairs a model of the current generation into a model of the
  // original snapshot: overwrites root-fixed variables with their forced
  // values, then replays the elimination stack in reverse, flipping each
  // eliminated variable where needed. `model` is indexed by Var and is
  // resized to the input formula's variable count.
  void reconstruct(std::vector<bool>& model) const;

  // True iff the current generation was refuted outright during
  // simplification (the emitted formula is the empty clause).
  bool output_unsat() const { return unsat_; }

  const SimplifyStats& stats() const { return stats_; }

private:
  struct ElimEntry {
    Var v;
    std::vector<Clause> clauses;  // the clauses removed when v was eliminated
  };

  SimplifyOptions options_;
  SimplifyStats stats_;

  // Current generation: simplified store + reconstruction state.
  std::unique_ptr<CnfStore> out_;
  std::vector<ElimEntry> elim_stack_;
  std::vector<LBool> root_assigns_;
  bool unsat_ = false;

  // Generation-cache key: input identity + the frozen set the generation was
  // computed under (reusable for any frozen subset).
  std::uint64_t in_store_id_ = 0;
  CnfSnapshot::Cursor in_cursor_;
  std::vector<char> frozen_flags_;
};

} // namespace upec::sat
