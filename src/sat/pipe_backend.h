// PipeBackend: a SolverBackend that delegates each query to an external
// DIMACS solver process.
//
// The backend is the untrusting half of a two-party protocol. It serializes
// the last synced CnfSnapshot plus the query's assumptions through
// write_dimacs into a fresh child (spawned per solve — DIMACS is stateless,
// which is exactly what makes restart-on-crash trivial for the supervisor
// above), then strictly parses the child's stdout. The parse mirrors
// read_dimacs's all-or-nothing discipline: anything short of a complete,
// well-formed `s SATISFIABLE` + terminated `v`-line model, or a bare
// `s UNSATISFIABLE`, yields Unknown. A claimed model is additionally
// validated against every snapshot clause and assumption before it is
// believed — a *lying* solver costs a solve, never a verdict. The only
// trusted claim is UNSAT, the same trust every portfolio places in its
// members; everything else is checked.
//
// Self-exec fallback: the embedded CDCL solver doubles as the external
// binary. A host program whose main() calls self_solver_main() first can be
// spawned as its own solver child (argv from self_solver_argv), so tests and
// benchmarks exercise the full fork/pipe/parse path without depending on any
// system SAT solver — and the FaultInjector spec riding in that argv makes
// the child misbehave deterministically for the fault-tolerance suites.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "sat/backend.h"
#include "sat/dimacs.h"
#include "util/subprocess.h"

namespace upec::sat {

// Result of strictly parsing an external solver's stdout. status is Unknown
// for anything malformed, with `error` carrying the first reason (surfaced in
// reports and asserted on by the hostile-output corpus tests).
struct SolverOutput {
  SolveStatus status = SolveStatus::Unknown;
  std::vector<LBool> model;  // indexed by 0-based Var; filled when Sat
  std::string error;
};

// All-or-nothing parse of `s`/`v`/`c` solver output. Strict where trusting
// would risk a wrong verdict: exactly one status line with the exact token,
// `v` lines only after `s SATISFIABLE`, every literal in [1, num_vars],
// no conflicting literals, a mandatory terminating 0 with nothing after it,
// and any unrecognized line (binary noise, junk) poisons the whole output.
SolverOutput parse_solver_output(std::string_view text, int num_vars);

// True iff `model` satisfies every clause of `snap` and every assumption
// (LBool::Undef satisfies nothing — a partial model must still cover every
// clause). This is the check that stops a lying SAT claim.
bool model_satisfies(const std::vector<LBool>& model, const CnfSnapshot& snap,
                     const std::vector<Lit>& assumptions);

struct PipeOptions {
  // Child command line; argv[0] is resolved through PATH. Defaults to the
  // self-exec solver when empty (see self_solver_argv).
  std::vector<std::string> argv;
  // Per-solve wall-clock ceiling covering spawn + write + solve + read.
  std::uint32_t solve_deadline_ms = 10'000;
  // SIGTERM → SIGKILL escalation window when the child must be stopped.
  std::uint32_t term_grace_ms = 200;
  // Cap on child stdout, against hostile output floods.
  std::size_t max_output_bytes = std::size_t{64} << 20;
};

class PipeBackend final : public SolverBackend {
public:
  explicit PipeBackend(PipeOptions options);

  void sync(const CnfSnapshot& snap) override { snap_ = snap; }

  // Spawn, stream DIMACS, parse, validate. Never blocks past the effective
  // deadline, never leaks the child (terminate + reap on every path), and
  // never returns a wrong verdict: all failure modes collapse to Unknown.
  SolveStatus solve(const std::vector<Lit>& assumptions) override;

  // After Unsat: the full assumption set (sorted, deduplicated). An external
  // solver emits no core, and the whole set is always a sound one — the
  // frontier pruner just gets no shrinkage from this backend.
  const std::vector<Lit>& unsat_core() const override { return core_; }

  bool model_value(Lit l) const override {
    const auto i = static_cast<std::size_t>(l.var());
    const bool v = i < model_.size() && model_[i] == LBool::True;
    return v != l.sign();
  }

  const SolverStats& stats() const override { return stats_; }

  // Optional absolute deadline (e.g. the verification run's global budget);
  // the effective per-solve deadline is the earlier of this and
  // options.solve_deadline_ms from solve entry.
  void set_deadline(std::chrono::steady_clock::time_point t) override { deadline_ = t; }
  void clear_deadline() override { deadline_.reset(); }

  // Cooperative cancellation (portfolio racing): while `*flag` is true the
  // in-flight child I/O aborts within ~10 ms and the child is terminated.
  // The flag must outlive the backend or be cleared with nullptr.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_flag_ = flag; }

  // --- observability (supervisor decisions, fault-suite assertions) ----------
  // Last solve hit the wall clock (as opposed to crash/garbage).
  bool last_timed_out() const override { return last_timed_out_; }
  // Diagnostic for the last Unknown ("spawn failed", "child signaled 9", ...).
  const std::string& last_error() const { return last_error_; }
  // Pid of the last child — already reaped by the time solve() returned, so
  // tests can assert kill(pid, 0) == ESRCH (no zombie, no orphan).
  pid_t last_pid() const { return last_pid_; }
  util::Subprocess::ExitStatus last_exit() const { return last_exit_; }

private:
  PipeOptions options_;
  CnfSnapshot snap_;
  // Incremental DIMACS serialization: across the Alg. 1 / Alg. 2 loops the
  // snapshot grows by a few activation clauses per iteration while every solve
  // re-sends the whole formula — the cache re-serializes only the delta and
  // reuses the clause-body bytes for the (large) stable prefix.
  DimacsCache dimacs_cache_;
  std::vector<LBool> model_;
  std::vector<Lit> core_;
  SolverStats stats_;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  bool last_timed_out_ = false;
  std::string last_error_;
  pid_t last_pid_ = -1;
  util::Subprocess::ExitStatus last_exit_;
};

// --- self-exec solver ---------------------------------------------------------
// Marker flag that turns an embedding binary into a DIMACS solver child:
//   <binary> --upec-dimacs-solver [fault-spec]
// reads DIMACS from stdin, solves with the in-process CDCL solver, and prints
// `s ...` / `v ...` to stdout (exit 10 SAT / 20 UNSAT, the DIMACS
// convention). The optional fault-spec (see sat/fault.h) injects one
// deterministic misbehavior.
inline constexpr char kSelfSolverFlag[] = "--upec-dimacs-solver";

// Call first thing in main(). Returns the process exit code when argv[1] is
// the self-solver flag, -1 otherwise (continue as the normal program).
int self_solver_main(int argc, char** argv);

// Command line that re-execs the current binary as a solver child.
std::vector<std::string> self_solver_argv(const std::string& fault_spec = "");

} // namespace upec::sat
