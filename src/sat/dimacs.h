// DIMACS CNF import/export: writes the solver's problem clauses in the
// standard format so instances can be cross-checked with external SAT
// solvers or archived alongside experiment results, and reads instances
// back for regression testing and replaying archived queries.
#pragma once

#include <cstdint>
#include <istream>
#include <ostream>
#include <string>

#include "sat/snapshot.h"
#include "sat/solver.h"

namespace upec::sat {

// Writes `p cnf <vars> <clauses>` followed by one clause per line. Optional
// `assumptions` are appended as unit clauses (freezing one property check
// into a standalone instance).
void write_dimacs(std::ostream& os, const Solver& solver,
                  const std::vector<Lit>& assumptions = {});

// Same, from an immutable CnfSnapshot — the export path for encodings that
// were emitted into a CnfStore (e.g. a full miter), enabling cross-checks of
// individual property queries against external SAT solvers without ever
// constructing an in-process solver.
void write_dimacs(std::ostream& os, const CnfSnapshot& snapshot,
                  const std::vector<Lit>& assumptions = {});

// Incremental serializer for repeated exports of a growing store: caches the
// serialized clause body and, when asked to write a snapshot of the same
// store again, serializes only the clauses appended since the cached prefix.
// The header and assumption units are regenerated per write, so the output is
// byte-identical to write_dimacs(os, snapshot, assumptions) — asserted by the
// portfolio fault suite. A different store id (or a shrunk / renumbered view)
// drops the cache and rebuilds from scratch, so correctness never depends on
// the caller's sync discipline.
class DimacsCache {
public:
  void write(std::ostream& os, const CnfSnapshot& snapshot,
             const std::vector<Lit>& assumptions = {});

  // Serialized-clause bytes appended across all writes — total minus reused
  // lets tests prove the delta path actually engaged.
  std::uint64_t bytes_serialized() const { return bytes_serialized_; }

private:
  std::uint64_t store_id_ = 0;
  int vars_ = 0;
  std::size_t clauses_ = 0;     // cached prefix length, in clauses
  std::string body_;            // serialized clause lines for that prefix
  std::uint64_t bytes_serialized_ = 0;
};

// Reads a DIMACS CNF instance into `solver`, creating the variables the
// header declares (the solver must be freshly constructed or at least have
// no conflicting variable numbering). Comment lines (any line whose first
// token starts with 'c') are accepted anywhere and clauses may span lines,
// but the reader is strict where it protects the solver or would otherwise
// mask corruption: literals outside the header's declared variable range,
// variable counts that cannot be packed into `Lit`, clauses before the
// header, and a clause count that disagrees with the header (e.g. a file
// truncated at a line boundary) all return false, and a false return
// guarantees the solver was not mutated (clauses are staged until the whole
// file validates). A trivially-UNSAT instance still parses successfully
// (the solver just records ok == false).
bool read_dimacs(std::istream& is, Solver& solver);

} // namespace upec::sat
