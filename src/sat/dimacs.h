// DIMACS CNF export: writes the solver's problem clauses in the standard
// format so instances can be cross-checked with external SAT solvers or
// archived alongside experiment results.
#pragma once

#include <ostream>

#include "sat/solver.h"

namespace upec::sat {

// Writes `p cnf <vars> <clauses>` followed by one clause per line. Optional
// `assumptions` are appended as unit clauses (freezing one property check
// into a standalone instance).
void write_dimacs(std::ostream& os, const Solver& solver,
                  const std::vector<Lit>& assumptions = {});

} // namespace upec::sat
