// DIMACS CNF import/export: writes the solver's problem clauses in the
// standard format so instances can be cross-checked with external SAT
// solvers or archived alongside experiment results, and reads instances
// back for regression testing and replaying archived queries.
#pragma once

#include <istream>
#include <ostream>

#include "sat/snapshot.h"
#include "sat/solver.h"

namespace upec::sat {

// Writes `p cnf <vars> <clauses>` followed by one clause per line. Optional
// `assumptions` are appended as unit clauses (freezing one property check
// into a standalone instance).
void write_dimacs(std::ostream& os, const Solver& solver,
                  const std::vector<Lit>& assumptions = {});

// Same, from an immutable CnfSnapshot — the export path for encodings that
// were emitted into a CnfStore (e.g. a full miter), enabling cross-checks of
// individual property queries against external SAT solvers without ever
// constructing an in-process solver.
void write_dimacs(std::ostream& os, const CnfSnapshot& snapshot,
                  const std::vector<Lit>& assumptions = {});

// Reads a DIMACS CNF instance into `solver`, creating the variables the
// header declares (the solver must be freshly constructed or at least have
// no conflicting variable numbering). Comment lines (any line whose first
// token starts with 'c') are accepted anywhere and clauses may span lines,
// but the reader is strict where it protects the solver or would otherwise
// mask corruption: literals outside the header's declared variable range,
// variable counts that cannot be packed into `Lit`, clauses before the
// header, and a clause count that disagrees with the header (e.g. a file
// truncated at a line boundary) all return false, and a false return
// guarantees the solver was not mutated (clauses are staged until the whole
// file validates). A trivially-UNSAT instance still parses successfully
// (the solver just records ok == false).
bool read_dimacs(std::istream& is, Solver& solver);

} // namespace upec::sat
