#include "sat/pipe_backend.h"

#include <csignal>
#include <cstdio>
#include <cstring>
#include <charconv>
#include <algorithm>
#include <iostream>
#include <sstream>
#include <time.h>
#include <unistd.h>

#include "sat/dimacs.h"
#include "sat/fault.h"
#include "util/trace.h"

namespace upec::sat {

namespace {

// Whole-token integer parse; rejects partial consumption (so a token with an
// embedded NUL or stray bytes from binary noise is malformed, never a prefix
// silently accepted).
bool parse_long(std::string_view tok, long& out) {
  const char* first = tok.data();
  const char* last = tok.data() + tok.size();
  auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

std::string_view next_token(std::string_view& rest) {
  const std::size_t begin = rest.find_first_not_of(" \t");
  if (begin == std::string_view::npos) {
    rest = {};
    return {};
  }
  std::size_t end = rest.find_first_of(" \t", begin);
  if (end == std::string_view::npos) end = rest.size();
  std::string_view tok = rest.substr(begin, end - begin);
  rest.remove_prefix(end);
  return tok;
}

std::string_view rstrip(std::string_view s) {
  while (!s.empty() && (s.back() == '\r' || s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

} // namespace

SolverOutput parse_solver_output(std::string_view text, int num_vars) {
  SolverOutput out;
  const auto fail = [&out](std::string why) {
    out.status = SolveStatus::Unknown;
    out.model.clear();
    if (out.error.empty()) out.error = std::move(why);
    return out;
  };

  bool saw_status = false;
  bool claimed_sat = false;
  bool model_done = false;
  std::vector<LBool> model(static_cast<std::size_t>(num_vars < 0 ? 0 : num_vars), LBool::Undef);

  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t nl = text.find('\n', pos);
    std::string_view line = text.substr(pos, nl == std::string_view::npos ? text.size() - pos
                                                                          : nl - pos);
    pos = nl == std::string_view::npos ? text.size() + 1 : nl + 1;
    line = rstrip(line);
    if (line.empty()) continue;
    if (line[0] == 'c') continue; // comment (DIMACS convention: line start only)

    if (line[0] == 's') {
      if (saw_status) return fail("duplicate status line");
      const std::string_view claim = rstrip(line.substr(1));
      std::string_view rest = claim;
      const std::string_view tok = next_token(rest);
      if (!rest.empty() || tok.empty()) return fail("malformed status line");
      if (tok == "SATISFIABLE") {
        claimed_sat = true;
      } else if (tok != "UNSATISFIABLE") {
        return fail("unrecognized status line");
      }
      saw_status = true;
      continue;
    }

    if (line[0] == 'v') {
      if (!saw_status || !claimed_sat) return fail("model line without SAT status");
      if (model_done) return fail("model line after terminating 0");
      std::string_view rest = line.substr(1);
      for (;;) {
        const std::string_view tok = next_token(rest);
        if (tok.empty()) break;
        long v = 0;
        if (!parse_long(tok, v)) return fail("non-numeric model token");
        if (v == 0) {
          if (!next_token(rest).empty()) return fail("model token after terminating 0");
          model_done = true;
          break;
        }
        const long var1 = v < 0 ? -v : v;
        if (var1 > num_vars) return fail("model literal out of range");
        auto& slot = model[static_cast<std::size_t>(var1 - 1)];
        const LBool val = v > 0 ? LBool::True : LBool::False;
        if (slot != LBool::Undef && slot != val) return fail("conflicting model literals");
        slot = val;
      }
      continue;
    }

    return fail("unrecognized output line"); // junk / binary noise
  }

  if (!saw_status) return fail("no status line");
  if (!claimed_sat) {
    out.status = SolveStatus::Unsat;
    return out;
  }
  if (!model_done) return fail("model missing terminating 0");
  out.status = SolveStatus::Sat;
  out.model = std::move(model);
  return out;
}

bool model_satisfies(const std::vector<LBool>& model, const CnfSnapshot& snap,
                     const std::vector<Lit>& assumptions) {
  const auto lit_true = [&model](Lit l) {
    const auto i = static_cast<std::size_t>(l.var());
    if (i >= model.size()) return false;
    return model[i] == (l.sign() ? LBool::False : LBool::True);
  };
  for (Lit a : assumptions) {
    if (!lit_true(a)) return false;
  }
  bool ok = true;
  snap.for_each_clause([&](const std::vector<Lit>& clause) {
    if (!ok) return;
    bool satisfied = false;
    for (Lit l : clause) {
      if (lit_true(l)) {
        satisfied = true;
        break;
      }
    }
    if (!satisfied) ok = false;
  });
  return ok;
}

PipeBackend::PipeBackend(PipeOptions options) : options_(std::move(options)) {
  if (options_.argv.empty()) options_.argv = self_solver_argv();
}

SolveStatus PipeBackend::solve(const std::vector<Lit>& assumptions) {
  util::trace::Span span("solve.external", "solve");
  span.arg("assumptions", static_cast<std::uint64_t>(assumptions.size()));
  ++stats_.solve_calls;
  model_.clear();
  core_.clear();
  last_error_.clear();
  last_timed_out_ = false;
  last_exit_ = {};

  const auto now = std::chrono::steady_clock::now();
  auto deadline = now + std::chrono::milliseconds(options_.solve_deadline_ms);
  if (deadline_ && *deadline_ < deadline) deadline = *deadline_;
  const auto grace = std::chrono::milliseconds(options_.term_grace_ms);
  const auto unknown = [this](std::string why, bool timed_out = false) {
    last_error_ = std::move(why);
    last_timed_out_ = timed_out;
    return SolveStatus::Unknown;
  };
  if (deadline <= now) return unknown("deadline already expired", true);

  util::Subprocess child;
  child.set_cancel_flag(cancel_flag_);
  if (cancel_flag_ != nullptr && cancel_flag_->load(std::memory_order_relaxed)) {
    return unknown("cancelled");
  }
  if (!child.spawn(options_.argv)) return unknown("spawn failed");
  last_pid_ = child.pid();

  // Stream the query. A child that stops reading (or died) fails the write
  // by deadline/EPIPE — either way it cannot be trusted with this query.
  std::ostringstream dimacs;
  dimacs_cache_.write(dimacs, snap_, assumptions);
  const std::string text = std::move(dimacs).str();
  if (!child.write_all(text.data(), text.size(), deadline)) {
    last_exit_ = child.terminate(grace);
    return unknown("child stopped reading the formula",
                   std::chrono::steady_clock::now() >= deadline);
  }
  child.close_stdin(); // EOF: DIMACS solvers start solving here

  std::string output;
  const bool eof = child.read_all(output, deadline, options_.max_output_bytes);
  // Always reap before judging the output — no path may leak a child, and
  // the exit status feeds the supervisor's crash/timeout classification.
  last_exit_ = child.terminate(grace);
  if (!eof) {
    const bool timed_out = std::chrono::steady_clock::now() >= deadline;
    return unknown(timed_out ? "solve deadline exceeded" : "output flood cap exceeded",
                   timed_out);
  }

  // The verdict rides on the *content*, not the exit style: a child killed
  // after printing a complete well-formed answer already answered. Anything
  // incomplete was rejected by the strict parse below regardless.
  SolverOutput parsed = parse_solver_output(output, snap_.num_vars());
  if (parsed.status == SolveStatus::Unknown) {
    std::string why = parsed.error;
    if (last_exit_.signaled) {
      why += " (child killed by signal " + std::to_string(last_exit_.sig) + ")";
    } else if (last_exit_.exited && last_exit_.code != 0 && last_exit_.code != 10 &&
               last_exit_.code != 20) {
      why += " (child exit code " + std::to_string(last_exit_.code) + ")";
    }
    return unknown(std::move(why));
  }
  if (parsed.status == SolveStatus::Sat) {
    if (!model_satisfies(parsed.model, snap_, assumptions)) {
      return unknown("claimed model does not satisfy the formula");
    }
    model_ = std::move(parsed.model);
    return SolveStatus::Sat;
  }
  core_ = assumptions;
  std::sort(core_.begin(), core_.end());
  core_.erase(std::unique(core_.begin(), core_.end()), core_.end());
  return SolveStatus::Unsat;
}

// --- self-exec solver ---------------------------------------------------------

namespace {

void sleep_ms(unsigned ms) {
  timespec ts{static_cast<time_t>(ms / 1000), static_cast<long>(ms % 1000) * 1'000'000L};
  while (nanosleep(&ts, &ts) != 0) {
  }
}

// Line-oriented stdout writer applying the fault spec: crash-after-N-lines
// SIGKILLs *before* the (N+1)-th line, slow-write sleeps before every line.
// Each line is flushed so a later crash cannot retroactively swallow it.
struct FaultyWriter {
  FaultInjector fault;
  unsigned lines = 0;

  void line(const std::string& s) {
    if (fault.kind == FaultInjector::Kind::CrashAfterLines && lines >= fault.arg) {
      std::fflush(stdout);
      raise(SIGKILL);
    }
    if (fault.kind == FaultInjector::Kind::SlowWrite) sleep_ms(fault.arg);
    std::fwrite(s.data(), 1, s.size(), stdout);
    std::fputc('\n', stdout);
    std::fflush(stdout);
    ++lines;
  }
};

void emit_model(FaultyWriter& w, const Solver& solver, bool truncate) {
  const int n = solver.num_vars();
  std::string line = "v";
  int emitted = 0;
  const int limit = truncate ? std::max(1, n / 2) : n;
  for (int v = 0; v < limit; ++v) {
    line += solver.model_value(static_cast<Var>(v)) ? ' ' + std::to_string(v + 1)
                                                    : " -" + std::to_string(v + 1);
    if (++emitted == 16) {
      w.line(line);
      line = "v";
      emitted = 0;
    }
  }
  if (truncate) {
    // Killed-mid-print shape: flush what we have, no terminating 0, exit.
    if (line != "v") w.line(line);
    return;
  }
  w.line(line + " 0");
}

int run_self_solver(const FaultInjector& fault) {
  Solver solver;
  const bool parsed = read_dimacs(std::cin, solver);

  if (fault.kind == FaultInjector::Kind::Hang) {
    // Alive but silent, and deaf to SIGTERM — forces the supervisor all the
    // way down its SIGTERM → grace → SIGKILL ladder.
    std::signal(SIGTERM, SIG_IGN);
    for (;;) pause();
  }
  if (fault.kind == FaultInjector::Kind::Garbage) {
    static constexpr unsigned char noise[] = {0x7f, 'E',  'L',  'F',  0x00, 0xff, 0x01, 's',
                                              ' ',  'M',  'A',  'Y',  'B',  'E',  0x0a, 0xfe,
                                              0x00, 0x0a, 'v',  ' ',  'q',  0x0a, 0x80, 0x81};
    std::fwrite(noise, 1, sizeof(noise), stdout);
    std::fflush(stdout);
    return 0;
  }

  FaultyWriter w{fault};
  if (!parsed) {
    w.line("c parse error on stdin"); // no status line: parent reads Unknown
    return 1;
  }
  if (fault.kind == FaultInjector::Kind::BogusModel) {
    // Lie: claim SAT with an all-false assignment regardless of the real
    // verdict. The parent's model validation must catch this.
    w.line("s SATISFIABLE");
    std::string line = "v";
    for (int v = 1; v <= solver.num_vars(); ++v) {
      line += " -" + std::to_string(v);
      if (v % 16 == 0) {
        w.line(line);
        line = "v";
      }
    }
    w.line(line + " 0");
    return 10;
  }

  const bool sat = solver.okay() && solver.solve();
  if (!sat) {
    w.line("s UNSATISFIABLE");
    return 20;
  }
  w.line("s SATISFIABLE");
  emit_model(w, solver, fault.kind == FaultInjector::Kind::PartialModel);
  return 10;
}

} // namespace

int self_solver_main(int argc, char** argv) {
  if (argc < 2 || std::strcmp(argv[1], kSelfSolverFlag) != 0) return -1;
  const FaultInjector fault = FaultInjector::parse(argc >= 3 ? argv[2] : "");
  return run_self_solver(fault);
}

std::vector<std::string> self_solver_argv(const std::string& fault_spec) {
  std::vector<std::string> argv{"/proc/self/exe", kSelfSolverFlag};
  if (!fault_spec.empty()) argv.push_back(fault_spec);
  return argv;
}

} // namespace upec::sat
