// SupervisedBackend: fault-tolerant wrapper around an external solver.
//
// PipeBackend turns child misbehavior into Unknown; this layer turns Unknown
// back into answers. Policy, in order:
//   1. Retry. A crash or garbage output is retried with exponential backoff,
//      up to max_restarts fresh children per solve (DIMACS is stateless, so a
//      retry is a complete re-submission — no state to reconcile).
//   2. Don't retry timeouts. A wall-clock hit already consumed the query's
//      budget; retrying a hang doubles the damage. Degrade immediately.
//   3. Quarantine. quarantine_after consecutive solves that ended in
//      degradation bench the external endpoint for the rest of the run —
//      a solver that keeps crashing is a tax on every query, not a resource.
//   4. Degrade. Whatever the external path could not answer goes to an
//      embedded InprocBackend, which shares the verification run's verdict
//      cache and clause channel like any ordinary worker. The caller sees a
//      slower answer, never a missing one.
//
// The net contract the fault suites pin: a misbehaving external solver costs
// wall-clock time, never a verdict, never a wrong verdict, never a zombie.
#pragma once

#include <cstdint>

#include "sat/backend.h"
#include "sat/pipe_backend.h"

namespace upec::sat {

struct SuperviseOptions {
  // Fresh-child retries per solve after a non-timeout external failure.
  unsigned max_restarts = 2;
  // Consecutive degraded solves before the external endpoint is benched.
  unsigned quarantine_after = 3;
  // Base backoff before the first retry; doubles per retry. Kept small: the
  // common crash is deterministic and backoff only helps transient causes
  // (fd pressure, fork storms).
  std::uint32_t backoff_ms = 10;
};

class SupervisedBackend final : public SolverBackend {
public:
  // The in-proc fallback is configured like a normal worker backend
  // (conflict budget, optional clause channel + globally unique worker id).
  SupervisedBackend(PipeOptions pipe, SuperviseOptions options,
                    std::uint64_t fallback_conflict_budget = 0, ClauseChannel* channel = nullptr,
                    unsigned worker_id = 0);

  void sync(const CnfSnapshot& snap) override;
  SolveStatus solve(const std::vector<Lit>& assumptions) override;
  const std::vector<Lit>& unsat_core() const override;
  bool model_value(Lit l) const override;
  const SolverStats& stats() const override;

  std::uint64_t cache_hits() const override { return fallback_.cache_hits(); }
  std::uint64_t cache_misses() const override { return fallback_.cache_misses(); }
  std::size_t live_learnts() const override { return fallback_.live_learnts(); }

  void set_deadline(std::chrono::steady_clock::time_point t) override;
  void clear_deadline() override;
  bool last_timed_out() const override { return last_timed_out_; }
  BackendHealth health() const override { return health_; }

  // Shared verdict cache, routed to the in-proc fallback (external children
  // are stateless and see every query fresh).
  void set_verdict_cache(VerdictCache* cache) { fallback_.set_verdict_cache(cache); }

  // Portfolio racing: cancels both the in-flight child I/O and the fallback.
  void set_cancel_flag(const std::atomic<bool>* flag);

  PipeBackend& external() { return pipe_; }
  InprocBackend& fallback() { return fallback_; }

private:
  PipeBackend pipe_;
  InprocBackend fallback_;
  SuperviseOptions options_;
  BackendHealth health_;
  unsigned consecutive_degraded_ = 0;
  bool answered_by_fallback_ = false;
  bool last_timed_out_ = false;
  const std::atomic<bool>* cancel_flag_ = nullptr;
  mutable SolverStats stats_agg_;
};

} // namespace upec::sat
