#include "sat/simplify.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/trace.h"

namespace upec::sat {

namespace {

std::uint64_t sig_of(const Clause& lits) {
  std::uint64_t s = 0;
  for (Lit l : lits) s |= 1ull << (static_cast<std::uint32_t>(l.index()) & 63u);
  return s;
}

// One simplification run's working state: occurrence-list clause database
// with root-level assignments, a subsumption work queue, and the elimination
// record. Every pass iterates in a fixed order and every budget is an
// operation counter, so the run is a pure function of its input.
struct Work {
  const SimplifyOptions& opt;
  SimplifyStats& stats;

  int nvars;
  const std::vector<char>& frozen;
  std::vector<LBool> assigns;
  std::vector<char> eliminated;

  struct Cls {
    Clause lits;  // sorted by Lit::index(), deduplicated, never tautological
    std::uint64_t sig = 0;
    bool deleted = false;
  };
  std::vector<Cls> clauses;
  std::vector<std::vector<std::uint32_t>> occ;  // literal index -> clause ids

  std::vector<Lit> unit_queue;  // enqueued root assignments, FIFO
  std::vector<std::uint32_t> subq;  // clauses to (re)consider for subsumption
  std::vector<char> in_subq;

  std::vector<std::pair<Var, std::vector<Clause>>> elim;  // reconstruction stack
  std::vector<Lit> probe_trail;

  bool unsat = false;
  bool changed = false;
  std::uint64_t sub_budget;
  std::uint64_t probe_budget;

  Work(const SimplifyOptions& o, SimplifyStats& s, int vars, const std::vector<char>& frozen_flags)
      : opt(o),
        stats(s),
        nvars(vars),
        frozen(frozen_flags),
        assigns(static_cast<std::size_t>(vars), LBool::Undef),
        eliminated(static_cast<std::size_t>(vars), 0),
        occ(static_cast<std::size_t>(vars) * 2),
        sub_budget(o.subsumption_budget),
        probe_budget(o.probe_budget) {}

  LBool value(Lit l) const {
    const LBool v = assigns[static_cast<std::size_t>(l.var())];
    return l.sign() ? lbool_not(v) : v;
  }

  void occ_remove(std::int32_t lit_index, std::uint32_t cid) {
    std::vector<std::uint32_t>& list = occ[static_cast<std::size_t>(lit_index)];
    auto it = std::find(list.begin(), list.end(), cid);
    if (it != list.end()) {
      *it = list.back();
      list.pop_back();
    }
  }

  void detach(std::uint32_t cid) {
    Cls& c = clauses[cid];
    if (c.deleted) return;
    c.deleted = true;
    for (Lit l : c.lits) occ_remove(l.index(), cid);
    c.lits.clear();
    c.lits.shrink_to_fit();
  }

  void push_subq(std::uint32_t cid) {
    if (!opt.subsumption || in_subq[cid]) return;
    in_subq[cid] = 1;
    subq.push_back(cid);
  }

  void enqueue_unit(Lit l) {
    const LBool v = value(l);
    if (v == LBool::True) return;
    if (v == LBool::False) {
      unsat = true;
      return;
    }
    assigns[static_cast<std::size_t>(l.var())] = l.sign() ? LBool::False : LBool::True;
    unit_queue.push_back(l);
    ++stats.fixed_vars;
    changed = true;
  }

  // Normalizes and stores a clause: sort, dedup, drop tautologies and
  // satisfied clauses, strip false literals, route units to the queue.
  void add_clause(Clause c) {
    if (unsat) return;
    std::sort(c.begin(), c.end());
    Clause f;
    f.reserve(c.size());
    for (Lit l : c) {
      const LBool v = value(l);
      if (v == LBool::True) return;  // satisfied at root
      if (v == LBool::False) continue;
      if (!f.empty() && f.back() == l) continue;            // duplicate literal
      if (!f.empty() && f.back().var() == l.var()) return;  // tautology (l, ~l)
      f.push_back(l);
    }
    if (f.empty()) {
      unsat = true;
      return;
    }
    if (f.size() == 1) {
      enqueue_unit(f[0]);
      return;
    }
    const auto cid = static_cast<std::uint32_t>(clauses.size());
    Cls cls;
    cls.sig = sig_of(f);
    cls.lits = std::move(f);
    for (Lit l : cls.lits) occ[static_cast<std::size_t>(l.index())].push_back(cid);
    clauses.push_back(std::move(cls));
    in_subq.push_back(0);
    push_subq(cid);
  }

  // Root-level BCP over occurrence lists: satisfied clauses are detached,
  // falsified literals are stripped (re-enqueueing shrunk-to-unit clauses).
  void propagate() {
    std::size_t qi = 0;
    while (qi < unit_queue.size() && !unsat) {
      const Lit l = unit_queue[qi++];
      const std::vector<std::uint32_t> satisfied = occ[static_cast<std::size_t>(l.index())];
      for (std::uint32_t cid : satisfied) detach(cid);
      const std::vector<std::uint32_t> shrink = occ[static_cast<std::size_t>((~l).index())];
      for (std::uint32_t cid : shrink) {
        Cls& d = clauses[cid];
        if (d.deleted) continue;
        auto it = std::find(d.lits.begin(), d.lits.end(), ~l);
        if (it == d.lits.end()) continue;
        d.lits.erase(it);
        occ_remove((~l).index(), cid);
        d.sig = sig_of(d.lits);
        if (d.lits.empty()) {
          unsat = true;
          return;
        }
        if (d.lits.size() == 1) enqueue_unit(d.lits[0]);
        push_subq(cid);
      }
    }
    if (!unsat) unit_queue.clear();
  }

  bool spend(std::uint64_t& budget, std::uint64_t cost) {
    if (budget < cost) {
      budget = 0;
      return false;
    }
    budget -= cost;
    return true;
  }

  // a ⊆ b over index-sorted clauses.
  static bool subset(const Clause& a, const Clause& b) {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i].index() == b[j].index()) {
        ++i;
        ++j;
      } else if (a[i].index() > b[j].index()) {
        ++j;
      } else {
        return false;
      }
    }
    return i == a.size();
  }

  // (a \ {a[skip]}) ⊆ b.
  static bool subset_except(const Clause& a, std::size_t skip, const Clause& b) {
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
      if (i == skip) {
        ++i;
        continue;
      }
      if (a[i].index() == b[j].index()) {
        ++i;
        ++j;
      } else if (a[i].index() > b[j].index()) {
        ++j;
      } else {
        return false;
      }
    }
    return i == a.size() || (i == skip && i + 1 == a.size());
  }

  void strengthen(std::uint32_t cid, Lit drop) {
    Cls& d = clauses[cid];
    auto it = std::find(d.lits.begin(), d.lits.end(), drop);
    if (it == d.lits.end()) return;
    d.lits.erase(it);
    occ_remove(drop.index(), cid);
    d.sig = sig_of(d.lits);
    ++stats.strengthened_clauses;
    changed = true;
    if (d.lits.empty()) {
      unsat = true;
      return;
    }
    if (d.lits.size() == 1) enqueue_unit(d.lits[0]);
    push_subq(cid);
  }

  // Backward subsumption: delete every clause that contains `cid` entirely.
  void backward_subsume(std::uint32_t cid) {
    const Clause c = clauses[cid].lits;  // copy: occ lists mutate below
    const std::uint64_t sig = clauses[cid].sig;
    std::size_t best = 0;
    for (std::size_t i = 1; i < c.size(); ++i) {
      if (occ[static_cast<std::size_t>(c[i].index())].size() <
          occ[static_cast<std::size_t>(c[best].index())].size()) {
        best = i;
      }
    }
    const std::vector<std::uint32_t> cands = occ[static_cast<std::size_t>(c[best].index())];
    for (std::uint32_t did : cands) {
      if (did == cid) continue;
      const Cls& d = clauses[did];
      if (d.deleted || d.lits.size() < c.size()) continue;
      if ((sig & ~d.sig) != 0) continue;
      if (!spend(sub_budget, c.size() + d.lits.size())) return;
      if (subset(c, d.lits)) {
        detach(did);
        ++stats.subsumed_clauses;
        changed = true;
      }
    }
  }

  // Self-subsuming resolution: for each literal l of `cid`, strengthen every
  // clause D ⊇ (C \ {l}) ∪ {~l} by removing ~l (the resolvent of C and D on
  // l subsumes D).
  void self_subsume(std::uint32_t cid) {
    const Clause c = clauses[cid].lits;  // copy: strengthening mutates occ
    for (std::size_t i = 0; i < c.size() && !unsat; ++i) {
      const Lit l = c[i];
      std::uint64_t sig = 1ull << (static_cast<std::uint32_t>((~l).index()) & 63u);
      for (std::size_t j = 0; j < c.size(); ++j) {
        if (j != i) sig |= 1ull << (static_cast<std::uint32_t>(c[j].index()) & 63u);
      }
      const std::vector<std::uint32_t> cands = occ[static_cast<std::size_t>((~l).index())];
      for (std::uint32_t did : cands) {
        const Cls& d = clauses[did];
        if (d.deleted || d.lits.size() < c.size()) continue;
        if ((sig & ~d.sig) != 0) continue;
        if (!spend(sub_budget, c.size() + d.lits.size())) return;
        if (subset_except(c, i, d.lits)) {
          strengthen(did, ~l);
          if (unsat) return;
        }
      }
    }
  }

  void subsumption_pass() {
    if (!opt.subsumption || unsat) return;
    propagate();
    std::size_t qi = 0;
    while (qi < subq.size() && !unsat && sub_budget > 0) {
      const std::uint32_t cid = subq[qi++];
      in_subq[cid] = 0;
      if (clauses[cid].deleted) continue;
      backward_subsume(cid);
      if (unsat || clauses[cid].deleted) continue;
      self_subsume(cid);
      if (!unit_queue.empty()) propagate();
    }
    // Anything still queued (budget exhaustion) stays for the next pass.
    subq.erase(subq.begin(), subq.begin() + static_cast<std::ptrdiff_t>(qi));
    propagate();
  }

  // Resolvent of a (contains v positive) and b (contains v negative) on v.
  // Returns false for tautological resolvents.
  bool resolve(const Clause& a, const Clause& b, Var v, Clause& out) const {
    out.clear();
    std::size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
      Lit next;
      if (j == b.size() || (i < a.size() && a[i].index() < b[j].index())) {
        next = a[i++];
      } else if (i == a.size() || b[j].index() < a[i].index()) {
        next = b[j++];
      } else {
        next = a[i++];
        ++j;
      }
      if (next.var() == v) continue;
      if (!out.empty() && out.back().var() == next.var() && out.back() != next) return false;
      if (!out.empty() && out.back() == next) continue;
      out.push_back(next);
    }
    return true;
  }

  void try_eliminate(Var v) {
    const Lit pv(v, false), nv(v, true);
    const std::vector<std::uint32_t> pos = occ[static_cast<std::size_t>(pv.index())];
    const std::vector<std::uint32_t> neg = occ[static_cast<std::size_t>(nv.index())];
    if (pos.size() > opt.bve_occurrence_cap || neg.size() > opt.bve_occurrence_cap) return;

    const std::size_t limit =
        pos.size() + neg.size() + static_cast<std::size_t>(std::max(0, opt.bve_growth));
    std::vector<Clause> resolvents;
    Clause r;
    for (std::uint32_t p : pos) {
      for (std::uint32_t n : neg) {
        if (!resolve(clauses[p].lits, clauses[n].lits, v, r)) continue;
        resolvents.push_back(r);
        if (resolvents.size() > limit) return;  // would grow the formula: skip
      }
    }

    // Commit: save the removed clauses for model reconstruction, replace
    // them with the resolvents.
    std::vector<Clause> saved;
    saved.reserve(pos.size() + neg.size());
    for (std::uint32_t cid : pos) saved.push_back(clauses[cid].lits);
    for (std::uint32_t cid : neg) saved.push_back(clauses[cid].lits);
    elim.emplace_back(v, std::move(saved));
    for (std::uint32_t cid : pos) detach(cid);
    for (std::uint32_t cid : neg) detach(cid);
    eliminated[static_cast<std::size_t>(v)] = 1;
    ++stats.eliminated_vars;
    if (frozen[static_cast<std::size_t>(v)]) ++stats.frozen_eliminations;  // tripwire: never
    changed = true;
    for (Clause& res : resolvents) {
      ++stats.resolvents_added;
      add_clause(std::move(res));
      if (unsat) return;
    }
    propagate();
  }

  void bve_pass() {
    if (!opt.bve || unsat) return;
    propagate();
    // Cheapest variables first (fewest occurrences), ties by index: pure
    // literals and barely-used Tseitin auxiliaries go before anything with
    // real fan-out.
    std::vector<std::pair<std::size_t, Var>> order;
    for (Var v = 0; v < nvars; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (frozen[idx] || eliminated[idx] || assigns[idx] != LBool::Undef) continue;
      const std::size_t p = occ[idx * 2].size(), n = occ[idx * 2 + 1].size();
      if (p == 0 && n == 0) continue;
      if (p > opt.bve_occurrence_cap || n > opt.bve_occurrence_cap) continue;
      order.emplace_back(p + n, v);
    }
    std::sort(order.begin(), order.end());
    for (const auto& [cost, v] : order) {
      if (unsat) return;
      const auto idx = static_cast<std::size_t>(v);
      if (eliminated[idx] || assigns[idx] != LBool::Undef) continue;
      try_eliminate(v);
    }
  }

  void probe_assign(Lit l) {
    assigns[static_cast<std::size_t>(l.var())] = l.sign() ? LBool::False : LBool::True;
    probe_trail.push_back(l);
  }

  void probe_undo() {
    for (Lit l : probe_trail) assigns[static_cast<std::size_t>(l.var())] = LBool::Undef;
    probe_trail.clear();
  }

  // BCP under the temporary assumption `l`; true iff it hits a conflict
  // (then `l` is a failed literal). Always leaves assigns as it found them.
  bool probe(Lit l) {
    probe_trail.clear();
    probe_assign(l);
    std::size_t qi = 0;
    while (qi < probe_trail.size()) {
      const Lit t = probe_trail[qi++];
      for (std::uint32_t cid : occ[static_cast<std::size_t>((~t).index())]) {
        const Cls& d = clauses[cid];
        if (d.deleted) continue;
        if (!spend(probe_budget, d.lits.size())) {
          probe_undo();
          return false;
        }
        Lit unit = Lit::undef();
        int unassigned = 0;
        bool satisfied = false;
        for (Lit x : d.lits) {
          const LBool v = value(x);
          if (v == LBool::True) {
            satisfied = true;
            break;
          }
          if (v == LBool::Undef) {
            if (++unassigned > 1) break;
            unit = x;
          }
        }
        if (satisfied || unassigned > 1) continue;
        if (unassigned == 0) {
          probe_undo();
          return true;  // conflict: l fails
        }
        probe_assign(unit);
      }
    }
    probe_undo();
    return false;
  }

  void probing_pass() {
    if (!opt.probing || unsat) return;
    propagate();
    // Probe only literals whose negation sits in a binary clause — the
    // classic candidate filter: everything else cannot propagate through a
    // binary chain and almost never fails.
    std::vector<char> in_bin(occ.size(), 0);
    for (const Cls& c : clauses) {
      if (c.deleted || c.lits.size() != 2) continue;
      in_bin[static_cast<std::size_t>(c.lits[0].index())] = 1;
      in_bin[static_cast<std::size_t>(c.lits[1].index())] = 1;
    }
    for (Var v = 0; v < nvars && !unsat; ++v) {
      const auto idx = static_cast<std::size_t>(v);
      if (eliminated[idx]) continue;
      for (int s = 0; s < 2 && !unsat; ++s) {
        if (assigns[idx] != LBool::Undef) break;
        if (probe_budget == 0) return;
        const Lit l(v, s == 1);
        if (!in_bin[static_cast<std::size_t>((~l).index())]) continue;
        if (probe(l)) {
          ++stats.failed_literals;
          enqueue_unit(~l);
          propagate();
        }
      }
    }
  }

  void run() {
    propagate();
    for (unsigned round = 0; round < opt.max_rounds && !unsat; ++round) {
      changed = false;
      subsumption_pass();
      bve_pass();
      probing_pass();
      ++stats.rounds;
      if (!changed) break;
    }
  }
};

} // namespace

Simplifier::Simplifier(SimplifyOptions options) : options_(options) {}
Simplifier::~Simplifier() = default;

CnfSnapshot Simplifier::simplify(const CnfSnapshot& snap, const std::vector<Var>& frozen) {
  util::trace::Span span("simplify.run", "simplify");
  const std::uint64_t sid = snap.store_id();
  const int nvars = snap.num_vars();
  const std::size_t nclauses = snap.num_clauses();
  span.arg("input_clauses", static_cast<std::uint64_t>(nclauses));

  // Generation cache: same input prefix and a frozen set covered by the
  // cached one — reuse. (A frozen set may shrink across Alg. 1 iterations as
  // the frontier does; everything the caller still names was frozen when the
  // generation was computed, so the cached formula stays sound for it.)
  if (out_ != nullptr && sid == in_store_id_ && nvars == in_cursor_.vars &&
      nclauses == in_cursor_.clauses) {
    bool covered = true;
    for (Var v : frozen) {
      if (v < 0) continue;
      const auto idx = static_cast<std::size_t>(v);
      if (idx >= frozen_flags_.size() || !frozen_flags_[idx]) {
        covered = false;
        break;
      }
    }
    if (covered) {
      ++stats_.reuses;
      span.arg("reused", std::uint64_t{1});
      return out_->snapshot();
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  ++stats_.runs;
  std::vector<char> flags(static_cast<std::size_t>(nvars), 0);
  for (Var v : frozen) {
    if (v >= 0 && v < nvars) flags[static_cast<std::size_t>(v)] = 1;
  }

  Work w(options_, stats_, nvars, flags);
  std::uint64_t in_lits = 0;
  snap.for_each_clause([&](const std::vector<Lit>& c) {
    in_lits += c.size();
    w.add_clause(c);
  });
  w.run();

  // Materialize the generation into a fresh store, preserving the variable
  // numbering (eliminated variables simply stop occurring). Root facts come
  // first as units, then the surviving clauses in database order.
  auto out = std::make_unique<CnfStore>();
  for (int v = 0; v < nvars; ++v) out->new_var();
  std::size_t out_clauses = 0;
  std::uint64_t out_lits = 0;
  if (w.unsat) {
    out->add_clause(Clause{});
    out_clauses = 1;
  } else {
    Clause unit(1, Lit());
    for (Var v = 0; v < nvars; ++v) {
      const LBool a = w.assigns[static_cast<std::size_t>(v)];
      if (a == LBool::Undef) continue;
      unit[0] = Lit(v, a == LBool::False);
      out->add_clause(unit);
      ++out_clauses;
      ++out_lits;
    }
    for (const auto& c : w.clauses) {
      if (c.deleted) continue;
      out->add_clause(c.lits);
      ++out_clauses;
      out_lits += c.lits.size();
    }
  }

  // Publish the new generation (this invalidates the previous one).
  out_ = std::move(out);
  elim_stack_.clear();
  elim_stack_.reserve(w.elim.size());
  for (auto& e : w.elim) elim_stack_.push_back(ElimEntry{e.first, std::move(e.second)});
  root_assigns_ = std::move(w.assigns);
  unsat_ = w.unsat;
  in_store_id_ = sid;
  in_cursor_ = CnfSnapshot::Cursor{nvars, nclauses};
  frozen_flags_ = std::move(flags);

  stats_.input_vars = nvars;
  stats_.input_clauses = nclauses;
  stats_.input_literals = in_lits;
  stats_.output_clauses = out_clauses;
  stats_.output_literals = out_lits;
  stats_.seconds +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return out_->snapshot();
}

void Simplifier::reconstruct(std::vector<bool>& model) const {
  if (model.size() < root_assigns_.size()) model.resize(root_assigns_.size(), false);
  for (std::size_t v = 0; v < root_assigns_.size(); ++v) {
    if (root_assigns_[v] != LBool::Undef) model[v] = root_assigns_[v] == LBool::True;
  }
  // Reverse replay: each entry's saved clauses mention only variables that
  // are final by the time it is processed (later eliminations are fixed
  // first), and the resolvents the model already satisfies guarantee one
  // consistent value of v exists — so at most one flip per entry.
  for (auto it = elim_stack_.rbegin(); it != elim_stack_.rend(); ++it) {
    for (const Clause& c : it->clauses) {
      bool satisfied = false;
      Lit own = Lit::undef();
      for (Lit l : c) {
        if (l.var() == it->v) own = l;
        if (model[static_cast<std::size_t>(l.var())] != l.sign()) {
          satisfied = true;
          break;
        }
      }
      if (!satisfied && own != Lit::undef()) {
        model[static_cast<std::size_t>(it->v)] = !own.sign();
      }
    }
  }
}

} // namespace upec::sat
