// VerdictCache: memoizes UNSAT verdicts of assumption-based queries against
// a CnfStore prefix.
//
// A query is identified by (store id, store cursor, canonicalized assumption
// set): the store id names *which* formula, the cursor pins exactly which
// clause prefix the answering solver had consumed, and the assumptions are
// sorted and deduplicated so permuted or repeated assumption vectors hit the
// same entry. The store id matters because preprocessing (sat/simplify.h)
// materializes simplified generations into fresh stores: a simplified store
// can have the same (vars, clauses) counts as another generation while
// describing a different clause set, and one shared cache serves them all. Entries additionally carry the
// final-conflict core (Solver::conflict_assumptions), so a cache hit can
// feed UNSAT-core frontier pruning exactly like a fresh solve would.
//
// Only UNSAT verdicts are cached, deliberately:
//   * An UNSAT answer is a pure semantic fact about (formula prefix,
//     assumption set) — any solver hydrated from the same store may reuse it,
//     which is why one cache is safely shared between the main solver and
//     every scheduler worker.
//   * A SAT answer's value to the sweep loops is its *model* (the
//     counterexample harvest reads it back variable by variable); replaying
//     a verdict without the model would be useless, and storing full models
//     per entry is memory the hot path never amortizes.
//   * Unknown (budget exhaustion) is not a verdict.
//
// The key includes the cursor verbatim: any append to the store produces a
// different key, i.e. entries from an older prefix are never consulted once
// the formula grew. (Appends are monotone, so old UNSAT entries would remain
// *sound* — the strict-cursor policy is an invalidation contract, not a
// soundness requirement, and keeps the cache honest if a future store ever
// learns to retract clauses.)
//
// Thread-safety: all operations serialize on an internal mutex; scheduler
// workers probe concurrently during sweep rounds.
#pragma once

#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "sat/snapshot.h"
#include "sat/types.h"

namespace upec::sat {

class VerdictCache {
public:
  VerdictCache() = default;
  VerdictCache(const VerdictCache&) = delete;
  VerdictCache& operator=(const VerdictCache&) = delete;

  // True iff an UNSAT verdict is cached for (store, cursor, assumptions);
  // fills `core_out` (when non-null) with the stored final-conflict core.
  // Counts a hit or a miss.
  bool lookup_unsat(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                    const std::vector<Lit>& assumptions, std::vector<Lit>* core_out);

  // Records an UNSAT verdict with its core. Idempotent for duplicate keys;
  // silently drops entries once the capacity cap is reached (the cap only
  // bounds memory — a full cache degrades to misses, never to wrong answers).
  void insert_unsat(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                    const std::vector<Lit>& assumptions, const std::vector<Lit>& core);

  std::uint64_t hits() const;
  std::uint64_t misses() const;
  std::size_t entries() const;

  // Capacity cap, overridable for tests.
  void set_max_entries(std::size_t n) { max_entries_ = n; }

private:
  struct Entry {
    std::uint64_t store_id;
    CnfSnapshot::Cursor cursor;
    std::vector<Lit> key;  // canonical assumption set
    std::vector<Lit> core;
  };

  static std::vector<Lit> canonical(const std::vector<Lit>& assumptions);
  static std::uint64_t hash_key(std::uint64_t store_id, const CnfSnapshot::Cursor& cursor,
                                const std::vector<Lit>& key);

  mutable std::mutex mu_;
  // hash(store, cursor, canonical assumptions) -> entries (collision chain).
  std::unordered_map<std::uint64_t, std::vector<Entry>> map_;
  std::size_t max_entries_ = 1u << 16;
  std::size_t size_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

} // namespace upec::sat
