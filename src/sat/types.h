// Basic SAT types: variables, literals, ternary logic values.
//
// Follows the MiniSat conventions: a variable is a dense non-negative index,
// a literal packs (variable, sign) as var*2+sign so literals index arrays
// directly (watch lists, assignment saving).
#pragma once

#include <cstdint>
#include <vector>

namespace upec::sat {

using Var = std::int32_t;
constexpr Var kUndefVar = -1;

class Lit {
public:
  Lit() = default;
  Lit(Var v, bool negative) : x_(v + v + (negative ? 1 : 0)) {}

  static Lit from_index(std::int32_t idx) {
    Lit l;
    l.x_ = idx;
    return l;
  }
  static Lit undef() { return from_index(-2); }

  Var var() const { return x_ >> 1; }
  bool sign() const { return x_ & 1; } // true => negated literal
  std::int32_t index() const { return x_; }

  Lit operator~() const { return from_index(x_ ^ 1); }
  friend bool operator==(Lit a, Lit b) { return a.x_ == b.x_; }
  friend bool operator!=(Lit a, Lit b) { return a.x_ != b.x_; }
  friend bool operator<(Lit a, Lit b) { return a.x_ < b.x_; }

private:
  std::int32_t x_ = -2;
};

inline Lit mk_lit(Var v) { return Lit(v, false); }

// Ternary assignment value.
enum class LBool : std::uint8_t { False = 0, True = 1, Undef = 2 };

inline LBool lbool_from(bool b) { return b ? LBool::True : LBool::False; }
inline LBool lbool_not(LBool v) {
  if (v == LBool::Undef) return LBool::Undef;
  return v == LBool::True ? LBool::False : LBool::True;
}

using Clause = std::vector<Lit>;

} // namespace upec::sat
