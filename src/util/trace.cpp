#include "util/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <mutex>

#include "util/json.h"

namespace upec::util::trace {

namespace {

using Clock = std::chrono::steady_clock;

struct Event {
  std::string name;
  const char* cat = "";
  char ph = 'X'; // 'X' complete, 'i' instant, 'C' counter
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint64_t counter_value = 0;
  std::vector<std::pair<std::string, std::uint64_t>> uargs;
  std::vector<std::pair<std::string, std::string>> sargs;
};

struct ThreadBuf {
  std::vector<Event> events;
  std::uint32_t tid = 0;
  std::uint64_t gen = 0;
};

struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  std::uint64_t gen = 0; // armed session generation; 0 = disarmed
  std::uint64_t next_gen = 0;
  Clock::time_point t0;
  std::uint32_t next_tid = 1;
};

Registry& registry() {
  static Registry r;
  return r;
}

// Fast path: recorders check these without the lock. g_gen mirrors
// Registry::gen; it only changes under Registry::mu.
std::atomic<bool> g_enabled{false};
std::atomic<std::uint64_t> g_gen{0};

// shared_ptr keeps the buffer alive for the flusher even if the owning
// thread exits before the session ends.
thread_local std::shared_ptr<ThreadBuf> t_buf;

std::uint64_t now_us(Clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() - t0)
          .count());
}

// Returns this thread's buffer for the current session, registering it on
// first use; nullptr when the session raced away.
ThreadBuf* local_buf() {
  const std::uint64_t gen = g_gen.load(std::memory_order_acquire);
  if (gen == 0)
    return nullptr;
  if (t_buf && t_buf->gen == gen)
    return t_buf.get();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.gen != gen)
    return nullptr;
  t_buf = std::make_shared<ThreadBuf>();
  t_buf->gen = gen;
  t_buf->tid = r.next_tid++;
  r.bufs.push_back(t_buf);
  return t_buf.get();
}

std::uint64_t session_start_us() {
  // Only valid while armed; recorders reach here after the enabled() check.
  return now_us(registry().t0);
}

void write_args(JsonWriter& w, const Event& e) {
  if (e.ph == 'C') {
    w.key("args").begin_object();
    w.key("value").value(e.counter_value);
    w.end_object();
    return;
  }
  if (e.uargs.empty() && e.sargs.empty())
    return;
  w.key("args").begin_object();
  for (const auto& [k, v] : e.uargs)
    w.key(k).value(v);
  for (const auto& [k, v] : e.sargs)
    w.key(k).value(v);
  w.end_object();
}

} // namespace

// Acquire pairs with the release store in TraceSession's constructor so a
// recorder that sees enabled==true also sees the session's t0.
bool enabled() { return g_enabled.load(std::memory_order_acquire); }

TraceSession::TraceSession(std::string path) : path_(std::move(path)) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  if (r.gen != 0)
    return; // another session is armed; stay inert
  r.gen = ++r.next_gen;
  r.t0 = Clock::now();
  r.bufs.clear();
  r.next_tid = 1;
  g_gen.store(r.gen, std::memory_order_release);
  g_enabled.store(true, std::memory_order_release);
  active_ = true;
}

TraceSession::~TraceSession() {
  if (active_ && !flushed_)
    flush();
}

bool TraceSession::flush() {
  if (!active_ || flushed_)
    return false;
  flushed_ = true;

  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    g_enabled.store(false, std::memory_order_release);
    g_gen.store(0, std::memory_order_release);
    r.gen = 0;
    bufs.swap(r.bufs);
  }

  std::vector<const Event*> events;
  for (const auto& buf : bufs)
    for (const Event& e : buf->events)
      events.push_back(&e);
  std::stable_sort(events.begin(), events.end(),
                   [](const Event* a, const Event* b) {
                     if (a->ts_us != b->ts_us)
                       return a->ts_us < b->ts_us;
                     if (a->tid != b->tid)
                       return a->tid < b->tid;
                     // Longer span first so parents precede children at
                     // equal start times.
                     return a->dur_us > b->dur_us;
                   });

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("traceEvents").begin_array();
  for (const Event* e : events) {
    w.begin_object();
    w.key("name").value(e->name);
    w.key("cat").value(e->cat);
    w.key("ph").value(std::string_view(&e->ph, 1));
    w.key("ts").value(e->ts_us);
    if (e->ph == 'X')
      w.key("dur").value(e->dur_us);
    if (e->ph == 'i')
      w.key("s").value("t");
    w.key("pid").value(std::uint64_t{1});
    w.key("tid").value(std::uint64_t{e->tid});
    write_args(w, *e);
    w.end_object();
  }
  w.end_array();
  w.end_object();

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (!f)
    return false;
  const std::string& doc = w.str();
  const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && ok;
}

Span::Span(std::string_view name, const char* cat) {
  if (!enabled())
    return;
  live_ = true;
  name_ = name;
  cat_ = cat;
  t0_us_ = session_start_us();
}

Span::~Span() {
  if (!live_)
    return;
  ThreadBuf* buf = local_buf();
  if (!buf)
    return; // session flushed while the span was open
  const std::uint64_t end = now_us(registry().t0);
  Event e;
  e.name = std::move(name_);
  e.cat = cat_;
  e.ph = 'X';
  e.ts_us = t0_us_;
  e.dur_us = end >= t0_us_ ? end - t0_us_ : 0;
  e.tid = buf->tid;
  e.uargs = std::move(uargs_);
  e.sargs = std::move(sargs_);
  buf->events.push_back(std::move(e));
}

void Span::arg(const char* key, std::uint64_t value) {
  if (live_)
    uargs_.emplace_back(key, value);
}

void Span::arg(const char* key, std::string_view value) {
  if (live_)
    sargs_.emplace_back(key, std::string(value));
}

void instant(std::string_view name, const char* cat) {
  if (!enabled())
    return;
  ThreadBuf* buf = local_buf();
  if (!buf)
    return;
  Event e;
  e.name = std::string(name);
  e.cat = cat;
  e.ph = 'i';
  e.ts_us = session_start_us();
  e.tid = buf->tid;
  buf->events.push_back(std::move(e));
}

void counter(std::string_view name, std::uint64_t value) {
  if (!enabled())
    return;
  ThreadBuf* buf = local_buf();
  if (!buf)
    return;
  Event e;
  e.name = std::string(name);
  e.cat = "metric";
  e.ph = 'C';
  e.ts_us = session_start_us();
  e.tid = buf->tid;
  e.counter_value = value;
  buf->events.push_back(std::move(e));
}

} // namespace upec::util::trace
