#include "util/subprocess.h"

#include <errno.h>
#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>

#include "util/trace.h"

namespace upec::util {

namespace {

// Remaining milliseconds until `deadline`, clamped for poll(2): 0 when the
// deadline already passed (poll returns immediately), capped so a distant
// deadline cannot overflow the int timeout.
int poll_timeout(Subprocess::Clock::time_point deadline) {
  const auto left =
      std::chrono::duration_cast<std::chrono::milliseconds>(deadline - Subprocess::Clock::now())
          .count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, 60'000));
}

void ignore_sigpipe_once() {
  // A dead child's pipe must produce EPIPE, not kill the verifier.
  static const bool installed = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)installed;
}

Subprocess::ExitStatus decode(int raw) {
  Subprocess::ExitStatus st;
  if (WIFEXITED(raw)) {
    st.exited = true;
    st.code = WEXITSTATUS(raw);
  } else if (WIFSIGNALED(raw)) {
    st.signaled = true;
    st.sig = WTERMSIG(raw);
  }
  return st;
}

} // namespace

Subprocess::~Subprocess() {
  if (running()) kill_and_reap();
  close_fds();
}

void Subprocess::close_fds() {
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
  stdin_fd_ = -1;
  stdout_fd_ = -1;
}

bool Subprocess::spawn(const std::vector<std::string>& argv) {
  if (running() || argv.empty()) return false;
  ignore_sigpipe_once();

  int in_pipe[2];   // parent writes -> child stdin
  int out_pipe[2];  // child stdout -> parent reads
  if (::pipe(in_pipe) != 0) return false;
  if (::pipe(out_pipe) != 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    return false;
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    return false;
  }

  if (pid == 0) {
    // Child. Route the pipes to stdin/stdout, drop every parent-side fd, and
    // exec. Only async-signal-safe calls from here on.
    ::dup2(in_pipe[0], STDIN_FILENO);
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(in_pipe[0]);
    ::close(in_pipe[1]);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    std::vector<char*> cargv;
    cargv.reserve(argv.size() + 1);
    for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
    cargv.push_back(nullptr);
    ::execvp(cargv[0], cargv.data());
    _exit(127);  // exec failed; 127 is the shell convention for "not found"
  }

  // Parent. Keep our ends non-blocking: all waiting happens in poll(2) so
  // deadlines hold even against a child that never reads or never writes.
  ::close(in_pipe[0]);
  ::close(out_pipe[1]);
  stdin_fd_ = in_pipe[1];
  stdout_fd_ = out_pipe[0];
  ::fcntl(stdin_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(stdout_fd_, F_SETFL, O_NONBLOCK);
  ::fcntl(stdin_fd_, F_SETFD, FD_CLOEXEC);
  ::fcntl(stdout_fd_, F_SETFD, FD_CLOEXEC);
  pid_ = pid;
  trace::instant("subprocess.spawn", "subprocess");
  return true;
}

bool Subprocess::write_all(const char* data, std::size_t n, Clock::time_point deadline) {
  if (stdin_fd_ < 0) return false;
  std::size_t off = 0;
  while (off < n) {
    struct pollfd pfd = {stdin_fd_, POLLOUT, 0};
    int timeout = poll_timeout(deadline);
    if (cancel_ != nullptr) timeout = std::min(timeout, 10);  // bounded cancel latency
    const int pr = ::poll(&pfd, 1, timeout);
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) return false;
    if (pr == 0) {
      if (Clock::now() >= deadline) return false;  // child stopped draining its stdin
      continue;  // cancel-slice expired, deadline not reached
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if ((pfd.revents & (POLLERR | POLLNVAL)) != 0) return false;
    const ssize_t w = ::write(stdin_fd_, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;  // EPIPE et al.: the child is gone or closed its stdin
    }
    off += static_cast<std::size_t>(w);
  }
  return true;
}

void Subprocess::close_stdin() {
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  stdin_fd_ = -1;
}

bool Subprocess::read_all(std::string& out, Clock::time_point deadline, std::size_t max_bytes) {
  if (stdout_fd_ < 0) return false;
  char buf[4096];
  for (;;) {
    struct pollfd pfd = {stdout_fd_, POLLIN, 0};
    int timeout = poll_timeout(deadline);
    if (cancel_ != nullptr) timeout = std::min(timeout, 10);  // bounded cancel latency
    const int pr = ::poll(&pfd, 1, timeout);
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) return false;
    if (pr == 0) {
      if (Clock::now() >= deadline) return false;  // deadline, stream still open: hang
      continue;  // cancel-slice expired, deadline not reached
    }
    if (pr < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    const ssize_t r = ::read(stdout_fd_, buf, sizeof buf);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return false;
    }
    if (r == 0) return true;  // EOF: the child closed stdout (usually exited)
    if (out.size() + static_cast<std::size_t>(r) > max_bytes) return false;  // output flood
    out.append(buf, static_cast<std::size_t>(r));
  }
}

bool Subprocess::try_wait(ExitStatus& status) {
  if (!running()) return false;
  int raw = 0;
  const pid_t r = ::waitpid(pid_, &raw, WNOHANG);
  if (r != pid_) return false;
  status = decode(raw);
  pid_ = -1;
  trace::instant("subprocess.exit", "subprocess");
  return true;
}

Subprocess::ExitStatus Subprocess::terminate(std::chrono::milliseconds grace) {
  trace::Span span("subprocess.terminate", "subprocess");
  ExitStatus status;
  if (!running()) return status;
  close_stdin();  // EOF first: a well-behaved child exits on its own

  if (try_wait(status)) {
    close_fds();
    return status;
  }

  ::kill(pid_, SIGTERM);
  const auto deadline = Clock::now() + grace;
  while (Clock::now() < deadline) {
    if (try_wait(status)) {
      close_fds();
      return status;
    }
    struct timespec ts = {0, 2'000'000};  // 2 ms between reap polls
    ::nanosleep(&ts, nullptr);
  }

  // Grace expired: no more chances. SIGKILL cannot be caught, so the
  // blocking reap below terminates (the DAOS lesson: a supervisor that
  // "shuts down nicely" forever is itself a hang).
  ::kill(pid_, SIGKILL);
  int raw = 0;
  while (::waitpid(pid_, &raw, 0) < 0 && errno == EINTR) {
  }
  status = decode(raw);
  pid_ = -1;
  close_fds();
  return status;
}

} // namespace upec::util
