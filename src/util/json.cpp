#include "util/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace upec::util {

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

void JsonWriter::escape_into(std::string& out, std::string_view s) {
  for (unsigned char c : s) {
    switch (c) {
    case '"': out += "\\\""; break;
    case '\\': out += "\\\\"; break;
    case '\b': out += "\\b"; break;
    case '\f': out += "\\f"; break;
    case '\n': out += "\\n"; break;
    case '\r': out += "\\r"; break;
    case '\t': out += "\\t"; break;
    default:
      if (c < 0x20) {
        char buf[8];
        std::snprintf(buf, sizeof buf, "\\u%04x", c);
        out += buf;
      } else {
        out += static_cast<char>(c);
      }
    }
  }
}

std::string JsonWriter::escaped(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  escape_into(out, s);
  return out;
}

void JsonWriter::comma_for_value() {
  if (stack_.empty())
    return;
  Frame& top = stack_.back();
  if (top.kind == 'a') {
    if (top.has_members)
      out_ += ',';
    top.has_members = true;
  } else {
    // Object: the comma was placed by key(); just consume the pending key.
    top.key_pending = false;
    top.has_members = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_for_value();
  out_ += '{';
  stack_.push_back(Frame{'o'});
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  if (!stack_.empty())
    stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_for_value();
  out_ += '[';
  stack_.push_back(Frame{'a'});
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  if (!stack_.empty())
    stack_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!stack_.empty()) {
    Frame& top = stack_.back();
    if (top.has_members)
      out_ += ',';
    top.key_pending = true;
  }
  out_ += '"';
  escape_into(out_, k);
  out_ += "\":";
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma_for_value();
  out_ += '"';
  escape_into(out_, s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  comma_for_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma_for_value();
  char buf[24];
  std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  if (!std::isfinite(v))
    return value_null();
  comma_for_value();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value_null() {
  comma_for_value();
  out_ += "null";
  return *this;
}

// ---------------------------------------------------------------------------
// JsonValue helpers
// ---------------------------------------------------------------------------

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type != Type::Object)
    return nullptr;
  for (const auto& [k, v] : object)
    if (k == key)
      return &v;
  return nullptr;
}

double JsonValue::number_or(std::string_view key, double fallback) const {
  const JsonValue* v = find(key);
  return (v && v->type == Type::Number) ? v->number : fallback;
}

// ---------------------------------------------------------------------------
// Strict recursive-descent parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
public:
  Parser(std::string_view text, std::string* error)
      : text_(text), error_(error) {}

  bool run(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0))
      return false;
    skip_ws();
    if (pos_ != text_.size())
      return fail("trailing characters after JSON value");
    return true;
  }

private:
  static constexpr int kMaxDepth = 256;

  bool fail(const char* msg) {
    if (error_ && error_->empty())
      *error_ = "offset " + std::to_string(pos_) + ": " + msg;
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos_;
      else
        break;
    }
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word)
      return fail("invalid literal");
    pos_ += word.size();
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth)
      return fail("nesting too deep");
    if (eof())
      return fail("unexpected end of input");
    switch (peek()) {
    case '{': return parse_object(out, depth);
    case '[': return parse_array(out, depth);
    case '"':
      out.type = JsonValue::Type::String;
      return parse_string(out.string);
    case 't':
      out.type = JsonValue::Type::Bool;
      out.boolean = true;
      return literal("true");
    case 'f':
      out.type = JsonValue::Type::Bool;
      out.boolean = false;
      return literal("false");
    case 'n':
      out.type = JsonValue::Type::Null;
      return literal("null");
    default:
      return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Object;
    ++pos_; // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"')
        return fail("expected object key string");
      std::string key;
      if (!parse_string(key))
        return false;
      skip_ws();
      if (eof() || peek() != ':')
        return fail("expected ':' after object key");
      ++pos_;
      skip_ws();
      JsonValue member;
      if (!parse_value(member, depth + 1))
        return false;
      out.object.emplace_back(std::move(key), std::move(member));
      skip_ws();
      if (eof())
        return fail("unterminated object");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool parse_array(JsonValue& out, int depth) {
    out.type = JsonValue::Type::Array;
    ++pos_; // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos_;
      return true;
    }
    for (;;) {
      skip_ws();
      JsonValue element;
      if (!parse_value(element, depth + 1))
        return false;
      out.array.push_back(std::move(element));
      skip_ws();
      if (eof())
        return fail("unterminated array");
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      if (peek() == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  static int hex_digit(char c) {
    if (c >= '0' && c <= '9')
      return c - '0';
    if (c >= 'a' && c <= 'f')
      return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
      return c - 'A' + 10;
    return -1;
  }

  // Appends a code point as UTF-8. Surrogate pairs are handled by the caller.
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_hex4(std::uint32_t& out) {
    if (pos_ + 4 > text_.size())
      return fail("truncated \\u escape");
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      int d = hex_digit(text_[pos_ + i]);
      if (d < 0)
        return fail("invalid hex digit in \\u escape");
      v = (v << 4) | static_cast<std::uint32_t>(d);
    }
    pos_ += 4;
    out = v;
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_; // opening quote
    for (;;) {
      if (eof())
        return fail("unterminated string");
      unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20)
        return fail("raw control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_; // backslash
      if (eof())
        return fail("truncated escape sequence");
      char e = text_[pos_++];
      switch (e) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'u': {
        std::uint32_t cp = 0;
        if (!parse_hex4(cp))
          return false;
        if (cp >= 0xD800 && cp <= 0xDBFF) {
          // High surrogate: require a paired \uDC00-\uDFFF.
          if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
              text_[pos_ + 1] != 'u')
            return fail("unpaired high surrogate");
          pos_ += 2;
          std::uint32_t low = 0;
          if (!parse_hex4(low))
            return false;
          if (low < 0xDC00 || low > 0xDFFF)
            return fail("invalid low surrogate");
          cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
        } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
          return fail("unpaired low surrogate");
        }
        append_utf8(out, cp);
        break;
      }
      default:
        return fail("invalid escape character");
      }
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-')
      ++pos_;
    if (eof() || peek() < '0' || peek() > '9')
      return fail("invalid number");
    if (peek() == '0') {
      ++pos_; // no leading zeros
    } else {
      while (!eof() && peek() >= '0' && peek() <= '9')
        ++pos_;
    }
    if (!eof() && peek() == '.') {
      ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit required after decimal point");
      while (!eof() && peek() >= '0' && peek() <= '9')
        ++pos_;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '+' || peek() == '-'))
        ++pos_;
      if (eof() || peek() < '0' || peek() > '9')
        return fail("digit required in exponent");
      while (!eof() && peek() >= '0' && peek() <= '9')
        ++pos_;
    }
    out.type = JsonValue::Type::Number;
    std::string token(text_.substr(start, pos_ - start));
    out.number = std::strtod(token.c_str(), nullptr);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::string* error_;
};

} // namespace

bool parse_json(std::string_view text, JsonValue& out, std::string* error) {
  if (error)
    error->clear();
  Parser p(text, error);
  out = JsonValue{};
  return p.run(out);
}

} // namespace upec::util
