#include "util/bitvec.h"

namespace upec {

std::string BitVec::to_hex() const {
  const unsigned digits = (width_ + 3) / 4;
  static const char* kHex = "0123456789abcdef";
  std::string out(digits, '0');
  for (unsigned i = 0; i < digits; ++i) {
    out[digits - 1 - i] = kHex[(value_ >> (4 * i)) & 0xf];
  }
  return std::to_string(width_) + "'h" + out;
}

std::string BitVec::to_bin() const {
  std::string out(width_, '0');
  for (unsigned i = 0; i < width_; ++i) {
    out[width_ - 1 - i] = bit(i) ? '1' : '0';
  }
  return std::to_string(width_) + "'b" + out;
}

} // namespace upec
