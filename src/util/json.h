// Dependency-free JSON writing and (strict) parsing.
//
// The writer backs every machine-readable artifact the engine emits — the
// Chrome trace-event stream (util/trace.h), the metrics snapshot
// (util/metrics.h), and the upec JSON reports (upec/report_json.h). It is
// deliberately tiny: proper string escaping, automatic comma placement, and
// nothing else. Key order is whatever the caller writes — every emitter in
// this repo writes keys in a fixed (sorted or schema) order so artifacts
// diff cleanly across runs.
//
// The parser exists for the parse-back tests and tooling: a strict
// recursive-descent reader that rejects everything RFC 8259 rejects
// (trailing commas, bare control characters in strings, malformed escapes,
// trailing garbage). Objects preserve member order so "stable key order"
// is a testable property, not an aspiration.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace upec::util {

class JsonWriter {
public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  // Object member key; must be followed by exactly one value (or container).
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  // size_t is one of the above on every supported ABI; no separate overload
  // (it would collide with uint64_t on LP64).
  // Non-finite doubles have no JSON spelling; they are emitted as null.
  JsonWriter& value(double v);
  JsonWriter& value_null();

  // The document so far. Callers are expected to have closed every container.
  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

  // Appends `s` escaped per RFC 8259 (without the surrounding quotes):
  // ", \, and control characters; everything else (UTF-8 included) verbatim.
  static void escape_into(std::string& out, std::string_view s);
  static std::string escaped(std::string_view s);

private:
  void comma_for_value();
  std::string out_;
  // One frame per open container: 'o'/'a', plus whether it has members yet
  // and (objects) whether a key is pending its value.
  struct Frame {
    char kind;
    bool has_members = false;
    bool key_pending = false;
  };
  std::vector<Frame> stack_;
};

// Parsed JSON value. Objects keep member order (vector of pairs), which the
// round-trip tests rely on to pin the writers' stable key order.
struct JsonValue {
  enum class Type : std::uint8_t { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  bool is_null() const { return type == Type::Null; }
  bool is_object() const { return type == Type::Object; }
  bool is_array() const { return type == Type::Array; }
  bool is_string() const { return type == Type::String; }
  bool is_number() const { return type == Type::Number; }
  bool is_bool() const { return type == Type::Bool; }

  // Object member lookup (first match); nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  // find() + number coercion conveniences for tests/tooling.
  double number_or(std::string_view key, double fallback) const;
};

// Strict parse of exactly one JSON document (leading/trailing whitespace
// allowed, anything else after the value is an error). Returns false and
// fills `error` (if non-null) with a byte offset + message on failure.
bool parse_json(std::string_view text, JsonValue& out, std::string* error = nullptr);

} // namespace upec::util
