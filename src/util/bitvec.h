// Fixed-width bit-vector value type used throughout the RTL IR, the
// simulator, and counterexample waveforms.
//
// Widths are limited to 64 bits: every net in the generated SoCs is at most
// 32 bits wide (OBI-style bus), and keeping values in a single machine word
// keeps simulation and encoding fast. Wider words in the paper's SoC carry no
// additional semantics for the verified properties.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace upec {

class BitVec {
public:
  static constexpr unsigned kMaxWidth = 64;

  BitVec() = default;
  BitVec(unsigned width, std::uint64_t value) : width_(width), value_(mask(width) & value) {
    assert(width >= 1 && width <= kMaxWidth);
  }

  static BitVec zeros(unsigned width) { return BitVec(width, 0); }
  static BitVec ones(unsigned width) { return BitVec(width, ~0ULL); }

  unsigned width() const { return width_; }
  std::uint64_t value() const { return value_; }

  bool bit(unsigned i) const {
    assert(i < width_);
    return (value_ >> i) & 1u;
  }
  BitVec with_bit(unsigned i, bool b) const {
    assert(i < width_);
    std::uint64_t v = b ? (value_ | (1ULL << i)) : (value_ & ~(1ULL << i));
    return BitVec(width_, v);
  }

  bool is_zero() const { return value_ == 0; }

  friend bool operator==(const BitVec& a, const BitVec& b) {
    return a.width_ == b.width_ && a.value_ == b.value_;
  }
  friend bool operator!=(const BitVec& a, const BitVec& b) { return !(a == b); }

  // Mask of the low `width` bits; width may be 0..64.
  static std::uint64_t mask(unsigned width) {
    return width >= 64 ? ~0ULL : ((1ULL << width) - 1);
  }

  std::string to_hex() const;
  std::string to_bin() const;

private:
  unsigned width_ = 1;
  std::uint64_t value_ = 0;
};

} // namespace upec
