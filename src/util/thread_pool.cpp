#include "util/thread_pool.h"

namespace upec::util {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    std::size_t index = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || next_ < tasks_.size(); });
      // Drain before honoring stop_: a batch in flight is always finished and
      // its exceptions delivered through run_all — teardown never strands a
      // caller blocked on done_cv_ with tasks nobody will claim.
      if (next_ >= tasks_.size()) {
        if (stop_) return;
        continue;
      }
      index = next_++;
      task = std::move(tasks_[index]);
    }
    // The task body is the only uncontrolled code on this thread. Catch
    // *everything* (including non-std::exception payloads like
    // sat::SolverInterrupted): an exception escaping a std::thread body is
    // std::terminate, which would take the whole verifier down with the
    // batch's results. The first error (in task order) is rethrown on the
    // caller's thread by run_all after the batch barrier.
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (error) errors_[index] = error;
      if (--pending_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  if (workers_.empty()) {
    // Degenerate pool: run the batch inline, same all-or-nothing semantics.
    std::exception_ptr first;
    for (auto& task : tasks) {
      try {
        task();
      } catch (...) {
        if (!first) first = std::current_exception();
      }
    }
    if (first) std::rethrow_exception(first);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    tasks_ = std::move(tasks);
    errors_.assign(tasks_.size(), nullptr);
    next_ = 0;
    pending_ = tasks_.size();
  }
  work_cv_.notify_all();

  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return pending_ == 0; });
  tasks_.clear();
  next_ = 0;
  for (const std::exception_ptr& e : errors_) {
    if (e) std::rethrow_exception(e);
  }
}

} // namespace upec::util
