// Low-overhead span/instant tracer emitting Chrome trace-event JSON.
//
// Recording model: one process-global session at a time. `TraceSession`
// (RAII) arms the tracer; `Span` (RAII), `instant()`, and `counter()`
// record events into lock-free thread-local buffers — a recording thread
// takes the registry lock only once per session (to register its buffer),
// never per event. The session destructor (or an explicit `flush()`)
// collects every buffer, sorts events by timestamp, and writes a
// `{"traceEvents": [...]}` document that Perfetto / chrome://tracing loads
// directly. Spans become "X" (complete) events with microsecond ts/dur.
//
// Determinism contract: the tracer only *records* — nothing in the engine
// may branch on whether tracing is armed or on any recorded timestamp, so
// traced and untraced runs stay bit-identical (pinned in test_determinism).
// When no session is armed, Span construction is one atomic load.
//
// Buffers are generation-stamped: a pool thread that outlives one session
// re-registers itself lazily on its first event under the next session, and
// events recorded after a session flushed (generation mismatch) are dropped
// rather than corrupting the next trace.
//
// Threading contract: arm/flush must not race with recording threads. In
// the engine the session is owned by UpecContext and declared before the
// scheduler member, so workers are joined before the flush runs.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace upec::util::trace {

// True while a session is armed. Cheap (one atomic load); callers may
// use it to skip building expensive span *arguments*, never to change
// engine behavior.
bool enabled();

class TraceSession {
public:
  // Arms the global tracer, targeting `path`. If another session is already
  // armed, this one is inert (`active() == false`) and the existing session
  // keeps recording — nested sessions are refused, not stacked.
  explicit TraceSession(std::string path);
  ~TraceSession();

  TraceSession(const TraceSession&) = delete;
  TraceSession& operator=(const TraceSession&) = delete;

  bool active() const { return active_; }

  // Disarms the tracer, serializes all recorded events to `path`, and
  // returns whether the file was written. Idempotent; also run by the
  // destructor. Must not race with threads still recording.
  bool flush();

private:
  std::string path_;
  bool active_ = false;
  bool flushed_ = false;
};

// RAII span: construction stamps the start time, destruction records a
// complete ("X") event covering the scope. `name`/`cat` are copied, so
// dynamic strings are fine. Arguments attached via arg() appear under the
// event's "args" object in the trace viewer.
class Span {
public:
  explicit Span(std::string_view name, const char* cat = "upec");
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  void arg(const char* key, std::uint64_t value);
  void arg(const char* key, std::string_view value);

private:
  bool live_ = false;
  std::uint64_t t0_us_ = 0;
  std::string name_;
  const char* cat_ = "";
  std::vector<std::pair<std::string, std::uint64_t>> uargs_;
  std::vector<std::pair<std::string, std::string>> sargs_;
};

// Zero-duration marker event ("i", thread scope).
void instant(std::string_view name, const char* cat = "upec");

// Counter sample ("C"); the viewer plots `value` over time per name.
void counter(std::string_view name, std::uint64_t value);

} // namespace upec::util::trace
