// Supervised child processes for external solver backends.
//
// A Subprocess is one fork/exec'd child with its stdin and stdout piped to
// the parent. The API is built for talking to processes that may misbehave —
// hang, crash, stop reading input, or print garbage — so every blocking
// operation takes a wall-clock deadline (implemented with poll(2)) and
// shutdown always escalates SIGTERM → grace window → SIGKILL → reap. The
// destructor performs the same escalation with a zero grace window, so a
// Subprocess can never leak a zombie or leave an orphan running, no matter
// which error path dropped it.
//
// SIGPIPE note: writing to a child that died would otherwise kill *us* with
// SIGPIPE. spawn() ignores SIGPIPE process-wide once (the write then fails
// with EPIPE, which write_all reports as an ordinary error) — the standard
// posture for any process that talks to pipes it does not control.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>
#include <vector>

namespace upec::util {

class Subprocess {
public:
  using Clock = std::chrono::steady_clock;

  // How a child left: normal exit (code), killed by a signal (sig), or — for
  // try_wait only — still running.
  struct ExitStatus {
    bool exited = false;    // normal termination
    int code = 0;           // exit code if exited
    bool signaled = false;  // killed by signal
    int sig = 0;            // the signal if signaled
  };

  Subprocess() = default;
  ~Subprocess();  // kill_and_reap() — never leaks a child

  Subprocess(const Subprocess&) = delete;
  Subprocess& operator=(const Subprocess&) = delete;

  // Cooperative cancellation for racing (portfolio members): while `*flag`
  // is true, write_all/read_all return false at their next poll tick (the
  // poll is sliced to <= 10 ms when a flag is installed, so cancellation
  // latency is bounded regardless of the deadline). The flag must outlive
  // the Subprocess or be cleared with nullptr.
  void set_cancel_flag(const std::atomic<bool>* flag) { cancel_ = flag; }

  // Forks and execs argv (argv[0] is the binary; PATH is searched). Returns
  // false without forking if argv is empty or a pipe/fork failed; exec
  // failure inside the child surfaces as exit code 127 on wait. Only one
  // child per Subprocess at a time (spawn on a running child fails).
  bool spawn(const std::vector<std::string>& argv);

  bool running() const { return pid_ > 0; }
  pid_t pid() const { return pid_; }

  // Writes all `n` bytes to the child's stdin, polling for writability until
  // `deadline`. Returns false on timeout, EPIPE (child died or closed its
  // stdin), or any other write error. A false return means the child cannot
  // be trusted with this query — callers terminate and report Unknown.
  bool write_all(const char* data, std::size_t n, Clock::time_point deadline);

  // Closes the write end (EOF for the child — DIMACS solvers start solving
  // on EOF). Idempotent.
  void close_stdin();

  // Appends everything the child prints to `out` until it closes stdout
  // (usually by exiting) or the deadline passes; `max_bytes` caps hostile
  // output floods. Returns true iff EOF was reached within deadline & cap.
  bool read_all(std::string& out, Clock::time_point deadline, std::size_t max_bytes);

  // Non-blocking reap. Returns true (and fills status) once the child is
  // gone; the pid is released.
  bool try_wait(ExitStatus& status);

  // SIGTERM, then up to `grace` for a voluntary exit, then SIGKILL, then a
  // blocking reap. Safe on an already-exited child. Returns the exit status.
  ExitStatus terminate(std::chrono::milliseconds grace);

  // terminate() with zero grace — the destructor's path, public for tests.
  ExitStatus kill_and_reap() { return terminate(std::chrono::milliseconds{0}); }

private:
  void close_fds();

  pid_t pid_ = -1;
  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  const std::atomic<bool>* cancel_ = nullptr;
};

} // namespace upec::util
