#include "util/metrics.h"

#include <algorithm>

#include "util/json.h"

namespace upec::util {

void MetricsSnapshot::add_counter(const std::string& name, std::uint64_t v) {
  Entry& e = entries_[name];
  e.kind = MetricKind::Counter;
  e.value += v;
}

void MetricsSnapshot::set_gauge(const std::string& name, std::uint64_t v) {
  auto [it, inserted] = entries_.try_emplace(name);
  it->second.kind = MetricKind::Gauge;
  it->second.value = inserted ? v : std::max(it->second.value, v);
}

std::uint64_t MetricsSnapshot::get(const std::string& name) const {
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.value;
}

bool MetricsSnapshot::has(const std::string& name) const {
  return entries_.count(name) != 0;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const auto& [name, incoming] : other.entries_) {
    auto [it, inserted] = entries_.try_emplace(name, incoming);
    if (inserted)
      continue;
    Entry& e = it->second;
    if (e.kind == MetricKind::Counter)
      e.value += incoming.value;
    else
      e.value = std::max(e.value, incoming.value);
  }
}

void MetricsSnapshot::merge_prefixed(const std::string& prefix,
                                     const MetricsSnapshot& other) {
  for (const auto& [name, incoming] : other.entries_) {
    auto [it, inserted] = entries_.try_emplace(prefix + name, incoming);
    if (inserted)
      continue;
    Entry& e = it->second;
    if (e.kind == MetricKind::Counter)
      e.value += incoming.value;
    else
      e.value = std::max(e.value, incoming.value);
  }
}

MetricsSnapshot
MetricsSnapshot::filtered(const std::vector<std::string>& prefixes) const {
  MetricsSnapshot out;
  for (const auto& [name, entry] : entries_) {
    bool keep = prefixes.empty();
    for (const std::string& p : prefixes) {
      if (name.compare(0, p.size(), p) == 0) {
        keep = true;
        break;
      }
    }
    if (keep)
      out.entries_.emplace(name, entry);
  }
  return out;
}

void MetricsSnapshot::write_json(JsonWriter& w) const {
  w.begin_object();
  for (const auto& [name, entry] : entries_)
    w.key(name).value(entry.value);
  w.end_object();
}

std::string MetricsSnapshot::to_json() const {
  JsonWriter w;
  write_json(w);
  return w.take();
}

} // namespace upec::util
