// Fixed-size thread pool with a batch-barrier API.
//
// The check scheduler's unit of work is a *batch*: one task per active worker
// solver, dispatched together and joined before the (single-threaded) encoder
// is allowed to touch the shared clause store again. run_all() is exactly
// that barrier — it returns only after every task of the batch finished, and
// its return edge establishes a happens-before between the workers' writes
// (solver models, statistics) and the caller's subsequent reads, so result
// merging needs no further synchronization.
#pragma once

#include <condition_variable>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace upec::util {

class ThreadPool {
public:
  // Spawns `threads` workers. 0 is allowed and means "no worker threads";
  // run_all() then executes tasks inline on the caller.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  // Runs all tasks and blocks until every one finished. Tasks may run on any
  // worker thread in any order.
  //
  // Exception contract: a throwing task can never std::terminate the pool —
  // workers catch everything (including non-std::exception payloads), the
  // remaining tasks of the batch still run, and the first exception in task
  // order is rethrown here, on the caller's thread, after the batch
  // completed. The pool stays fully usable for subsequent batches. Teardown
  // is drain-first: the destructor lets an in-flight batch finish rather
  // than stranding a caller blocked on the barrier.
  void run_all(std::vector<std::function<void()>> tasks);

private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for tasks
  std::condition_variable done_cv_;  // run_all waits for the batch
  std::vector<std::function<void()>> tasks_;
  std::vector<std::exception_ptr> errors_;  // per task-index, set on throw
  std::size_t next_ = 0;                    // next unclaimed task index
  std::size_t pending_ = 0;                 // claimed-or-unclaimed tasks not yet finished
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

} // namespace upec::util
