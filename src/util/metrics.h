// Hierarchical counter/gauge snapshot with explicit merge semantics.
//
// The engine's per-component statistics (sat::SolverStats, SimplifyStats,
// BackendHealth, ipc::SweepResult, upec cache/pruner counters) are unified
// into one named, flat registry. Names are dotted paths that encode the
// hierarchy — `sat.solver.w3.conflicts`, `sat.solver.w3.m1.conflicts`,
// `upec.sweep.pruned_candidates`, `sat.channel.exported` — so a snapshot
// is simultaneously the per-component breakdown and (via merge_prefixed)
// the aggregate.
//
// Merge semantics, defined once here instead of at every call site:
//   - Counter: merges by SUM (conflicts, propagations, cache hits, ...).
//   - Gauge:   merges by MAX (live learnt clauses, quarantined flags,
//              high-water marks). Monotone-safe for "any member" checks.
// Merging a counter into a gauge (or vice versa) keeps the existing kind;
// the engine never mixes kinds for one name.
//
// Values are unsigned integers only — durations are carried as _us /
// _ms counters — so snapshots diff exactly across runs and machines.
// Storage is a std::map, giving every serialization a stable
// (lexicographic) key order for free.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace upec::util {

class JsonWriter;

enum class MetricKind : std::uint8_t { Counter, Gauge };

class MetricsSnapshot {
public:
  struct Entry {
    std::uint64_t value = 0;
    MetricKind kind = MetricKind::Counter;
  };

  // add_counter accumulates; set_gauge keeps the max of repeated sets so it
  // composes the same way merge() does.
  void add_counter(const std::string& name, std::uint64_t v);
  void set_gauge(const std::string& name, std::uint64_t v);

  std::uint64_t get(const std::string& name) const;
  bool has(const std::string& name) const;
  bool empty() const { return entries_.empty(); }
  std::size_t size() const { return entries_.size(); }

  // Folds `other` into this snapshot under the kind-specific rule above.
  void merge(const MetricsSnapshot& other);
  // merge(), but every incoming name gains `prefix` — how a worker's local
  // snapshot becomes `sat.solver.w3.*` in the run-level registry.
  void merge_prefixed(const std::string& prefix, const MetricsSnapshot& other);

  // Sub-snapshot of entries whose name starts with any of `prefixes`
  // (empty list = everything). Used by the bench harness to commit a
  // curated slice instead of the full registry.
  MetricsSnapshot filtered(const std::vector<std::string>& prefixes) const;

  // Serializes as one flat JSON object, keys in lexicographic order.
  void write_json(JsonWriter& w) const;
  std::string to_json() const;

  const std::map<std::string, Entry>& entries() const { return entries_; }

private:
  std::map<std::string, Entry> entries_;
};

} // namespace upec::util
