// Deterministic pseudo-random number generator (xoshiro256**) used by
// randomized tests, the invariant miner, and workload generators in the
// benchmark harness. Deterministic seeding keeps every experiment
// reproducible run-to-run.
#pragma once

#include <cstdint>

namespace upec {

class Xoshiro256 {
public:
  explicit Xoshiro256(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 seeding, the reference initialization for xoshiro.
    std::uint64_t x = seed;
    for (auto& s : s_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform value in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) { return next() % bound; }

  bool chance(double p) {
    return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0) < p;
  }

private:
  static std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  std::uint64_t s_[4];
};

} // namespace upec
