#include "encode/unroller.h"

#include <cassert>

namespace upec::encode {

using rtlir::kNullNet;
using rtlir::NetId;
using rtlir::NetKind;

UnrolledInstance::UnrolledInstance(CnfBuilder& cnf, const rtlir::Design& design,
                                   const rtlir::StateVarTable& svt, std::string tag)
    : cnf_(cnf), design_(design), svt_(svt), tag_(std::move(tag)) {}

UnrolledInstance::Frame& UnrolledInstance::frame(unsigned f) {
  if (frames_.size() <= f) frames_.resize(f + 1);
  return frames_[f];
}

const Bits& UnrolledInstance::input_at(unsigned f, std::uint32_t input_index) {
  const rtlir::InputInfo& info = design_.inputs()[input_index];
  // Stable inputs live in frame 0 regardless of the requested frame: they
  // model specification constants held fixed over the property window.
  const unsigned slot = info.stable ? 0 : f;
  auto& cache = frame(slot).inputs;
  auto it = cache.find(input_index);
  if (it != cache.end()) return it->second;

  Bits image;
  if (resolve_input_) image = resolve_input_(input_index, slot);
  if (image.empty()) image = cnf_.fresh_vec(design_.width(info.net));
  // Re-acquire: the resolver may have grown the frame vector.
  return frame(slot).inputs.emplace(input_index, std::move(image)).first->second;
}

const Bits& UnrolledInstance::reg_at(unsigned f, std::uint32_t reg) {
  auto& cache = frame(f).regs;
  auto it = cache.find(reg);
  if (it != cache.end()) return it->second;

  const rtlir::Register& r = design_.registers()[reg];
  Bits image;
  if (f == 0) {
    // Symbolic starting state: all histories of inputs are modeled by leaving
    // the initial register contents unconstrained.
    image = cnf_.fresh_vec(design_.width(r.q));
  } else {
    Bits next = net_at(f - 1, r.d);
    if (r.en != kNullNet) {
      const Bits en = net_at(f - 1, r.en);
      next = cnf_.v_mux(en[0], next, reg_at(f - 1, reg));
    }
    image = std::move(next);
  }
  return frame(f).regs.emplace(reg, std::move(image)).first->second;
}

const Bits& UnrolledInstance::mem_word_at(unsigned f, std::uint32_t mem, std::uint32_t word) {
  const std::uint64_t key = (static_cast<std::uint64_t>(mem) << 32) | word;
  auto& cache = frame(f).mem_words;
  auto it = cache.find(key);
  if (it != cache.end()) return it->second;

  const rtlir::Memory& m = design_.memories()[mem];
  Bits image;
  if (f == 0) {
    image = cnf_.fresh_vec(m.width);
  } else {
    // Apply all write ports of the previous frame; later ports take priority.
    Bits cur = mem_word_at(f - 1, mem, word);
    for (const rtlir::MemWritePort& wp : m.writes) {
      const Bits addr = net_at(f - 1, wp.addr);
      const Bits data = net_at(f - 1, wp.data);
      Lit hit = cnf_.v_eq(addr, cnf_.constant_vec(BitVec(m.addr_width, word)));
      if (wp.en != kNullNet) {
        const Bits en = net_at(f - 1, wp.en);
        hit = cnf_.and2(hit, en[0]);
      }
      cur = cnf_.v_mux(hit, data, cur);
    }
    image = std::move(cur);
  }
  return frame(f).mem_words.emplace(key, std::move(image)).first->second;
}

Bits UnrolledInstance::mem_read_tree(unsigned f, std::uint32_t mem, const Bits& addr,
                                     unsigned bit, std::uint64_t base) {
  const rtlir::Memory& m = design_.memories()[mem];
  if (base >= m.words) return cnf_.constant_vec(BitVec::zeros(m.width));
  if (bit == 0) return mem_word_at(f, mem, static_cast<std::uint32_t>(base));
  // Select on address bit (bit-1): balanced mux tree keeps CNF depth log(words).
  const unsigned b = bit - 1;
  const Bits lo = mem_read_tree(f, mem, addr, b, base);
  const std::uint64_t hi_base = base + (1ull << b);
  if (hi_base >= m.words) {
    // Upper half reads as zero only if selected; fold the mux.
    const Bits hi = cnf_.constant_vec(BitVec::zeros(m.width));
    return cnf_.v_mux(addr[b], hi, lo);
  }
  const Bits hi = mem_read_tree(f, mem, addr, b, hi_base);
  return cnf_.v_mux(addr[b], hi, lo);
}

void UnrolledInstance::bind_state0(rtlir::StateVarId sv, Bits image) {
  const rtlir::StateVar& v = svt_.var(sv);
  if (v.kind == rtlir::StateVar::Kind::Reg) {
    auto& cache = frame(0).regs;
    assert(!cache.count(v.index) && "frame-0 register image already encoded");
    cache.emplace(v.index, std::move(image));
  } else {
    const std::uint64_t key = (static_cast<std::uint64_t>(v.index) << 32) | v.word;
    auto& cache = frame(0).mem_words;
    assert(!cache.count(key) && "frame-0 memory word image already encoded");
    cache.emplace(key, std::move(image));
  }
}

const Bits& UnrolledInstance::state_at(unsigned f, rtlir::StateVarId sv) {
  const rtlir::StateVar& v = svt_.var(sv);
  if (v.kind == rtlir::StateVar::Kind::Reg) return reg_at(f, v.index);
  return mem_word_at(f, v.index, v.word);
}

const Bits& UnrolledInstance::net_at(unsigned f, NetId net) {
  assert(net != kNullNet);
  auto& cache = frame(f).nets;
  auto it = cache.find(net);
  if (it != cache.end()) return it->second;

  const rtlir::Net& info = design_.net(net);
  Bits image;
  switch (info.kind) {
    case NetKind::Const: image = cnf_.constant_vec(design_.consts()[info.payload]); break;
    case NetKind::Input: image = input_at(f, info.payload); break;
    case NetKind::RegQ: image = reg_at(f, info.payload); break;
    case NetKind::MemRead: {
      const rtlir::MemReadPort& rp = design_.mem_reads()[info.payload];
      const Bits addr = net_at(f, rp.addr);
      image = mem_read_tree(f, rp.mem, addr, design_.memories()[rp.mem].addr_width, 0);
      break;
    }
    case NetKind::Cell: {
      const rtlir::CellNode& cell = design_.cells()[info.payload];
      static const Bits kEmpty;
      const Bits& a = cell.a != kNullNet ? net_at(f, cell.a) : kEmpty;
      const Bits& b = cell.b != kNullNet ? net_at(f, cell.b) : kEmpty;
      const Bits& c = cell.c != kNullNet ? net_at(f, cell.c) : kEmpty;
      image = encode_cell(cnf_, cell, info.width, a, b, c);
      break;
    }
  }
  ++encoded_nets_;
  // Note: recursive net_at calls may have grown the cache; re-acquire.
  return frame(f).nets.emplace(net, std::move(image)).first->second;
}

} // namespace upec::encode
