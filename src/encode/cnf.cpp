#include "encode/cnf.h"

#include <cassert>

namespace upec::encode {

CnfBuilder::CnfBuilder(sat::ClauseSink& sink) : sink_(sink) {
  const sat::Var v = sink_.new_var();
  true_ = sat::mk_lit(v);
  sink_.add_clause(true_);
}

Lit CnfBuilder::fresh() {
  ++aux_vars_;
  return sat::mk_lit(sink_.new_var());
}

Bits CnfBuilder::fresh_vec(unsigned width) {
  Bits out(width);
  for (auto& l : out) l = fresh();
  return out;
}

Bits CnfBuilder::constant_vec(const BitVec& value) {
  Bits out(value.width());
  for (unsigned i = 0; i < value.width(); ++i) out[i] = constant(value.bit(i));
  return out;
}

namespace {
std::uint64_t gate_key(Lit a, Lit b) {
  const std::uint32_t x = static_cast<std::uint32_t>(a.index());
  const std::uint32_t y = static_cast<std::uint32_t>(b.index());
  return x < y ? (static_cast<std::uint64_t>(x) << 32) | y
               : (static_cast<std::uint64_t>(y) << 32) | x;
}
} // namespace

Lit CnfBuilder::and2(Lit a, Lit b) {
  if (is_false(a) || is_false(b)) return lit_false();
  if (is_true(a)) return b;
  if (is_true(b)) return a;
  if (a == b) return a;
  if (a == ~b) return lit_false();
  const std::uint64_t key = gate_key(a, b);
  auto it = and_cache_.find(key);
  if (it != and_cache_.end()) return it->second;
  const Lit o = fresh();
  clause(~o, a);
  clause(~o, b);
  clause(o, ~a, ~b);
  and_cache_.emplace(key, o);
  return o;
}

Lit CnfBuilder::xor2(Lit a, Lit b) {
  if (is_const(a) && is_const(b)) return constant(is_true(a) != is_true(b));
  if (is_false(a)) return b;
  if (is_true(a)) return ~b;
  if (is_false(b)) return a;
  if (is_true(b)) return ~a;
  if (a == b) return lit_false();
  if (a == ~b) return lit_true();
  // Canonicalize: strip output-polarity into the result so xor(~a, b) shares
  // the gate of xor(a, b).
  const bool flip = a.sign() != b.sign();
  const Lit pa = a.sign() ? ~a : a;
  const Lit pb = b.sign() ? ~b : b;
  const std::uint64_t key = gate_key(pa, pb);
  auto it = xor_cache_.find(key);
  if (it != xor_cache_.end()) return flip ? ~it->second : it->second;
  const Lit o = fresh();
  clause(~o, pa, pb);
  clause(~o, ~pa, ~pb);
  clause(o, ~pa, pb);
  clause(o, pa, ~pb);
  xor_cache_.emplace(key, o);
  return flip ? ~o : o;
}

Lit CnfBuilder::mux(Lit sel, Lit t, Lit f) {
  if (is_true(sel)) return t;
  if (is_false(sel)) return f;
  if (t == f) return t;
  if (is_true(t) && is_false(f)) return sel;
  if (is_false(t) && is_true(f)) return ~sel;
  const Lit o = fresh();
  clause(~o, ~sel, t);
  clause(~o, sel, f);
  clause(o, ~sel, ~t);
  clause(o, sel, ~f);
  return o;
}

Lit CnfBuilder::and_all(const Bits& xs) {
  // Tree reduction keeps implication chains shallow for the solver.
  Bits cur;
  cur.reserve(xs.size());
  for (Lit l : xs) {
    if (is_false(l)) return lit_false();
    if (!is_true(l)) cur.push_back(l);
  }
  if (cur.empty()) return lit_true();
  while (cur.size() > 1) {
    Bits next;
    next.reserve((cur.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < cur.size(); i += 2) next.push_back(and2(cur[i], cur[i + 1]));
    if (cur.size() & 1) next.push_back(cur.back());
    cur = std::move(next);
  }
  return cur[0];
}

Lit CnfBuilder::or_all(const Bits& xs) {
  Bits neg(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) neg[i] = ~xs[i];
  return ~and_all(neg);
}

Bits CnfBuilder::v_not(const Bits& a) {
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = ~a[i];
  return out;
}

Bits CnfBuilder::v_and(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = and2(a[i], b[i]);
  return out;
}

Bits CnfBuilder::v_or(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = or2(a[i], b[i]);
  return out;
}

Bits CnfBuilder::v_xor(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = xor2(a[i], b[i]);
  return out;
}

Bits CnfBuilder::v_mux(Lit sel, const Bits& t, const Bits& f) {
  assert(t.size() == f.size());
  Bits out(t.size());
  for (std::size_t i = 0; i < t.size(); ++i) out[i] = mux(sel, t[i], f[i]);
  return out;
}

Bits CnfBuilder::v_add(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  Lit carry = lit_false();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = xor2(a[i], b[i]);
    out[i] = xor2(axb, carry);
    // carry' = (a & b) | (carry & (a ^ b))
    carry = or2(and2(a[i], b[i]), and2(carry, axb));
  }
  return out;
}

Bits CnfBuilder::v_sub(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits out(a.size());
  Lit borrow = lit_false();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = xor2(a[i], b[i]);
    out[i] = xor2(axb, borrow);
    // borrow' = (~a & b) | (~(a ^ b) & borrow)
    borrow = or2(and2(~a[i], b[i]), and2(~axb, borrow));
  }
  return out;
}

Lit CnfBuilder::v_eq(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  Bits eqs(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) eqs[i] = xnor2(a[i], b[i]);
  return and_all(eqs);
}

Lit CnfBuilder::v_ult(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  // Borrow chain of a - b: final borrow set <=> a < b.
  Lit borrow = lit_false();
  for (std::size_t i = 0; i < a.size(); ++i) {
    const Lit axb = xor2(a[i], b[i]);
    borrow = or2(and2(~a[i], b[i]), and2(~axb, borrow));
  }
  return borrow;
}

Bits CnfBuilder::v_shl(const Bits& a, const Bits& amount) {
  // Barrel shifter over the amount bits; shift counts >= width yield zero.
  Bits cur = a;
  const unsigned w = static_cast<unsigned>(a.size());
  for (unsigned s = 0; s < amount.size(); ++s) {
    const unsigned step = 1u << s;
    if (step >= w) {
      // Shifting by this stage clears everything if the bit is set.
      for (auto& l : cur) l = and2(l, ~amount[s]);
      continue;
    }
    Bits shifted(w, lit_false());
    for (unsigned i = step; i < w; ++i) shifted[i] = cur[i - step];
    cur = v_mux(amount[s], shifted, cur);
  }
  return cur;
}

Bits CnfBuilder::v_lshr(const Bits& a, const Bits& amount) {
  Bits cur = a;
  const unsigned w = static_cast<unsigned>(a.size());
  for (unsigned s = 0; s < amount.size(); ++s) {
    const unsigned step = 1u << s;
    if (step >= w) {
      for (auto& l : cur) l = and2(l, ~amount[s]);
      continue;
    }
    Bits shifted(w, lit_false());
    for (unsigned i = 0; i + step < w; ++i) shifted[i] = cur[i + step];
    cur = v_mux(amount[s], shifted, cur);
  }
  return cur;
}

Bits CnfBuilder::v_slice(const Bits& a, unsigned lo, unsigned width) {
  assert(lo + width <= a.size());
  return Bits(a.begin() + lo, a.begin() + lo + width);
}

Bits CnfBuilder::v_concat(const Bits& hi, const Bits& lo) {
  Bits out = lo;
  out.insert(out.end(), hi.begin(), hi.end());
  return out;
}

Bits CnfBuilder::v_zext(const Bits& a, unsigned width) {
  assert(width >= a.size());
  Bits out = a;
  out.resize(width, lit_false());
  return out;
}

void CnfBuilder::assert_equal(Lit a, Lit b) {
  sink_.add_clause(~a, b);
  sink_.add_clause(a, ~b);
}

void CnfBuilder::assert_equal(const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) assert_equal(a[i], b[i]);
}

void CnfBuilder::imply_equal(Lit cond, const Bits& a, const Bits& b) {
  assert(a.size() == b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    sink_.add_clause({~cond, ~a[i], b[i]});
    sink_.add_clause({~cond, a[i], ~b[i]});
  }
}

} // namespace upec::encode
