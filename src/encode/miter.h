// 2-safety miter: two unrolled instances of the design under verification
// inside one CNF, as required by the UPEC computational model (Sec 3.2).
//
// Two encoding strategies are provided:
//
//  * Assumption mode (default, incremental): both instances get independent
//    symbolic starting states; State_Equivalence(S) is expressed through
//    per-state-variable activation literals passed as solver assumptions.
//    Shrinking S across Alg. 1 / Alg. 2 iterations only changes the
//    assumption set — clauses and learned clauses persist across iterations.
//
//  * Shared-prefix mode (ablation, see bench_solver): state variables
//    assumed equal at t reuse the *same* CNF variables in both instances,
//    yielding a much smaller formula at the cost of re-encoding whenever S
//    changes.
//
// Primary inputs are shared between the instances by default (this *is*
// Primary_Input_Constraints(), enforced with zero clauses); inputs named by
// the per_instance predicate (the CPU/system interface of Obs. 1) get
// independent images so the Victim_Task_Executing() macro can constrain them.
#pragma once

#include <cassert>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "encode/unroller.h"
#include "sat/solver.h"

namespace upec::encode {

struct MiterOptions {
  // Inputs whose image must be independent per instance (CPU interface).
  std::function<bool(const std::string& input_name)> per_instance;
  // Shared-prefix encoding of frame-0 state (see above).
  bool shared_prefix = false;
};

class Miter {
public:
  // Encodes into an arbitrary clause sink (a recording CnfStore, a tee into
  // store + solver, ...). Model inspection requires a model source — install
  // one with set_model_source() or use the per-call overloads below.
  Miter(sat::ClauseSink& sink, const rtlir::Design& design, const rtlir::StateVarTable& svt,
        MiterOptions options);

  // Single-solver convenience: encode into `solver` and read models from it.
  Miter(sat::Solver& solver, const rtlir::Design& design, const rtlir::StateVarTable& svt,
        MiterOptions options)
      : Miter(static_cast<sat::ClauseSink&>(solver), design, svt, std::move(options)) {
    model_ = &solver;
  }

  CnfBuilder& cnf() { return cnf_; }
  UnrolledInstance& inst_a() { return a_; }
  UnrolledInstance& inst_b() { return b_; }
  const UnrolledInstance& inst_a() const { return a_; }
  const UnrolledInstance& inst_b() const { return b_; }
  const rtlir::StateVarTable& state_vars() const { return svt_; }

  // Appends every CNF variable the sweep layers address by name — eq
  // assumptions, diff literals, candidate activation literals and chain
  // tails, exemption literals, and the constant-true variable. This is the
  // miter's half of the Simplifier frozen-variable contract (sat/simplify.h):
  // a preprocessor must keep these variables intact or assuming/harvesting
  // them would silently mean nothing. Monotone: registration only ever adds
  // entries, so a set collected now covers every earlier sweep's needs.
  void frozen_vars(std::vector<sat::Var>& out) const;

  // Exemption hook: returns, for a state variable, a literal that is true
  // when the variable is exempt from equivalence (memory word inside the
  // symbolic victim range). Must be installed before the first
  // eq_assumption/diff_literal call; defaults to "never exempt".
  void set_exempt(std::function<Lit(Miter&, rtlir::StateVarId)> fn) { exempt_fn_ = std::move(fn); }
  Lit exempt_lit(rtlir::StateVarId sv);

  // Shared-prefix mode: bind frame-0 state of instance B to instance A for
  // every variable in S (conditionally for exempt variables). Must run
  // before any frame-0 image of instance B is encoded.
  void bind_shared_prefix(const std::vector<rtlir::StateVarId>& S);

  // Activation literal for "sv equal at frame 0 (unless exempt)".
  Lit eq_assumption(rtlir::StateVarId sv);

  // Reverse lookup for UNSAT-core mining: true iff `l` is an eq_assumption
  // literal, storing its state variable in *sv.
  bool eq_assumption_var(Lit l, rtlir::StateVarId* sv) const {
    auto it = eq_lit_sv_.find(l.index());
    if (it == eq_lit_sv_.end()) return false;
    *sv = it->second;
    return true;
  }

  // Literal d with d -> (sv differs at `frame` and is not exempt).
  Lit diff_literal(rtlir::StateVarId sv, unsigned frame);

  // --- persistent candidate activation (incremental sweeps) --------------------
  // One activation literal e per (sv, frame), encoded exactly once:
  //   e -> diff(sv, frame)
  // together with a per-frame group disjunction over every registered
  // activation, chain-extended as candidates register late:
  //   (e_1 | ... | e_n | tail_0)        first registration batch
  //   (~tail_0 | e_n+1 | ... | tail_1)  each later batch
  // A sweep round then *selects* its candidate subset purely through
  // assumptions — ~e for every deselected candidate plus ~tail for the open
  // chain end — so the query "can any selected candidate differ at `frame`?"
  // never re-encodes anything: solvers keep their learnt clauses live across
  // rounds and iterations, and the CNF stream is identical for every thread
  // count. See README "Incremental sweeps" for the soundness argument.
  Lit activation_literal(rtlir::StateVarId sv, unsigned frame);

  // Ensures every sv in `svs` has an activation literal registered in the
  // frame's group disjunction (no-op for already-registered candidates).
  void register_candidates(const std::vector<rtlir::StateVarId>& svs, unsigned frame);

  // Appends the selecting assumptions for "some member of `enabled` differs
  // at `frame`": ~e for each registered candidate not in `enabled`, plus the
  // negated open chain tail. Every member of `enabled` must be registered.
  void select_candidates(unsigned frame, const std::vector<rtlir::StateVarId>& enabled,
                         std::vector<Lit>& out_assumptions) const;

  // --- model inspection (valid after a SAT solve) ------------------------------
  // The default model source (the main solver in the single-solver setup).
  void set_model_source(const sat::ModelSource* model) { model_ = model; }

  std::uint64_t model_value(const sat::ModelSource& model, const Bits& image) const;
  std::uint64_t model_value(const Bits& image) const {
    assert(model_ != nullptr && "no model source installed (store-only miter?)");
    return model_value(*model_, image);
  }
  bool lit_in_model(Lit l) const;
  // True iff the two instances disagree on sv at `frame` in the given model
  // and the variable is not exempted by the model's victim range. The images
  // must already be encoded (they are, once a diff_literal for (sv, frame)
  // exists) — the ModelSource overload is how the scheduler inspects worker
  // models without re-encoding.
  bool differs_in_model(const sat::ModelSource& model, rtlir::StateVarId sv, unsigned frame);
  bool differs_in_model(rtlir::StateVarId sv, unsigned frame) {
    assert(model_ != nullptr && "no model source installed (store-only miter?)");
    return differs_in_model(*model_, sv, frame);
  }

private:
  CnfBuilder cnf_;
  const sat::ModelSource* model_ = nullptr;
  const rtlir::StateVarTable& svt_;
  MiterOptions options_;
  UnrolledInstance a_;
  UnrolledInstance b_;
  std::function<Lit(Miter&, rtlir::StateVarId)> exempt_fn_;
  std::unordered_map<std::uint64_t, Bits> shared_input_cache_; // (frame<<32)|input_idx
  std::unordered_map<rtlir::StateVarId, Lit> eq_lits_;
  std::unordered_map<std::int32_t, rtlir::StateVarId> eq_lit_sv_; // Lit::index -> sv
  std::unordered_map<std::uint64_t, Lit> diff_lits_; // (frame<<32)|sv
  std::unordered_map<rtlir::StateVarId, Lit> exempt_cache_;

  // Per-frame candidate activation groups (registration order preserved for
  // deterministic assumption construction).
  struct CandidateGroup {
    std::vector<rtlir::StateVarId> members;
    std::unordered_map<rtlir::StateVarId, Lit> activation;
    Lit tail = Lit::undef(); // open end of the group-disjunction chain
  };
  std::unordered_map<unsigned, CandidateGroup> candidate_groups_;
};

} // namespace upec::encode
