// 2-safety miter: two unrolled instances of the design under verification
// inside one CNF, as required by the UPEC computational model (Sec 3.2).
//
// Two encoding strategies are provided:
//
//  * Assumption mode (default, incremental): both instances get independent
//    symbolic starting states; State_Equivalence(S) is expressed through
//    per-state-variable activation literals passed as solver assumptions.
//    Shrinking S across Alg. 1 / Alg. 2 iterations only changes the
//    assumption set — clauses and learned clauses persist across iterations.
//
//  * Shared-prefix mode (ablation, see bench_solver): state variables
//    assumed equal at t reuse the *same* CNF variables in both instances,
//    yielding a much smaller formula at the cost of re-encoding whenever S
//    changes.
//
// Primary inputs are shared between the instances by default (this *is*
// Primary_Input_Constraints(), enforced with zero clauses); inputs named by
// the per_instance predicate (the CPU/system interface of Obs. 1) get
// independent images so the Victim_Task_Executing() macro can constrain them.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "encode/unroller.h"

namespace upec::encode {

struct MiterOptions {
  // Inputs whose image must be independent per instance (CPU interface).
  std::function<bool(const std::string& input_name)> per_instance;
  // Shared-prefix encoding of frame-0 state (see above).
  bool shared_prefix = false;
};

class Miter {
public:
  Miter(sat::Solver& solver, const rtlir::Design& design, const rtlir::StateVarTable& svt,
        MiterOptions options);

  CnfBuilder& cnf() { return cnf_; }
  UnrolledInstance& inst_a() { return a_; }
  UnrolledInstance& inst_b() { return b_; }
  const rtlir::StateVarTable& state_vars() const { return svt_; }

  // Exemption hook: returns, for a state variable, a literal that is true
  // when the variable is exempt from equivalence (memory word inside the
  // symbolic victim range). Must be installed before the first
  // eq_assumption/diff_literal call; defaults to "never exempt".
  void set_exempt(std::function<Lit(Miter&, rtlir::StateVarId)> fn) { exempt_fn_ = std::move(fn); }
  Lit exempt_lit(rtlir::StateVarId sv);

  // Shared-prefix mode: bind frame-0 state of instance B to instance A for
  // every variable in S (conditionally for exempt variables). Must run
  // before any frame-0 image of instance B is encoded.
  void bind_shared_prefix(const std::vector<rtlir::StateVarId>& S);

  // Activation literal for "sv equal at frame 0 (unless exempt)".
  Lit eq_assumption(rtlir::StateVarId sv);

  // Literal d with d -> (sv differs at `frame` and is not exempt).
  Lit diff_literal(rtlir::StateVarId sv, unsigned frame);

  // --- model inspection (valid after a SAT solve) ------------------------------
  std::uint64_t model_value(const Bits& image) const;
  bool lit_in_model(Lit l) const;
  // True iff the two instances disagree on sv at `frame` in the current model
  // and the variable is not exempted by the model's victim range.
  bool differs_in_model(rtlir::StateVarId sv, unsigned frame);

private:
  sat::Solver& solver_;
  CnfBuilder cnf_;
  const rtlir::StateVarTable& svt_;
  MiterOptions options_;
  UnrolledInstance a_;
  UnrolledInstance b_;
  std::function<Lit(Miter&, rtlir::StateVarId)> exempt_fn_;
  std::unordered_map<std::uint64_t, Bits> shared_input_cache_; // (frame<<32)|input_idx
  std::unordered_map<rtlir::StateVarId, Lit> eq_lits_;
  std::unordered_map<std::uint64_t, Lit> diff_lits_; // (frame<<32)|sv
  std::unordered_map<rtlir::StateVarId, Lit> exempt_cache_;
};

} // namespace upec::encode
