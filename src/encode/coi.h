// Static cone-of-influence analysis used for reporting and for the encoder
// ablation benchmark: how much of the design a k-cycle property actually
// touches. The unroller performs the equivalent reduction dynamically (lazy
// encoding); this module computes the same set explicitly so the reduction
// factor can be measured and asserted in tests.
#pragma once

#include <vector>

#include "rtlir/analyze.h"

namespace upec::encode {

struct CoiResult {
  // State variables whose frame-0 value can influence the roots within k cycles.
  std::vector<rtlir::StateVarId> state_vars;
  // Nets reachable backwards from the roots through k frames.
  std::size_t reachable_nets = 0;
  std::size_t total_nets = 0;
};

// Backwards cone of `roots` (net ids) across `k` unrolled frames: walks
// combinational fan-in, crosses register D->Q and memory write->read
// boundaries k times.
CoiResult cone_of_influence(const rtlir::Design& design, const rtlir::StateVarTable& svt,
                            const std::vector<rtlir::NetId>& roots, unsigned k);

} // namespace upec::encode
