#include "encode/coi.h"

#include <unordered_set>

namespace upec::encode {

using rtlir::kNullNet;
using rtlir::NetId;
using rtlir::NetKind;

CoiResult cone_of_influence(const rtlir::Design& design, const rtlir::StateVarTable& svt,
                            const std::vector<NetId>& roots, unsigned k) {
  CoiResult result;
  result.total_nets = design.num_nets();

  std::vector<NetId> frontier = roots;
  std::vector<bool> net_seen(design.num_nets(), false);
  std::vector<bool> reg_seen(design.registers().size(), false);
  std::vector<bool> mem_seen(design.memories().size(), false);

  for (unsigned step = 0; step <= k; ++step) {
    // Combinational closure of the current frontier.
    const std::vector<bool> cone = rtlir::comb_fanin(design, frontier);
    std::vector<NetId> next_frontier;
    for (NetId n = 0; n < design.num_nets(); ++n) {
      if (!cone[n] || net_seen[n]) continue;
      net_seen[n] = true;
      const rtlir::Net& info = design.net(n);
      if (info.kind == NetKind::RegQ && !reg_seen[info.payload]) {
        reg_seen[info.payload] = true;
        if (step < k) {
          const rtlir::Register& r = design.registers()[info.payload];
          next_frontier.push_back(r.d);
          if (r.en != kNullNet) next_frontier.push_back(r.en);
        }
      } else if (info.kind == NetKind::MemRead) {
        const std::uint32_t mem = design.mem_reads()[info.payload].mem;
        if (!mem_seen[mem]) {
          mem_seen[mem] = true;
          if (step < k) {
            for (const rtlir::MemWritePort& w : design.memories()[mem].writes) {
              next_frontier.push_back(w.addr);
              next_frontier.push_back(w.data);
              if (w.en != kNullNet) next_frontier.push_back(w.en);
            }
          }
        }
      }
    }
    if (next_frontier.empty()) break;
    frontier = std::move(next_frontier);
  }

  for (NetId n = 0; n < design.num_nets(); ++n) {
    if (net_seen[n]) ++result.reachable_nets;
  }
  for (std::uint32_t r = 0; r < design.registers().size(); ++r) {
    if (reg_seen[r]) result.state_vars.push_back(svt.of_register(r));
  }
  for (std::uint32_t m = 0; m < design.memories().size(); ++m) {
    if (mem_seen[m]) {
      for (std::uint32_t w = 0; w < design.memories()[m].words; ++w) {
        result.state_vars.push_back(svt.of_mem_word(m, w));
      }
    }
  }
  return result;
}

} // namespace upec::encode
