#include "encode/bitblast.h"

#include <cassert>

namespace upec::encode {

Bits encode_cell(CnfBuilder& cnf, const rtlir::CellNode& cell, unsigned out_width, const Bits& a,
                 const Bits& b, const Bits& c) {
  using rtlir::Op;
  switch (cell.op) {
    case Op::Not: return cnf.v_not(a);
    case Op::And: return cnf.v_and(a, b);
    case Op::Or: return cnf.v_or(a, b);
    case Op::Xor: return cnf.v_xor(a, b);
    case Op::Add: return cnf.v_add(a, b);
    case Op::Sub: return cnf.v_sub(a, b);
    case Op::Eq: return Bits{cnf.v_eq(a, b)};
    case Op::Ult: return Bits{cnf.v_ult(a, b)};
    case Op::Shl: return cnf.v_shl(a, b);
    case Op::Lshr: return cnf.v_lshr(a, b);
    case Op::Mux:
      assert(a.size() == 1);
      return cnf.v_mux(a[0], b, c);
    case Op::Concat: return cnf.v_concat(a, b);
    case Op::Slice: return cnf.v_slice(a, cell.aux0, out_width);
    case Op::ZExt: return cnf.v_zext(a, out_width);
    case Op::RedOr: return Bits{cnf.v_red_or(a)};
    case Op::RedAnd: return Bits{cnf.v_red_and(a)};
  }
  assert(false && "unhandled op");
  return Bits{};
}

} // namespace upec::encode
