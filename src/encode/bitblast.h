// Lowering of individual RTL cells to CNF gate networks.
//
// Kept separate from the unroller so the cell semantics exist in exactly one
// place (mirroring rtlir::eval_cell for the simulator side); the property-
// based tests cross-check the two against each other on random operands.
#pragma once

#include "encode/cnf.h"
#include "rtlir/design.h"

namespace upec::encode {

// Encodes one combinational cell given the images of its operands.
// `a`, `b`, `c` follow the operand conventions documented in rtlir/cell.h.
Bits encode_cell(CnfBuilder& cnf, const rtlir::CellNode& cell, unsigned out_width, const Bits& a,
                 const Bits& b, const Bits& c);

} // namespace upec::encode
