// Tseitin gate library over the CDCL solver.
//
// Word-level values are vectors of literals (`Bits`, LSB first). CNF variable
// 0 is pinned to true so that constant bits are ordinary literals and every
// gate encoder can fold constants on the fly — this is what makes the
// demand-driven unroller a cone-of-influence reduction for free: logic whose
// output is forced by constants never allocates variables or clauses.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "sat/clause_sink.h"
#include "util/bitvec.h"

namespace upec::encode {

using sat::Lit;
using Bits = std::vector<Lit>;

class CnfBuilder {
public:
  // Emits into any ClauseSink: a live Solver, a recording CnfStore, or a
  // TeeSink feeding both. The builder never solves — solving is a backend
  // concern (sat/backend.h).
  explicit CnfBuilder(sat::ClauseSink& sink);

  sat::ClauseSink& sink() { return sink_; }

  Lit lit_true() const { return true_; }
  Lit lit_false() const { return ~true_; }
  Lit constant(bool b) const { return b ? true_ : ~true_; }

  Lit fresh();
  Bits fresh_vec(unsigned width);
  Bits constant_vec(const BitVec& value);

  bool is_true(Lit l) const { return l == true_; }
  bool is_false(Lit l) const { return l == ~true_; }
  bool is_const(Lit l) const { return l.var() == true_.var(); }

  // --- single-bit gates (with constant folding) -------------------------------
  Lit and2(Lit a, Lit b);
  Lit or2(Lit a, Lit b) { return ~and2(~a, ~b); }
  Lit xor2(Lit a, Lit b);
  Lit xnor2(Lit a, Lit b) { return ~xor2(a, b); }
  Lit mux(Lit sel, Lit t, Lit f);
  Lit and_all(const Bits& xs);
  Lit or_all(const Bits& xs);

  // --- word-level operators ----------------------------------------------------
  Bits v_not(const Bits& a);
  Bits v_and(const Bits& a, const Bits& b);
  Bits v_or(const Bits& a, const Bits& b);
  Bits v_xor(const Bits& a, const Bits& b);
  Bits v_mux(Lit sel, const Bits& t, const Bits& f);
  Bits v_add(const Bits& a, const Bits& b);
  Bits v_sub(const Bits& a, const Bits& b);
  Lit v_eq(const Bits& a, const Bits& b);
  Lit v_ult(const Bits& a, const Bits& b);
  Bits v_shl(const Bits& a, const Bits& amount);
  Bits v_lshr(const Bits& a, const Bits& amount);
  Bits v_slice(const Bits& a, unsigned lo, unsigned width);
  Bits v_concat(const Bits& hi, const Bits& lo);
  Bits v_zext(const Bits& a, unsigned width);
  Lit v_red_or(const Bits& a) { return or_all(a); }
  Lit v_red_and(const Bits& a) { return and_all(a); }

  // Clause sugar.
  void add_clause(const std::vector<Lit>& c) { sink_.add_clause(c); }
  void imply(Lit a, Lit b) { sink_.add_clause(~a, b); }
  void assert_equal(Lit a, Lit b);
  void assert_equal(const Bits& a, const Bits& b);
  // cond -> (a == b), bit-wise.
  void imply_equal(Lit cond, const Bits& a, const Bits& b);

  std::uint64_t num_aux_vars() const { return aux_vars_; }
  std::uint64_t num_gate_clauses() const { return gate_clauses_; }

private:
  void clause(Lit a, Lit b) {
    sink_.add_clause(a, b);
    ++gate_clauses_;
  }
  void clause(Lit a, Lit b, Lit c) {
    sink_.add_clause(a, b, c);
    ++gate_clauses_;
  }

  sat::ClauseSink& sink_;
  Lit true_;
  std::uint64_t aux_vars_ = 0;
  std::uint64_t gate_clauses_ = 0;
  // Structural hashing (hash-consing): identical AND/XOR gates share one
  // output literal. This is what makes the shared-prefix miter encoding
  // collapse logic cones that see identical inputs in both instances.
  std::unordered_map<std::uint64_t, Lit> and_cache_;
  std::unordered_map<std::uint64_t, Lit> xor_cache_;
};

} // namespace upec::encode
