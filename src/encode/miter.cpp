#include "encode/miter.h"

#include <cassert>
#include <unordered_set>

#include "util/trace.h"

namespace upec::encode {

Miter::Miter(sat::ClauseSink& sink, const rtlir::Design& design, const rtlir::StateVarTable& svt,
             MiterOptions options)
    : cnf_(sink),
      svt_(svt),
      options_(std::move(options)),
      a_(cnf_, design, svt, "a"),
      b_(cnf_, design, svt, "b") {
  // Shared inputs: both instances resolve to one image, which enforces
  // Primary_Input_Constraints() structurally. Per-instance inputs (the CPU
  // interface) return an empty binding so each instance allocates its own.
  auto resolver = [this, &design](std::uint32_t input_idx, unsigned frame) -> Bits {
    const rtlir::InputInfo& info = design.inputs()[input_idx];
    const std::string& name = design.net(info.net).name;
    if (options_.per_instance && options_.per_instance(name)) return {};
    const std::uint64_t key = (static_cast<std::uint64_t>(frame) << 32) | input_idx;
    auto it = shared_input_cache_.find(key);
    if (it == shared_input_cache_.end()) {
      it = shared_input_cache_.emplace(key, cnf_.fresh_vec(design.width(info.net))).first;
    }
    return it->second;
  };
  a_.set_input_resolver(resolver);
  b_.set_input_resolver(resolver);
}

Lit Miter::exempt_lit(rtlir::StateVarId sv) {
  auto it = exempt_cache_.find(sv);
  if (it != exempt_cache_.end()) return it->second;
  const Lit l = exempt_fn_ ? exempt_fn_(*this, sv) : cnf_.lit_false();
  exempt_cache_.emplace(sv, l);
  return l;
}

void Miter::bind_shared_prefix(const std::vector<rtlir::StateVarId>& S) {
  assert(options_.shared_prefix);
  for (rtlir::StateVarId sv : S) {
    const Lit ex = exempt_lit(sv);
    const Bits& av = a_.state_at(0, sv);
    if (cnf_.is_false(ex)) {
      b_.bind_state0(sv, av);
    } else {
      // Exempt variables (victim-range memory words) may differ: instance B
      // sees fresh values whenever the exemption holds.
      const Bits free = cnf_.fresh_vec(static_cast<unsigned>(av.size()));
      b_.bind_state0(sv, cnf_.v_mux(ex, free, av));
    }
  }
}

Lit Miter::eq_assumption(rtlir::StateVarId sv) {
  auto it = eq_lits_.find(sv);
  if (it != eq_lits_.end()) return it->second;

  const Lit e = cnf_.fresh();
  const Lit ex = exempt_lit(sv);
  const Bits& av = a_.state_at(0, sv);
  const Bits& bv = b_.state_at(0, sv);
  assert(av.size() == bv.size());
  for (std::size_t i = 0; i < av.size(); ++i) {
    if (cnf_.is_false(ex)) {
      cnf_.add_clause({~e, ~av[i], bv[i]});
      cnf_.add_clause({~e, av[i], ~bv[i]});
    } else {
      cnf_.add_clause({~e, ex, ~av[i], bv[i]});
      cnf_.add_clause({~e, ex, av[i], ~bv[i]});
    }
  }
  eq_lits_.emplace(sv, e);
  eq_lit_sv_.emplace(e.index(), sv);
  return e;
}

Lit Miter::diff_literal(rtlir::StateVarId sv, unsigned frame) {
  const std::uint64_t key = (static_cast<std::uint64_t>(frame) << 32) | sv;
  auto it = diff_lits_.find(key);
  if (it != diff_lits_.end()) return it->second;

  const Bits& av = a_.state_at(frame, sv);
  const Bits& bv = b_.state_at(frame, sv);
  assert(av.size() == bv.size());
  const Lit d = cnf_.fresh();
  // d -> (some bit differs)
  std::vector<Lit> cl;
  cl.push_back(~d);
  for (std::size_t i = 0; i < av.size(); ++i) cl.push_back(cnf_.xor2(av[i], bv[i]));
  cnf_.add_clause(cl);
  // d -> not exempt
  const Lit ex = exempt_lit(sv);
  if (!cnf_.is_false(ex)) cnf_.add_clause({~d, ~ex});
  diff_lits_.emplace(key, d);
  return d;
}

Lit Miter::activation_literal(rtlir::StateVarId sv, unsigned frame) {
  CandidateGroup& group = candidate_groups_[frame];
  auto it = group.activation.find(sv);
  if (it != group.activation.end()) return it->second;
  register_candidates({sv}, frame);
  return group.activation.at(sv);
}

void Miter::register_candidates(const std::vector<rtlir::StateVarId>& svs, unsigned frame) {
  util::trace::Span span("encode.register_candidates", "encode");
  span.arg("candidates", static_cast<std::uint64_t>(svs.size()));
  span.arg("frame", std::uint64_t{frame});
  CandidateGroup& group = candidate_groups_[frame];
  std::vector<Lit> fresh_acts;
  for (rtlir::StateVarId sv : svs) {
    if (group.activation.find(sv) != group.activation.end()) continue;
    const Lit d = diff_literal(sv, frame);
    const Lit e = cnf_.fresh();
    cnf_.add_clause({~e, d}); // e -> diff(sv, frame)
    group.activation.emplace(sv, e);
    group.members.push_back(sv);
    fresh_acts.push_back(e);
  }
  if (fresh_acts.empty()) return;
  // Extend (or open) the group-disjunction chain with the new batch. The new
  // tail stays unconstrained until the next batch; selection assumes it false
  // to close the chain.
  const Lit new_tail = cnf_.fresh();
  std::vector<Lit> clause;
  clause.reserve(fresh_acts.size() + 2);
  if (group.tail != Lit::undef()) clause.push_back(~group.tail);
  clause.insert(clause.end(), fresh_acts.begin(), fresh_acts.end());
  clause.push_back(new_tail);
  cnf_.add_clause(clause);
  group.tail = new_tail;
}

void Miter::select_candidates(unsigned frame, const std::vector<rtlir::StateVarId>& enabled,
                              std::vector<Lit>& out_assumptions) const {
  const auto git = candidate_groups_.find(frame);
  assert(git != candidate_groups_.end() && "select before register_candidates");
  const CandidateGroup& group = git->second;
  std::unordered_set<rtlir::StateVarId> on(enabled.begin(), enabled.end());
  for (rtlir::StateVarId sv : group.members) {
    if (on.find(sv) == on.end()) out_assumptions.push_back(~group.activation.at(sv));
  }
  out_assumptions.push_back(~group.tail);
}

std::uint64_t Miter::model_value(const sat::ModelSource& model, const Bits& image) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < image.size(); ++i) {
    if (model.model_value(image[i])) v |= 1ULL << i;
  }
  return v;
}

bool Miter::lit_in_model(Lit l) const {
  assert(model_ != nullptr);
  return model_->model_value(l);
}

void Miter::frozen_vars(std::vector<sat::Var>& out) const {
  out.push_back(cnf_.lit_true().var());
  for (const auto& [sv, l] : eq_lits_) out.push_back(l.var());
  for (const auto& [key, l] : diff_lits_) out.push_back(l.var());
  for (const auto& [sv, l] : exempt_cache_) out.push_back(l.var());
  for (const auto& [frame, group] : candidate_groups_) {
    for (const auto& [sv, l] : group.activation) out.push_back(l.var());
    if (group.tail != Lit::undef()) out.push_back(group.tail.var());
  }
}

bool Miter::differs_in_model(const sat::ModelSource& model, rtlir::StateVarId sv,
                             unsigned frame) {
  const Lit ex = exempt_lit(sv);
  if (!cnf_.is_false(ex) && model.model_value(ex)) return false;
  const std::uint64_t va = model_value(model, a_.state_at(frame, sv));
  const std::uint64_t vb = model_value(model, b_.state_at(frame, sv));
  return va != vb;
}

} // namespace upec::encode
