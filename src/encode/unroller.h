// Demand-driven k-cycle unrolling of one design instance into CNF.
//
// This implements the IPC computational model of the paper (Sec 3.2): the
// starting state (frame 0) is *symbolic* — every register and memory word
// gets fresh CNF variables, modeling all possible input histories — and each
// further frame is the image of the previous one through the transition
// relation. Encoding is memoized and lazy, so only the cone of influence of
// the literals a property actually asks for is ever materialized.
#pragma once

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "encode/bitblast.h"
#include "rtlir/analyze.h"

namespace upec::encode {

// Resolves the image of a primary input at a frame. Returning an empty Bits
// means "no binding": the unroller allocates fresh variables itself. The
// miter uses this hook to share input images between the two instances
// (Primary_Input_Constraints with zero clauses) and to bind stable
// specification inputs (the symbolic victim address range).
using InputResolver = std::function<Bits(std::uint32_t input_index, unsigned frame)>;

class UnrolledInstance {
public:
  UnrolledInstance(CnfBuilder& cnf, const rtlir::Design& design,
                   const rtlir::StateVarTable& svt, std::string tag);

  void set_input_resolver(InputResolver r) { resolve_input_ = std::move(r); }

  // Image of an arbitrary net at a frame (0-based; frame f sees the state
  // *after* f clock edges from the symbolic start).
  const Bits& net_at(unsigned frame, rtlir::NetId net);

  // Current-state image of a state variable at a frame.
  const Bits& state_at(unsigned frame, rtlir::StateVarId sv);

  const Bits& reg_at(unsigned frame, std::uint32_t reg);
  const Bits& mem_word_at(unsigned frame, std::uint32_t mem, std::uint32_t word);
  const Bits& input_at(unsigned frame, std::uint32_t input_index);

  // Pre-binds the frame-0 image of a state variable (shared-prefix miter
  // encoding). Must precede the first read of that variable's frame-0 image.
  void bind_state0(rtlir::StateVarId sv, Bits image);

  const rtlir::Design& design() const { return design_; }
  const rtlir::StateVarTable& state_vars() const { return svt_; }
  const std::string& tag() const { return tag_; }

  // Number of net images actually encoded (for COI reporting).
  std::size_t encoded_net_images() const { return encoded_nets_; }

  // --- const peeks (no encoding) ----------------------------------------------
  // Frames materialized so far. net_at/state_at grow this on demand; these
  // peeks never do — they exist so callers can enumerate already-encoded
  // images (e.g. the frozen-variable declaration for CNF preprocessing)
  // without perturbing the clause stream.
  unsigned frames_encoded() const { return static_cast<unsigned>(frames_.size()); }

  // The already-encoded image of `net` at `frame`, or nullptr if that image
  // (or the frame) has not been materialized.
  const Bits* find_net(unsigned frame, rtlir::NetId net) const {
    if (frame >= frames_.size()) return nullptr;
    auto it = frames_[frame].nets.find(net);
    return it == frames_[frame].nets.end() ? nullptr : &it->second;
  }

private:
  struct Frame {
    std::unordered_map<rtlir::NetId, Bits> nets;
    std::unordered_map<std::uint32_t, Bits> regs;
    std::unordered_map<std::uint64_t, Bits> mem_words; // (mem<<32)|word
    std::unordered_map<std::uint32_t, Bits> inputs;
  };

  Frame& frame(unsigned f);
  Bits mem_read_tree(unsigned frame, std::uint32_t mem, const Bits& addr, unsigned bit,
                     std::uint64_t base);

  CnfBuilder& cnf_;
  const rtlir::Design& design_;
  const rtlir::StateVarTable& svt_;
  std::string tag_;
  InputResolver resolve_input_;
  std::vector<Frame> frames_;
  std::size_t encoded_nets_ = 0;
};

} // namespace upec::encode
