// IPC check driver: one SAT query per property check, with wall-clock and
// solver statistics — these are what the Alg. 1 / Alg. 2 iteration reports
// and the reproduction benchmarks print.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "encode/miter.h"
#include "ipc/property.h"

namespace upec::ipc {

enum class CheckStatus : std::uint8_t {
  Holds,    // UNSAT: no behavior violates the property
  Violated, // SAT: a counterexample exists (model available in the solver)
  Unknown,  // resource budget exhausted
};

struct CheckResult {
  CheckStatus status = CheckStatus::Unknown;
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
};

// Creates an activation literal `act` with clause act -> OR(disjuncts):
// assuming `act` forces at least one disjunct, i.e. one property violation.
encode::Lit make_violation_any(encode::CnfBuilder& cnf,
                               const std::vector<encode::Lit>& disjuncts);

class Engine {
public:
  explicit Engine(sat::Solver& solver) : solver_(solver) {}

  // See make_violation_any (kept as a member for call-site convenience).
  encode::Lit violation_any(encode::CnfBuilder& cnf, const std::vector<encode::Lit>& disjuncts);

  CheckResult check(const BoundedProperty& property);

  sat::Solver& solver() { return solver_; }

private:
  sat::Solver& solver_;
};

} // namespace upec::ipc
