// IPC check driver: one SAT query per property check, with wall-clock and
// solver statistics — these are what the Alg. 1 / Alg. 2 iteration reports
// and the reproduction benchmarks print.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "encode/miter.h"
#include "ipc/property.h"
#include "sat/snapshot.h"
#include "sat/verdict_cache.h"

namespace upec::ipc {

enum class CheckStatus : std::uint8_t {
  Holds,    // UNSAT: no behavior violates the property
  Violated, // SAT: a counterexample exists (model available in the solver)
  Unknown,  // resource budget exhausted
};

struct CheckResult {
  CheckStatus status = CheckStatus::Unknown;
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  // Unknown was caused by the wall-clock deadline (VerifyOptions::deadline_ms)
  // rather than a conflict budget — the distinction reports surface so a
  // budget-starved run and a time-starved run are tellable apart.
  bool timed_out = false;
};

// Creates an activation literal `act` with clause act -> OR(disjuncts):
// assuming `act` forces at least one disjunct, i.e. one property violation.
encode::Lit make_violation_any(encode::CnfBuilder& cnf,
                               const std::vector<encode::Lit>& disjuncts);

class Engine {
public:
  explicit Engine(sat::Solver& solver) : solver_(solver) {}

  // See make_violation_any (kept as a member for call-site convenience).
  encode::Lit violation_any(encode::CnfBuilder& cnf, const std::vector<encode::Lit>& disjuncts);

  CheckResult check(const BoundedProperty& property);

  // Pure assumption-based query (the incremental-sweep path: candidate
  // selection is entirely in the assumption set, nothing is encoded per
  // check). On Holds, `core_out` (if non-null) receives the refuting subset
  // of the assumptions (see Solver::conflict_assumptions) — on a
  // verdict-cache hit it is the stored core of the original refutation.
  CheckResult check_assumptions(const std::vector<encode::Lit>& assumptions,
                                std::vector<encode::Lit>* core_out = nullptr);

  // Consult `cache` before each solve, keyed on `store`'s current cursor.
  // UNSAT answers are inserted back. Both must outlive the engine; pass
  // nullptrs to disable. Sound because the main solver is tee-fed from the
  // same emission stream the store records, so its clause database *is* the
  // store prefix at the cursor taken at solve time.
  void set_verdict_cache(sat::VerdictCache* cache, const sat::CnfStore* store) {
    cache_ = cache;
    store_ = store;
  }

  std::uint64_t cache_hits() const { return cache_hits_; }
  std::uint64_t cache_misses() const { return cache_misses_; }

  sat::Solver& solver() { return solver_; }

private:
  sat::Solver& solver_;
  sat::VerdictCache* cache_ = nullptr;
  const sat::CnfStore* store_ = nullptr;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

} // namespace upec::ipc
