#include "ipc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <functional>

namespace upec::ipc {

CheckScheduler::CheckScheduler(sat::CnfStore& store, unsigned threads,
                               std::uint64_t conflict_budget, bool share_clauses)
    : store_(store), pool_(threads == 0 ? 1 : threads) {
  const unsigned n = threads == 0 ? 1 : threads;
  // A sharing channel needs at least two participants to be anything but
  // overhead (collect filters out a reader's own publishes).
  if (share_clauses && n > 1) channel_ = std::make_unique<sat::ClauseChannel>();
  backends_.reserve(n);
  for (unsigned i = 0; i < n; ++i) {
    backends_.push_back(std::make_unique<sat::InprocBackend>(conflict_budget, channel_.get(), i));
  }
}

std::vector<sat::SolverStats> CheckScheduler::worker_stats() const {
  std::vector<sat::SolverStats> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->stats());
  return out;
}

SweepResult CheckScheduler::sweep(encode::Miter& miter,
                                  const std::vector<encode::Lit>& assumptions,
                                  const std::vector<rtlir::StateVarId>& candidates,
                                  unsigned frame) {
  SweepResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned W = workers();
  std::vector<sat::SolverStats> before;
  before.reserve(W);
  for (const auto& b : backends_) before.push_back(b->stats());

  // Round-robin partition: chunk w owns every W-th candidate. Candidates
  // arrive in ascending StateVarId order (StateSet::to_vector), so chunks
  // stay balanced as S shrinks across iterations.
  std::vector<std::vector<rtlir::StateVarId>> remaining(W);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    remaining[i % W].push_back(candidates[i]);
  }
  std::vector<char> active(W, 0);
  for (unsigned w = 0; w < W; ++w) active[w] = remaining[w].empty() ? 0 : 1;

  bool unknown = false;
  auto any_active = [&] {
    return std::any_of(active.begin(), active.end(), [](char a) { return a != 0; });
  };

  while (!unknown && any_active()) {
    ++result.rounds;
    // Single-threaded encoding window: per-chunk activation literals for the
    // disjunction of the chunk's still-unresolved diff literals.
    std::vector<encode::Lit> act(W, encode::Lit::undef());
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      std::vector<encode::Lit> diffs;
      diffs.reserve(remaining[w].size());
      for (rtlir::StateVarId sv : remaining[w]) diffs.push_back(miter.diff_literal(sv, frame));
      act[w] = make_violation_any(miter.cnf(), diffs);
    }
    const sat::CnfSnapshot snap = store_.snapshot();

    // Fan out: worker w hydrates to the snapshot and solves its chunk.
    std::vector<sat::SolveStatus> status(W, sat::SolveStatus::Unsat);
    std::vector<std::function<void()>> tasks;
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      ++result.solve_calls;
      tasks.push_back([this, w, &snap, &assumptions, &act, &status] {
        backends_[w]->sync(snap);
        std::vector<encode::Lit> as = assumptions;
        as.push_back(act[w]);
        status[w] = backends_[w]->solve(as);
      });
    }
    pool_.run_all(std::move(tasks));

    // Deterministic merge, ascending worker index, after the barrier.
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      if (status[w] == sat::SolveStatus::Unknown) {
        unknown = true;
        continue;
      }
      if (status[w] == sat::SolveStatus::Unsat) {
        active[w] = 0;  // every variable left in this chunk is proven unable to differ
        continue;
      }
      std::vector<rtlir::StateVarId> newly;
      for (rtlir::StateVarId sv : remaining[w]) {
        if (miter.differs_in_model(*backends_[w], sv, frame)) newly.push_back(sv);
      }
      if (newly.empty()) {
        // Defensive: a satisfiable chunk whose model shows no difference means
        // the diff literals and the model disagree; treat as unknown.
        unknown = true;
        active[w] = 0;
        continue;
      }
      result.differing.insert(result.differing.end(), newly.begin(), newly.end());
      std::erase_if(remaining[w], [&](rtlir::StateVarId sv) {
        return std::find(newly.begin(), newly.end(), sv) != newly.end();
      });
      if (remaining[w].empty()) active[w] = 0;
    }

    // Retire this round's activation literals: each guards exactly one
    // batch's disjunction, so pin ~act as a root unit in the shared store
    // (and, through the tee, the main solver). BCP then treats the retired
    // disjunction clause as satisfied everywhere it was hydrated instead of
    // re-scanning a dead clause forever; store growth per round stays O(W).
    // Safe here: workers are idle after the barrier, and their models were
    // already harvested above (model reads never touch the trail).
    for (unsigned w = 0; w < W; ++w) {
      if (act[w] != encode::Lit::undef()) {
        miter.cnf().add_clause(std::vector<encode::Lit>{~act[w]});
      }
    }
  }

  std::sort(result.differing.begin(), result.differing.end());
  result.imported_per_worker.resize(W, 0);
  for (unsigned w = 0; w < W; ++w) {
    const sat::SolverStats delta = backends_[w]->stats() - before[w];
    result.conflicts += delta.conflicts;
    result.decisions += delta.decisions;
    result.propagations += delta.propagations;
    result.exported += delta.exported_clauses;
    result.imported += delta.imported_clauses;
    result.imported_per_worker[w] = delta.imported_clauses;
  }
  result.status = unknown ? CheckStatus::Unknown
                  : result.differing.empty() ? CheckStatus::Holds
                                             : CheckStatus::Violated;
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return result;
}

} // namespace upec::ipc
