#include "ipc/scheduler.h"

#include <algorithm>
#include <chrono>
#include <functional>

#include "sat/portfolio.h"
#include "util/trace.h"

namespace upec::ipc {

CheckScheduler::CheckScheduler(sat::CnfStore& store, SchedulerOptions options)
    : store_(store), options_(std::move(options)), pool_(options_.threads == 0 ? 1 : options_.threads) {
  const unsigned n = options_.threads == 0 ? 1 : options_.threads;
  const unsigned members = options_.portfolio == 0 ? 1 : options_.portfolio;
  const bool external = !options_.external_argv.empty();
  // Channel ids must be globally unique across every solver on the channel,
  // so worker w's participants live at stride * w (the plain 1-member,
  // no-external case degenerates to id == w, exactly the pre-portfolio ids).
  const unsigned stride = members + (external ? 1u : 0u);
  // A sharing channel needs at least two participants to be anything but
  // overhead (collect filters out a reader's own publishes).
  if (options_.share_clauses && n * stride > 1) channel_ = std::make_unique<sat::ClauseChannel>();

  sat::PipeOptions pipe;
  pipe.argv = options_.external_argv;
  pipe.solve_deadline_ms = options_.external_deadline_ms;

  backends_.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    std::unique_ptr<sat::SolverBackend> backend;
    if (members > 1) {
      sat::PortfolioOptions po;
      po.members = members;
      po.conflict_budget = options_.conflict_budget;
      po.seed = options_.portfolio_seed + w;  // distinct diversity stream per worker
      po.external = external;
      po.pipe = pipe;
      po.supervise = options_.supervise;
      auto p = std::make_unique<sat::PortfolioBackend>(po, channel_.get(), w * stride);
      p->set_verdict_cache(options_.verdict_cache);
      backend = std::move(p);
    } else if (external) {
      auto s = std::make_unique<sat::SupervisedBackend>(pipe, options_.supervise,
                                                        options_.conflict_budget, channel_.get(),
                                                        w * stride);
      s->set_verdict_cache(options_.verdict_cache);
      backend = std::move(s);
    } else {
      auto b = std::make_unique<sat::InprocBackend>(options_.conflict_budget, channel_.get(), w);
      b->set_verdict_cache(options_.verdict_cache);
      backend = std::move(b);
    }
    if (options_.deadline) backend->set_deadline(*options_.deadline);
    if (options_.progress_every != 0 && options_.progress) {
      backend->set_progress(
          [cb = options_.progress, w](const sat::SolverProgress& p) { cb(w, p); },
          options_.progress_every);
    }
    backends_.push_back(std::move(backend));
  }

  // Preprocessing needs the frozen-variable contract (see SchedulerOptions)
  // and only pays off on the incremental path, where one snapshot serves the
  // whole sweep and generations persist across iterations.
  if (options_.preprocess && options_.incremental && options_.frozen_vars) {
    simplifier_ = std::make_unique<sat::Simplifier>(options_.simplify);
  }
}

std::vector<sat::SolverStats> CheckScheduler::worker_stats() const {
  std::vector<sat::SolverStats> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->stats());
  return out;
}

std::vector<std::vector<sat::SolverStats>> CheckScheduler::worker_member_stats() const {
  std::vector<std::vector<sat::SolverStats>> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->member_stats());
  return out;
}

std::vector<std::uint64_t> CheckScheduler::worker_cache_hits() const {
  std::vector<std::uint64_t> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->cache_hits());
  return out;
}

std::vector<std::size_t> CheckScheduler::worker_live_learnts() const {
  std::vector<std::size_t> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->live_learnts());
  return out;
}

std::vector<sat::BackendHealth> CheckScheduler::worker_health() const {
  std::vector<sat::BackendHealth> out;
  out.reserve(backends_.size());
  for (const auto& b : backends_) out.push_back(b->health());
  return out;
}

SweepResult CheckScheduler::sweep(encode::Miter& miter,
                                  const std::vector<encode::Lit>& assumptions,
                                  const std::vector<rtlir::StateVarId>& candidates,
                                  unsigned frame) {
  return options_.incremental ? sweep_incremental(miter, assumptions, candidates, frame)
                              : sweep_legacy(miter, assumptions, candidates, frame);
}

void CheckScheduler::finalize(SweepResult& result, const std::vector<sat::SolverStats>& before,
                              const std::vector<std::uint64_t>& cache_hits_before,
                              const std::vector<std::uint64_t>& cache_misses_before, bool unknown,
                              std::chrono::steady_clock::time_point t0) const {
  const unsigned W = workers();
  std::sort(result.differing.begin(), result.differing.end());
  result.imported_per_worker.resize(W, 0);
  for (unsigned w = 0; w < W; ++w) {
    const sat::SolverStats delta = backends_[w]->stats() - before[w];
    result.conflicts += delta.conflicts;
    result.decisions += delta.decisions;
    result.propagations += delta.propagations;
    result.exported += delta.exported_clauses;
    result.imported += delta.imported_clauses;
    result.imported_per_worker[w] = delta.imported_clauses;
    result.cache_hits += backends_[w]->cache_hits() - cache_hits_before[w];
    result.cache_misses += backends_[w]->cache_misses() - cache_misses_before[w];
    result.retained_learnts += backends_[w]->live_learnts();
  }
  result.status = unknown ? CheckStatus::Unknown
                  : result.differing.empty() ? CheckStatus::Holds
                                             : CheckStatus::Violated;
  result.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

SweepResult CheckScheduler::sweep_incremental(encode::Miter& miter,
                                              const std::vector<encode::Lit>& assumptions,
                                              const std::vector<rtlir::StateVarId>& candidates,
                                              unsigned frame) {
  util::trace::Span span("scheduler.sweep", "ipc");
  span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));
  span.arg("workers", std::uint64_t{workers()});
  span.arg("frame", std::uint64_t{frame});
  SweepResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned W = workers();
  std::vector<sat::SolverStats> before;
  std::vector<std::uint64_t> ch_before, cm_before;
  before.reserve(W);
  for (const auto& b : backends_) {
    before.push_back(b->stats());
    ch_before.push_back(b->cache_hits());
    cm_before.push_back(b->cache_misses());
  }

  // Single batch registration on the calling thread: one CNF emission
  // regardless of worker count, so the clause stream (and every snapshot
  // cursor) is identical across thread counts. After the first sweep over
  // these candidates this is a no-op and the store does not grow at all.
  miter.register_candidates(candidates, frame);
  const sat::CnfSnapshot snap = store_.snapshot();

  // Preprocess the sweep snapshot on the calling thread: one simplification
  // (or a generation-cache hit) serves every worker below. The frozen set is
  // the encode/upec layers' declaration plus this sweep's own assumption
  // variables — everything a worker will assume or read back. Activation and
  // diff literals are covered by the provider (Miter::frozen_vars).
  sat::CnfSnapshot view = snap;
  if (simplifier_ != nullptr) {
    std::vector<sat::Var> frozen = options_.frozen_vars();
    frozen.reserve(frozen.size() + assumptions.size());
    for (encode::Lit l : assumptions) frozen.push_back(l.var());
    view = simplifier_->simplify(snap, frozen);
  }

  // Round-robin partition: chunk w owns every W-th candidate. Candidates
  // arrive in ascending StateVarId order (StateSet::to_vector), so chunks
  // stay balanced as S shrinks across iterations. Activation and diff
  // literals are looked up here, on the calling thread — registration above
  // made both pure map reads — so workers never touch the miter at all.
  struct Candidate {
    rtlir::StateVarId sv;
    encode::Lit activation;
    encode::Lit diff;
  };
  std::vector<std::vector<Candidate>> chunk(W);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const rtlir::StateVarId sv = candidates[i];
    chunk[i % W].push_back(
        Candidate{sv, miter.activation_literal(sv, frame), miter.diff_literal(sv, frame)});
  }

  // One task per worker, one barrier: each worker scans its chunk one
  // candidate per solve, assuming that candidate's activation literal true
  // (the query is exactly "diff(sv) satisfiable"). A model retires every
  // still-unresolved chunk member it proves differing; an UNSAT answer
  // retires the candidate with a per-candidate refutation core. The chunk
  // partition only decides which queries get asked — each candidate is
  // either individually proven differing (its diff literal true in some
  // model) or individually refuted — so the merged frontier is the semantic
  // set {sv : diff(sv) satisfiable} regardless of W or model order.
  std::vector<std::vector<rtlir::StateVarId>> differing(W);
  std::vector<std::vector<SweepResult::UnsatGroup>> groups(W);
  std::vector<std::uint64_t> solves(W, 0);
  std::vector<char> chunk_unknown(W, 0);
  std::vector<char> chunk_timeout(W, 0);
  std::vector<std::function<void()>> tasks;
  for (unsigned w = 0; w < W; ++w) {
    if (chunk[w].empty()) continue;
    tasks.push_back([this, w, &view, &assumptions, &chunk, &differing, &groups, &solves,
                     &chunk_unknown, &chunk_timeout] {
      sat::SolverBackend& backend = *backends_[w];
      backend.sync(view);
      const std::vector<Candidate>& mine = chunk[w];
      std::vector<char> resolved(mine.size(), 0);
      for (std::size_t i = 0; i < mine.size(); ++i) {
        if (resolved[i]) continue;
        std::vector<encode::Lit> as = assumptions;
        as.push_back(mine[i].activation);
        ++solves[w];
        const sat::SolveStatus status = backend.solve(as);
        if (status == sat::SolveStatus::Unknown) {
          chunk_unknown[w] = 1;
          chunk_timeout[w] = backend.last_timed_out() ? 1 : 0;
          return;
        }
        if (status == sat::SolveStatus::Unsat) {
          resolved[i] = 1;
          groups[w].push_back(SweepResult::UnsatGroup{{mine[i].sv}, backend.unsat_core()});
          continue;
        }
        bool harvested = false;
        for (std::size_t j = 0; j < mine.size(); ++j) {
          if (resolved[j] || !backend.model_value(mine[j].diff)) continue;
          resolved[j] = 1;
          differing[w].push_back(mine[j].sv);
          harvested = true;
        }
        if (!harvested) {
          // The query assumed diff(mine[i].sv) true; a model showing no
          // difference means the diff literals and the model disagree.
          chunk_unknown[w] = 1;
          return;
        }
      }
    });
  }
  pool_.run_all(std::move(tasks));

  // Deterministic merge, ascending worker index, after the barrier.
  bool unknown = false;
  for (unsigned w = 0; w < W; ++w) {
    result.solve_calls += solves[w];
    if (chunk_unknown[w]) unknown = true;
    if (chunk_timeout[w]) result.timed_out = true;
    result.differing.insert(result.differing.end(), differing[w].begin(), differing[w].end());
    for (auto& g : groups[w]) result.unsat_groups.push_back(std::move(g));
  }

  finalize(result, before, ch_before, cm_before, unknown, t0);
  if (simplifier_ != nullptr) result.simplify = simplifier_->stats();
  return result;
}

SweepResult CheckScheduler::sweep_legacy(encode::Miter& miter,
                                         const std::vector<encode::Lit>& assumptions,
                                         const std::vector<rtlir::StateVarId>& candidates,
                                         unsigned frame) {
  util::trace::Span span("scheduler.sweep_legacy", "ipc");
  span.arg("candidates", static_cast<std::uint64_t>(candidates.size()));
  span.arg("workers", std::uint64_t{workers()});
  SweepResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const unsigned W = workers();
  std::vector<sat::SolverStats> before;
  std::vector<std::uint64_t> ch_before, cm_before;
  before.reserve(W);
  for (const auto& b : backends_) {
    before.push_back(b->stats());
    ch_before.push_back(b->cache_hits());
    cm_before.push_back(b->cache_misses());
  }

  // Round-robin partition: chunk w owns every W-th candidate. Candidates
  // arrive in ascending StateVarId order (StateSet::to_vector), so chunks
  // stay balanced as S shrinks across iterations.
  std::vector<std::vector<rtlir::StateVarId>> remaining(W);
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    remaining[i % W].push_back(candidates[i]);
  }
  std::vector<char> active(W, 0);
  for (unsigned w = 0; w < W; ++w) active[w] = remaining[w].empty() ? 0 : 1;

  bool unknown = false;
  auto any_active = [&] {
    return std::any_of(active.begin(), active.end(), [](char a) { return a != 0; });
  };

  while (!unknown && any_active()) {
    util::trace::Span round_span("scheduler.round", "ipc");
    round_span.arg("round", std::uint64_t{result.rounds});
    ++result.rounds;
    // Single-threaded encoding window: per-chunk activation literals for the
    // disjunction of the chunk's still-unresolved diff literals.
    std::vector<encode::Lit> act(W, encode::Lit::undef());
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      std::vector<encode::Lit> diffs;
      diffs.reserve(remaining[w].size());
      for (rtlir::StateVarId sv : remaining[w]) diffs.push_back(miter.diff_literal(sv, frame));
      act[w] = make_violation_any(miter.cnf(), diffs);
    }
    const sat::CnfSnapshot snap = store_.snapshot();

    // Fan out: worker w hydrates to the snapshot and solves its chunk.
    std::vector<sat::SolveStatus> status(W, sat::SolveStatus::Unsat);
    std::vector<std::function<void()>> tasks;
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      ++result.solve_calls;
      tasks.push_back([this, w, &snap, &assumptions, &act, &status] {
        backends_[w]->sync(snap);
        std::vector<encode::Lit> as = assumptions;
        as.push_back(act[w]);
        status[w] = backends_[w]->solve(as);
      });
    }
    pool_.run_all(std::move(tasks));

    // Deterministic merge, ascending worker index, after the barrier.
    for (unsigned w = 0; w < W; ++w) {
      if (!active[w]) continue;
      if (status[w] == sat::SolveStatus::Unknown) {
        unknown = true;
        if (backends_[w]->last_timed_out()) result.timed_out = true;
        continue;
      }
      if (status[w] == sat::SolveStatus::Unsat) {
        active[w] = 0;  // every variable left in this chunk is proven unable to differ
        continue;
      }
      std::vector<rtlir::StateVarId> newly;
      for (rtlir::StateVarId sv : remaining[w]) {
        if (miter.differs_in_model(*backends_[w], sv, frame)) newly.push_back(sv);
      }
      if (newly.empty()) {
        // Defensive: a satisfiable chunk whose model shows no difference means
        // the diff literals and the model disagree; treat as unknown.
        unknown = true;
        active[w] = 0;
        continue;
      }
      result.differing.insert(result.differing.end(), newly.begin(), newly.end());
      std::erase_if(remaining[w], [&](rtlir::StateVarId sv) {
        return std::find(newly.begin(), newly.end(), sv) != newly.end();
      });
      if (remaining[w].empty()) active[w] = 0;
    }

    // Retire this round's activation literals: each guards exactly one
    // batch's disjunction, so pin ~act as a root unit in the shared store
    // (and, through the tee, the main solver). BCP then treats the retired
    // disjunction clause as satisfied everywhere it was hydrated instead of
    // re-scanning a dead clause forever; store growth per round stays O(W).
    // Safe here: workers are idle after the barrier, and their models were
    // already harvested above (model reads never touch the trail).
    for (unsigned w = 0; w < W; ++w) {
      if (act[w] != encode::Lit::undef()) {
        miter.cnf().add_clause(std::vector<encode::Lit>{~act[w]});
      }
    }
  }

  finalize(result, before, ch_before, cm_before, unknown, t0);
  return result;
}

} // namespace upec::ipc
