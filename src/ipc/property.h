// Bounded property representation for Interval Property Checking.
//
// A property instance is: a set of assumption literals (activated macros —
// state equivalence, victim constraints, invariants), plus one violation
// activation literal whose clause enumerates the ways the prove-part can
// fail. check() is SAT on   assumptions ∧ violation   — UNSAT means the
// property holds for the given window.
#pragma once

#include <string>
#include <vector>

#include "encode/cnf.h"

namespace upec::ipc {

struct BoundedProperty {
  std::string name;
  unsigned window = 1; // number of transitions covered (t .. t+window)
  std::vector<encode::Lit> assumptions;
  encode::Lit violation; // activation literal; undef-free: lit_false = no violation part
};

} // namespace upec::ipc
