#include "ipc/engine.h"

namespace upec::ipc {

encode::Lit make_violation_any(encode::CnfBuilder& cnf,
                               const std::vector<encode::Lit>& disjuncts) {
  const encode::Lit act = cnf.fresh();
  std::vector<encode::Lit> clause;
  clause.reserve(disjuncts.size() + 1);
  clause.push_back(~act);
  for (encode::Lit d : disjuncts) clause.push_back(d);
  cnf.add_clause(clause);
  return act;
}

encode::Lit Engine::violation_any(encode::CnfBuilder& cnf,
                                  const std::vector<encode::Lit>& disjuncts) {
  return make_violation_any(cnf, disjuncts);
}

CheckResult Engine::check(const BoundedProperty& property) {
  CheckResult result;
  const sat::SolverStats before = solver_.stats();
  const auto t0 = std::chrono::steady_clock::now();

  std::vector<encode::Lit> assumptions = property.assumptions;
  assumptions.push_back(property.violation);

  bool sat_result = false;
  bool interrupted = false;
  try {
    sat_result = solver_.solve(assumptions);
  } catch (const sat::SolverInterrupted&) {
    interrupted = true;
  }

  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  const sat::SolverStats after = solver_.stats();
  result.conflicts = after.conflicts - before.conflicts;
  result.decisions = after.decisions - before.decisions;
  result.propagations = after.propagations - before.propagations;
  result.status = interrupted ? CheckStatus::Unknown
                  : sat_result ? CheckStatus::Violated
                               : CheckStatus::Holds;
  return result;
}

} // namespace upec::ipc
