#include "ipc/engine.h"

#include "util/trace.h"

namespace upec::ipc {

encode::Lit make_violation_any(encode::CnfBuilder& cnf,
                               const std::vector<encode::Lit>& disjuncts) {
  const encode::Lit act = cnf.fresh();
  std::vector<encode::Lit> clause;
  clause.reserve(disjuncts.size() + 1);
  clause.push_back(~act);
  for (encode::Lit d : disjuncts) clause.push_back(d);
  cnf.add_clause(clause);
  return act;
}

encode::Lit Engine::violation_any(encode::CnfBuilder& cnf,
                                  const std::vector<encode::Lit>& disjuncts) {
  return make_violation_any(cnf, disjuncts);
}

CheckResult Engine::check(const BoundedProperty& property) {
  std::vector<encode::Lit> assumptions = property.assumptions;
  assumptions.push_back(property.violation);
  return check_assumptions(assumptions);
}

CheckResult Engine::check_assumptions(const std::vector<encode::Lit>& assumptions,
                                      std::vector<encode::Lit>* core_out) {
  util::trace::Span span("solve.main", "solve");
  span.arg("assumptions", static_cast<std::uint64_t>(assumptions.size()));
  CheckResult result;
  if (core_out != nullptr) core_out->clear();

  const bool cached = cache_ != nullptr && store_ != nullptr;
  sat::CnfSnapshot::Cursor cursor;
  if (cached) {
    cursor = sat::CnfSnapshot::Cursor{store_->num_vars(), store_->num_clauses()};
    if (cache_->lookup_unsat(store_->id(), cursor, assumptions, core_out)) {
      ++cache_hits_;
      result.status = CheckStatus::Holds;
      return result;
    }
    ++cache_misses_;
  }

  const sat::SolverStats before = solver_.stats();
  const auto t0 = std::chrono::steady_clock::now();

  bool sat_result = false;
  bool interrupted = false;
  try {
    sat_result = solver_.solve(assumptions);
  } catch (const sat::SolverInterrupted& e) {
    interrupted = true;
    result.timed_out = e.reason == sat::SolverInterrupted::Reason::Deadline;
  }

  const auto t1 = std::chrono::steady_clock::now();
  result.seconds = std::chrono::duration<double>(t1 - t0).count();
  const sat::SolverStats after = solver_.stats();
  result.conflicts = after.conflicts - before.conflicts;
  result.decisions = after.decisions - before.decisions;
  result.propagations = after.propagations - before.propagations;
  result.status = interrupted ? CheckStatus::Unknown
                  : sat_result ? CheckStatus::Violated
                               : CheckStatus::Holds;

  if (result.status == CheckStatus::Holds) {
    const std::vector<encode::Lit>& core = solver_.conflict_assumptions();
    if (cached) cache_->insert_unsat(store_->id(), cursor, assumptions, core);
    if (core_out != nullptr) *core_out = core;
  }
  return result;
}

} // namespace upec::ipc
