#include "ipc/cex.h"

#include <iomanip>
#include <sstream>

namespace upec::ipc {

bool SignalTrace::diverges() const {
  for (std::size_t i = 0; i < inst_a.size(); ++i) {
    if (inst_a[i] != inst_b[i]) return true;
  }
  return false;
}

std::string Waveform::pretty(bool only_diverging) const {
  std::ostringstream os;
  std::size_t name_w = 8;
  for (const auto& s : signals) name_w = std::max(name_w, s.name.size());

  os << std::left << std::setw(static_cast<int>(name_w + 2)) << "signal";
  for (unsigned f = 0; f <= frames; ++f) os << std::setw(20) << ("t+" + std::to_string(f));
  os << "\n";
  for (const auto& s : signals) {
    if (only_diverging && !s.diverges()) continue;
    os << std::left << std::setw(static_cast<int>(name_w + 2)) << s.name;
    for (std::size_t f = 0; f < s.inst_a.size(); ++f) {
      std::ostringstream cell;
      cell << std::hex << s.inst_a[f];
      if (s.inst_a[f] != s.inst_b[f]) cell << "/" << std::hex << s.inst_b[f] << "*";
      os << std::setw(20) << cell.str();
    }
    os << "\n";
  }
  return os.str();
}

Waveform extract_waveform(encode::Miter& miter, unsigned k,
                          const std::vector<std::string>& output_probes,
                          const std::vector<rtlir::StateVarId>& state_vars) {
  Waveform wf;
  wf.frames = k;
  const rtlir::Design& design = miter.inst_a().design();

  for (const std::string& probe : output_probes) {
    const rtlir::NetId net = design.find_output(probe);
    if (net == rtlir::kNullNet) continue;
    SignalTrace tr;
    tr.name = probe;
    tr.width = design.width(net);
    for (unsigned f = 0; f <= k; ++f) {
      tr.inst_a.push_back(miter.model_value(miter.inst_a().net_at(f, net)));
      tr.inst_b.push_back(miter.model_value(miter.inst_b().net_at(f, net)));
    }
    wf.signals.push_back(std::move(tr));
  }
  const rtlir::StateVarTable& svt = miter.state_vars();
  for (rtlir::StateVarId sv : state_vars) {
    SignalTrace tr;
    tr.name = svt.name(sv);
    tr.width = svt.width(sv);
    for (unsigned f = 0; f <= k; ++f) {
      tr.inst_a.push_back(miter.model_value(miter.inst_a().state_at(f, sv)));
      tr.inst_b.push_back(miter.model_value(miter.inst_b().state_at(f, sv)));
    }
    wf.signals.push_back(std::move(tr));
  }
  return wf;
}

} // namespace upec::ipc
