// Counterexample waveforms.
//
// Sec 3.5 of the paper motivates unrolled properties by the need for
// *explicit* counterexamples: two-cycle counterexamples hide the interesting
// behavior inside the symbolic starting state. This module extracts, from a
// satisfying assignment of the miter, the concrete values of selected signals
// in both instances across all unrolled frames, producing the side-by-side
// trace a verification engineer debugs with.
#pragma once

#include <string>
#include <vector>

#include "encode/miter.h"

namespace upec::ipc {

struct SignalTrace {
  std::string name;
  unsigned width = 1;
  std::vector<std::uint64_t> inst_a; // value per frame
  std::vector<std::uint64_t> inst_b;
  bool diverges() const;
};

struct Waveform {
  unsigned frames = 0;
  std::vector<SignalTrace> signals;

  // Render as an aligned text table; diverging values are marked with '*'.
  std::string pretty(bool only_diverging = false) const;
};

// Extracts named design outputs (probes) plus the given state variables over
// frames 0..k. Must be called while the solver still holds a model.
Waveform extract_waveform(encode::Miter& miter, unsigned k,
                          const std::vector<std::string>& output_probes,
                          const std::vector<rtlir::StateVarId>& state_vars);

} // namespace upec::ipc
