#include "ipc/property.h"

// BoundedProperty is a plain value type; logic lives in ipc::Engine.
