// Reachability invariants for the symbolic starting state.
//
// IPC properties start from a fully symbolic state and can therefore produce
// false counterexamples rooted in unreachable states (Sec 3.4). Invariants
// prune those: each is a predicate over one instance's state at one frame,
// assumed for both miter instances at frame 0. The module also provides the
// inductiveness check (base from reset + step) so that assumed invariants can
// be discharged rather than trusted, and a simulation-guided miner for
// candidate invariants.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "encode/miter.h"

namespace upec::ipc {

// Builds the invariant predicate over a single instance at a given frame.
using InvariantBuilder =
    std::function<encode::Lit(encode::CnfBuilder&, encode::UnrolledInstance&, unsigned frame)>;

struct Invariant {
  std::string name;
  // State predicate: must hold in reset and be preserved by every step.
  InvariantBuilder build;
  // Optional environment constraint on the inputs of a frame (e.g. firmware
  // write-legality): assumed during the step proof, never proved.
  InvariantBuilder constrain;
};

// Assumption literals enforcing each invariant on both instances at frame 0.
std::vector<encode::Lit> assume_invariants(encode::Miter& miter,
                                           const std::vector<Invariant>& invariants);

// Checks that `inv` is inductive on the design: (a) it holds in the reset
// state, (b) if it holds at t it holds at t+1 for arbitrary inputs. Uses a
// fresh single-instance encoding. Returns an empty string on success or a
// failure description.
std::string check_inductive(const rtlir::Design& design, const rtlir::StateVarTable& svt,
                            const Invariant& inv);

} // namespace upec::ipc
