// CheckScheduler: fans the independent SAT queries of the Alg. 1 / Alg. 2
// loops across a pool of worker solvers.
//
// One UPEC iteration asks, for every state variable sv still in S: "can sv
// differ at the target frame, given the equivalence assumptions?". These
// queries share the entire transition-relation CNF and differ only in their
// assumption sets, so the scheduler keeps W worker solvers hydrated from the
// shared CnfStore and partitions the candidate variables round-robin into W
// chunks, one per worker. Each worker resolves every candidate in its chunk
// entirely on its own solver, keeping learned clauses across solves and
// iterations.
//
// Two sweep disciplines:
//
//  * Incremental (default): every candidate has a persistent activation
//    literal registered once in the miter (Miter::register_candidates), and
//    the worker scans its chunk one candidate per solve, assuming that
//    candidate's activation literal true — the query is exactly "diff(sv)
//    satisfiable". A model retires every still-unresolved chunk member it
//    proves differing (same saturation harvest as before); an UNSAT answer
//    retires the candidate with a per-candidate assumption core, surfaced in
//    SweepResult::unsat_groups for frontier pruning. The store never grows
//    during a sweep, one snapshot serves the whole batch, nothing a worker
//    learned is ever invalidated, and a shared VerdictCache short-circuits
//    repeated UNSAT queries outright. Per-candidate cores mention only the
//    eq assumptions that one refutation needs, so they survive frontier
//    shrinking far better than a whole-chunk disjunction core would.
//
//  * Legacy (SchedulerOptions::incremental = false): each round encodes a
//    fresh activation literal guarding the chunk's diff disjunction, solves,
//    harvests, shrinks, and retires the literal with a root unit afterwards.
//    Kept as the re-encode baseline for bench_sweep_incremental.
//
// Determinism: the set a chunk reports is {sv in chunk : diff(sv) satisfiable},
// which is a purely semantic property — independent of which models the
// worker's CDCL search happens to find, of thread scheduling, and of the
// number of workers. The merged, sorted union is therefore bit-identical to
// the single-solver saturation result for any thread count.
//
// Concurrency protocol: the encoder (diff/activation literals) runs only on
// the calling thread between batches; workers only read the store (hydration)
// and their own solver. Worker models and statistics are read back on the
// calling thread strictly after the batch barrier.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "encode/miter.h"
#include "ipc/engine.h"
#include "sat/backend.h"
#include "sat/pipe_backend.h"
#include "sat/simplify.h"
#include "sat/supervise.h"
#include "util/thread_pool.h"

namespace upec::ipc {

struct SweepResult {
  // Violated iff at least one candidate can differ; Unknown if any worker
  // exhausted its budget (the differing list is then a lower bound).
  CheckStatus status = CheckStatus::Holds;
  std::vector<rtlir::StateVarId> differing;  // sorted ascending
  double seconds = 0.0;                      // wall clock for the whole sweep
  std::uint64_t conflicts = 0;               // summed over workers
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  // Learned-clause sharing traffic during this sweep (zero with sharing off).
  std::uint64_t exported = 0;                   // summed over workers
  std::uint64_t imported = 0;                   // summed over workers
  std::vector<std::uint64_t> imported_per_worker;  // one entry per worker
  std::size_t solve_calls = 0;
  unsigned rounds = 0;  // barrier rounds (legacy path; the incremental batch has one barrier)

  // Refutations (incremental path only): one entry per candidate proven
  // unable to differ, carrying the assumption core of that refutation. The
  // upec layer mines these for UNSAT-core frontier pruning (see
  // upec/incremental.h).
  struct UnsatGroup {
    std::vector<rtlir::StateVarId> enabled;  // candidates enabled in the refuted query
    std::vector<sat::Lit> core;              // refuting subset of the assumptions
  };
  std::vector<UnsatGroup> unsat_groups;

  // Verdict-cache traffic during this sweep (zero with the cache off) and
  // the workers' combined live learnt-clause databases at sweep end — the
  // clauses the incremental path retains across rounds and iterations.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::size_t retained_learnts = 0;

  // An Unknown status was (at least in part) a wall-clock hit: some worker's
  // backend reported last_timed_out() for the solve that went Unknown.
  bool timed_out = false;

  // Cumulative snapshot-preprocessing counters at sweep end (all zero when
  // preprocessing is off; see SchedulerOptions::preprocess).
  sat::SimplifyStats simplify;
};

struct SchedulerOptions {
  unsigned threads = 1;
  std::uint64_t conflict_budget = 0;  // per solve call; 0 = unlimited
  // Workers exchange low-LBD learnt clauses through a ClauseChannel (PR 3).
  bool share_clauses = true;
  // Persistent-activation sweeps: candidates are registered once in the
  // miter and each solve activates one candidate purely through assumptions,
  // so the store never grows mid-sweep and workers keep their learnt
  // databases valid across solves *and* iterations. Off = legacy per-round
  // activation literals with root-unit retirement (kept for the A/B
  // benchmark).
  bool incremental = true;
  // Shared verdict cache consulted by every worker before solving (nullptr
  // disables). Must outlive the scheduler.
  sat::VerdictCache* verdict_cache = nullptr;
  // Portfolio racing: each worker becomes `portfolio` diversified in-proc
  // solvers racing every query, first definitive answer wins, losers are
  // cancelled (sat/portfolio.h). 1 (default) = plain single-solver workers.
  // Members share clauses through the same channel as the workers, with
  // globally unique ids (worker * stride + member).
  unsigned portfolio = 1;
  std::uint64_t portfolio_seed = 0x5eedULL;
  // External DIMACS solver command (empty = in-proc only). Each worker gets a
  // SupervisedBackend around this command — retry, quarantine, degrade-to-
  // in-proc (sat/supervise.h) — or, combined with portfolio > 1, one
  // supervised external member racing alongside the in-proc members.
  std::vector<std::string> external_argv;
  std::uint32_t external_deadline_ms = 10'000;  // per external solve
  sat::SuperviseOptions supervise;
  // Absolute wall-clock deadline for the whole run; backends answer Unknown
  // (timed_out) past it.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  // Snapshot preprocessing (sat/simplify.h) for the incremental sweep path:
  // the sweep snapshot is simplified once on the calling thread — subsumption,
  // bounded variable elimination, failed-literal probing — and every worker
  // hydrates from the simplified generation instead of the raw store. Takes
  // effect only when `frozen_vars` is installed: the provider names every
  // variable the sweeps will assume or read back from worker models (the
  // Simplifier soundness contract), so preprocessing without one would be
  // unsound and is treated as disabled. The legacy path grows the store every
  // round and is never preprocessed.
  bool preprocess = true;
  sat::SimplifyOptions simplify;
  // Frozen-variable provider, called on the calling thread before each
  // fan-out. The sweep's own assumption variables are appended automatically,
  // so the provider only covers what the encode/upec layers know about
  // (Miter::frozen_vars / UpecContext::frozen_vars).
  std::function<std::vector<sat::Var>()> frozen_vars;
  // Progress heartbeat: every `progress_every` conflicts each worker's
  // in-proc solver(s) invoke `progress` with the worker index. The callback
  // fires on worker (and portfolio racer) threads concurrently — it must be
  // thread-safe. 0 disables. Purely observational (Solver::SolverProgress).
  std::uint64_t progress_every = 0;
  std::function<void(unsigned worker, const sat::SolverProgress&)> progress;
};

class CheckScheduler {
public:
  // `options.threads` worker solvers, each with the given per-solve conflict
  // budget. With sharing (and more than one worker), the workers exchange
  // low-LBD learnt clauses through a ClauseChannel: exported at learn time,
  // imported only at each worker's restart boundaries. Sharing only adds
  // clauses already implied by the shared store, so it changes how fast a
  // chunk's verdict is reached, never which verdict — the determinism
  // contract below is unaffected (pinned by test_determinism with sharing on
  // and off).
  CheckScheduler(sat::CnfStore& store, SchedulerOptions options);

  unsigned workers() const { return static_cast<unsigned>(backends_.size()); }

  // Total clauses published into the sharing channel (0 when sharing is off).
  std::size_t shared_clauses() const { return channel_ ? channel_->published() : 0; }

  // Finds every candidate whose diff literal at `frame` is satisfiable under
  // `assumptions`. Encodes missing diff/activation literals through
  // `miter.cnf()` on the calling thread.
  SweepResult sweep(encode::Miter& miter, const std::vector<encode::Lit>& assumptions,
                    const std::vector<rtlir::StateVarId>& candidates, unsigned frame);

  // Cumulative per-worker statistics (for report breakdowns).
  std::vector<sat::SolverStats> worker_stats() const;
  // Per-worker member breakdown: worker w's entry lists one SolverStats per
  // portfolio participant, summing exactly to worker_stats()[w]; empty for
  // single-solver workers (see SolverBackend::member_stats).
  std::vector<std::vector<sat::SolverStats>> worker_member_stats() const;
  std::vector<std::uint64_t> worker_cache_hits() const;
  std::vector<std::size_t> worker_live_learnts() const;
  // Per-worker robustness counters (all-zero entries for plain in-proc
  // workers; populated under portfolio/external backends).
  std::vector<sat::BackendHealth> worker_health() const;

  // The worker backends (tests inspect portfolio/supervised internals).
  sat::SolverBackend& backend(unsigned w) { return *backends_[w]; }

  // True iff snapshot preprocessing is active for incremental sweeps.
  bool preprocessing() const { return simplifier_ != nullptr; }
  // Cumulative preprocessing counters (all zero when preprocessing is off).
  sat::SimplifyStats simplify_stats() const {
    return simplifier_ ? simplifier_->stats() : sat::SimplifyStats{};
  }

private:
  SweepResult sweep_incremental(encode::Miter& miter,
                                const std::vector<encode::Lit>& assumptions,
                                const std::vector<rtlir::StateVarId>& candidates, unsigned frame);
  SweepResult sweep_legacy(encode::Miter& miter, const std::vector<encode::Lit>& assumptions,
                           const std::vector<rtlir::StateVarId>& candidates, unsigned frame);
  void finalize(SweepResult& result, const std::vector<sat::SolverStats>& before,
                const std::vector<std::uint64_t>& cache_hits_before,
                const std::vector<std::uint64_t>& cache_misses_before, bool unknown,
                std::chrono::steady_clock::time_point t0) const;

  sat::CnfStore& store_;
  SchedulerOptions options_;
  util::ThreadPool pool_;
  std::unique_ptr<sat::ClauseChannel> channel_;  // non-null iff sharing enabled
  std::vector<std::unique_ptr<sat::SolverBackend>> backends_;
  std::unique_ptr<sat::Simplifier> simplifier_;  // non-null iff preprocessing enabled
};

} // namespace upec::ipc
