// CheckScheduler: fans the independent SAT queries of the Alg. 1 / Alg. 2
// loops across a pool of worker solvers.
//
// One UPEC iteration asks, for every state variable sv still in S: "can sv
// differ at the target frame, given the equivalence assumptions?". These
// queries share the entire transition-relation CNF and differ only in their
// assumption sets, so the scheduler keeps W worker solvers hydrated from the
// shared CnfStore and partitions the candidate variables round-robin into W
// chunks, one per worker. Each worker then runs the same counterexample-
// saturation loop the single-solver path runs — solve the disjunction of its
// chunk's diff literals, harvest every differing variable from the model,
// shrink, repeat until UNSAT — entirely on its own solver, keeping learned
// clauses across rounds and iterations.
//
// Determinism: the set a chunk reports is {sv in chunk : diff(sv) satisfiable},
// which is a purely semantic property — independent of which models the
// worker's CDCL search happens to find, of thread scheduling, and of the
// number of workers. The merged, sorted union is therefore bit-identical to
// the single-solver saturation result for any thread count.
//
// Concurrency protocol: the encoder (diff/activation literals) runs only on
// the calling thread between batches; workers only read the store (hydration)
// and their own solver. Worker models and statistics are read back on the
// calling thread strictly after the batch barrier.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "encode/miter.h"
#include "ipc/engine.h"
#include "sat/backend.h"
#include "util/thread_pool.h"

namespace upec::ipc {

struct SweepResult {
  // Violated iff at least one candidate can differ; Unknown if any worker
  // exhausted its budget (the differing list is then a lower bound).
  CheckStatus status = CheckStatus::Holds;
  std::vector<rtlir::StateVarId> differing;  // sorted ascending
  double seconds = 0.0;                      // wall clock for the whole sweep
  std::uint64_t conflicts = 0;               // summed over workers
  std::uint64_t decisions = 0;
  std::uint64_t propagations = 0;
  // Learned-clause sharing traffic during this sweep (zero with sharing off).
  std::uint64_t exported = 0;                   // summed over workers
  std::uint64_t imported = 0;                   // summed over workers
  std::vector<std::uint64_t> imported_per_worker;  // one entry per worker
  std::size_t solve_calls = 0;
  unsigned rounds = 0;
};

class CheckScheduler {
public:
  // `threads` worker solvers, each with the given per-solve conflict budget.
  // With `share_clauses` (and more than one worker), the workers exchange
  // low-LBD learnt clauses through a ClauseChannel: exported at learn time,
  // imported only at each worker's restart boundaries. Sharing only adds
  // clauses already implied by the shared store, so it changes how fast a
  // chunk's verdict is reached, never which verdict — the determinism
  // contract below is unaffected (pinned by test_determinism with sharing on
  // and off).
  CheckScheduler(sat::CnfStore& store, unsigned threads, std::uint64_t conflict_budget = 0,
                 bool share_clauses = true);

  unsigned workers() const { return static_cast<unsigned>(backends_.size()); }

  // Total clauses published into the sharing channel (0 when sharing is off).
  std::size_t shared_clauses() const { return channel_ ? channel_->published() : 0; }

  // Finds every candidate whose diff literal at `frame` is satisfiable under
  // `assumptions`. Encodes missing diff/activation literals through
  // `miter.cnf()` on the calling thread.
  SweepResult sweep(encode::Miter& miter, const std::vector<encode::Lit>& assumptions,
                    const std::vector<rtlir::StateVarId>& candidates, unsigned frame);

  // Cumulative per-worker statistics (for report breakdowns).
  std::vector<sat::SolverStats> worker_stats() const;

private:
  sat::CnfStore& store_;
  util::ThreadPool pool_;
  std::unique_ptr<sat::ClauseChannel> channel_;  // non-null iff sharing enabled
  std::vector<std::unique_ptr<sat::SolverBackend>> backends_;
};

} // namespace upec::ipc
