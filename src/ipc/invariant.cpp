#include "ipc/invariant.h"

namespace upec::ipc {

std::vector<encode::Lit> assume_invariants(encode::Miter& miter,
                                           const std::vector<Invariant>& invariants) {
  std::vector<encode::Lit> lits;
  for (const Invariant& inv : invariants) {
    lits.push_back(inv.build(miter.cnf(), miter.inst_a(), 0));
    lits.push_back(inv.build(miter.cnf(), miter.inst_b(), 0));
  }
  return lits;
}

std::string check_inductive(const rtlir::Design& design, const rtlir::StateVarTable& svt,
                            const Invariant& inv) {
  // --- base: invariant holds in the reset state ---------------------------------
  {
    sat::Solver solver;
    encode::CnfBuilder cnf(solver);
    encode::UnrolledInstance inst(cnf, design, svt, "base");
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) {
      const rtlir::StateVar& v = svt.var(sv);
      const BitVec value = v.kind == rtlir::StateVar::Kind::Reg
                               ? design.registers()[v.index].reset_value
                               : design.memories()[v.index].init[v.word];
      inst.bind_state0(sv, cnf.constant_vec(value));
    }
    const encode::Lit holds = inv.build(cnf, inst, 0);
    if (solver.solve({~holds})) {
      return "invariant '" + inv.name + "' does not hold in the reset state";
    }
  }
  // --- step: inv(t) ∧ env(t) ∧ T(t, t+1) ⇒ inv(t+1) ------------------------------
  {
    sat::Solver solver;
    encode::CnfBuilder cnf(solver);
    encode::UnrolledInstance inst(cnf, design, svt, "step");
    std::vector<encode::Lit> assumptions;
    assumptions.push_back(inv.build(cnf, inst, 0));
    if (inv.constrain) assumptions.push_back(inv.constrain(cnf, inst, 0));
    assumptions.push_back(~inv.build(cnf, inst, 1));
    if (solver.solve(assumptions)) {
      return "invariant '" + inv.name + "' is not inductive (fails at t+1)";
    }
  }
  return {};
}

} // namespace upec::ipc
