// Flattened word-level netlist: nets, cells, registers, memory arrays.
//
// This is the design-under-verification representation shared by the SoC
// generator (src/soc), the CNF encoder (src/encode) and the cycle-accurate
// simulator (src/sim). Hierarchy is represented by dotted name paths
// ("soc.xbar_pub.arb.grant_q"), which is what the UPEC-SSC state-set
// bookkeeping and counterexample reports key on.
//
// State variables of the design (the S_all of the paper) are its registers
// and the individual words of its memory arrays; see rtlir/analyze.h.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/cell.h"
#include "util/bitvec.h"

namespace upec::rtlir {

enum class NetKind : std::uint8_t {
  Input,   // primary input; payload = index into Design::inputs
  Const,   // constant; payload = index into Design::consts
  Cell,    // output of combinational cell; payload = cell index
  RegQ,    // register output; payload = register index
  MemRead, // combinational memory read data; payload = global read-port index
};

struct Net {
  unsigned width = 1;
  NetKind kind = NetKind::Const;
  std::uint32_t payload = 0;
  std::string name; // dotted hierarchical name; may be empty for temps
};

struct CellNode {
  Op op;
  NetId a = kNullNet;
  NetId b = kNullNet;
  NetId c = kNullNet; // third operand (Mux select is `a`; data are b, c)
  NetId out = kNullNet;
  std::uint32_t aux0 = 0; // Slice: low bit index
};

struct InputInfo {
  NetId net = kNullNet;
  // Stable inputs model specification constants (e.g. the symbolic victim
  // address range registers): the encoder gives them a single CNF image
  // shared by every unrolled frame.
  bool stable = false;
};

struct Register {
  NetId d = kNullNet;  // next-state value
  NetId q = kNullNet;  // current state (a RegQ net)
  NetId en = kNullNet; // kNullNet => always enabled
  BitVec reset_value{1, 0};
};

struct MemReadPort {
  std::uint32_t mem = 0;
  NetId addr = kNullNet;
  NetId data = kNullNet; // a MemRead net
};

struct MemWritePort {
  NetId addr = kNullNet;
  NetId data = kNullNet;
  NetId en = kNullNet; // 1-bit; kNullNet => always
};

struct Memory {
  std::string name;
  std::uint32_t words = 0;  // number of words; addresses >= words read as 0
  unsigned width = 0;       // word width in bits
  unsigned addr_width = 0;
  std::vector<MemWritePort> writes; // later ports take priority on conflicts
  std::vector<BitVec> init;         // reset contents (simulation only)
};

class Design {
public:
  // --- construction (used via rtlir::Builder) -------------------------------
  NetId add_net(unsigned width, NetKind kind, std::uint32_t payload, std::string name);
  NetId add_input(std::string name, unsigned width, bool stable);
  NetId add_const(const BitVec& value);
  NetId add_cell(Op op, NetId a, NetId b, NetId c, unsigned out_width, std::uint32_t aux0,
                 std::string name);
  std::uint32_t add_register(std::string name, unsigned width, const BitVec& reset);
  void connect_register(std::uint32_t reg, NetId d, NetId en);
  std::uint32_t add_memory(std::string name, std::uint32_t words, unsigned width);
  NetId add_mem_read(std::uint32_t mem, NetId addr);
  void add_mem_write(std::uint32_t mem, NetId addr, NetId data, NetId en);
  void set_output(std::string name, NetId net);

  // --- access ----------------------------------------------------------------
  const Net& net(NetId id) const { return nets_[id]; }
  unsigned width(NetId id) const { return nets_[id].width; }
  std::size_t num_nets() const { return nets_.size(); }

  const std::vector<InputInfo>& inputs() const { return inputs_; }
  const std::vector<BitVec>& consts() const { return consts_; }
  const std::vector<CellNode>& cells() const { return cells_; }
  const std::vector<Register>& registers() const { return registers_; }
  const std::vector<Memory>& memories() const { return memories_; }
  const std::vector<MemReadPort>& mem_reads() const { return mem_reads_; }
  const std::unordered_map<std::string, NetId>& outputs() const { return outputs_; }

  // Named probe lookup; returns kNullNet when absent.
  NetId find_output(const std::string& name) const;
  // Register lookup by exact hierarchical name; returns -1 when absent.
  std::int64_t find_register(const std::string& name) const;
  std::int64_t find_memory(const std::string& name) const;

  // Consistency check: every net driven, widths legal, register D connected.
  // Returns an error description, or empty string if the design is well-formed.
  std::string validate() const;

private:
  std::vector<Net> nets_;
  std::vector<InputInfo> inputs_;
  std::vector<BitVec> consts_;
  std::vector<CellNode> cells_;
  std::vector<Register> registers_;
  std::vector<Memory> memories_;
  std::vector<MemReadPort> mem_reads_;
  std::unordered_map<std::string, NetId> outputs_;
  std::unordered_map<std::uint64_t, NetId> const_cache_;
};

} // namespace upec::rtlir
