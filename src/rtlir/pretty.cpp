#include "rtlir/pretty.h"

#include <sstream>

#include "rtlir/analyze.h"

namespace upec::rtlir {

namespace {
std::string net_ref(const Design& d, NetId n) {
  if (n == kNullNet) return "-";
  const Net& info = d.net(n);
  std::string label = "n" + std::to_string(n);
  if (info.kind == NetKind::Const) {
    label = d.consts()[info.payload].to_hex();
  } else if (!info.name.empty()) {
    label += "(" + info.name + ")";
  }
  return label;
}
} // namespace

std::string summarize(const Design& design) {
  const DesignStats s = design_stats(design);
  std::ostringstream os;
  os << "nets=" << s.nets << " cells=" << s.cells << " registers=" << s.registers
     << " memories=" << s.memories << " (" << s.mem_words << " words)"
     << " state_vars=" << s.state_vars << " state_bits=" << s.state_bits;
  return os.str();
}

void dump(const Design& design, std::ostream& os) {
  os << "design { " << summarize(design) << "\n";
  for (const InputInfo& in : design.inputs()) {
    os << "  input " << net_ref(design, in.net) << " width=" << design.width(in.net)
       << (in.stable ? " stable" : "") << "\n";
  }
  for (std::size_t i = 0; i < design.cells().size(); ++i) {
    const CellNode& c = design.cells()[i];
    os << "  " << net_ref(design, c.out) << " = " << op_name(c.op) << "(" << net_ref(design, c.a);
    if (c.b != kNullNet) os << ", " << net_ref(design, c.b);
    if (c.c != kNullNet) os << ", " << net_ref(design, c.c);
    if (c.op == Op::Slice) os << ", lo=" << c.aux0;
    os << ")\n";
  }
  for (const Register& r : design.registers()) {
    os << "  reg " << net_ref(design, r.q) << " <= " << net_ref(design, r.d);
    if (r.en != kNullNet) os << " when " << net_ref(design, r.en);
    os << " reset=" << r.reset_value.to_hex() << "\n";
  }
  for (const Memory& m : design.memories()) {
    os << "  mem " << m.name << " words=" << m.words << " width=" << m.width << "\n";
    for (const MemWritePort& w : m.writes) {
      os << "    write addr=" << net_ref(design, w.addr) << " data=" << net_ref(design, w.data)
         << " en=" << net_ref(design, w.en) << "\n";
    }
  }
  for (const auto& [name, net] : design.outputs()) {
    os << "  output " << name << " = " << net_ref(design, net) << "\n";
  }
  os << "}\n";
}

} // namespace upec::rtlir
