// Ergonomic construction layer over rtlir::Design.
//
// The builder provides word-level combinational operators with width
// checking, scoped hierarchical naming (push_scope/pop_scope produce the
// dotted paths that UPEC-SSC state sets key on), forward-declared registers
// for feedback loops, and the usual RTL idioms (decoders, one-hot priority
// arbitration helpers, counters).
#pragma once

#include <cassert>
#include <initializer_list>
#include <string>
#include <vector>

#include "rtlir/design.h"

namespace upec::rtlir {

// Handle to a register whose D input may be connected after its Q has been
// used (needed for every feedback path: FSMs, counters, handshakes).
struct RegHandle {
  std::uint32_t index = 0;
  NetId q = kNullNet;
};

struct MemHandle {
  std::uint32_t index = 0;
};

class Builder {
public:
  explicit Builder(Design& design) : d_(design) {}

  Design& design() { return d_; }

  // --- naming scopes ----------------------------------------------------------
  void push_scope(const std::string& name);
  void pop_scope();
  std::string scoped(const std::string& name) const;

  // RAII scope guard.
  class Scope {
  public:
    Scope(Builder& b, const std::string& name) : b_(b) { b_.push_scope(name); }
    ~Scope() { b_.pop_scope(); }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

  private:
    Builder& b_;
  };

  // --- primitives --------------------------------------------------------------
  NetId input(const std::string& name, unsigned width, bool stable = false);
  NetId constant(unsigned width, std::uint64_t value) { return d_.add_const(BitVec(width, value)); }
  NetId zero(unsigned width) { return constant(width, 0); }
  NetId one(unsigned width) { return constant(width, 1); }
  NetId ones(unsigned width) { return d_.add_const(BitVec::ones(width)); }

  unsigned width(NetId n) const { return d_.width(n); }

  NetId not_(NetId a);
  NetId and_(NetId a, NetId b);
  NetId or_(NetId a, NetId b);
  NetId xor_(NetId a, NetId b);
  NetId and_all(std::initializer_list<NetId> xs) { return fold_bin(Op::And, xs); }
  NetId or_all(std::initializer_list<NetId> xs) { return fold_bin(Op::Or, xs); }
  NetId and_all(const std::vector<NetId>& xs) { return fold_bin(Op::And, xs); }
  NetId or_all(const std::vector<NetId>& xs) { return fold_bin(Op::Or, xs); }

  NetId add(NetId a, NetId b);
  NetId sub(NetId a, NetId b);
  NetId add_const(NetId a, std::uint64_t k) { return add(a, constant(width(a), k)); }

  NetId eq(NetId a, NetId b);
  NetId ne(NetId a, NetId b) { return not_(eq(a, b)); }
  NetId eq_const(NetId a, std::uint64_t k) { return eq(a, constant(width(a), k)); }
  NetId ne_const(NetId a, std::uint64_t k) { return not_(eq_const(a, k)); }
  NetId ult(NetId a, NetId b);
  NetId ule(NetId a, NetId b) { return not_(ult(b, a)); }
  NetId uge(NetId a, NetId b) { return not_(ult(a, b)); }

  NetId shl(NetId a, NetId amount);
  NetId lshr(NetId a, NetId amount);

  NetId mux(NetId sel, NetId if_true, NetId if_false);
  NetId concat(NetId hi, NetId lo);
  NetId slice(NetId a, unsigned hi, unsigned lo);
  NetId bit(NetId a, unsigned i) { return slice(a, i, i); }
  NetId zext(NetId a, unsigned width);
  NetId sext(NetId a, unsigned width);
  NetId trunc(NetId a, unsigned width) { return slice(a, width - 1, 0); }
  NetId resize(NetId a, unsigned width);
  NetId red_or(NetId a);
  NetId red_and(NetId a);
  NetId is_zero(NetId a) { return not_(red_or(a)); }

  // Chained select: pairs of (cond, value), with a default; first match wins.
  NetId select(const std::vector<std::pair<NetId, NetId>>& arms, NetId fallback);

  // --- registers & memories ------------------------------------------------------
  RegHandle reg(const std::string& name, unsigned width, std::uint64_t reset = 0);
  void connect(const RegHandle& r, NetId d, NetId en = kNullNet);
  // Register with immediate connection (no feedback).
  NetId pipe(const std::string& name, NetId d, NetId en = kNullNet, std::uint64_t reset = 0);

  MemHandle memory(const std::string& name, std::uint32_t words, unsigned width);
  NetId mem_read(const MemHandle& m, NetId addr);
  void mem_write(const MemHandle& m, NetId addr, NetId data, NetId en);
  unsigned mem_addr_width(const MemHandle& m) const { return d_.memories()[m.index].addr_width; }

  void output(const std::string& name, NetId n) { d_.set_output(scoped(name), n); }
  // Probe with a global (unscoped) name.
  void global_output(const std::string& name, NetId n) { d_.set_output(name, n); }

  // Names the given net for nicer debug output (wraps in a unary buffer-free
  // rename by tagging the existing net when unnamed).
  NetId named(const std::string& name, NetId n);

private:
  NetId fold_bin(Op op, std::initializer_list<NetId> xs) {
    return fold_bin(op, std::vector<NetId>(xs));
  }
  NetId fold_bin(Op op, const std::vector<NetId>& xs);
  NetId cell(Op op, NetId a, NetId b, NetId c, unsigned out_width, std::uint32_t aux0 = 0);

  Design& d_;
  std::vector<std::string> scope_;
};

} // namespace upec::rtlir
