#include "rtlir/fold.h"

#include <cassert>

#include "rtlir/analyze.h"

namespace upec::rtlir {

BitVec eval_cell(const CellNode& cell, const BitVec& a, const BitVec& b, const BitVec& c,
                 unsigned out_width) {
  const std::uint64_t mask = BitVec::mask(out_width);
  switch (cell.op) {
    case Op::Not: return BitVec(out_width, ~a.value());
    case Op::And: return BitVec(out_width, a.value() & b.value());
    case Op::Or: return BitVec(out_width, a.value() | b.value());
    case Op::Xor: return BitVec(out_width, a.value() ^ b.value());
    case Op::Add: return BitVec(out_width, (a.value() + b.value()) & mask);
    case Op::Sub: return BitVec(out_width, (a.value() - b.value()) & mask);
    case Op::Eq: return BitVec(1, a.value() == b.value() ? 1 : 0);
    case Op::Ult: return BitVec(1, a.value() < b.value() ? 1 : 0);
    case Op::Shl: {
      const std::uint64_t sh = b.value();
      return BitVec(out_width, sh >= out_width ? 0 : (a.value() << sh) & mask);
    }
    case Op::Lshr: {
      const std::uint64_t sh = b.value();
      return BitVec(out_width, sh >= out_width ? 0 : a.value() >> sh);
    }
    case Op::Mux: return a.value() ? b : c;
    case Op::Concat:
      return BitVec(out_width, (a.value() << b.width()) | b.value());
    case Op::Slice: return BitVec(out_width, a.value() >> cell.aux0);
    case Op::ZExt: return BitVec(out_width, a.value());
    case Op::RedOr: return BitVec(1, a.value() != 0 ? 1 : 0);
    case Op::RedAnd:
      return BitVec(1, a.value() == BitVec::mask(a.width()) ? 1 : 0);
  }
  assert(false && "unhandled op");
  return BitVec(out_width, 0);
}

std::vector<std::optional<BitVec>> fold_constants(const Design& design) {
  std::vector<std::optional<BitVec>> val(design.num_nets());
  for (NetId n = 0; n < design.num_nets(); ++n) {
    const Net& info = design.net(n);
    if (info.kind == NetKind::Const) val[n] = design.consts()[info.payload];
  }
  bool cyclic = false;
  const auto order = topo_order_cells(design, &cyclic);
  if (cyclic) return val;
  for (std::uint32_t ci : order) {
    const CellNode& cell = design.cells()[ci];
    auto get = [&](NetId x) -> std::optional<BitVec> {
      return x == kNullNet ? std::optional<BitVec>(BitVec(1, 0)) : val[x];
    };
    const auto a = get(cell.a);
    const auto b = get(cell.b);
    const auto c = get(cell.c);
    const unsigned w = design.width(cell.out);
    // Full fold when all operands constant.
    if (a && b && c) {
      val[cell.out] = eval_cell(cell, *a, *b, *c, w);
      continue;
    }
    // Partial folds that still yield constants.
    switch (cell.op) {
      case Op::And:
        if ((a && a->is_zero()) || (b && b->is_zero())) val[cell.out] = BitVec::zeros(w);
        break;
      case Op::Or:
        if ((a && *a == BitVec::ones(w)) || (b && *b == BitVec::ones(w))) {
          val[cell.out] = BitVec::ones(w);
        }
        break;
      case Op::Mux:
        if (a) {
          // Select is constant: result equals the chosen branch if constant.
          const auto& chosen = a->value() ? b : c;
          if (chosen) val[cell.out] = *chosen;
        } else if (b && c && *b == *c) {
          val[cell.out] = *b;
        }
        break;
      case Op::RedAnd:
        if (a) break; // handled above
        break;
      default: break;
    }
  }
  return val;
}

} // namespace upec::rtlir
