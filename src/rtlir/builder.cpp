#include "rtlir/builder.h"

namespace upec::rtlir {

void Builder::push_scope(const std::string& name) { scope_.push_back(name); }

void Builder::pop_scope() {
  assert(!scope_.empty());
  scope_.pop_back();
}

std::string Builder::scoped(const std::string& name) const {
  std::string out;
  for (const auto& s : scope_) {
    out += s;
    out += '.';
  }
  out += name;
  return out;
}

NetId Builder::input(const std::string& name, unsigned width, bool stable) {
  return d_.add_input(scoped(name), width, stable);
}

NetId Builder::cell(Op op, NetId a, NetId b, NetId c, unsigned out_width, std::uint32_t aux0) {
  return d_.add_cell(op, a, b, c, out_width, aux0, "");
}

NetId Builder::not_(NetId a) { return cell(Op::Not, a, kNullNet, kNullNet, width(a)); }

NetId Builder::and_(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::And, a, b, kNullNet, width(a));
}

NetId Builder::or_(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Or, a, b, kNullNet, width(a));
}

NetId Builder::xor_(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Xor, a, b, kNullNet, width(a));
}

NetId Builder::add(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Add, a, b, kNullNet, width(a));
}

NetId Builder::sub(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Sub, a, b, kNullNet, width(a));
}

NetId Builder::eq(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Eq, a, b, kNullNet, 1);
}

NetId Builder::ult(NetId a, NetId b) {
  assert(width(a) == width(b));
  return cell(Op::Ult, a, b, kNullNet, 1);
}

NetId Builder::shl(NetId a, NetId amount) { return cell(Op::Shl, a, amount, kNullNet, width(a)); }

NetId Builder::lshr(NetId a, NetId amount) {
  return cell(Op::Lshr, a, amount, kNullNet, width(a));
}

NetId Builder::mux(NetId sel, NetId if_true, NetId if_false) {
  assert(width(sel) == 1);
  assert(width(if_true) == width(if_false));
  return cell(Op::Mux, sel, if_true, if_false, width(if_true));
}

NetId Builder::concat(NetId hi, NetId lo) {
  return cell(Op::Concat, hi, lo, kNullNet, width(hi) + width(lo));
}

NetId Builder::slice(NetId a, unsigned hi, unsigned lo) {
  assert(hi >= lo && hi < width(a));
  return cell(Op::Slice, a, kNullNet, kNullNet, hi - lo + 1, lo);
}

NetId Builder::zext(NetId a, unsigned w) {
  assert(w >= width(a));
  if (w == width(a)) return a;
  return cell(Op::ZExt, a, kNullNet, kNullNet, w);
}

NetId Builder::sext(NetId a, unsigned w) {
  assert(w >= width(a));
  if (w == width(a)) return a;
  const unsigned ext = w - width(a);
  const NetId sign = bit(a, width(a) - 1);
  const NetId hi = mux(sign, ones(ext), zero(ext));
  return concat(hi, a);
}

NetId Builder::resize(NetId a, unsigned w) {
  if (w == width(a)) return a;
  return w > width(a) ? zext(a, w) : trunc(a, w);
}

NetId Builder::red_or(NetId a) { return cell(Op::RedOr, a, kNullNet, kNullNet, 1); }

NetId Builder::red_and(NetId a) { return cell(Op::RedAnd, a, kNullNet, kNullNet, 1); }

NetId Builder::select(const std::vector<std::pair<NetId, NetId>>& arms, NetId fallback) {
  NetId out = fallback;
  for (auto it = arms.rbegin(); it != arms.rend(); ++it) {
    out = mux(it->first, it->second, out);
  }
  return out;
}

NetId Builder::fold_bin(Op op, const std::vector<NetId>& xs) {
  assert(!xs.empty());
  NetId acc = xs[0];
  for (std::size_t i = 1; i < xs.size(); ++i) {
    assert(width(acc) == width(xs[i]));
    acc = cell(op, acc, xs[i], kNullNet, width(acc));
  }
  return acc;
}

RegHandle Builder::reg(const std::string& name, unsigned width, std::uint64_t reset) {
  const std::uint32_t idx = d_.add_register(scoped(name), width, BitVec(width, reset));
  return RegHandle{idx, d_.registers()[idx].q};
}

void Builder::connect(const RegHandle& r, NetId d, NetId en) {
  assert(width(d) == width(r.q));
  d_.connect_register(r.index, d, en);
}

NetId Builder::pipe(const std::string& name, NetId d, NetId en, std::uint64_t reset) {
  RegHandle r = reg(name, width(d), reset);
  connect(r, d, en);
  return r.q;
}

MemHandle Builder::memory(const std::string& name, std::uint32_t words, unsigned width) {
  return MemHandle{d_.add_memory(scoped(name), words, width)};
}

NetId Builder::mem_read(const MemHandle& m, NetId addr) {
  assert(width(addr) == d_.memories()[m.index].addr_width);
  return d_.add_mem_read(m.index, addr);
}

void Builder::mem_write(const MemHandle& m, NetId addr, NetId data, NetId en) {
  assert(width(addr) == d_.memories()[m.index].addr_width);
  assert(width(data) == d_.memories()[m.index].width);
  d_.add_mem_write(m.index, addr, data, en);
}

NetId Builder::named(const std::string& name, NetId n) {
  auto& net = const_cast<Net&>(d_.net(n));
  if (net.name.empty()) net.name = scoped(name);
  return n;
}

} // namespace upec::rtlir
