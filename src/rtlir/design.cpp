#include "rtlir/design.h"

#include <sstream>

namespace upec::rtlir {

const char* op_name(Op op) {
  switch (op) {
    case Op::Not: return "not";
    case Op::And: return "and";
    case Op::Or: return "or";
    case Op::Xor: return "xor";
    case Op::Add: return "add";
    case Op::Sub: return "sub";
    case Op::Eq: return "eq";
    case Op::Ult: return "ult";
    case Op::Shl: return "shl";
    case Op::Lshr: return "lshr";
    case Op::Mux: return "mux";
    case Op::Concat: return "concat";
    case Op::Slice: return "slice";
    case Op::ZExt: return "zext";
    case Op::RedOr: return "redor";
    case Op::RedAnd: return "redand";
  }
  return "?";
}

NetId Design::add_net(unsigned width, NetKind kind, std::uint32_t payload, std::string name) {
  Net n;
  n.width = width;
  n.kind = kind;
  n.payload = payload;
  n.name = std::move(name);
  nets_.push_back(std::move(n));
  return static_cast<NetId>(nets_.size() - 1);
}

NetId Design::add_input(std::string name, unsigned width, bool stable) {
  const auto idx = static_cast<std::uint32_t>(inputs_.size());
  const NetId id = add_net(width, NetKind::Input, idx, std::move(name));
  inputs_.push_back(InputInfo{id, stable});
  return id;
}

NetId Design::add_const(const BitVec& value) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(value.width()) << 58) ^ value.value();
  auto it = const_cache_.find(key);
  if (it != const_cache_.end() && consts_[nets_[it->second].payload] == value) {
    return it->second;
  }
  const auto idx = static_cast<std::uint32_t>(consts_.size());
  consts_.push_back(value);
  const NetId id = add_net(value.width(), NetKind::Const, idx, "");
  const_cache_[key] = id;
  return id;
}

NetId Design::add_cell(Op op, NetId a, NetId b, NetId c, unsigned out_width,
                       std::uint32_t aux0, std::string name) {
  const auto idx = static_cast<std::uint32_t>(cells_.size());
  const NetId out = add_net(out_width, NetKind::Cell, idx, std::move(name));
  CellNode cell;
  cell.op = op;
  cell.a = a;
  cell.b = b;
  cell.c = c;
  cell.out = out;
  cell.aux0 = aux0;
  cells_.push_back(cell);
  return out;
}

std::uint32_t Design::add_register(std::string name, unsigned width, const BitVec& reset) {
  const auto idx = static_cast<std::uint32_t>(registers_.size());
  Register r;
  r.reset_value = reset;
  registers_.push_back(r);
  registers_[idx].q = add_net(width, NetKind::RegQ, idx, std::move(name));
  return idx;
}

void Design::connect_register(std::uint32_t reg, NetId d, NetId en) {
  registers_[reg].d = d;
  registers_[reg].en = en;
}

std::uint32_t Design::add_memory(std::string name, std::uint32_t words, unsigned width) {
  Memory m;
  m.name = std::move(name);
  m.words = words;
  m.width = width;
  unsigned aw = 1;
  while ((1u << aw) < words) ++aw;
  m.addr_width = aw;
  m.init.assign(words, BitVec::zeros(width));
  memories_.push_back(std::move(m));
  return static_cast<std::uint32_t>(memories_.size() - 1);
}

NetId Design::add_mem_read(std::uint32_t mem, NetId addr) {
  const auto idx = static_cast<std::uint32_t>(mem_reads_.size());
  const NetId data =
      add_net(memories_[mem].width, NetKind::MemRead, idx, memories_[mem].name + ".rdata");
  mem_reads_.push_back(MemReadPort{mem, addr, data});
  return data;
}

void Design::add_mem_write(std::uint32_t mem, NetId addr, NetId data, NetId en) {
  memories_[mem].writes.push_back(MemWritePort{addr, data, en});
}

void Design::set_output(std::string name, NetId net) { outputs_[std::move(name)] = net; }

NetId Design::find_output(const std::string& name) const {
  auto it = outputs_.find(name);
  return it == outputs_.end() ? kNullNet : it->second;
}

std::int64_t Design::find_register(const std::string& name) const {
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    if (nets_[registers_[i].q].name == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::int64_t Design::find_memory(const std::string& name) const {
  for (std::size_t i = 0; i < memories_.size(); ++i) {
    if (memories_[i].name == name) return static_cast<std::int64_t>(i);
  }
  return -1;
}

std::string Design::validate() const {
  std::ostringstream err;
  auto check_width = [&](NetId id, unsigned w, const char* what) {
    if (id == kNullNet) {
      err << what << ": unconnected net\n";
    } else if (nets_[id].width != w) {
      err << what << ": width " << nets_[id].width << ", expected " << w << "\n";
    }
  };
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    const CellNode& c = cells_[i];
    const unsigned wo = nets_[c.out].width;
    switch (c.op) {
      case Op::Not:
      case Op::RedOr:
      case Op::RedAnd:
      case Op::ZExt:
      case Op::Slice:
        if (c.a == kNullNet) err << "cell " << i << ": missing operand a\n";
        break;
      case Op::Mux:
        check_width(c.a, 1, "mux select");
        check_width(c.b, wo, "mux b");
        check_width(c.c, wo, "mux c");
        break;
      case Op::Concat:
        if (c.a == kNullNet || c.b == kNullNet) {
          err << "cell " << i << ": concat missing operand\n";
        } else if (nets_[c.a].width + nets_[c.b].width != wo) {
          err << "cell " << i << ": concat width mismatch\n";
        }
        break;
      case Op::Shl:
      case Op::Lshr:
        check_width(c.a, wo, "shift value");
        if (c.b == kNullNet) err << "cell " << i << ": shift missing amount\n";
        break;
      default:
        check_width(c.a, (c.op == Op::Eq || c.op == Op::Ult) ? nets_[c.a].width : wo, "operand a");
        if (c.b == kNullNet) {
          err << "cell " << i << " (" << op_name(c.op) << "): missing operand b\n";
        } else if (nets_[c.a].width != nets_[c.b].width) {
          err << "cell " << i << " (" << op_name(c.op) << "): operand width mismatch\n";
        }
        break;
    }
  }
  for (std::size_t i = 0; i < registers_.size(); ++i) {
    const Register& r = registers_[i];
    if (r.d == kNullNet) {
      err << "register " << nets_[r.q].name << ": D input unconnected\n";
    } else if (nets_[r.d].width != nets_[r.q].width) {
      err << "register " << nets_[r.q].name << ": D/Q width mismatch\n";
    }
    if (r.en != kNullNet && nets_[r.en].width != 1) {
      err << "register " << nets_[r.q].name << ": enable must be 1 bit\n";
    }
    if (r.reset_value.width() != nets_[r.q].width) {
      err << "register " << nets_[r.q].name << ": reset width mismatch\n";
    }
  }
  for (const Memory& m : memories_) {
    for (const MemWritePort& w : m.writes) {
      if (w.addr == kNullNet || w.data == kNullNet) {
        err << "memory " << m.name << ": incomplete write port\n";
      } else if (nets_[w.data].width != m.width) {
        err << "memory " << m.name << ": write data width mismatch\n";
      }
    }
  }
  for (const MemReadPort& rp : mem_reads_) {
    if (rp.addr == kNullNet) err << "memory read port: unconnected address\n";
  }
  return err.str();
}

} // namespace upec::rtlir
