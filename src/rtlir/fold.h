// Constant analysis: computes, for every net, whether its value is fixed by
// constants alone (independent of inputs and state). The encoder uses this to
// avoid emitting CNF for dead decode logic, and the builder-level tests use
// it to validate simplification invariants.
#pragma once

#include <optional>
#include <vector>

#include "rtlir/design.h"

namespace upec::rtlir {

// Pure combinational evaluation of a single cell; shared by the constant
// folder and the cycle-accurate simulator so both agree on semantics.
BitVec eval_cell(const CellNode& cell, const BitVec& a, const BitVec& b, const BitVec& c,
                 unsigned out_width);

// For each net: its constant value if one can be derived structurally.
std::vector<std::optional<BitVec>> fold_constants(const Design& design);

} // namespace upec::rtlir
