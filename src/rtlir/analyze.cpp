#include "rtlir/analyze.h"

#include <algorithm>

namespace upec::rtlir {

StateVarTable::StateVarTable(const Design& design) : design_(design) {
  reg_base_ = 0;
  for (std::uint32_t r = 0; r < design.registers().size(); ++r) {
    vars_.push_back(StateVar{StateVar::Kind::Reg, r, 0});
  }
  for (std::uint32_t m = 0; m < design.memories().size(); ++m) {
    mem_base_.push_back(static_cast<std::uint32_t>(vars_.size()));
    for (std::uint32_t w = 0; w < design.memories()[m].words; ++w) {
      vars_.push_back(StateVar{StateVar::Kind::MemWord, m, w});
    }
  }
}

std::string StateVarTable::name(StateVarId id) const {
  const StateVar& v = vars_[id];
  if (v.kind == StateVar::Kind::Reg) {
    const std::string& n = design_.net(design_.registers()[v.index].q).name;
    return n.empty() ? ("reg#" + std::to_string(v.index)) : n;
  }
  return design_.memories()[v.index].name + "[" + std::to_string(v.word) + "]";
}

unsigned StateVarTable::width(StateVarId id) const {
  const StateVar& v = vars_[id];
  if (v.kind == StateVar::Kind::Reg) return design_.width(design_.registers()[v.index].q);
  return design_.memories()[v.index].width;
}

std::vector<StateVarId> StateVarTable::ids_with_prefix(const std::string& prefix) const {
  std::vector<StateVarId> out;
  for (StateVarId id = 0; id < vars_.size(); ++id) {
    if (name(id).rfind(prefix, 0) == 0) out.push_back(id);
  }
  return out;
}

std::vector<std::uint32_t> topo_order_cells(const Design& design, bool* cyclic) {
  const auto& cells = design.cells();
  const std::size_t n = cells.size();
  // in_deg counts, per cell, how many of its operands are outputs of other
  // cells or memory read ports (whose address may itself be a cell output).
  std::vector<std::uint32_t> in_deg(n, 0);
  std::vector<std::vector<std::uint32_t>> users(n);

  auto producer_cell = [&](NetId net) -> std::int64_t {
    if (net == kNullNet) return -1;
    const Net& info = design.net(net);
    if (info.kind == NetKind::Cell) return info.payload;
    if (info.kind == NetKind::MemRead) {
      // A memory read is combinational: its effective producer is the cell
      // driving its address (if any).
      const NetId addr = design.mem_reads()[info.payload].addr;
      const Net& a = design.net(addr);
      if (a.kind == NetKind::Cell) return a.payload;
      if (a.kind == NetKind::MemRead) {
        // Chained comb reads: recurse one level (rare; bounded in practice).
        const NetId addr2 = design.mem_reads()[a.payload].addr;
        const Net& a2 = design.net(addr2);
        if (a2.kind == NetKind::Cell) return a2.payload;
      }
    }
    return -1;
  };

  for (std::uint32_t i = 0; i < n; ++i) {
    for (NetId operand : {cells[i].a, cells[i].b, cells[i].c}) {
      const std::int64_t p = producer_cell(operand);
      if (p >= 0) {
        users[static_cast<std::size_t>(p)].push_back(i);
        ++in_deg[i];
      }
    }
  }

  std::vector<std::uint32_t> order;
  order.reserve(n);
  std::vector<std::uint32_t> ready;
  for (std::uint32_t i = 0; i < n; ++i) {
    if (in_deg[i] == 0) ready.push_back(i);
  }
  while (!ready.empty()) {
    const std::uint32_t c = ready.back();
    ready.pop_back();
    order.push_back(c);
    for (std::uint32_t u : users[c]) {
      if (--in_deg[u] == 0) ready.push_back(u);
    }
  }
  const bool has_cycle = order.size() != n;
  if (cyclic) *cyclic = has_cycle;
  if (has_cycle) order.clear();
  return order;
}

std::vector<bool> comb_fanin(const Design& design, const std::vector<NetId>& roots) {
  std::vector<bool> seen(design.num_nets(), false);
  std::vector<NetId> stack;
  for (NetId r : roots) {
    if (r != kNullNet && !seen[r]) {
      seen[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    const NetId n = stack.back();
    stack.pop_back();
    const Net& info = design.net(n);
    auto visit = [&](NetId x) {
      if (x != kNullNet && !seen[x]) {
        seen[x] = true;
        stack.push_back(x);
      }
    };
    if (info.kind == NetKind::Cell) {
      const CellNode& c = design.cells()[info.payload];
      visit(c.a);
      visit(c.b);
      visit(c.c);
    } else if (info.kind == NetKind::MemRead) {
      visit(design.mem_reads()[info.payload].addr);
    }
    // Input / Const / RegQ terminate the cone.
  }
  return seen;
}

DesignStats design_stats(const Design& design) {
  DesignStats s;
  s.nets = design.num_nets();
  s.cells = design.cells().size();
  s.registers = design.registers().size();
  s.memories = design.memories().size();
  for (const Memory& m : design.memories()) {
    s.mem_words += m.words;
    s.state_bits += static_cast<std::size_t>(m.words) * m.width;
  }
  for (const Register& r : design.registers()) {
    s.state_bits += design.width(r.q);
  }
  s.state_vars = s.registers + s.mem_words;
  return s;
}

} // namespace upec::rtlir
