// Human-readable dumps of a design: summary statistics and a flat
// netlist listing, used by debug tooling and the documentation examples.
#pragma once

#include <ostream>
#include <string>

#include "rtlir/design.h"

namespace upec::rtlir {

// One-paragraph summary (cell/register/memory/state-bit counts).
std::string summarize(const Design& design);

// Full listing: one line per input, cell, register and memory.
void dump(const Design& design, std::ostream& os);

} // namespace upec::rtlir
