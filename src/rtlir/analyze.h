// Structural analysis over rtlir::Design:
//   - enumeration of the design's state variables (registers and memory
//     words) — the S_all universe of the UPEC-SSC procedure,
//   - topological ordering of combinational cells (simulation, encoding),
//   - combinational fan-in computation (cone-of-influence support),
//   - combinational-cycle detection (a well-formedness requirement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtlir/design.h"

namespace upec::rtlir {

// One state variable of the design. Registers are one variable each (the
// paper reasons at RTL signal granularity); each memory word is its own
// variable so that e.g. "attacker-primed region word 5" can individually
// appear in S_pers or in a counterexample.
struct StateVar {
  enum class Kind : std::uint8_t { Reg, MemWord };
  Kind kind = Kind::Reg;
  std::uint32_t index = 0; // register index or memory index
  std::uint32_t word = 0;  // memory word (Kind::MemWord only)

  friend bool operator==(const StateVar&, const StateVar&) = default;
};

using StateVarId = std::uint32_t;

class StateVarTable {
public:
  explicit StateVarTable(const Design& design);

  std::size_t size() const { return vars_.size(); }
  const StateVar& var(StateVarId id) const { return vars_[id]; }
  std::string name(StateVarId id) const;
  unsigned width(StateVarId id) const;

  // Id of the variable for a register / memory word.
  StateVarId of_register(std::uint32_t reg) const { return reg_base_ + reg; }
  StateVarId of_mem_word(std::uint32_t mem, std::uint32_t word) const {
    return mem_base_[mem] + word;
  }

  // All ids whose hierarchical name starts with the given dotted prefix.
  std::vector<StateVarId> ids_with_prefix(const std::string& prefix) const;

  const Design& design() const { return design_; }

private:
  const Design& design_;
  std::vector<StateVar> vars_;
  std::uint32_t reg_base_ = 0;
  std::vector<std::uint32_t> mem_base_;
};

// Cells sorted so every cell appears after the cells driving its inputs.
// Fails (returns empty + sets `cyclic`) on combinational cycles.
std::vector<std::uint32_t> topo_order_cells(const Design& design, bool* cyclic = nullptr);

// Net-level transitive combinational fan-in of `roots`: walks backwards
// through cells and memory read ports, stopping at inputs, constants and
// register outputs. Returns a flag per net.
std::vector<bool> comb_fanin(const Design& design, const std::vector<NetId>& roots);

// Counts for reporting.
struct DesignStats {
  std::size_t nets = 0;
  std::size_t cells = 0;
  std::size_t registers = 0;
  std::size_t memories = 0;
  std::size_t mem_words = 0;
  std::size_t state_vars = 0;
  std::size_t state_bits = 0;
};
DesignStats design_stats(const Design& design);

} // namespace upec::rtlir
