// Combinational cell operators of the word-level RTL IR.
//
// The operator set is deliberately small — it is the intersection of what a
// synthesizable MCU uncore needs (bus decoding, arbitration, counters,
// comparators, shifters) and what bit-blasts to compact CNF. All operands are
// unsigned bit-vectors; semantics are listed per operator.
#pragma once

#include <cstdint>

namespace upec::rtlir {

using NetId = std::uint32_t;
constexpr NetId kNullNet = 0xffffffffu;

enum class Op : std::uint8_t {
  Not,    // out = ~a                      (width w -> w)
  And,    // out = a & b
  Or,     // out = a | b
  Xor,    // out = a ^ b
  Add,    // out = (a + b) mod 2^w
  Sub,    // out = (a - b) mod 2^w
  Eq,     // out = (a == b)                (w,w -> 1)
  Ult,    // out = (a < b), unsigned       (w,w -> 1)
  Shl,    // out = a << b, zero fill; shifts >= w yield 0 (b may be narrower)
  Lshr,   // out = a >> b, logical
  Mux,    // out = s ? a : b               (1,w,w -> w)
  Concat, // out = {a, b}; b occupies the low bits (wa, wb -> wa+wb)
  Slice,  // out = a[lo+w-1 : lo]; lo in aux0
  ZExt,   // out = zero-extended a
  RedOr,  // out = |a                      (w -> 1)
  RedAnd, // out = &a                      (w -> 1)
};

const char* op_name(Op op);

} // namespace upec::rtlir
