// Countermeasure advisor: a prototype of the "UPEC-SCC driven design
// methodology" the paper's conclusion proposes as future work.
//
// Given a vulnerable verification result, the advisor maps each persistent
// sink in the counterexample to the mitigation classes the case study
// developed, producing an actionable report:
//   - memory words            → map the security-critical region into an
//                                access-restricted memory device (Sec 4.2)
//   - DMA/HWPE configuration  → firmware-constrain the IP's legal
//     and progress state         configurations; or clear its observable
//                                state on context switch
//   - timer state             → deny/fuzz timer access (noting Sec 4.1's
//                                caveat: this does not stop the timer-free
//                                variant)
//   - event-unit state        → clear pending events on context switch
//   - arbitration pointers    → reset arbitration state on context switch
//
// Each suggestion names the concrete SoC option or constraint in this
// repository that implements it, so the advised fix can be re-verified
// immediately (advise → apply → re-run Alg. 1).
#pragma once

#include <string>
#include <vector>

#include "upec/alg1.h"
#include "upec/engine.h"

namespace upec {

enum class MitigationKind : std::uint8_t {
  PrivateMemoryMapping, // move the victim region behind the private crossbar
  FirmwareConstraints,  // restrict the IP's legal configurations
  HardwareGuard,        // physically cut the IP off the protected crossbar
  ClearOnContextSwitch, // scrub the IP's observable state at switches
  TimerAccessControl,   // deny/fuzz timers (insufficient alone, see Sec 4.1)
};

const char* mitigation_name(MitigationKind kind);

struct Suggestion {
  MitigationKind kind;
  std::string subsystem;                     // e.g. "hwpe", "pub_ram"
  std::vector<rtlir::StateVarId> evidence;   // the persistent hits behind it
  std::string rationale;
  std::string how_to_apply;                  // concrete option in this repo
};

// Analyzes a vulnerable Alg. 1/Alg. 2 outcome; returns an empty list for
// secure/unknown results.
std::vector<Suggestion> advise(const UpecContext& ctx,
                               const std::vector<rtlir::StateVarId>& persistent_hits);

std::string render_advice(const UpecContext& ctx, const std::vector<Suggestion>& suggestions);

} // namespace upec
