// Persistence classification: computes S_pers (Def. 2) — the state variables
// that are (1) accessible to the attacker task and (2) persistent across a
// context switch.
//
// Following Sec 3.4 of the paper, classification is rule-driven and only
// consulted for variables that actually appear in counterexamples:
//   - interconnect buffers (crossbar request/response-routing registers, SRAM
//     and peripheral response registers) are overwritten by every transaction
//     and cannot carry information across a context switch → transient;
//   - architectural IP registers (timer count, DMA/HWPE configuration and
//     progress, GPIO/UART/event/scratch registers) and public RAM words are
//     attacker-readable and persistent → S_pers;
//   - private RAM words are persistent but unreachable for the attacker
//     (the access-restricted memory device of Sec 4.2) → not in S_pers;
//   - anything not matched is Unknown and "requires closer inspection"; the
//     classifier reports these, and the procedures treat them conservatively
//     as persistent.
#pragma once

#include <string>
#include <vector>

#include "soc/pulpissimo.h"
#include "upec/state_sets.h"

namespace upec {

enum class Persistence : std::uint8_t {
  Transient,               // overwritten per transaction; cannot hold data across a switch
  PersistentAccessible,    // in S_pers
  PersistentInaccessible,  // persistent but attacker cannot retrieve it
  Unknown,                 // needs manual inspection; treated as persistent
};

const char* persistence_name(Persistence p);

class PersistenceClassifier {
public:
  PersistenceClassifier(const rtlir::StateVarTable& svt, const soc::Soc& soc);

  Persistence classify(rtlir::StateVarId id) const;
  bool in_s_pers(rtlir::StateVarId id) const {
    const Persistence p = classify(id);
    return p == Persistence::PersistentAccessible || p == Persistence::Unknown;
  }

  StateSet s_pers() const;
  std::vector<rtlir::StateVarId> unknowns() const;

  // Tabular summary (name, class) for reports and documentation.
  std::string describe() const;

private:
  const rtlir::StateVarTable& svt_;
  const soc::Soc& soc_;
  std::vector<Persistence> cached_;
};


// Structural audit of the Transient classification (Sec 3.4's justification
// that interconnect buffers are "overwritten with every communication
// transaction"): a register is *trivially* transient when its write enable
// is constant-true — it cannot hold any value for longer than one cycle.
// Conditionally-written registers are listed for manual justification
// (e.g. an address latch that only holds stale data while its valid bit,
// itself trivially transient, is low).
struct TransienceAudit {
  std::vector<rtlir::StateVarId> trivially_transient; // rewritten every cycle
  std::vector<rtlir::StateVarId> conditionally_written;
};

TransienceAudit audit_transients(const rtlir::StateVarTable& svt,
                                 const PersistenceClassifier& classifier);

} // namespace upec
