// Algorithm 2 of the paper: the unrolled UPEC-SSC procedure (Fig. 4),
// producing explicit multi-cycle counterexamples.
//
//   S[0], S[1] ← S_¬victim ; k ← 1
//   loop:
//     S_cex ← check(UPEC-SSC-unrolled(k, S))
//     if S_cex = ∅:
//        if S[k] = S[k-1]  → hold  (close with the inductive proof of Alg. 1)
//        else k ← k+1 ; S[k] ← S[k-1]
//     else if S_cex ∩ S_pers ≠ ∅ → vulnerable (explicit k-cycle trace)
//     else S[k] ← S[k] \ S_cex
#pragma once

#include <optional>
#include <vector>

#include "upec/alg1.h"

namespace upec {

struct Alg2StepLog {
  unsigned k = 1;
  IterationLog iteration;
};

struct Alg2Result {
  Verdict verdict = Verdict::Unknown;
  unsigned final_k = 1;
  std::vector<Alg2StepLog> steps;
  std::vector<rtlir::StateVarId> persistent_hits;
  std::vector<rtlir::StateVarId> full_cex;
  std::optional<ipc::Waveform> waveform; // explicit k-cycle counterexample
  // When the unrolling converged ("hold"): the closing inductive proof.
  std::optional<Alg1Result> induction;
  double total_seconds = 0.0;
  SolverUsage stats;
  // Unknown verdict was (at least in part) a wall-clock deadline hit.
  bool timed_out = false;
};

struct Alg2Options {
  unsigned max_k = 16;
  unsigned max_iterations = 1000;
  bool extract_waveform = true;
  bool run_closing_induction = true;
  // See Alg1Options::saturate_cex.
  bool saturate_cex = true;
};

class UpecContext;

Alg2Result run_alg2(UpecContext& ctx, const Alg2Options& options = {});

} // namespace upec
