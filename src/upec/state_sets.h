// State-variable sets: the S, S_¬victim, S_pers bookkeeping of the UPEC-SSC
// procedure (Definitions 1 and 2 of the paper).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtlir/analyze.h"

namespace upec {

// Dense set over StateVarId with the operations Alg. 1 / Alg. 2 need.
class StateSet {
public:
  StateSet() = default;
  StateSet(std::size_t universe, bool full) : bits_(universe, full), count_(full ? universe : 0) {}

  static StateSet all(const rtlir::StateVarTable& svt) { return StateSet(svt.size(), true); }
  static StateSet none(const rtlir::StateVarTable& svt) { return StateSet(svt.size(), false); }

  bool contains(rtlir::StateVarId id) const { return id < bits_.size() && bits_[id]; }
  std::size_t size() const { return count_; }
  std::size_t universe() const { return bits_.size(); }

  void insert(rtlir::StateVarId id) {
    if (!bits_[id]) {
      bits_[id] = true;
      ++count_;
    }
  }
  void remove(rtlir::StateVarId id) {
    if (bits_[id]) {
      bits_[id] = false;
      --count_;
    }
  }
  void remove_all(const std::vector<rtlir::StateVarId>& ids) {
    for (auto id : ids) remove(id);
  }

  std::vector<rtlir::StateVarId> to_vector() const {
    std::vector<rtlir::StateVarId> out;
    out.reserve(count_);
    for (rtlir::StateVarId id = 0; id < bits_.size(); ++id) {
      if (bits_[id]) out.push_back(id);
    }
    return out;
  }

  friend bool operator==(const StateSet&, const StateSet&) = default;

private:
  std::vector<bool> bits_;
  std::size_t count_ = 0;
};

// S_¬victim (Def. 1): all state variables minus the CPU-internal ones. Our
// design-under-verification models the CPU at its bus interface (Obs. 1), so
// by construction no CPU-internal state exists; the helper still excludes any
// variables under the given scope prefixes so designs that *do* instantiate a
// core (or other excluded blocks) are handled uniformly. Victim memory words
// are not excluded here — their membership is symbolic (the victim address
// range) and handled by the per-word exemption condition in the macros.
StateSet s_not_victim(const rtlir::StateVarTable& svt,
                      const std::vector<std::string>& excluded_prefixes = {"soc.cpu."});

} // namespace upec
