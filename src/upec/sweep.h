// One UPEC iteration's counterexample collection, mode-dispatched.
//
// Computes S_cex = { sv in S : diff(sv, frame) satisfiable under the given
// assumptions } — the complete influence frontier of the victim at that
// frame. With threads == 1 this runs the classic incremental saturation loop
// on the context's main solver; with threads > 1 it fans the same computation
// across the CheckScheduler's worker pool. Both paths return the same sorted
// sets (the result is semantic, see ipc/scheduler.h), which is what makes
// multi-threaded runs bit-identical to single-threaded ones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ipc/cex.h"
#include "ipc/engine.h"
#include "ipc/scheduler.h"
#include "upec/state_sets.h"

namespace upec {

class UpecContext;
struct IterationLog;

struct SweepOutcome {
  // Violated iff s_cex is non-empty; Unknown on budget exhaustion or a
  // model/diff-literal disagreement (s_cex is then a lower bound).
  ipc::CheckStatus status = ipc::CheckStatus::Unknown;
  std::vector<rtlir::StateVarId> s_cex;      // sorted ascending
  std::vector<rtlir::StateVarId> pers_hits;  // sorted; s_cex ∩ S_pers
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  // Incremental-sweep bookkeeping (all zero/empty on the legacy path):
  // candidates skipped up front because a recorded UNSAT core still proves
  // them unable to differ, verdict-cache traffic during this sweep, and the
  // final chunk refutations (already mined into the context's pruner by
  // sweep_frame; exposed for tests).
  std::size_t pruned = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::vector<ipc::SweepResult::UnsatGroup> unsat_groups;
  // An Unknown status was (at least in part) a wall-clock deadline hit, as
  // opposed to conflict-budget exhaustion (see VerifyOptions::deadline_ms).
  bool timed_out = false;
};

SweepOutcome sweep_frame(UpecContext& ctx, const std::string& property_name,
                         const std::vector<encode::Lit>& assumptions, const StateSet& S,
                         unsigned frame, bool saturate);

// Vulnerable-verdict epilogue: re-solves on the context's main solver with a
// violation restricted to the persistent hits (each is individually
// satisfiable, so the solve succeeds barring a budget interrupt) and extracts
// the counterexample waveform from that model. Accounts the solve into `log`
// and `total_seconds`.
std::optional<ipc::Waveform> extract_pers_waveform(UpecContext& ctx,
                                                   const std::string& property_name,
                                                   const std::vector<encode::Lit>& assumptions,
                                                   const SweepOutcome& out, unsigned frame,
                                                   IterationLog& log, double& total_seconds);

struct SolverUsage;

// Fills `usage` with the context solver's statistics plus every scheduler
// worker's (aggregate + per-worker breakdown).
void collect_solver_usage(const UpecContext& ctx, SolverUsage& usage);

} // namespace upec
