#include "upec/report.h"

#include <iomanip>
#include <sstream>

namespace upec {

namespace {

void render_iteration_row(std::ostringstream& os, unsigned idx, const IterationLog& log,
                          int k = -1) {
  os << "  " << std::setw(4) << idx;
  if (k >= 0) os << std::setw(5) << k;
  os << std::setw(10) << log.s_size << std::setw(10) << log.cex_size << std::setw(10)
     << log.pers_hits << std::setw(12) << std::fixed << std::setprecision(3) << log.seconds
     << std::setw(12) << log.conflicts << "  "
     << (log.status == ipc::CheckStatus::Holds      ? "holds"
         : log.status == ipc::CheckStatus::Violated ? "cex"
         : log.timed_out                            ? "unknown (timed out)"
                                                    : "unknown")
     << "\n";
}

void render_hits(std::ostringstream& os, const UpecContext& ctx,
                 const std::vector<rtlir::StateVarId>& hits,
                 const std::vector<rtlir::StateVarId>& full) {
  os << "persistent state reached by victim information (S_cex ∩ S_pers):\n";
  for (rtlir::StateVarId sv : hits) {
    os << "  ! " << ctx.svt.name(sv) << "  [" << persistence_name(ctx.pers.classify(sv))
       << "]\n";
  }
  os << "all differing state variables in the counterexample:\n";
  for (rtlir::StateVarId sv : full) {
    os << "    " << ctx.svt.name(sv) << "  [" << persistence_name(ctx.pers.classify(sv))
       << "]\n";
  }
}

// Aggregated solver statistics: the main solver plus every scheduler worker
// (the single context solver alone under-counts as soon as threads > 1).
void render_solver_usage(std::ostringstream& os, const SolverUsage& usage) {
  const sat::SolverStats& t = usage.total;
  os << "solver usage (main";
  if (!usage.per_worker.empty()) os << " + " << usage.per_worker.size() << " workers";
  os << "): " << t.solve_calls << " solves, " << t.conflicts << " conflicts, " << t.decisions
     << " decisions, " << t.propagations << " propagations";
  if (t.exported_clauses != 0 || t.imported_clauses != 0) {
    os << ", shared clauses " << t.exported_clauses << " exported / " << t.imported_clauses
       << " imported";
  }
  os << "\n";
  if (usage.cache_hits != 0 || usage.cache_misses != 0 || usage.pruned_candidates != 0) {
    os << "incremental sweeps: " << usage.cache_hits << " cache hits / " << usage.cache_misses
       << " misses, " << usage.pruned_candidates << " candidates pruned by cores, "
       << usage.retained_learnts << " learnts retained\n";
  }
  if (usage.simplify.runs != 0) {
    const sat::SimplifyStats& p = usage.simplify;
    os << "preprocessing: " << p.runs << " runs / " << p.reuses << " reuses, "
       << p.eliminated_vars << " vars eliminated, " << p.subsumed_clauses << " subsumed, "
       << p.strengthened_clauses << " strengthened, " << p.failed_literals
       << " failed literals, " << p.fixed_vars << " fixed; last run " << p.input_clauses
       << " -> " << p.output_clauses << " clauses\n";
  }
  for (std::size_t w = 0; w < usage.per_worker.size(); ++w) {
    const sat::SolverStats& s = usage.per_worker[w];
    os << "  worker " << w << ": " << s.solve_calls << " solves, " << s.conflicts
       << " conflicts, " << s.decisions << " decisions, " << s.propagations
       << " propagations, " << s.learned_clauses << " learned";
    if (s.exported_clauses != 0 || s.imported_clauses != 0) {
      os << ", " << s.exported_clauses << " exported, " << s.imported_clauses << " imported";
    }
    if (w < usage.per_worker_cache_hits.size() && usage.per_worker_cache_hits[w] != 0) {
      os << ", " << usage.per_worker_cache_hits[w] << " cache hits";
    }
    os << "\n";
    // Portfolio-member breakdown: the members' counters sum to the worker
    // line above (collect_solver_usage derives the worker from the members
    // through one registry merge, so this is an identity, not a re-count).
    if (w < usage.per_worker_members.size() && !usage.per_worker_members[w].empty()) {
      for (std::size_t m = 0; m < usage.per_worker_members[w].size(); ++m) {
        const sat::SolverStats& ms = usage.per_worker_members[w][m];
        os << "    member " << m << ": " << ms.solve_calls << " solves, " << ms.conflicts
           << " conflicts, " << ms.decisions << " decisions, " << ms.propagations
           << " propagations, " << ms.learned_clauses << " learned\n";
      }
    }
    // Robustness counters only exist under portfolio / external backends;
    // plain in-proc workers report an all-zero BackendHealth and get no line.
    if (w < usage.per_worker_health.size()) {
      const sat::BackendHealth& h = usage.per_worker_health[w];
      if (h.solves != 0) {
        os << "    health: " << h.solves << " backend solves (" << h.sat << " sat / " << h.unsat
           << " unsat / " << h.unknown << " unknown)";
        if (h.external_failures != 0) os << ", " << h.external_failures << " external failures";
        if (h.restarts != 0) os << ", " << h.restarts << " restarts";
        if (h.timeouts != 0) os << ", " << h.timeouts << " timeouts";
        if (h.degraded_solves != 0) os << ", " << h.degraded_solves << " degraded";
        if (h.cancelled != 0) os << ", " << h.cancelled << " cancelled";
        if (h.quarantined) os << ", QUARANTINED";
        os << "\n";
      }
    }
  }
}

} // namespace

std::string iteration_table(const UpecContext& ctx, const Alg1Result& result) {
  (void)ctx;
  std::ostringstream os;
  os << "  iter      |S|    |Scex|     pers     time[s]   conflicts  status\n";
  for (std::size_t i = 0; i < result.iterations.size(); ++i) {
    render_iteration_row(os, static_cast<unsigned>(i + 1), result.iterations[i]);
  }
  return os.str();
}

std::string iteration_table(const UpecContext& ctx, const Alg2Result& result) {
  (void)ctx;
  std::ostringstream os;
  os << "  iter    k      |S|    |Scex|     pers     time[s]   conflicts  status\n";
  for (std::size_t i = 0; i < result.steps.size(); ++i) {
    render_iteration_row(os, static_cast<unsigned>(i + 1), result.steps[i].iteration,
                         static_cast<int>(result.steps[i].k));
  }
  return os.str();
}

std::string render_report(const UpecContext& ctx, const Alg1Result& result) {
  std::ostringstream os;
  os << "UPEC-SSC (Alg. 1, 2-cycle property)\n";
  os << iteration_table(ctx, result);
  os << "verdict: " << verdict_name(result.verdict)
     << (result.verdict == Verdict::Unknown && result.timed_out ? " (timed out)" : "")
     << "  (total " << std::fixed << std::setprecision(3) << result.total_seconds << " s)\n";
  render_solver_usage(os, result.stats);
  if (result.verdict == Verdict::Vulnerable) {
    render_hits(os, ctx, result.persistent_hits, result.full_cex);
    if (result.waveform) {
      os << "counterexample waveform (instance A / instance B where differing):\n"
         << result.waveform->pretty();
    }
  } else if (result.verdict == Verdict::Secure) {
    os << "final inductive set size |S| = " << result.final_s.size() << " of "
       << ctx.svt.size() << " state variables (S_pers ⊆ S ⊆ S_¬victim)\n";
  }
  return os.str();
}

std::string render_report(const UpecContext& ctx, const Alg2Result& result) {
  std::ostringstream os;
  os << "UPEC-SSC unrolled (Alg. 2), final k = " << result.final_k << "\n";
  os << iteration_table(ctx, result);
  os << "verdict: " << verdict_name(result.verdict)
     << (result.verdict == Verdict::Unknown && result.timed_out ? " (timed out)" : "")
     << "  (total " << std::fixed << std::setprecision(3) << result.total_seconds << " s)\n";
  render_solver_usage(os, result.stats);
  if (result.verdict == Verdict::Vulnerable) {
    render_hits(os, ctx, result.persistent_hits, result.full_cex);
    if (result.waveform) {
      os << "explicit " << result.final_k
         << "-cycle counterexample (instance A / instance B where differing):\n"
         << result.waveform->pretty();
    }
  }
  if (result.induction) {
    os << "closing induction: " << verdict_name(result.induction->verdict) << " after "
       << result.induction->iterations.size() << " iteration(s)\n";
  }
  return os.str();
}

} // namespace upec
