// Algorithm 1 of the paper: the UPEC-SSC fixed-point procedure over the
// 2-cycle property of Fig. 3.
//
//   S ← S_¬victim
//   loop:
//     S_cex ← check(UPEC-SSC(S))
//     if S_cex = ∅            → secure   (S is inductive: unbounded validity)
//     if S_cex ∩ S_pers ≠ ∅   → vulnerable, report S_cex
//     else                     → S ← S \ S_cex
//
// Checks are incremental: the transition relation and all difference/equality
// literals are encoded once; each iteration only swaps the assumption set and
// the violation clause.
#pragma once

#include <optional>
#include <vector>

#include "ipc/cex.h"
#include "ipc/engine.h"
#include "sat/backend.h"
#include "sat/simplify.h"
#include "upec/state_sets.h"
#include "util/metrics.h"

namespace upec {

class UpecContext;

enum class Verdict : std::uint8_t { Secure, Vulnerable, Unknown };
const char* verdict_name(Verdict v);

struct IterationLog {
  std::size_t s_size = 0;       // |S| entering the iteration
  std::size_t cex_size = 0;     // |S_cex|
  std::size_t pers_hits = 0;    // |S_cex ∩ S_pers|
  double seconds = 0.0;
  std::uint64_t conflicts = 0;
  ipc::CheckStatus status = ipc::CheckStatus::Unknown;
  std::vector<rtlir::StateVarId> removed;
  // Incremental-sweep work avoidance this iteration (zero in legacy mode):
  // candidates skipped because a recorded UNSAT core still refutes them, and
  // verdict-cache traffic of the iteration's solves.
  std::size_t pruned = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  // The iteration's Unknown status came from a wall-clock deadline hit
  // (VerifyOptions::deadline_ms) rather than conflict-budget exhaustion.
  bool timed_out = false;
};

// Cumulative solver statistics behind a verification run: the context's main
// solver plus, under threads > 1, every scheduler worker. Reports aggregate
// `total` and can break down `per_worker`.
struct SolverUsage {
  // Derived from `metrics` below: the sum of the main solver and every
  // worker (which in turn is the sum of its portfolio members). All
  // aggregation is routed through MetricsSnapshot::merge in
  // collect_solver_usage — nothing sums stats ad hoc anymore.
  sat::SolverStats total;
  std::vector<sat::SolverStats> per_worker;  // empty when no scheduler ran
  // Worker w's portfolio-member breakdown (parallel to per_worker; empty
  // inner vector = single-solver worker). Members sum to per_worker[w].
  std::vector<std::vector<sat::SolverStats>> per_worker_members;
  // Incremental-sweep counters (all zero with the features off): shared
  // verdict-cache traffic (main solver + workers), candidates pruned via
  // recorded UNSAT cores, and the learnt clauses still live in the solvers
  // at collection time — the databases the incremental mode carries across
  // rounds and iterations.
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t pruned_candidates = 0;
  std::size_t retained_learnts = 0;
  std::vector<std::uint64_t> per_worker_cache_hits;  // parallel to per_worker
  // Per-worker robustness counters (parallel to per_worker; all-zero entries
  // for plain in-proc workers, populated under portfolio/external backends).
  std::vector<sat::BackendHealth> per_worker_health;
  // Snapshot-preprocessing counters (all zero with preprocessing off or no
  // scheduler): real simplifications vs generation-cache reuses, eliminated
  // variables, removed/strengthened clauses, and the last run's formula
  // shrinkage (see sat/simplify.h).
  sat::SimplifyStats simplify;
  // The unified named-counter registry for the run: per-component snapshots
  // under `sat.solver.main.`, `sat.solver.w<k>.`, `sat.solver.w<k>.m<j>.`,
  // their merge under `sat.solver.total.`, plus `upec.*`, `sat.channel.*`,
  // `sat.simplify.*`, and `sat.health.w<k>.*`. Counter naming and merge
  // conventions: README "Observability".
  util::MetricsSnapshot metrics;
};

struct Alg1Result {
  Verdict verdict = Verdict::Unknown;
  std::vector<IterationLog> iterations;
  // Vulnerable: the persistent state variables the victim can influence.
  // Complete and sorted: every member of the final S whose difference is
  // realizable, independent of solver model order or thread count.
  std::vector<rtlir::StateVarId> persistent_hits;
  std::vector<rtlir::StateVarId> full_cex;
  std::optional<ipc::Waveform> waveform;
  // Secure: the final inductive set (S_pers ⊆ S ⊆ S_¬victim).
  StateSet final_s;
  double total_seconds = 0.0;
  SolverUsage stats;
  // Unknown verdict was (at least in part) a wall-clock deadline hit.
  bool timed_out = false;
};

struct Alg1Options {
  unsigned max_iterations = 1000;
  bool extract_waveform = true;
  // Saturate each counterexample: within one iteration, re-solve until no
  // *new* state variable can differ, and remove the union. Iterations then
  // count propagation depth (the paper's granularity) rather than individual
  // solver models.
  bool saturate_cex = true;
  // Optional initial S (defaults to S_¬victim); Alg. 2's closing induction
  // passes its converged S[k] here.
  std::optional<StateSet> initial_s;
};

Alg1Result run_alg1(UpecContext& ctx, const Alg1Options& options = {});

} // namespace upec
