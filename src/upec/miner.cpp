#include "upec/miner.h"

#include <sstream>

#include "sim/simulator.h"
#include "util/rng.h"

namespace upec {

std::vector<MinedInvariant> mine_constant_invariants(const rtlir::Design& design,
                                                     const rtlir::StateVarTable& svt,
                                                     const MinerOptions& options) {
  // --- phase 1: random simulation from reset --------------------------------------
  sim::Simulator simulator(design);
  Xoshiro256 rng(options.seed);

  const std::size_t num_regs = design.registers().size();
  std::vector<bool> constant(num_regs, true);
  std::vector<std::uint64_t> value(num_regs);
  for (std::size_t r = 0; r < num_regs; ++r) value[r] = simulator.reg_value(r);

  // Resolve biased-stimulus pools to input indices once.
  std::vector<const std::vector<std::uint64_t>*> pool(design.inputs().size(), nullptr);
  for (std::uint32_t i = 0; i < design.inputs().size(); ++i) {
    auto it = options.input_pool.find(design.net(design.inputs()[i].net).name);
    if (it != options.input_pool.end() && !it->second.empty()) pool[i] = &it->second;
  }

  for (unsigned cycle = 0; cycle < options.cycles; ++cycle) {
    for (std::uint32_t i = 0; i < design.inputs().size(); ++i) {
      if (pool[i] && rng.chance(0.5)) {
        simulator.set_input(i, (*pool[i])[rng.below(pool[i]->size())]);
      } else {
        simulator.set_input(i, rng.next());
      }
    }
    simulator.step();
    for (std::size_t r = 0; r < num_regs; ++r) {
      if (constant[r] && simulator.reg_value(r) != value[r]) constant[r] = false;
    }
  }

  // --- phase 2: inductive discharge -------------------------------------------------
  std::vector<MinedInvariant> out;
  for (std::uint32_t r = 0; r < num_regs; ++r) {
    if (!constant[r]) continue;
    if (design.width(design.registers()[r].q) > options.max_width) continue;
    MinedInvariant mined;
    mined.reg = r;
    mined.value = value[r];
    std::ostringstream desc;
    desc << svt.name(svt.of_register(r)) << " == "
         << BitVec(design.width(design.registers()[r].q), value[r]).to_hex();
    mined.description = desc.str();
    if (options.prove) {
      mined.proven = ipc::check_inductive(design, svt, to_invariant(design, mined)).empty();
    }
    out.push_back(std::move(mined));
  }
  return out;
}

ipc::Invariant to_invariant(const rtlir::Design& design, const MinedInvariant& mined) {
  ipc::Invariant inv;
  inv.name = mined.description;
  const std::uint32_t reg = mined.reg;
  const unsigned width = design.width(design.registers()[reg].q);
  const std::uint64_t value = mined.value;
  inv.build = [reg, width, value](encode::CnfBuilder& cnf, encode::UnrolledInstance& inst,
                                  unsigned frame) {
    return cnf.v_eq(inst.reg_at(frame, reg), cnf.constant_vec(BitVec(width, value)));
  };
  return inv;
}

} // namespace upec
