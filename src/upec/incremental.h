// UNSAT-core frontier pruning for the Alg. 1 / Alg. 2 sweeps.
//
// When a candidate's activation query comes back UNSAT, the refuting
// assumption core C proves: the formula together with C's equivalence/macro
// assumptions entails ~diff(j) for every candidate j the query enabled.
// (Selector literals in C are irrelevant: any model of F ∧ C_eq/macro ∧
// diff(j) extends to the selector variables by enabling j alone — the
// implication e_j → diff(j) is satisfied because diff(j) already holds, and
// selectors occur nowhere else except positively in the group chain — so it
// satisfies every selector literal a core could contain, the positively
// assumed e_j included. See README "Incremental sweeps".) That fact outlives
// the iteration: as long as every assumption in C is assumed again, j cannot
// re-enter the frontier, so a later sweep at the same frame may skip j
// without solving anything. Per-candidate queries make these cores precise —
// each mentions only the eq assumptions that one refutation needs, so
// shrinking S elsewhere rarely invalidates them.
//
// FrontierPruner records, per (frame, candidate), the justification split
// into eq-assumption state variables and the remaining (macro) assumption
// literals, and filters candidate lists against the assumptions of the
// current query. No stability assumption is made about macro literals — a
// justification only fires when each of its literals is literally present in
// the current assumption set.
//
// Pruning never changes a verdict or a frontier: a pruned candidate is
// exactly one whose diff query is already proven UNSAT under (a subset of)
// the current assumptions, i.e. one the sweep would refute again. It only
// removes re-proving work, which is what keeps the determinism contract of
// ipc/scheduler.h intact (pinned by test_determinism / test_incremental).
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "encode/miter.h"
#include "upec/state_sets.h"

namespace upec {

class FrontierPruner {
public:
  // One refutation's reusable part: the eq-assumption state variables and
  // every other non-selector assumption literal of the core.
  struct Justification {
    std::vector<rtlir::StateVarId> eq_svs;
    std::vector<sat::Lit> other_lits;
  };

  // Records that every sv in `enabled` was refuted at `frame` under `just`
  // (shared across the group — cores justify each enabled candidate
  // individually, see the header comment).
  void record(unsigned frame, const std::vector<rtlir::StateVarId>& enabled, Justification just);

  // Splits `members` into candidates that must still be swept (`eligible`,
  // order preserved) and candidates whose recorded justification is entailed
  // by the current query — every justification eq-sv in `eq_assumed` and
  // every other justification literal in `assumption_lits` (keyed by
  // Lit::index). Accumulates the pruned count.
  void filter(unsigned frame, const std::vector<rtlir::StateVarId>& members,
              const std::unordered_set<rtlir::StateVarId>& eq_assumed,
              const std::unordered_set<std::int32_t>& assumption_lits,
              std::vector<rtlir::StateVarId>& eligible, std::vector<rtlir::StateVarId>& pruned);

  std::uint64_t total_pruned() const { return total_pruned_; }

private:
  static std::uint64_t key(unsigned frame, rtlir::StateVarId sv) {
    return (static_cast<std::uint64_t>(frame) << 32) | sv;
  }

  // Latest justification per (frame, candidate). Shared pointers because one
  // group refutation justifies every enabled member.
  std::unordered_map<std::uint64_t, std::shared_ptr<const Justification>> just_;
  std::uint64_t total_pruned_ = 0;
};

} // namespace upec
