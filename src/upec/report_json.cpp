#include "upec/report_json.h"

#include <cstdint>

#include "util/json.h"

namespace upec {

namespace {

// The verdict-relevant VerifyOptions echo. One serialization shared by the
// report's "config" member and by config_hash — anything added here changes
// the hash, anything observability-only must stay out (see report_json.h).
void write_config(util::JsonWriter& w, const VerifyOptions& o) {
  w.begin_object();
  w.key("vte_frames");
  w.value(o.macros.vte_frames);
  w.key("victim_regions");
  w.begin_array();
  for (const std::string& r : o.macros.victim_regions) w.value(r);
  w.end_array();
  w.key("firmware_constraints");
  w.value(o.macros.firmware_constraints);
  w.key("conflict_budget");
  w.value(o.conflict_budget);
  w.key("threads");
  w.value(o.threads);
  w.key("share_clauses");
  w.value(o.share_clauses);
  w.key("incremental_sweeps");
  w.value(o.incremental_sweeps);
  w.key("verdict_cache");
  w.value(o.verdict_cache);
  w.key("deadline_ms");
  w.value(o.deadline_ms);
  w.key("portfolio");
  w.value(o.portfolio);
  w.key("portfolio_seed");
  w.value(o.portfolio_seed);
  w.key("preprocess");
  w.value(o.preprocess);
  w.key("external_solver");
  w.begin_array();
  for (const std::string& a : o.external_solver) w.value(a);
  w.end_array();
  w.key("external_deadline_ms");
  w.value(o.external_deadline_ms);
  w.end_object();
}

std::string config_json(const VerifyOptions& options) {
  util::JsonWriter w;
  write_config(w, options);
  return w.take();
}

void write_iteration(util::JsonWriter& w, const UpecContext& ctx, const IterationLog& log,
                     int k) {
  w.begin_object();
  if (k >= 0) {
    w.key("k");
    w.value(k);
  }
  w.key("s_size");
  w.value(log.s_size);
  w.key("cex_size");
  w.value(log.cex_size);
  w.key("pers_hits");
  w.value(log.pers_hits);
  w.key("seconds");
  w.value(log.seconds);
  w.key("conflicts");
  w.value(log.conflicts);
  w.key("status");
  w.value(log.status == ipc::CheckStatus::Holds      ? "holds"
          : log.status == ipc::CheckStatus::Violated ? "cex"
                                                     : "unknown");
  w.key("timed_out");
  w.value(log.timed_out);
  w.key("pruned");
  w.value(log.pruned);
  w.key("cache_hits");
  w.value(log.cache_hits);
  w.key("cache_misses");
  w.value(log.cache_misses);
  w.key("removed");
  w.begin_array();
  for (rtlir::StateVarId sv : log.removed) w.value(ctx.svt.name(sv));
  w.end_array();
  w.end_object();
}

void write_names(util::JsonWriter& w, const UpecContext& ctx,
                 const std::vector<rtlir::StateVarId>& svs) {
  w.begin_array();
  for (rtlir::StateVarId sv : svs) w.value(ctx.svt.name(sv));
  w.end_array();
}

// Shared head (schema .. config_hash) and tail (metrics) of both reports.
void write_head(util::JsonWriter& w, const UpecContext& ctx, const char* algorithm,
                Verdict verdict, bool timed_out, double total_seconds) {
  w.key("schema");
  w.value("upec-report-v1");
  w.key("algorithm");
  w.value(algorithm);
  w.key("verdict");
  w.value(verdict_name(verdict));
  w.key("timed_out");
  w.value(timed_out);
  w.key("total_seconds");
  w.value(total_seconds);
  w.key("config");
  write_config(w, ctx.options);
  w.key("config_hash");
  w.value(config_hash(ctx.options));
}

void write_tail(util::JsonWriter& w, const UpecContext& ctx, const SolverUsage& stats) {
  w.key("state_vars");
  w.value(ctx.svt.size());
  w.key("workers");
  w.value(stats.per_worker.size());
  w.key("metrics");
  stats.metrics.write_json(w);
}

} // namespace

std::string config_hash(const VerifyOptions& options) {
  const std::string canon = config_json(options);
  std::uint64_t h = 1469598103934665603ULL; // FNV-1a offset basis
  for (unsigned char c : canon) {
    h ^= c;
    h *= 1099511628211ULL; // FNV-1a prime
  }
  static const char* hex = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = hex[h & 0xf];
    h >>= 4;
  }
  return out;
}

std::string render_json(const UpecContext& ctx, const Alg1Result& result) {
  util::JsonWriter w;
  w.begin_object();
  write_head(w, ctx, "alg1", result.verdict, result.timed_out, result.total_seconds);
  w.key("iterations");
  w.begin_array();
  for (const IterationLog& log : result.iterations) write_iteration(w, ctx, log, -1);
  w.end_array();
  w.key("persistent_hits");
  write_names(w, ctx, result.persistent_hits);
  w.key("full_cex");
  write_names(w, ctx, result.full_cex);
  w.key("waveform");
  w.value(result.waveform.has_value());
  w.key("final_s_size");
  w.value(result.final_s.size());
  write_tail(w, ctx, result.stats);
  w.end_object();
  return w.take();
}

std::string render_json(const UpecContext& ctx, const Alg2Result& result) {
  util::JsonWriter w;
  w.begin_object();
  write_head(w, ctx, "alg2", result.verdict, result.timed_out, result.total_seconds);
  w.key("iterations");
  w.begin_array();
  for (const Alg2StepLog& step : result.steps) {
    write_iteration(w, ctx, step.iteration, static_cast<int>(step.k));
  }
  w.end_array();
  w.key("persistent_hits");
  write_names(w, ctx, result.persistent_hits);
  w.key("full_cex");
  write_names(w, ctx, result.full_cex);
  w.key("waveform");
  w.value(result.waveform.has_value());
  w.key("final_k");
  w.value(result.final_k);
  w.key("induction");
  if (result.induction) {
    w.begin_object();
    w.key("verdict");
    w.value(verdict_name(result.induction->verdict));
    w.key("iterations");
    w.value(result.induction->iterations.size());
    w.key("timed_out");
    w.value(result.induction->timed_out);
    w.end_object();
  } else {
    w.value_null();
  }
  write_tail(w, ctx, result.stats);
  w.end_object();
  return w.take();
}

} // namespace upec
