#include "upec/advisor.h"

#include <map>
#include <sstream>

namespace upec {

const char* mitigation_name(MitigationKind kind) {
  switch (kind) {
    case MitigationKind::PrivateMemoryMapping: return "private-memory mapping";
    case MitigationKind::FirmwareConstraints: return "firmware constraints";
    case MitigationKind::HardwareGuard: return "hardware access guard";
    case MitigationKind::ClearOnContextSwitch: return "clear state on context switch";
    case MitigationKind::TimerAccessControl: return "timer access control";
  }
  return "?";
}

namespace {

std::string subsystem_of(const std::string& name) {
  // "soc.<block>.<reg>" or "soc.<mem>[w]" -> "<block>".
  const std::size_t first = name.find('.');
  if (first == std::string::npos) return name;
  std::size_t second = name.find_first_of(".[", first + 1);
  if (second == std::string::npos) second = name.size();
  return name.substr(first + 1, second - first - 1);
}

} // namespace

std::vector<Suggestion> advise(const UpecContext& ctx,
                               const std::vector<rtlir::StateVarId>& persistent_hits) {
  std::map<std::string, std::vector<rtlir::StateVarId>> by_subsystem;
  for (rtlir::StateVarId sv : persistent_hits) {
    by_subsystem[subsystem_of(ctx.svt.name(sv))].push_back(sv);
  }

  std::vector<Suggestion> out;
  for (auto& [subsystem, evidence] : by_subsystem) {
    Suggestion s;
    s.subsystem = subsystem;
    s.evidence = evidence;
    if (subsystem == "pub_ram" || subsystem == "priv_ram") {
      s.kind = MitigationKind::PrivateMemoryMapping;
      s.rationale =
          "victim-dependent data reaches attacker-readable memory words via IP "
          "write progress; isolating the victim's region on its own memory "
          "device removes the shared arbitration point (Sec 4.2)";
      s.how_to_apply =
          "MacroConfig::victim_regions = {AddrMap::kPrivRam} "
          "(countermeasure_options()), plus constraints for IPs that can still "
          "reach the private crossbar";
    } else if (subsystem == "dma") {
      s.kind = MitigationKind::FirmwareConstraints;
      s.rationale =
          "the DMA's status/progress registers record completion timing that "
          "victim contention modulates; restricting its legal configurations "
          "keeps it off the protected path";
      s.how_to_apply =
          "MacroConfig::firmware_constraints = true (legal SRC/DST windows, "
          "write legality); hardware alternative: SocConfig::hw_private_guard";
    } else if (subsystem == "hwpe") {
      s.kind = MitigationKind::FirmwareConstraints;
      s.rationale =
          "the accelerator's overwrite progress is the timer-free recording "
          "medium of the Sec 4.1 attack; its reach must exclude memory shared "
          "with victim traffic, or its progress state must be scrubbed";
      s.how_to_apply =
          "constrain HWPE DST/LEN windows as firmware constraints, or apply "
          "the private-memory mapping so victim traffic never shares its bank";
    } else if (subsystem == "timer") {
      s.kind = MitigationKind::TimerAccessControl;
      s.rationale =
          "timer state records event timing; note Sec 4.1: denying timer "
          "access does NOT remove the accelerator+memory variant, so this "
          "mitigation is insufficient alone";
      s.how_to_apply =
          "deny TIMER register access to untrusted tasks and combine with the "
          "private-memory mapping";
    } else if (subsystem == "event") {
      s.kind = MitigationKind::ClearOnContextSwitch;
      s.rationale =
          "sticky event-pending bits persist across the context switch and "
          "encode completion ordering";
      s.how_to_apply =
          "have the context-switch handler clear EVENT.PENDING (W1C) before "
          "yielding to untrusted tasks";
    } else {
      s.kind = MitigationKind::ClearOnContextSwitch;
      s.rationale = "persistent state outside the cataloged IPs; scrub or gate it";
      s.how_to_apply = "inspect the named registers and add a switch-time clear";
    }
    out.push_back(std::move(s));
  }
  return out;
}

std::string render_advice(const UpecContext& ctx, const std::vector<Suggestion>& suggestions) {
  std::ostringstream os;
  if (suggestions.empty()) {
    os << "no persistent sinks: nothing to mitigate\n";
    return os.str();
  }
  os << "countermeasure suggestions (UPEC-SSC driven, " << suggestions.size()
     << " subsystem(s) affected):\n";
  for (const Suggestion& s : suggestions) {
    os << "  [" << s.subsystem << "] " << mitigation_name(s.kind) << "\n";
    os << "      why:   " << s.rationale << "\n";
    os << "      apply: " << s.how_to_apply << "\n";
    os << "      evidence:";
    for (rtlir::StateVarId sv : s.evidence) os << ' ' << ctx.svt.name(sv);
    os << "\n";
  }
  return os.str();
}

} // namespace upec
