#include "upec/macros.h"

#include <cassert>
#include <stdexcept>

namespace upec {

using encode::Bits;
using encode::Lit;

namespace {

std::uint32_t find_input(const rtlir::Design& d, const std::string& name) {
  for (std::uint32_t i = 0; i < d.inputs().size(); ++i) {
    if (d.net(d.inputs()[i].net).name == name) return i;
  }
  throw std::runtime_error("missing input: " + name);
}

} // namespace

SsMacros::SsMacros(encode::Miter& miter, const soc::Soc& soc, MacroConfig config)
    : miter_(miter), soc_(soc), config_(std::move(config)) {
  const rtlir::Design& d = *soc.design;
  in_req_ = find_input(d, "soc.cpu.req");
  in_addr_ = find_input(d, "soc.cpu.addr");
  in_we_ = find_input(d, "soc.cpu.we");
  in_wdata_ = find_input(d, "soc.cpu.wdata");
  in_vlo_ = find_input(d, "soc.spec.victim_lo");
  in_vhi_ = find_input(d, "soc.spec.victim_hi");
}

const Bits& SsMacros::victim_lo() { return miter_.inst_a().input_at(0, in_vlo_); }
const Bits& SsMacros::victim_hi() { return miter_.inst_a().input_at(0, in_vhi_); }

Lit SsMacros::in_victim(const Bits& addr) {
  encode::CnfBuilder& cnf = miter_.cnf();
  const Lit ge = ~cnf.v_ult(addr, victim_lo());
  const Lit le = ~cnf.v_ult(victim_hi(), addr);
  return cnf.and2(ge, le);
}

Lit SsMacros::exempt_for(encode::Miter& m, rtlir::StateVarId sv) {
  // Memory words whose byte address may fall inside the symbolic victim
  // range; everything else is never exempt (Def. 1: only victim *memory* is
  // excluded from S_¬victim membership reasoning).
  const rtlir::StateVar& v = m.state_vars().var(sv);
  if (v.kind != rtlir::StateVar::Kind::MemWord) return m.cnf().lit_false();
  const std::int64_t byte_addr = soc_.word_address(v.index, v.word);
  if (byte_addr < 0) return m.cnf().lit_false();
  return in_victim(m.cnf().constant_vec(BitVec(32, static_cast<std::uint64_t>(byte_addr))));
}

SsMacros::CpuIf SsMacros::cpu_if(encode::UnrolledInstance& inst, unsigned frame) {
  CpuIf c;
  c.req = inst.input_at(frame, in_req_);
  c.addr = inst.input_at(frame, in_addr_);
  c.we = inst.input_at(frame, in_we_);
  c.wdata = inst.input_at(frame, in_wdata_);
  return c;
}

Lit SsMacros::vte_frame(unsigned frame) {
  if (frame < vte_cache_.size() && !(vte_cache_[frame] == Lit::undef())) {
    return vte_cache_[frame];
  }
  encode::CnfBuilder& cnf = miter_.cnf();
  const CpuIf a = cpu_if(miter_.inst_a(), frame);
  const CpuIf b = cpu_if(miter_.inst_b(), frame);

  // Accesses to the protected (victim) range are free; everything else must
  // match between the instances.
  const Lit pa = cnf.and2(a.req[0], in_victim(a.addr));
  const Lit pb = cnf.and2(b.req[0], in_victim(b.addr));
  const Lit na = cnf.and2(a.req[0], ~pa); // non-protected access in A
  const Lit nb = cnf.and2(b.req[0], ~pb);

  const Lit same_kind = cnf.xnor2(na, nb);
  const Lit payload_eq = cnf.and_all({cnf.v_eq(a.addr, b.addr), cnf.xnor2(a.we[0], b.we[0]),
                                      cnf.v_eq(a.wdata, b.wdata)});
  const Lit both = cnf.and2(na, nb);
  const Lit body = cnf.and2(same_kind, cnf.or2(~both, payload_eq));

  if (vte_cache_.size() <= frame) vte_cache_.resize(frame + 1, Lit::undef());
  vte_cache_[frame] = body;
  return body;
}

Lit SsMacros::inputs_equal_frame(unsigned frame) {
  if (frame < eq_cache_.size() && !(eq_cache_[frame] == Lit::undef())) return eq_cache_[frame];
  encode::CnfBuilder& cnf = miter_.cnf();
  const CpuIf a = cpu_if(miter_.inst_a(), frame);
  const CpuIf b = cpu_if(miter_.inst_b(), frame);
  const Lit body =
      cnf.and_all({cnf.xnor2(a.req[0], b.req[0]), cnf.v_eq(a.addr, b.addr),
                   cnf.xnor2(a.we[0], b.we[0]), cnf.v_eq(a.wdata, b.wdata)});
  if (eq_cache_.size() <= frame) eq_cache_.resize(frame + 1, Lit::undef());
  eq_cache_[frame] = body;
  return body;
}

Lit SsMacros::spec_wellformed() {
  if (have_spec_) return spec_lit_;
  encode::CnfBuilder& cnf = miter_.cnf();
  const Bits& lo = victim_lo();
  const Bits& hi = victim_hi();
  const Lit ordered = ~cnf.v_ult(hi, lo);
  // The whole range must lie within one of the allowed RAM regions.
  Bits region_ok;
  for (const std::string& rname : config_.victim_regions) {
    const soc::Region& r = soc_.map.region(rname);
    const Lit lo_ok = ~cnf.v_ult(lo, cnf.constant_vec(BitVec(32, r.base)));
    const Lit hi_ok = cnf.v_ult(hi, cnf.constant_vec(BitVec(32, r.end())));
    region_ok.push_back(cnf.and2(lo_ok, hi_ok));
  }
  spec_lit_ = cnf.and2(ordered, cnf.or_all(region_ok));
  have_spec_ = true;
  return spec_lit_;
}

std::vector<Lit> SsMacros::firmware_constraint_lits(unsigned k) {
  std::vector<Lit> lits;
  encode::CnfBuilder& cnf = miter_.cnf();
  const rtlir::Design& d = *soc_.design;
  const soc::Region& pub = soc_.map.region(soc::AddrMap::kPubRam);
  const soc::Region& dma = soc_.map.region(soc::AddrMap::kDma);

  // A DMA pointer is legal if no address it can generate (pointer + up to
  // 2^16 words of offset) reaches the private RAM: either it lies in the
  // public RAM (whose addresses are far above the private bank) or it is
  // small enough that the maximum offset still falls short of the private
  // base. The reset value 0 is legal, which keeps the invariant inductive.
  const soc::Region& priv = soc_.map.region(soc::AddrMap::kPrivRam);
  const std::uint32_t safe_low = priv.base - (0x10000u << 2);
  auto legal_dma_ptr = [&](const Bits& v) {
    const Lit below = cnf.v_ult(v, cnf.constant_vec(BitVec(32, safe_low)));
    const Lit ge = ~cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.base)));
    const Lit lt = cnf.v_ult(v, cnf.constant_vec(BitVec(32, pub.end())));
    return cnf.or2(below, cnf.and2(ge, lt));
  };

  // Decode-accurate "write to the DMA SRC or DST register": the peripheral
  // decodes the word offset addr[5:2] after region selection, so both parts
  // must appear in the predicate (an address outside the region can share the
  // offset bits; an address inside it with offset >= 2 hits other registers).
  // `check_region` is set for CPU-interface addresses (the crossbar selects
  // the DMA slave by region) and cleared for the already-staged request in
  // front of the DMA (the peripheral itself only decodes the offset, so the
  // constraint must cover every state the decode can fire from).
  auto dma_cfg_write = [&](const Bits& req, const Bits& we, const Bits& addr,
                           bool check_region) {
    const Bits off = cnf.v_slice(addr, 2, 4);
    const Lit off01 = cnf.or2(cnf.v_eq(off, cnf.constant_vec(BitVec(4, 0))),
                              cnf.v_eq(off, cnf.constant_vec(BitVec(4, 1))));
    Lit hit = cnf.and_all({req[0], we[0], off01});
    if (check_region) {
      const Lit in_region =
          cnf.and2(~cnf.v_ult(addr, cnf.constant_vec(BitVec(32, dma.base))),
                   cnf.v_ult(addr, cnf.constant_vec(BitVec(32, dma.end()))));
      hit = cnf.and2(hit, in_region);
    }
    return hit;
  };

  const std::int64_t src_reg = d.find_register("soc.dma.src_q");
  const std::int64_t dst_reg = d.find_register("soc.dma.dst_q");
  const std::int64_t rsel1 = d.find_register("soc.xbar_priv.s0.rsel_master_q");
  const std::int64_t rsel2 = d.find_register("soc.xbar_priv.s0.rsel_master_q2");
  // Staged request registers of the crossbar slice in front of the DMA's
  // configuration port: a configuration write is in flight for one cycle.
  const std::int64_t cfg_req = d.find_register("soc.xbar_pub.s3.sreq_q");
  const std::int64_t cfg_addr = d.find_register("soc.xbar_pub.s3.saddr_q");
  const std::int64_t cfg_we = d.find_register("soc.xbar_pub.s3.swe_q");
  const std::int64_t cfg_wdata = d.find_register("soc.xbar_pub.s3.swdata_q");
  assert(src_reg >= 0 && dst_reg >= 0 && rsel1 >= 0 && rsel2 >= 0);
  assert(cfg_req >= 0 && cfg_addr >= 0 && cfg_we >= 0 && cfg_wdata >= 0);

  for (encode::UnrolledInstance* inst : {&miter_.inst_a(), &miter_.inst_b()}) {
    // Legal DMA configuration at t: source and destination windows lie in the
    // public RAM. (These are the "set of legal configurations ... compiled as
    // firmware constraints" of Sec 4.2.)
    lits.push_back(legal_dma_ptr(inst->reg_at(0, static_cast<std::uint32_t>(src_reg))));
    lits.push_back(legal_dma_ptr(inst->reg_at(0, static_cast<std::uint32_t>(dst_reg))));
    // Derived interconnect invariant: the private crossbar's response routing
    // never points at the DMA (master index 1). Inductive given the legal
    // configurations — discharged by the invariant side-proof in the tests.
    lits.push_back(~inst->reg_at(0, static_cast<std::uint32_t>(rsel1))[0]);
    lits.push_back(~inst->reg_at(0, static_cast<std::uint32_t>(rsel2))[0]);
    // In-flight configuration writes (already latched in the interconnect at
    // t) must be legal as well — otherwise legality at t would not survive to
    // t+1 and the induction would be unsound.
    {
      const Bits req = inst->reg_at(0, static_cast<std::uint32_t>(cfg_req));
      const Bits addr = inst->reg_at(0, static_cast<std::uint32_t>(cfg_addr));
      const Bits we = inst->reg_at(0, static_cast<std::uint32_t>(cfg_we));
      const Bits wdata = inst->reg_at(0, static_cast<std::uint32_t>(cfg_wdata));
      lits.push_back(cnf.or2(~dma_cfg_write(req, we, addr, false), legal_dma_ptr(wdata)));
    }

    // Firmware legality of *writes*: the CPU never stores an illegal value to
    // the DMA SRC/DST registers (checked during firmware development; needed
    // so legality at t is maintained at t+1 — the induction step).
    for (unsigned f = 0; f < k; ++f) {
      const CpuIf c = cpu_if(*inst, f);
      lits.push_back(cnf.or2(~dma_cfg_write(c.req, c.we, c.addr, true), legal_dma_ptr(c.wdata)));
    }
  }
  return lits;
}

std::vector<Lit> SsMacros::assumptions(unsigned k) {
  std::vector<Lit> lits;
  lits.push_back(spec_wellformed());
  for (unsigned f = 0; f < k; ++f) {
    // Inputs at frame f feed the transition f -> f+1. The victim window
    // covers the first `vte_frames` sampling points ("during t..t+1").
    lits.push_back(f < config_.vte_frames ? vte_frame(f) : inputs_equal_frame(f));
  }
  if (config_.firmware_constraints) {
    for (Lit l : firmware_constraint_lits(k)) lits.push_back(l);
  }
  return lits;
}

} // namespace upec
