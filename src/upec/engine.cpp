#include "upec/engine.h"

namespace upec {

namespace {

// Fan-in for every solver's heartbeat: sample into the armed trace (as a
// counter track per source) and forward to the user callback. Purely
// observational on the solving thread — never touches the solver.
void relay_progress(const std::function<void(const ProgressEvent&)>& cb,
                    const std::string& source, const sat::SolverProgress& p) {
  if (util::trace::enabled()) {
    util::trace::counter("solver." + source + ".conflicts", p.conflicts);
    util::trace::counter("solver." + source + ".learnts", p.learnts);
  }
  if (cb) {
    ProgressEvent ev;
    ev.source = source;
    ev.conflicts = p.conflicts;
    ev.restarts = p.restarts;
    ev.learnts = p.learnts;
    ev.deadline_remaining_ms = p.deadline_remaining_ms;
    cb(ev);
  }
}

} // namespace

UpecContext::UpecContext(const soc::Soc& s, VerifyOptions opts)
    : soc(s),
      options(std::move(opts)),
      trace_session(options.trace_path.empty()
                        ? nullptr
                        : std::make_unique<util::trace::TraceSession>(options.trace_path)),
      svt(*s.design),
      store(),
      solver(),
      sink(solver, store),
      miter(static_cast<sat::ClauseSink&>(sink), *s.design, svt,
            encode::MiterOptions{.per_instance = soc::Soc::is_cpu_interface,
                                 .shared_prefix = false}),
      macros(miter, s, options.macros),
      pers(svt, s),
      engine(solver),
      run_deadline(options.deadline_ms > 0
                       ? std::optional(std::chrono::steady_clock::now() +
                                       std::chrono::milliseconds(options.deadline_ms))
                       : std::nullopt),
      s_pers(StateSet::none(svt)) {
  if (options.threads > 1 || options.portfolio > 1 || !options.external_solver.empty()) {
    ipc::SchedulerOptions so;
    so.threads = options.threads;
    so.conflict_budget = options.conflict_budget;
    so.share_clauses = options.share_clauses;
    so.incremental = options.incremental_sweeps;
    so.verdict_cache = options.verdict_cache ? &verdict_cache : nullptr;
    so.portfolio = options.portfolio;
    so.portfolio_seed = options.portfolio_seed;
    so.external_argv = options.external_solver;
    so.external_deadline_ms = options.external_deadline_ms;
    so.supervise = options.supervise;
    so.deadline = run_deadline;
    so.preprocess = options.preprocess;
    so.frozen_vars = [this] { return frozen_vars(); };
    if (options.progress_conflicts > 0) {
      so.progress_every = options.progress_conflicts;
      so.progress = [cb = options.progress](unsigned w, const sat::SolverProgress& p) {
        relay_progress(cb, "w" + std::to_string(w), p);
      };
    }
    scheduler = std::make_unique<ipc::CheckScheduler>(store, std::move(so));
  }
  miter.set_model_source(&solver);
  miter.set_exempt(
      [this](encode::Miter& m, rtlir::StateVarId sv) { return macros.exempt_for(m, sv); });
  solver.set_conflict_budget(options.conflict_budget);
  if (run_deadline) solver.set_deadline(*run_deadline);
  if (options.progress_conflicts > 0) {
    solver.set_progress_hook(
        [cb = options.progress](const sat::SolverProgress& p) {
          relay_progress(cb, "main", p);
        },
        options.progress_conflicts);
  }
  if (options.verdict_cache) engine.set_verdict_cache(&verdict_cache, &store);

  StateSet base = pers.s_pers();
  for (rtlir::StateVarId sv : base.to_vector()) {
    if (!options.s_pers_filter || options.s_pers_filter(sv)) s_pers.insert(sv);
  }
}

std::vector<std::string> UpecContext::waveform_probes() const {
  return {soc::probe::kCpuGnt,       soc::probe::kHwpeProgress, soc::probe::kHwpeBusy,
          soc::probe::kHwpeGntPub,   soc::probe::kDmaBusy,      soc::probe::kTimerCount,
          soc::probe::kEventPending};
}

void UpecContext::touch_probes(unsigned max_frame) {
  util::trace::Span span("encode.touch_probes", "encode");
  span.arg("max_frame", std::uint64_t{max_frame});
  for (const std::string& name : waveform_probes()) {
    const rtlir::NetId net = soc.design->find_output(name);
    if (net == rtlir::kNullNet) continue;
    for (unsigned f = 0; f <= max_frame; ++f) {
      miter.inst_a().net_at(f, net);
      miter.inst_b().net_at(f, net);
    }
  }
}

std::vector<sat::Var> UpecContext::frozen_vars() const {
  std::vector<sat::Var> out;
  miter.frozen_vars(out);
  // Every already-encoded probe image bit, both instances, all frames: the
  // waveform extractor addresses these by name after a counterexample.
  for (const std::string& name : waveform_probes()) {
    const rtlir::NetId net = soc.design->find_output(name);
    if (net == rtlir::kNullNet) continue;
    for (const encode::UnrolledInstance* inst : {&miter.inst_a(), &miter.inst_b()}) {
      for (unsigned f = 0; f < inst->frames_encoded(); ++f) {
        if (const encode::Bits* bits = inst->find_net(f, net)) {
          for (encode::Lit l : *bits) out.push_back(l.var());
        }
      }
    }
  }
  return out;
}

Alg1Result verify_2cycle(const soc::Soc& soc, VerifyOptions options, const Alg1Options& alg) {
  UpecContext ctx(soc, std::move(options));
  return run_alg1(ctx, alg);
}

Alg2Result verify_unrolled(const soc::Soc& soc, VerifyOptions options, const Alg2Options& alg) {
  UpecContext ctx(soc, std::move(options));
  return run_alg2(ctx, alg);
}

VerifyOptions countermeasure_options() {
  VerifyOptions options;
  options.macros.victim_regions = {soc::AddrMap::kPrivRam};
  options.macros.firmware_constraints = true;
  return options;
}

} // namespace upec
