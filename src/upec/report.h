// Text rendering of verification outcomes: iteration tables, persistent-hit
// lists, and counterexample waveforms — the artifacts a verification engineer
// (and the reproduction benchmarks) consume.
#pragma once

#include <string>

#include "upec/alg2.h"
#include "upec/engine.h"

namespace upec {

std::string render_report(const UpecContext& ctx, const Alg1Result& result);
std::string render_report(const UpecContext& ctx, const Alg2Result& result);

// One line per iteration: |S|, |S_cex|, persistent hits, runtime.
std::string iteration_table(const UpecContext& ctx, const Alg1Result& result);
std::string iteration_table(const UpecContext& ctx, const Alg2Result& result);

} // namespace upec
