// The UPEC-SSC property macros (Fig. 3 / Fig. 4 of the paper), instantiated
// for the Pulpissimo-style SoC:
//
//  * Primary_Input_Constraints(): non-CPU inputs are shared between the two
//    miter instances (enforced structurally by the miter with zero clauses);
//    CPU-interface inputs are equal outside the victim window.
//
//  * Victim_Task_Executing(): during the victim window (frames 0..1, per the
//    paper's "during t..t+1"), the two instances perform identical accesses
//    to non-protected addresses, while accesses to protected addresses — the
//    symbolic victim range [victim_lo, victim_hi] — are unconstrained and may
//    differ. Only protected accesses are confidential information. The range
//    itself is a pair of shared stable inputs constrained to lie inside the
//    RAM regions the scenario allows (any RAM for the baseline SoC; the
//    private RAM only, once the Sec 4.2 countermeasure maps the
//    security-critical region there).
//
//  * State_Equivalence(S): per-state-variable activation literals from the
//    miter; memory words carry an exemption condition "word address inside
//    the victim range" so victim-allocated memory (Def. 1 (2)) is never
//    constrained equal nor counted as a difference.
//
// The firmware constraints of the countermeasure (legal DMA configurations +
// legality of CPU writes to the DMA configuration registers) and the derived
// interconnect invariant are also built here.
#pragma once

#include <string>
#include <vector>

#include "encode/miter.h"
#include "soc/pulpissimo.h"

namespace upec {

struct MacroConfig {
  // Number of leading frames in which the victim's protected accesses may
  // differ ("during t..t+1" => 2).
  unsigned vte_frames = 2;
  // Region names allowed to contain the symbolic victim range.
  std::vector<std::string> victim_regions = {soc::AddrMap::kPubRam, soc::AddrMap::kPrivRam};
  // Sec 4.2 countermeasure: restrict DMA configurations to the public RAM and
  // assume the derived private-crossbar invariant.
  bool firmware_constraints = false;
};

class SsMacros {
public:
  SsMacros(encode::Miter& miter, const soc::Soc& soc, MacroConfig config);

  // All assumption literals needed for a property window of k transitions
  // (frames 0..k). Includes VTE, input-equality for post-victim frames, the
  // victim-range well-formedness constraints, and (if configured) the
  // firmware constraints.
  std::vector<encode::Lit> assumptions(unsigned k);

  // Shared image of the symbolic victim range bounds.
  const encode::Bits& victim_lo();
  const encode::Bits& victim_hi();

  // Literal: the given 32-bit address image lies inside the victim range.
  encode::Lit in_victim(const encode::Bits& addr);

  // Exemption hook for the miter (victim-range memory words).
  encode::Lit exempt_for(encode::Miter& m, rtlir::StateVarId sv);

  const soc::Soc& soc() const { return soc_; }

private:
  struct CpuIf {
    encode::Bits req, addr, we, wdata;
  };
  CpuIf cpu_if(encode::UnrolledInstance& inst, unsigned frame);

  encode::Lit vte_frame(unsigned frame);        // victim window constraint
  encode::Lit inputs_equal_frame(unsigned frame); // post-victim equality
  encode::Lit spec_wellformed();
  std::vector<encode::Lit> firmware_constraint_lits(unsigned k);

  encode::Miter& miter_;
  const soc::Soc& soc_;
  MacroConfig config_;

  std::uint32_t in_req_ = 0, in_addr_ = 0, in_we_ = 0, in_wdata_ = 0; // input indices
  std::uint32_t in_vlo_ = 0, in_vhi_ = 0;

  std::vector<encode::Lit> vte_cache_;
  std::vector<encode::Lit> eq_cache_;
  encode::Lit spec_lit_;
  bool have_spec_ = false;
};

} // namespace upec
