#include "upec/alg1.h"

#include <string>

#include "sat/metrics.h"
#include "upec/engine.h"
#include "upec/sweep.h"
#include "util/trace.h"

namespace upec {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Secure: return "secure";
    case Verdict::Vulnerable: return "vulnerable";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

void collect_solver_usage(const UpecContext& ctx, SolverUsage& usage) {
  usage = SolverUsage{};

  // Every aggregate below is a registry merge (util/metrics.h: counters sum,
  // gauges max) over per-component snapshots — there is exactly one place
  // that defines how main + workers + portfolio members add up, and both
  // `total` and `per_worker` are *derived* from the merged registry.
  util::MetricsSnapshot main_m;
  sat::append_metrics(main_m, ctx.solver.stats());
  util::MetricsSnapshot total_m = main_m;
  usage.metrics.merge_prefixed("sat.solver.main.", main_m);
  usage.retained_learnts = ctx.solver.num_learnts();

  if (ctx.scheduler) {
    const std::vector<sat::SolverStats> worker_stats = ctx.scheduler->worker_stats();
    usage.per_worker_members = ctx.scheduler->worker_member_stats();
    usage.per_worker_cache_hits = ctx.scheduler->worker_cache_hits();
    usage.per_worker_health = ctx.scheduler->worker_health();
    const std::vector<std::size_t> live = ctx.scheduler->worker_live_learnts();
    const unsigned W = ctx.scheduler->workers();
    usage.per_worker.reserve(W);
    for (unsigned w = 0; w < W; ++w) {
      const std::string wp = "sat.solver.w" + std::to_string(w) + ".";
      util::MetricsSnapshot wm;
      const std::vector<sat::SolverStats>& members = usage.per_worker_members[w];
      if (members.empty()) {
        sat::append_metrics(wm, worker_stats[w]);
      } else {
        for (std::size_t m = 0; m < members.size(); ++m) {
          util::MetricsSnapshot mm;
          sat::append_metrics(mm, members[m]);
          usage.metrics.merge_prefixed(wp + "m" + std::to_string(m) + ".", mm);
          wm.merge(mm);
        }
      }
      usage.per_worker.push_back(sat::solver_stats_from_metrics(wm));
      usage.metrics.merge_prefixed(wp, wm);
      total_m.merge(wm);

      util::MetricsSnapshot hm;
      sat::append_metrics(hm, usage.per_worker_health[w]);
      usage.metrics.merge_prefixed("sat.health.w" + std::to_string(w) + ".", hm);
      usage.retained_learnts += live[w];
    }
    usage.simplify = ctx.scheduler->simplify_stats();
    usage.metrics.add_counter("sat.channel.published", ctx.scheduler->shared_clauses());
  }
  usage.total = sat::solver_stats_from_metrics(total_m);
  usage.metrics.merge_prefixed("sat.solver.total.", total_m);

  // The cache is shared, so its global counters already cover the main
  // solver's and every worker's lookups.
  usage.cache_hits = ctx.verdict_cache.hits();
  usage.cache_misses = ctx.verdict_cache.misses();
  usage.pruned_candidates = ctx.pruner.total_pruned();
  usage.metrics.add_counter("upec.cache.hits", usage.cache_hits);
  usage.metrics.add_counter("upec.cache.misses", usage.cache_misses);
  usage.metrics.add_counter("upec.sweep.pruned_candidates", usage.pruned_candidates);
  usage.metrics.set_gauge("upec.sweep.retained_learnts", usage.retained_learnts);
  usage.metrics.add_counter("sat.channel.exported", usage.total.exported_clauses);
  usage.metrics.add_counter("sat.channel.imported", usage.total.imported_clauses);
  util::MetricsSnapshot sm;
  sat::append_metrics(sm, usage.simplify);
  usage.metrics.merge_prefixed("sat.simplify.", sm);
}

Alg1Result run_alg1(UpecContext& ctx, const Alg1Options& options) {
  util::trace::Span run_span("alg1.run", "upec");
  Alg1Result result;
  StateSet S = options.initial_s ? *options.initial_s : s_not_victim(ctx.svt);
  if (options.extract_waveform) ctx.touch_probes(1);

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    util::trace::Span iter_span("alg1.iteration", "upec");
    iter_span.arg("iteration", std::uint64_t{iter});
    iter_span.arg("s_size", static_cast<std::uint64_t>(S.size()));
    IterationLog log;
    log.s_size = S.size();

    // UPEC-SSC(S): assume equivalence of S at t (+ macros), prove equivalence
    // of S at t+1 — i.e. search for members of S that can differ at t+1. The
    // sweep saturates the counterexample: one outer iteration corresponds to
    // one propagation step of the victim's influence frontier (the
    // granularity the paper's iteration counts describe), independent of how
    // many solver models realize it and of the thread count.
    std::vector<encode::Lit> assumptions = ctx.macros.assumptions(1);
    for (rtlir::StateVarId sv : S.to_vector()) {
      assumptions.push_back(ctx.miter.eq_assumption(sv));
    }
    SweepOutcome out = sweep_frame(ctx, "UPEC-SSC", assumptions, S, 1, options.saturate_cex);

    log.seconds = out.seconds;
    log.conflicts = out.conflicts;
    log.status = out.status;
    log.cex_size = out.s_cex.size();
    log.pers_hits = out.pers_hits.size();
    log.removed = out.s_cex;
    log.pruned = out.pruned;
    log.cache_hits = out.cache_hits;
    log.cache_misses = out.cache_misses;
    log.timed_out = out.timed_out;
    result.total_seconds += out.seconds;

    if (!out.pers_hits.empty()) {
      // Victim data reaches persistent, attacker-accessible state.
      if (options.extract_waveform) {
        result.waveform = extract_pers_waveform(ctx, "UPEC-SSC", assumptions, out, 1, log,
                                                result.total_seconds);
      }
      result.iterations.push_back(std::move(log));
      result.verdict = Verdict::Vulnerable;
      result.persistent_hits = std::move(out.pers_hits);
      result.full_cex = std::move(out.s_cex);
      result.final_s = std::move(S);
      collect_solver_usage(ctx, result.stats);
      return result;
    }

    result.iterations.push_back(std::move(log));

    if (out.status == ipc::CheckStatus::Unknown) {
      result.verdict = Verdict::Unknown;
      result.timed_out = out.timed_out;
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    if (out.s_cex.empty()) {
      // S_cex = ∅: the property is inductive for this S; with the trivial
      // base case (no influence before the victim's first access) this gives
      // the unbounded secure verdict.
      result.verdict = Verdict::Secure;
      result.final_s = std::move(S);
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    S.remove_all(out.s_cex);
  }
  result.verdict = Verdict::Unknown;
  collect_solver_usage(ctx, result.stats);
  return result;
}

} // namespace upec
