#include "upec/alg1.h"

#include <algorithm>

#include "upec/engine.h"

namespace upec {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Secure: return "secure";
    case Verdict::Vulnerable: return "vulnerable";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

Alg1Result run_alg1(UpecContext& ctx, const Alg1Options& options) {
  Alg1Result result;
  StateSet S = options.initial_s ? *options.initial_s : s_not_victim(ctx.svt);
  if (options.extract_waveform) ctx.touch_probes(1);

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    IterationLog log;
    log.s_size = S.size();

    // UPEC-SSC(S): assume equivalence of S at t (+ macros), prove equivalence
    // of S at t+1 — i.e. search for a member of S that can differ at t+1.
    ipc::BoundedProperty prop;
    prop.name = "UPEC-SSC";
    prop.window = 1;
    prop.assumptions = ctx.macros.assumptions(1);
    const std::vector<rtlir::StateVarId> members = S.to_vector();
    for (rtlir::StateVarId sv : members) {
      prop.assumptions.push_back(ctx.miter.eq_assumption(sv));
    }

    // Counterexample saturation: keep re-solving at this propagation depth
    // until no member of S can newly differ, accumulating the union. One
    // outer iteration therefore corresponds to one propagation step of the
    // victim's influence frontier (the granularity the paper's iteration
    // counts describe), independent of how many scenarios realize it.
    std::vector<rtlir::StateVarId> remaining = members;
    std::vector<rtlir::StateVarId> s_cex;
    std::vector<rtlir::StateVarId> pers_hits;
    bool unknown = false;
    bool inconsistent_model = false;
    while (options.saturate_cex || s_cex.empty()) {
      std::vector<encode::Lit> diffs;
      diffs.reserve(remaining.size());
      for (rtlir::StateVarId sv : remaining) diffs.push_back(ctx.miter.diff_literal(sv, 1));
      prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

      const ipc::CheckResult check = ctx.engine.check(prop);
      log.seconds += check.seconds;
      log.conflicts += check.conflicts;
      log.status = check.status;
      result.total_seconds += check.seconds;

      if (check.status == ipc::CheckStatus::Unknown) {
        unknown = true;
        break;
      }
      if (check.status == ipc::CheckStatus::Holds) break;

      std::vector<rtlir::StateVarId> newly;
      for (rtlir::StateVarId sv : remaining) {
        if (ctx.miter.differs_in_model(sv, 1)) {
          newly.push_back(sv);
          if (ctx.in_s_pers(sv)) pers_hits.push_back(sv);
        }
      }
      if (newly.empty()) {
        // Defensive: a violation with no extractable difference would mean
        // the diff literals and the model disagree; stop rather than loop.
        inconsistent_model = true;
        break;
      }
      s_cex.insert(s_cex.end(), newly.begin(), newly.end());
      if (!pers_hits.empty()) {
        // Victim data reaches persistent, attacker-accessible state.
        if (options.extract_waveform) {
          result.waveform = ipc::extract_waveform(ctx.miter, 1, ctx.waveform_probes(), s_cex);
        }
        log.cex_size = s_cex.size();
        log.pers_hits = pers_hits.size();
        log.removed = s_cex;
        result.iterations.push_back(std::move(log));
        result.verdict = Verdict::Vulnerable;
        result.persistent_hits = std::move(pers_hits);
        result.full_cex = std::move(s_cex);
        result.final_s = std::move(S);
        return result;
      }
      std::erase_if(remaining, [&](rtlir::StateVarId sv) {
        return std::find(newly.begin(), newly.end(), sv) != newly.end();
      });
    }

    log.cex_size = s_cex.size();
    log.removed = s_cex;
    result.iterations.push_back(std::move(log));

    if (unknown || inconsistent_model) {
      result.verdict = Verdict::Unknown;
      return result;
    }
    if (s_cex.empty()) {
      // S_cex = ∅: the property is inductive for this S; with the trivial
      // base case (no influence before the victim's first access) this gives
      // the unbounded secure verdict.
      result.verdict = Verdict::Secure;
      result.final_s = std::move(S);
      return result;
    }
    S.remove_all(s_cex);
  }
  result.verdict = Verdict::Unknown;
  return result;
}

} // namespace upec
