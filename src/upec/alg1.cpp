#include "upec/alg1.h"

#include "upec/engine.h"
#include "upec/sweep.h"

namespace upec {

const char* verdict_name(Verdict v) {
  switch (v) {
    case Verdict::Secure: return "secure";
    case Verdict::Vulnerable: return "vulnerable";
    case Verdict::Unknown: return "unknown";
  }
  return "?";
}

void collect_solver_usage(const UpecContext& ctx, SolverUsage& usage) {
  usage.total = ctx.solver.stats();
  usage.per_worker.clear();
  usage.per_worker_cache_hits.clear();
  usage.per_worker_health.clear();
  usage.retained_learnts = ctx.solver.num_learnts();
  if (ctx.scheduler) {
    usage.per_worker = ctx.scheduler->worker_stats();
    for (const sat::SolverStats& w : usage.per_worker) usage.total += w;
    usage.per_worker_cache_hits = ctx.scheduler->worker_cache_hits();
    usage.per_worker_health = ctx.scheduler->worker_health();
    for (std::size_t l : ctx.scheduler->worker_live_learnts()) usage.retained_learnts += l;
    usage.simplify = ctx.scheduler->simplify_stats();
  }
  // The cache is shared, so its global counters already cover the main
  // solver's and every worker's lookups.
  usage.cache_hits = ctx.verdict_cache.hits();
  usage.cache_misses = ctx.verdict_cache.misses();
  usage.pruned_candidates = ctx.pruner.total_pruned();
}

Alg1Result run_alg1(UpecContext& ctx, const Alg1Options& options) {
  Alg1Result result;
  StateSet S = options.initial_s ? *options.initial_s : s_not_victim(ctx.svt);
  if (options.extract_waveform) ctx.touch_probes(1);

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    IterationLog log;
    log.s_size = S.size();

    // UPEC-SSC(S): assume equivalence of S at t (+ macros), prove equivalence
    // of S at t+1 — i.e. search for members of S that can differ at t+1. The
    // sweep saturates the counterexample: one outer iteration corresponds to
    // one propagation step of the victim's influence frontier (the
    // granularity the paper's iteration counts describe), independent of how
    // many solver models realize it and of the thread count.
    std::vector<encode::Lit> assumptions = ctx.macros.assumptions(1);
    for (rtlir::StateVarId sv : S.to_vector()) {
      assumptions.push_back(ctx.miter.eq_assumption(sv));
    }
    SweepOutcome out = sweep_frame(ctx, "UPEC-SSC", assumptions, S, 1, options.saturate_cex);

    log.seconds = out.seconds;
    log.conflicts = out.conflicts;
    log.status = out.status;
    log.cex_size = out.s_cex.size();
    log.pers_hits = out.pers_hits.size();
    log.removed = out.s_cex;
    log.pruned = out.pruned;
    log.cache_hits = out.cache_hits;
    log.cache_misses = out.cache_misses;
    log.timed_out = out.timed_out;
    result.total_seconds += out.seconds;

    if (!out.pers_hits.empty()) {
      // Victim data reaches persistent, attacker-accessible state.
      if (options.extract_waveform) {
        result.waveform = extract_pers_waveform(ctx, "UPEC-SSC", assumptions, out, 1, log,
                                                result.total_seconds);
      }
      result.iterations.push_back(std::move(log));
      result.verdict = Verdict::Vulnerable;
      result.persistent_hits = std::move(out.pers_hits);
      result.full_cex = std::move(out.s_cex);
      result.final_s = std::move(S);
      collect_solver_usage(ctx, result.stats);
      return result;
    }

    result.iterations.push_back(std::move(log));

    if (out.status == ipc::CheckStatus::Unknown) {
      result.verdict = Verdict::Unknown;
      result.timed_out = out.timed_out;
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    if (out.s_cex.empty()) {
      // S_cex = ∅: the property is inductive for this S; with the trivial
      // base case (no influence before the victim's first access) this gives
      // the unbounded secure verdict.
      result.verdict = Verdict::Secure;
      result.final_s = std::move(S);
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    S.remove_all(out.s_cex);
  }
  result.verdict = Verdict::Unknown;
  collect_solver_usage(ctx, result.stats);
  return result;
}

} // namespace upec
