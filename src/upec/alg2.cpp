#include "upec/alg2.h"

#include <algorithm>

#include "upec/engine.h"

namespace upec {

Alg2Result run_alg2(UpecContext& ctx, const Alg2Options& options) {
  Alg2Result result;

  // S[0], S[1] ← S_¬victim; S[0] never changes (the victim's influence at the
  // start of the window stays fixed across iterations, Sec 3.5).
  std::vector<StateSet> S;
  S.push_back(s_not_victim(ctx.svt));
  S.push_back(S[0]);
  unsigned k = 1;

  const std::vector<rtlir::StateVarId> s0_members = S[0].to_vector();

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    Alg2StepLog step;
    step.k = k;
    step.iteration.s_size = S[k].size();
    if (options.extract_waveform) ctx.touch_probes(k);

    ipc::BoundedProperty prop;
    prop.name = "UPEC-SSC-unrolled";
    prop.window = k;
    prop.assumptions = ctx.macros.assumptions(k);
    for (rtlir::StateVarId sv : s0_members) {
      prop.assumptions.push_back(ctx.miter.eq_assumption(sv));
    }
    // Violations are only possible at the newest frame: frames 1..k-1 were
    // proven with identical assumptions in previous iterations. As in Alg. 1,
    // counterexamples are saturated: one step accumulates every member of
    // S[k] that can differ at frame k.
    const std::vector<rtlir::StateVarId> members = S[k].to_vector();
    std::vector<rtlir::StateVarId> remaining = members;
    std::vector<rtlir::StateVarId> s_cex;
    std::vector<rtlir::StateVarId> pers_hits;
    ipc::CheckStatus last_status = ipc::CheckStatus::Unknown;
    bool inconsistent_model = false;
    for (;;) {
      std::vector<encode::Lit> diffs;
      diffs.reserve(remaining.size());
      for (rtlir::StateVarId sv : remaining) diffs.push_back(ctx.miter.diff_literal(sv, k));
      prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

      const ipc::CheckResult check = ctx.engine.check(prop);
      step.iteration.seconds += check.seconds;
      step.iteration.conflicts += check.conflicts;
      step.iteration.status = last_status = check.status;
      result.total_seconds += check.seconds;
      if (check.status != ipc::CheckStatus::Violated) break;

      std::vector<rtlir::StateVarId> newly;
      for (rtlir::StateVarId sv : remaining) {
        if (ctx.miter.differs_in_model(sv, k)) {
          newly.push_back(sv);
          if (ctx.in_s_pers(sv)) pers_hits.push_back(sv);
        }
      }
      if (newly.empty()) {
        inconsistent_model = true;
        break;
      }
      s_cex.insert(s_cex.end(), newly.begin(), newly.end());
      if (!pers_hits.empty()) break;
      std::erase_if(remaining, [&](rtlir::StateVarId sv) {
        return std::find(newly.begin(), newly.end(), sv) != newly.end();
      });
      if (!options.saturate_cex) break;
    }
    step.iteration.cex_size = s_cex.size();
    step.iteration.pers_hits = pers_hits.size();
    step.iteration.removed = s_cex;

    if (!pers_hits.empty()) {
      if (options.extract_waveform) {
        result.waveform = ipc::extract_waveform(ctx.miter, k, ctx.waveform_probes(), s_cex);
      }
      result.steps.push_back(std::move(step));
      result.verdict = Verdict::Vulnerable;
      result.final_k = k;
      result.persistent_hits = std::move(pers_hits);
      result.full_cex = std::move(s_cex);
      return result;
    }
    if (last_status == ipc::CheckStatus::Unknown || inconsistent_model) {
      result.steps.push_back(std::move(step));
      result.verdict = Verdict::Unknown;
      result.final_k = k;
      return result;
    }
    if (!s_cex.empty()) {
      S[k].remove_all(s_cex);
      result.steps.push_back(std::move(step));
      continue;
    }

    {
      result.steps.push_back(std::move(step));
      if (S[k] == S[k - 1]) {
        // "hold": the victim's influence frontier stopped growing. Close with
        // the inductive proof (Alg. 1 seeded with S[k]) to cover all future
        // cycles k+n.
        result.final_k = k;
        if (options.run_closing_induction) {
          Alg1Options ind;
          ind.initial_s = S[k];
          ind.extract_waveform = options.extract_waveform;
          result.induction = run_alg1(ctx, ind);
          result.verdict = result.induction->verdict;
          if (result.induction->verdict == Verdict::Vulnerable) {
            result.persistent_hits = result.induction->persistent_hits;
            result.full_cex = result.induction->full_cex;
            result.waveform = result.induction->waveform;
          }
        } else {
          result.verdict = Verdict::Secure;
        }
        return result;
      }
      if (k + 1 > options.max_k) {
        result.verdict = Verdict::Unknown;
        result.final_k = k;
        return result;
      }
      ++k;
      S.push_back(S[k - 1]);
      continue;
    }

  }
  result.verdict = Verdict::Unknown;
  result.final_k = k;
  return result;
}

} // namespace upec
