#include "upec/alg2.h"

#include "upec/engine.h"
#include "upec/sweep.h"
#include "util/trace.h"

namespace upec {

Alg2Result run_alg2(UpecContext& ctx, const Alg2Options& options) {
  util::trace::Span run_span("alg2.run", "upec");
  Alg2Result result;

  // S[0], S[1] ← S_¬victim; S[0] never changes (the victim's influence at the
  // start of the window stays fixed across iterations, Sec 3.5).
  std::vector<StateSet> S;
  S.push_back(s_not_victim(ctx.svt));
  S.push_back(S[0]);
  unsigned k = 1;

  const std::vector<rtlir::StateVarId> s0_members = S[0].to_vector();

  for (unsigned iter = 0; iter < options.max_iterations; ++iter) {
    util::trace::Span step_span("alg2.step", "upec");
    step_span.arg("iteration", std::uint64_t{iter});
    step_span.arg("k", std::uint64_t{k});
    Alg2StepLog step;
    step.k = k;
    step.iteration.s_size = S[k].size();
    if (options.extract_waveform) ctx.touch_probes(k);

    // Violations are only possible at the newest frame: frames 1..k-1 were
    // proven with identical assumptions in previous iterations. As in Alg. 1,
    // the sweep saturates the counterexample at frame k.
    std::vector<encode::Lit> assumptions = ctx.macros.assumptions(k);
    for (rtlir::StateVarId sv : s0_members) {
      assumptions.push_back(ctx.miter.eq_assumption(sv));
    }
    SweepOutcome out =
        sweep_frame(ctx, "UPEC-SSC-unrolled", assumptions, S[k], k, options.saturate_cex);

    step.iteration.seconds = out.seconds;
    step.iteration.conflicts = out.conflicts;
    step.iteration.status = out.status;
    step.iteration.cex_size = out.s_cex.size();
    step.iteration.pers_hits = out.pers_hits.size();
    step.iteration.removed = out.s_cex;
    step.iteration.pruned = out.pruned;
    step.iteration.cache_hits = out.cache_hits;
    step.iteration.cache_misses = out.cache_misses;
    step.iteration.timed_out = out.timed_out;
    result.total_seconds += out.seconds;

    if (!out.pers_hits.empty()) {
      if (options.extract_waveform) {
        result.waveform = extract_pers_waveform(ctx, "UPEC-SSC-unrolled", assumptions, out, k,
                                                step.iteration, result.total_seconds);
      }
      result.steps.push_back(std::move(step));
      result.verdict = Verdict::Vulnerable;
      result.final_k = k;
      result.persistent_hits = std::move(out.pers_hits);
      result.full_cex = std::move(out.s_cex);
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    result.steps.push_back(std::move(step));

    if (out.status == ipc::CheckStatus::Unknown) {
      result.verdict = Verdict::Unknown;
      result.timed_out = out.timed_out;
      result.final_k = k;
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    if (!out.s_cex.empty()) {
      S[k].remove_all(out.s_cex);
      continue;
    }

    if (S[k] == S[k - 1]) {
      // "hold": the victim's influence frontier stopped growing. Close with
      // the inductive proof (Alg. 1 seeded with S[k]) to cover all future
      // cycles k+n.
      result.final_k = k;
      if (options.run_closing_induction) {
        Alg1Options ind;
        ind.initial_s = S[k];
        ind.extract_waveform = options.extract_waveform;
        result.induction = run_alg1(ctx, ind);
        result.verdict = result.induction->verdict;
        result.timed_out = result.induction->timed_out;
        if (result.induction->verdict == Verdict::Vulnerable) {
          result.persistent_hits = result.induction->persistent_hits;
          result.full_cex = result.induction->full_cex;
          result.waveform = result.induction->waveform;
        }
      } else {
        result.verdict = Verdict::Secure;
      }
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    if (k + 1 > options.max_k) {
      result.verdict = Verdict::Unknown;
      result.final_k = k;
      collect_solver_usage(ctx, result.stats);
      return result;
    }
    ++k;
    S.push_back(S[k - 1]);
  }
  result.verdict = Verdict::Unknown;
  result.final_k = k;
  collect_solver_usage(ctx, result.stats);
  return result;
}

} // namespace upec
