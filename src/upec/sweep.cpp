#include "upec/sweep.h"

#include <algorithm>
#include <unordered_set>

#include "upec/alg1.h"
#include "upec/engine.h"
#include "util/trace.h"

namespace upec {

namespace {

// The classic single-solver path: incremental counterexample saturation on
// the context's main solver. Solve the disjunction of the remaining diff
// literals, harvest every differing variable from the model, shrink, repeat
// until UNSAT (or, with saturate == false, stop after the first model).
//
// CheckScheduler::sweep (ipc/scheduler.cpp) runs the same harvest/shrink
// step per chunk; the two implementations stay separate because they differ
// structurally (BoundedProperty on the context engine vs backend rounds with
// a barrier), and their agreement is semantic — both converge on
// {sv : diff(sv) satisfiable} — not textual. test_determinism pins it.
SweepOutcome sweep_sequential_legacy(UpecContext& ctx, const std::string& property_name,
                                     const std::vector<encode::Lit>& assumptions,
                                     const std::vector<rtlir::StateVarId>& members,
                                     unsigned frame, bool saturate) {
  SweepOutcome out;
  std::vector<rtlir::StateVarId> remaining = members;

  ipc::BoundedProperty prop;
  prop.name = property_name;
  prop.window = frame;
  prop.assumptions = assumptions;

  bool unknown = false;
  bool inconsistent = false;
  while (!remaining.empty()) {
    std::vector<encode::Lit> diffs;
    diffs.reserve(remaining.size());
    for (rtlir::StateVarId sv : remaining) diffs.push_back(ctx.miter.diff_literal(sv, frame));
    prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

    const ipc::CheckResult check = ctx.engine.check(prop);
    // The violation literal is single-use: pin it false at the root so the
    // disjunction clause it guards goes dead for BCP (and for every worker
    // that later hydrates it) instead of accumulating round after round.
    // Model reads below are unaffected — they consult the saved model, not
    // the trail this unit re-propagates.
    ctx.miter.cnf().add_clause(std::vector<encode::Lit>{~prop.violation});
    out.seconds += check.seconds;
    out.conflicts += check.conflicts;
    if (check.status == ipc::CheckStatus::Unknown) {
      unknown = true;
      out.timed_out = out.timed_out || check.timed_out;
      break;
    }
    if (check.status == ipc::CheckStatus::Holds) break;

    std::vector<rtlir::StateVarId> newly;
    for (rtlir::StateVarId sv : remaining) {
      if (ctx.miter.differs_in_model(sv, frame)) newly.push_back(sv);
    }
    if (newly.empty()) {
      // A violation with no extractable difference would mean the diff
      // literals and the model disagree; stop rather than loop.
      inconsistent = true;
      break;
    }
    out.s_cex.insert(out.s_cex.end(), newly.begin(), newly.end());
    std::erase_if(remaining, [&](rtlir::StateVarId sv) {
      return std::find(newly.begin(), newly.end(), sv) != newly.end();
    });
    if (!saturate) break;
  }

  std::sort(out.s_cex.begin(), out.s_cex.end());
  out.status = (unknown || inconsistent)  ? ipc::CheckStatus::Unknown
               : out.s_cex.empty()        ? ipc::CheckStatus::Holds
                                          : ipc::CheckStatus::Violated;
  return out;
}

// Incremental single-solver path: candidates are registered once with
// persistent activation literals and the saturating sweep then scans them
// one candidate per solve — assume the candidate's activation literal true
// (the query is exactly "diff(sv) satisfiable") and harvest every other
// still-unresolved candidate the model happens to prove differing. No
// violation literal, no retirement unit, no store growth, and each UNSAT
// answer comes with a per-candidate assumption core for frontier pruning.
// Per-candidate queries beat the legacy disjunction structurally: a SAT
// model retires many candidates at once exactly as before, while the UNSAT
// confirmations — the dominant cost on the secure workload — never pay for
// the selector indirection of a group disjunction, and their cores mention
// only the eq assumptions that one candidate's refutation needs.
SweepOutcome sweep_sequential_incremental(UpecContext& ctx,
                                          const std::vector<encode::Lit>& assumptions,
                                          const std::vector<rtlir::StateVarId>& members,
                                          unsigned frame, bool saturate) {
  SweepOutcome out;
  const std::uint64_t hits0 = ctx.engine.cache_hits();
  const std::uint64_t misses0 = ctx.engine.cache_misses();
  ctx.miter.register_candidates(members, frame);

  bool unknown = false;
  bool inconsistent = false;
  if (saturate) {
    // Members arrive sorted (StateSet::to_vector), so the scan order — and
    // with it every query — is independent of how earlier models looked.
    std::vector<char> resolved(members.size(), 0);
    for (std::size_t i = 0; i < members.size(); ++i) {
      if (resolved[i]) continue;
      std::vector<encode::Lit> as = assumptions;
      as.push_back(ctx.miter.activation_literal(members[i], frame));
      std::vector<encode::Lit> core;
      const ipc::CheckResult check = ctx.engine.check_assumptions(as, &core);
      out.seconds += check.seconds;
      out.conflicts += check.conflicts;
      if (check.status == ipc::CheckStatus::Unknown) {
        unknown = true;
        out.timed_out = out.timed_out || check.timed_out;
        break;
      }
      if (check.status == ipc::CheckStatus::Holds) {
        resolved[i] = 1;
        out.unsat_groups.push_back(ipc::SweepResult::UnsatGroup{{members[i]}, std::move(core)});
        continue;
      }
      bool harvested = false;
      for (std::size_t j = 0; j < members.size(); ++j) {
        if (resolved[j] || !ctx.miter.differs_in_model(members[j], frame)) continue;
        resolved[j] = 1;
        out.s_cex.push_back(members[j]);
        harvested = true;
      }
      if (!harvested) {
        // The query assumed diff(members[i]) true, so a model that shows no
        // difference means the diff literals and the model disagree.
        inconsistent = true;
        break;
      }
    }
  } else {
    // Single-model ablation: one group-selected solve, stop at the first
    // model (per-candidate scanning would change which model is reported).
    std::vector<encode::Lit> as = assumptions;
    ctx.miter.select_candidates(frame, members, as);
    std::vector<encode::Lit> core;
    const ipc::CheckResult check = ctx.engine.check_assumptions(as, &core);
    out.seconds += check.seconds;
    out.conflicts += check.conflicts;
    if (check.status == ipc::CheckStatus::Unknown) {
      unknown = true;
      out.timed_out = out.timed_out || check.timed_out;
    } else if (check.status == ipc::CheckStatus::Holds) {
      out.unsat_groups.push_back(ipc::SweepResult::UnsatGroup{members, std::move(core)});
    } else {
      for (rtlir::StateVarId sv : members) {
        if (ctx.miter.differs_in_model(sv, frame)) out.s_cex.push_back(sv);
      }
      if (out.s_cex.empty()) inconsistent = true;
    }
  }

  std::sort(out.s_cex.begin(), out.s_cex.end());
  out.status = (unknown || inconsistent)  ? ipc::CheckStatus::Unknown
               : out.s_cex.empty()        ? ipc::CheckStatus::Holds
                                          : ipc::CheckStatus::Violated;
  out.cache_hits = ctx.engine.cache_hits() - hits0;
  out.cache_misses = ctx.engine.cache_misses() - misses0;
  return out;
}

} // namespace

SweepOutcome sweep_frame(UpecContext& ctx, const std::string& property_name,
                         const std::vector<encode::Lit>& assumptions, const StateSet& S,
                         unsigned frame, bool saturate) {
  util::trace::Span span("upec.sweep_frame", "upec");
  span.arg("frame", std::uint64_t{frame});
  std::vector<rtlir::StateVarId> members = S.to_vector();
  span.arg("candidates", static_cast<std::uint64_t>(members.size()));
  SweepOutcome out;

  // UNSAT-core frontier pruning (incremental mode, saturating sweeps only —
  // in the single-model ablation pruning could change which model the solver
  // finds, i.e. the reported set). A pruned candidate is one whose recorded
  // refutation core is entailed by the current assumptions, so dropping it
  // cannot change the semantic frontier — only skip re-proving it.
  const bool incremental = ctx.options.incremental_sweeps;
  std::unordered_set<rtlir::StateVarId> eq_assumed;
  std::unordered_set<std::int32_t> assumption_lits;
  if (incremental && saturate) {
    rtlir::StateVarId sv = 0;
    for (encode::Lit a : assumptions) {
      assumption_lits.insert(a.index());
      if (ctx.miter.eq_assumption_var(a, &sv)) eq_assumed.insert(sv);
    }
    std::vector<rtlir::StateVarId> eligible, pruned;
    ctx.pruner.filter(frame, members, eq_assumed, assumption_lits, eligible, pruned);
    out.pruned = pruned.size();
    members = std::move(eligible);
  }

  // The scheduler always saturates (only the complete frontier is a semantic,
  // thread-count-independent set). The non-saturating ablation mode
  // (saturate_cex = false) is inherently single-model, so it stays on the
  // main solver regardless of the threads option — this keeps its results
  // identical across thread counts too.
  if (members.empty()) {
    // Everything pruned (or S empty): the frontier is proven empty without a
    // single solver call.
    out.status = ipc::CheckStatus::Holds;
  } else if (ctx.scheduler && saturate) {
    ipc::SweepResult r = ctx.scheduler->sweep(ctx.miter, assumptions, members, frame);
    out.status = r.status;
    out.s_cex = std::move(r.differing);
    out.seconds = r.seconds;
    out.conflicts = r.conflicts;
    out.cache_hits = r.cache_hits;
    out.cache_misses = r.cache_misses;
    out.unsat_groups = std::move(r.unsat_groups);
    out.timed_out = r.timed_out;
  } else if (incremental) {
    SweepOutcome seq = sweep_sequential_incremental(ctx, assumptions, members, frame, saturate);
    seq.pruned = out.pruned;
    out = std::move(seq);
  } else {
    SweepOutcome seq =
        sweep_sequential_legacy(ctx, property_name, assumptions, members, frame, saturate);
    seq.pruned = out.pruned;
    out = std::move(seq);
  }

  // Mine the final refutation cores: each justifies every candidate that was
  // still enabled, and stays valid as long as its assumptions are re-assumed
  // (see upec/incremental.h). Core literals split into eq-assumption state
  // variables, other assumptions (macros), and selector literals — the
  // latter identified by absence from the assumption set and dropped.
  if (incremental && saturate) {
    for (const ipc::SweepResult::UnsatGroup& group : out.unsat_groups) {
      FrontierPruner::Justification just;
      rtlir::StateVarId sv = 0;
      for (sat::Lit l : group.core) {
        if (ctx.miter.eq_assumption_var(l, &sv)) {
          just.eq_svs.push_back(sv);
        } else if (assumption_lits.find(l.index()) != assumption_lits.end()) {
          just.other_lits.push_back(l);
        }
      }
      ctx.pruner.record(frame, group.enabled, std::move(just));
    }
  }

  out.pers_hits.clear();
  for (rtlir::StateVarId sv : out.s_cex) {
    if (ctx.in_s_pers(sv)) out.pers_hits.push_back(sv);
  }
  return out;
}

std::optional<ipc::Waveform> extract_pers_waveform(UpecContext& ctx,
                                                   const std::string& property_name,
                                                   const std::vector<encode::Lit>& assumptions,
                                                   const SweepOutcome& out, unsigned frame,
                                                   IterationLog& log, double& total_seconds) {
  util::trace::Span span("upec.waveform", "upec");
  span.arg("frame", std::uint64_t{frame});
  span.arg("pers_hits", static_cast<std::uint64_t>(out.pers_hits.size()));
  ipc::CheckResult check;
  if (ctx.options.incremental_sweeps) {
    // The persistent hits are registered candidates (pers_hits ⊆ s_cex ⊆ the
    // swept set), so restricting the violation to them is pure assumption
    // selection — no new encoding, and the solve lands on the main solver
    // whose model the waveform extractor reads.
    std::vector<encode::Lit> as = assumptions;
    ctx.miter.select_candidates(frame, out.pers_hits, as);
    check = ctx.engine.check_assumptions(as);
  } else {
    std::vector<encode::Lit> diffs;
    diffs.reserve(out.pers_hits.size());
    for (rtlir::StateVarId sv : out.pers_hits) diffs.push_back(ctx.miter.diff_literal(sv, frame));

    ipc::BoundedProperty prop;
    prop.name = property_name + "-cex";
    prop.window = frame;
    prop.assumptions = assumptions;
    prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

    check = ctx.engine.check(prop);
    // Single-use violation literal; retire it (see sweep_sequential_legacy).
    ctx.miter.cnf().add_clause(std::vector<encode::Lit>{~prop.violation});
  }
  log.seconds += check.seconds;
  log.conflicts += check.conflicts;
  total_seconds += check.seconds;
  if (check.status != ipc::CheckStatus::Violated) return std::nullopt;
  return ipc::extract_waveform(ctx.miter, frame, ctx.waveform_probes(), out.s_cex);
}

} // namespace upec
