#include "upec/sweep.h"

#include <algorithm>

#include "upec/alg1.h"
#include "upec/engine.h"

namespace upec {

namespace {

// The classic single-solver path: incremental counterexample saturation on
// the context's main solver. Solve the disjunction of the remaining diff
// literals, harvest every differing variable from the model, shrink, repeat
// until UNSAT (or, with saturate == false, stop after the first model).
//
// CheckScheduler::sweep (ipc/scheduler.cpp) runs the same harvest/shrink
// step per chunk; the two implementations stay separate because they differ
// structurally (BoundedProperty on the context engine vs backend rounds with
// a barrier), and their agreement is semantic — both converge on
// {sv : diff(sv) satisfiable} — not textual. test_determinism pins it.
SweepOutcome sweep_sequential(UpecContext& ctx, const std::string& property_name,
                              const std::vector<encode::Lit>& assumptions,
                              const std::vector<rtlir::StateVarId>& members, unsigned frame,
                              bool saturate) {
  SweepOutcome out;
  std::vector<rtlir::StateVarId> remaining = members;

  ipc::BoundedProperty prop;
  prop.name = property_name;
  prop.window = frame;
  prop.assumptions = assumptions;

  bool unknown = false;
  bool inconsistent = false;
  while (!remaining.empty()) {
    std::vector<encode::Lit> diffs;
    diffs.reserve(remaining.size());
    for (rtlir::StateVarId sv : remaining) diffs.push_back(ctx.miter.diff_literal(sv, frame));
    prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

    const ipc::CheckResult check = ctx.engine.check(prop);
    // The violation literal is single-use: pin it false at the root so the
    // disjunction clause it guards goes dead for BCP (and for every worker
    // that later hydrates it) instead of accumulating round after round.
    // Model reads below are unaffected — they consult the saved model, not
    // the trail this unit re-propagates.
    ctx.miter.cnf().add_clause(std::vector<encode::Lit>{~prop.violation});
    out.seconds += check.seconds;
    out.conflicts += check.conflicts;
    if (check.status == ipc::CheckStatus::Unknown) {
      unknown = true;
      break;
    }
    if (check.status == ipc::CheckStatus::Holds) break;

    std::vector<rtlir::StateVarId> newly;
    for (rtlir::StateVarId sv : remaining) {
      if (ctx.miter.differs_in_model(sv, frame)) newly.push_back(sv);
    }
    if (newly.empty()) {
      // A violation with no extractable difference would mean the diff
      // literals and the model disagree; stop rather than loop.
      inconsistent = true;
      break;
    }
    out.s_cex.insert(out.s_cex.end(), newly.begin(), newly.end());
    std::erase_if(remaining, [&](rtlir::StateVarId sv) {
      return std::find(newly.begin(), newly.end(), sv) != newly.end();
    });
    if (!saturate) break;
  }

  std::sort(out.s_cex.begin(), out.s_cex.end());
  out.status = (unknown || inconsistent)  ? ipc::CheckStatus::Unknown
               : out.s_cex.empty()        ? ipc::CheckStatus::Holds
                                          : ipc::CheckStatus::Violated;
  return out;
}

} // namespace

SweepOutcome sweep_frame(UpecContext& ctx, const std::string& property_name,
                         const std::vector<encode::Lit>& assumptions, const StateSet& S,
                         unsigned frame, bool saturate) {
  const std::vector<rtlir::StateVarId> members = S.to_vector();
  SweepOutcome out;
  // The scheduler always saturates (only the complete frontier is a semantic,
  // thread-count-independent set). The non-saturating ablation mode
  // (saturate_cex = false) is inherently single-model, so it stays on the
  // main solver regardless of the threads option — this keeps its results
  // identical across thread counts too.
  if (ctx.scheduler && saturate) {
    const ipc::SweepResult r = ctx.scheduler->sweep(ctx.miter, assumptions, members, frame);
    out.status = r.status;
    out.s_cex = r.differing;
    out.seconds = r.seconds;
    out.conflicts = r.conflicts;
  } else {
    out = sweep_sequential(ctx, property_name, assumptions, members, frame, saturate);
  }
  out.pers_hits.clear();
  for (rtlir::StateVarId sv : out.s_cex) {
    if (ctx.in_s_pers(sv)) out.pers_hits.push_back(sv);
  }
  return out;
}

std::optional<ipc::Waveform> extract_pers_waveform(UpecContext& ctx,
                                                   const std::string& property_name,
                                                   const std::vector<encode::Lit>& assumptions,
                                                   const SweepOutcome& out, unsigned frame,
                                                   IterationLog& log, double& total_seconds) {
  std::vector<encode::Lit> diffs;
  diffs.reserve(out.pers_hits.size());
  for (rtlir::StateVarId sv : out.pers_hits) diffs.push_back(ctx.miter.diff_literal(sv, frame));

  ipc::BoundedProperty prop;
  prop.name = property_name + "-cex";
  prop.window = frame;
  prop.assumptions = assumptions;
  prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);

  const ipc::CheckResult check = ctx.engine.check(prop);
  // Single-use violation literal; retire it (see sweep_sequential).
  ctx.miter.cnf().add_clause(std::vector<encode::Lit>{~prop.violation});
  log.seconds += check.seconds;
  log.conflicts += check.conflicts;
  total_seconds += check.seconds;
  if (check.status != ipc::CheckStatus::Violated) return std::nullopt;
  return ipc::extract_waveform(ctx.miter, frame, ctx.waveform_probes(), out.s_cex);
}

} // namespace upec
