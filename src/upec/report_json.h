// Machine-readable JSON rendering of verification outcomes — the structured
// counterpart of upec/report.h's text reports, for dashboards, regression
// tooling, and the bench harness.
//
// Schema (stable key order, see README "Observability"):
//   {
//     "schema": "upec-report-v1",
//     "algorithm": "alg1" | "alg2",
//     "verdict": "secure" | "vulnerable" | "unknown",
//     "timed_out": bool,
//     "total_seconds": number,
//     "config": { ...verdict-relevant VerifyOptions echo... },
//     "config_hash": "<16 lowercase hex digits>",
//     "iterations": [ { "s_size": n, ..., "removed": ["name", ...] }, ... ],
//     "persistent_hits": ["name", ...],
//     "full_cex": ["name", ...],
//     "waveform": bool,                      // a waveform was extracted
//     "final_s_size": n,                     // alg1 only
//     "final_k": n, "induction": {...}|null, // alg2 only
//     "metrics": { "<counter name>": n, ... } // SolverUsage::metrics, flat
//   }
//
// `config` and `config_hash` cover only verdict-relevant options — the
// observability fields (trace_path, progress_conflicts, progress) are
// excluded, so turning tracing on/off does not change the hash: two reports
// with equal config_hash describe runs that must agree bit-identically on
// verdicts and frontiers (test_determinism pins this).
#pragma once

#include <string>

#include "upec/alg2.h"
#include "upec/engine.h"

namespace upec {

std::string render_json(const UpecContext& ctx, const Alg1Result& result);
std::string render_json(const UpecContext& ctx, const Alg2Result& result);

// FNV-1a (64-bit) over the canonical `config` JSON serialization, as 16
// lowercase hex digits. Exposed for tests and external comparisons.
std::string config_hash(const VerifyOptions& options);

} // namespace upec
