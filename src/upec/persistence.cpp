#include "upec/persistence.h"

#include <sstream>

namespace upec {

const char* persistence_name(Persistence p) {
  switch (p) {
    case Persistence::Transient: return "transient";
    case Persistence::PersistentAccessible: return "persistent+accessible (S_pers)";
    case Persistence::PersistentInaccessible: return "persistent, not attacker-accessible";
    case Persistence::Unknown: return "unknown (needs inspection)";
  }
  return "?";
}

namespace {

bool has_prefix(const std::string& s, const std::string& p) { return s.rfind(p, 0) == 0; }
bool contains(const std::string& s, const std::string& sub) {
  return s.find(sub) != std::string::npos;
}

Persistence classify_one(const rtlir::StateVarTable& svt, const soc::Soc& soc,
                         rtlir::StateVarId id) {
  const rtlir::StateVar& v = svt.var(id);

  if (v.kind == rtlir::StateVar::Kind::MemWord) {
    // RAM words: accessibility follows the address map region.
    if (v.index == soc.priv_ram_mem) return Persistence::PersistentInaccessible;
    if (v.index == soc.pub_ram_mem) return Persistence::PersistentAccessible;
    return Persistence::Unknown;
  }

  const std::string name = svt.name(id);

  // Round-robin arbitration pointers persist across context switches and are
  // observable through arbitration timing by the attacker's own IPs — the
  // Sec 3.4 "requires closer inspection" category (see the arbiter ablation).
  if (contains(name, ".rr_ptr_q")) return Persistence::Unknown;
  // Interconnect state: crossbar request latches and response routing.
  if (contains(name, ".xbar_")) return Persistence::Transient;
  // Response-path registers of SRAMs and peripherals: rewritten by every
  // transaction addressed at them; they cannot be read without overwriting.
  if (contains(name, ".rvalid_q") || contains(name, ".rdata_q")) return Persistence::Transient;
  // Single-cycle pipeline/pulse registers (unconditionally rewritten every
  // clock): cannot hold information across a context switch.
  if (contains(name, "_stage_q") || contains(name, ".done_q")) return Persistence::Transient;
  // The DMA's in-flight read-data latch: persistent in value, but the only
  // path that exposes it (the next DMA write) first overwrites it — see the
  // classification note in DESIGN.md. Left as Unknown deliberately: this is
  // the Sec 3.4 "requires closer inspection" category.
  if (contains(name, ".rlatch_q")) return Persistence::Unknown;

  // Architectural IP registers: attacker-readable via the public crossbar.
  for (const char* ip : {".timer.", ".dma.", ".hwpe.", ".gpio.", ".uart.", ".event.",
                         ".soc_ctrl."}) {
    if (contains(name, ip)) return Persistence::PersistentAccessible;
  }

  if (has_prefix(name, "soc.cpu.")) return Persistence::PersistentInaccessible;
  return Persistence::Unknown;
}

} // namespace

PersistenceClassifier::PersistenceClassifier(const rtlir::StateVarTable& svt,
                                             const soc::Soc& soc)
    : svt_(svt), soc_(soc) {
  cached_.reserve(svt.size());
  for (rtlir::StateVarId id = 0; id < svt.size(); ++id) {
    cached_.push_back(classify_one(svt, soc, id));
  }
}

Persistence PersistenceClassifier::classify(rtlir::StateVarId id) const { return cached_[id]; }

StateSet PersistenceClassifier::s_pers() const {
  StateSet s = StateSet::none(svt_);
  for (rtlir::StateVarId id = 0; id < svt_.size(); ++id) {
    if (in_s_pers(id)) s.insert(id);
  }
  return s;
}

std::vector<rtlir::StateVarId> PersistenceClassifier::unknowns() const {
  std::vector<rtlir::StateVarId> out;
  for (rtlir::StateVarId id = 0; id < svt_.size(); ++id) {
    if (cached_[id] == Persistence::Unknown) out.push_back(id);
  }
  return out;
}

std::string PersistenceClassifier::describe() const {
  std::ostringstream os;
  std::size_t counts[4] = {0, 0, 0, 0};
  for (rtlir::StateVarId id = 0; id < svt_.size(); ++id) {
    ++counts[static_cast<int>(cached_[id])];
  }
  os << "state variables: " << svt_.size() << "\n"
     << "  transient:                " << counts[0] << "\n"
     << "  persistent + accessible:  " << counts[1] << "\n"
     << "  persistent, inaccessible: " << counts[2] << "\n"
     << "  unknown (inspect):        " << counts[3] << "\n";
  for (rtlir::StateVarId id = 0; id < svt_.size(); ++id) {
    if (cached_[id] == Persistence::Unknown) os << "  inspect: " << svt_.name(id) << "\n";
  }
  return os.str();
}


TransienceAudit audit_transients(const rtlir::StateVarTable& svt,
                                 const PersistenceClassifier& classifier) {
  TransienceAudit audit;
  const rtlir::Design& design = svt.design();
  for (rtlir::StateVarId id = 0; id < svt.size(); ++id) {
    if (classifier.classify(id) != Persistence::Transient) continue;
    const rtlir::StateVar& v = svt.var(id);
    if (v.kind != rtlir::StateVar::Kind::Reg) continue;
    const rtlir::Register& reg = design.registers()[v.index];
    bool always = reg.en == rtlir::kNullNet;
    if (!always && design.net(reg.en).kind == rtlir::NetKind::Const) {
      always = design.consts()[design.net(reg.en).payload].value() == 1;
    }
    (always ? audit.trivially_transient : audit.conditionally_written).push_back(id);
  }
  return audit;
}

} // namespace upec
