// Simulation-guided invariant mining.
//
// Sec 3.4 of the paper notes that IPC false counterexamples are pruned with
// invariants that "are straightforward to formulate". This module automates
// the first pass: it drives the design with random inputs from reset,
// watches which registers never leave a constant value, proposes
// "reg == const" candidates, and keeps exactly those that the inductive
// check (base from reset + step) discharges. On the hardware-guarded SoC
// this proves e.g. `xbar_priv rsel_master_q == 0` fully automatically — the
// invariant the countermeasure proof otherwise assumes from the firmware
// constraints.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ipc/invariant.h"

namespace upec {

struct MinedInvariant {
  std::string description; // human-readable, e.g. "soc.x.y_q == 8'h00"
  std::uint32_t reg = 0;
  std::uint64_t value = 0;
  bool proven = false; // passed the inductive check
};

struct MinerOptions {
  unsigned cycles = 512;       // random-simulation horizon
  std::uint64_t seed = 1;      // deterministic stimulus
  bool prove = true;           // discharge candidates inductively
  // Registers wider than this are skipped (wide constants are usually just
  // unexercised data paths, not invariants worth assuming).
  unsigned max_width = 8;
  // Biased stimulus: for the named inputs, draw from the given value pool
  // half of the time instead of uniformly at random. Pure random stimulus
  // rarely hits decoded address ranges, so callers seed the pool with mapped
  // addresses to exercise the bus fabric.
  std::unordered_map<std::string, std::vector<std::uint64_t>> input_pool;
};

std::vector<MinedInvariant> mine_constant_invariants(const rtlir::Design& design,
                                                     const rtlir::StateVarTable& svt,
                                                     const MinerOptions& options = {});

// Wraps a proven mined invariant as an ipc::Invariant usable in proofs.
ipc::Invariant to_invariant(const rtlir::Design& design, const MinedInvariant& mined);

} // namespace upec
