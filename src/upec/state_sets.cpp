#include "upec/state_sets.h"

namespace upec {

StateSet s_not_victim(const rtlir::StateVarTable& svt,
                      const std::vector<std::string>& excluded_prefixes) {
  StateSet s = StateSet::all(svt);
  for (const std::string& prefix : excluded_prefixes) {
    for (rtlir::StateVarId id : svt.ids_with_prefix(prefix)) s.remove(id);
  }
  return s;
}

} // namespace upec
