// UpecContext: assembles the full UPEC-SSC verification stack for one SoC —
// miter, macros, persistence classification, IPC engine — and owns the
// verification entry points used by examples, tests and benchmarks.
#pragma once

#include <chrono>
#include <functional>
#include <memory>
#include <optional>

#include "encode/miter.h"
#include "ipc/engine.h"
#include "util/trace.h"
#include "ipc/scheduler.h"
#include "sat/snapshot.h"
#include "soc/pulpissimo.h"
#include "upec/alg1.h"
#include "upec/alg2.h"
#include "upec/incremental.h"
#include "upec/macros.h"
#include "upec/persistence.h"

namespace upec {

// One solver-progress heartbeat (see VerifyOptions::progress_conflicts).
struct ProgressEvent {
  // "main" for the main solver, "w<k>" for scheduler worker k. Portfolio
  // members report under their host worker's label — member-level
  // attribution lives in the trace and the metrics registry instead.
  std::string source;
  std::uint64_t conflicts = 0;
  std::uint64_t restarts = 0;
  std::uint64_t learnts = 0; // live learnt clauses at the sample
  // Milliseconds until the run deadline; negative once past it; nullopt
  // when the run has no deadline.
  std::optional<std::int64_t> deadline_remaining_ms;
};

struct VerifyOptions {
  MacroConfig macros;
  // Abort a single check after this many conflicts (0 = no limit).
  std::uint64_t conflict_budget = 0;
  // Worker solvers for the per-state-variable checks of Alg. 1 / Alg. 2.
  // 1 (default) keeps everything on the single incremental main solver;
  // N > 1 fans each iteration across N solvers hydrated from the shared
  // clause store. Results are bit-identical for every value (see
  // ipc/scheduler.h).
  unsigned threads = 1;
  // Worker-to-worker learned-clause sharing (effective only at threads > 1):
  // workers export low-LBD learnt clauses into a shared channel and import
  // foreign ones at restart boundaries, cutting the UNSAT work the chunked
  // sweep otherwise re-proves per worker. Verdicts and frontiers are
  // unaffected — shared clauses are implied by the common store — so this is
  // safe to leave on; turning it off is for A/B cost measurements
  // (bench_clause_sharing).
  bool share_clauses = true;
  // Optional restriction of S_pers (e.g. "only the HWPE and public RAM" to
  // steer Alg. 1 toward a specific attack scenario in the case study).
  std::function<bool(rtlir::StateVarId)> s_pers_filter;
  // Cross-iteration incremental sweeps: candidates get persistent activation
  // literals encoded once (Miter::register_candidates) and every sweep round
  // selects its subset purely through assumptions, so nothing is re-encoded
  // per round and solvers keep their learnt databases valid across rounds
  // and iterations; final refutation cores additionally prune candidates
  // from later frontiers (upec/incremental.h). Verdicts and frontiers are
  // bit-identical either way (test_determinism / test_incremental); off is
  // the re-encode baseline for bench_sweep_incremental.
  bool incremental_sweeps = true;
  // Cache UNSAT verdicts (with their assumption cores) keyed on the store
  // cursor and canonicalized assumption set, shared between the main solver
  // and every scheduler worker (sat/verdict_cache.h). Only repeated queries
  // against an unchanged formula hit, so this is correctness-neutral.
  bool verdict_cache = true;
  // Wall-clock budget for the whole verification run, in milliseconds
  // (0 = unlimited), measured from context construction. Solvers abort past
  // it and the run reports Verdict::Unknown with `timed_out` set — a
  // time-starved run is distinguishable from a conflict-budget-starved one.
  std::uint64_t deadline_ms = 0;
  // Portfolio racing: every check runs on `portfolio` diversified solvers
  // (restart pacing / initial-phase seeds), first definitive answer wins,
  // losers are cancelled. Verification results are bit-identical with the
  // portfolio on or off — answers are semantic (models are validated or
  // harvested per candidate, UNSAT is sound from any member) — pinned by
  // test_determinism. 1 (default) = off.
  unsigned portfolio = 1;
  std::uint64_t portfolio_seed = 0x5eedULL;
  // Snapshot-level CNF preprocessing for scheduler workers (sat/simplify.h):
  // the sweep snapshot is simplified once per store generation — subsumption,
  // self-subsuming resolution, bounded variable elimination, failed-literal
  // probing — and every worker hydrates from the simplified view instead of
  // the raw store. Sound by the frozen-variable contract: everything the
  // sweeps assume or read back (eq/diff/activation/exempt literals, macro
  // assumption variables, waveform probe images) is declared frozen through
  // UpecContext::frozen_vars and survives preprocessing untouched, and all
  // other rewriting is consequence-only or model-reconstructible. Verdicts,
  // frontiers and waveforms are bit-identical with preprocessing on or off
  // (pinned by test_determinism). Inert on the main solver and therefore at
  // threads == 1 without portfolio/external — only worker hydration changes.
  bool preprocess = true;
  // External DIMACS solver command raced/consulted per worker under the
  // supervision policy below (sat/supervise.h): per-solve deadline, restart
  // with backoff on crash, quarantine after consecutive failures, graceful
  // degradation to the in-proc solver. Empty (default) = in-proc only.
  // Use sat::self_solver_argv() to pipe through this binary itself.
  std::vector<std::string> external_solver;
  std::uint32_t external_deadline_ms = 10'000;
  sat::SuperviseOptions supervise;
  // --- Observability (all verdict-inert; README "Observability") -----------
  // When non-empty, the context arms a util::trace session at construction
  // and writes a Chrome trace-event JSON file here when the context is
  // destroyed (Perfetto / chrome://tracing loadable): spans for encoding,
  // simplifier runs, snapshot hydration, sweeps, every backend solve,
  // subprocess lifecycles, and portfolio races. Tracing only records —
  // verdicts, frontiers, and waveforms are bit-identical with it on or off
  // (pinned by test_determinism).
  std::string trace_path;
  // Progress heartbeat: every `progress_conflicts` conflicts each in-proc
  // solver (main, workers, portfolio members) reports a ProgressEvent
  // through `progress`, and — when tracing — as `solver.<source>.conflicts`
  // counter samples in the trace. The callback fires on solving threads,
  // concurrently at threads/portfolio > 1: it must be thread-safe and stay
  // cheap. 0 (default) = off.
  std::uint64_t progress_conflicts = 0;
  std::function<void(const ProgressEvent&)> progress;
};

class UpecContext {
public:
  UpecContext(const soc::Soc& soc, VerifyOptions options = {});

  const soc::Soc& soc;
  VerifyOptions options;
  // Armed from options.trace_path (null when tracing is off). Declared
  // before every recording member and especially before `scheduler`:
  // members destruct in reverse order, so the session's flush-on-destroy
  // runs strictly after the scheduler joined its workers — no recorder can
  // race the flush.
  std::unique_ptr<util::trace::TraceSession> trace_session;
  rtlir::StateVarTable svt;
  // Shared clause database: everything the encode layer emits is recorded
  // here (through `sink`) so scheduler workers — and DIMACS exports — can be
  // hydrated from an immutable snapshot at any point. Deliberately recorded
  // even at threads == 1: the store is the canonical formula record (a
  // threads-conditional store would make snapshot exports silently empty on
  // default runs), at the cost of one uncontended lock + clause copy per
  // emission and a duplicate of the CNF in memory.
  sat::CnfStore store;
  sat::Solver solver; // main solver; always current via `sink`
  sat::TeeSink sink;  // solver + store
  encode::Miter miter;
  SsMacros macros;
  PersistenceClassifier pers;
  ipc::Engine engine;
  // Shared UNSAT-verdict cache (main solver + workers) and the UNSAT-core
  // frontier pruner. Both exist unconditionally — the options toggles gate
  // their *use* — and must be declared before `scheduler`, whose workers
  // capture a pointer to the cache at construction.
  sat::VerdictCache verdict_cache;
  FrontierPruner pruner;
  // Absolute deadline derived from options.deadline_ms at construction
  // (nullopt = unlimited); installed on the main solver and every worker.
  std::optional<std::chrono::steady_clock::time_point> run_deadline;
  // Non-null iff any check needs fan-out machinery: options.threads > 1,
  // options.portfolio > 1, or an external solver is configured.
  std::unique_ptr<ipc::CheckScheduler> scheduler;
  StateSet s_pers; // after filtering

  bool in_s_pers(rtlir::StateVarId sv) const { return s_pers.contains(sv); }

  // Probe names extracted into counterexample waveforms.
  std::vector<std::string> waveform_probes() const;

  // Pre-encodes the probe images for frames 0..max_frame in both instances.
  // Waveform extraction happens after the solve; any image created later
  // would read back arbitrary values, so probes must be in the CNF up front.
  void touch_probes(unsigned max_frame);

  // The frozen-variable declaration handed to the scheduler's preprocessor
  // (see sat/simplify.h): the miter's named literals plus every encoded
  // waveform-probe image bit. Waveform/counterexample extraction runs on the
  // main (never simplified) solver, so freezing the probe images is defensive
  // insurance rather than a live dependency — cheap, and it keeps the
  // contract honest if a future caller reads probes from a worker model.
  std::vector<sat::Var> frozen_vars() const;
};

// Convenience wrappers: build a context and run the respective procedure.
Alg1Result verify_2cycle(const soc::Soc& soc, VerifyOptions options = {},
                         const Alg1Options& alg = {});
Alg2Result verify_unrolled(const soc::Soc& soc, VerifyOptions options = {},
                           const Alg2Options& alg = {});

// The configuration used for the secured SoC of Sec 4.2: victim range mapped
// into the private RAM and DMA firmware constraints enabled.
VerifyOptions countermeasure_options();

} // namespace upec
