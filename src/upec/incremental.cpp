#include "upec/incremental.h"

namespace upec {

void FrontierPruner::record(unsigned frame, const std::vector<rtlir::StateVarId>& enabled,
                            Justification just) {
  auto shared = std::make_shared<const Justification>(std::move(just));
  for (rtlir::StateVarId sv : enabled) just_[key(frame, sv)] = shared;
}

void FrontierPruner::filter(unsigned frame, const std::vector<rtlir::StateVarId>& members,
                            const std::unordered_set<rtlir::StateVarId>& eq_assumed,
                            const std::unordered_set<std::int32_t>& assumption_lits,
                            std::vector<rtlir::StateVarId>& eligible,
                            std::vector<rtlir::StateVarId>& pruned) {
  eligible.clear();
  pruned.clear();
  for (rtlir::StateVarId sv : members) {
    const auto it = just_.find(key(frame, sv));
    bool prunable = it != just_.end();
    if (prunable) {
      for (rtlir::StateVarId dep : it->second->eq_svs) {
        if (eq_assumed.find(dep) == eq_assumed.end()) {
          prunable = false;
          break;
        }
      }
    }
    if (prunable) {
      for (sat::Lit l : it->second->other_lits) {
        if (assumption_lits.find(l.index()) == assumption_lits.end()) {
          prunable = false;
          break;
        }
      }
    }
    if (prunable) {
      pruned.push_back(sv);
    } else {
      eligible.push_back(sv);
    }
  }
  total_pruned_ += pruned.size();
}

} // namespace upec
