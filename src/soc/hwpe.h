// Hardware Processing Engine (HWPE) accelerator.
//
// This is the IP at the center of the paper's newly found BUSted variant
// (Sec 4.1): it streams results into a configured memory region, one word per
// cycle when granted. When a victim access contends for the same memory, the
// HWPE's stream stalls — so after the attack window, the *overwrite progress*
// visible in the primed memory region (and the PROGRESS register) encodes how
// often the victim accessed that memory device. No timer is needed.
//
// Register map (word offsets): 0 DST, 1 LEN, 2 CTRL (write bit0=1 = go,
// bit0=0 = stop), 3 STATUS (bit0 = busy), 4 PROGRESS (words written so far).
// Streaming pattern: word i receives the non-zero value i+1 (the paper's
// "progressively overwrite the primed region with non-zero values").
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

class Hwpe {
public:
  Hwpe(Builder& b, const std::string& name);

  const BusReq& master_req() const { return master_; }

  SlaveIf slave(Builder& b, const BusReq& cfg_bus);
  void finalize(Builder& b, NetId gnt);

  NetId done_pulse() const { return done_q_.q; }
  NetId busy() const { return running_.q; }
  NetId progress_q() const { return progress_.q; }
  NetId dst_q() const { return dst_.q; }

private:
  std::string name_;
  rtlir::RegHandle dst_, len_, progress_, running_, stream_stage_, done_q_;
  BusReq master_;
  PeriphBus bus_;
  bool have_bus_ = false;
};

} // namespace upec::soc
