#include "soc/soc_ctrl.h"

namespace upec::soc {

SocCtrlOut build_soc_ctrl(Builder& b, const std::string& name, const BusReq& bus) {
  Builder::Scope scope(b, name);
  const PeriphBus p = periph_decode(b, bus);

  rtlir::RegHandle scratch0 = b.reg("scratch0_q", 32);
  rtlir::RegHandle scratch1 = b.reg("scratch1_q", 32);
  b.connect(scratch0, p.wdata, reg_wr(b, p, 1));
  b.connect(scratch1, p.wdata, reg_wr(b, p, 2));

  SocCtrlOut s;
  s.slave = periph_response(
      b, p, {{0, b.constant(32, kChipId)}, {1, scratch0.q}, {2, scratch1.q}});
  return s;
}

} // namespace upec::soc
