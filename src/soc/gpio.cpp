#include "soc/gpio.h"

namespace upec::soc {

GpioOut build_gpio(Builder& b, const std::string& name, const BusReq& bus, NetId pad_in) {
  Builder::Scope scope(b, name);
  const PeriphBus p = periph_decode(b, bus);

  rtlir::RegHandle dir = b.reg("dir_q", 16);
  rtlir::RegHandle out = b.reg("out_q", 16);
  b.connect(dir, b.trunc(p.wdata, 16), reg_wr(b, p, 0));
  b.connect(out, b.trunc(p.wdata, 16), reg_wr(b, p, 1));

  // Pads are sampled through a register (synchronizer stand-in).
  const NetId in_q = b.pipe("in_q", pad_in);

  GpioOut g;
  g.slave = periph_response(b, p, {{0, dir.q}, {1, out.q}, {2, in_q}});
  return g;
}

} // namespace upec::soc
