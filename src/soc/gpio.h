// GPIO block: DIR/OUT registers plus a pad-input sample register.
// Offsets: 0 DIR, 1 OUT, 2 IN (read-only). Attacker-readable persistent
// state; part of S_pers in the UPEC-SSC classification.
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

struct GpioOut {
  SlaveIf slave;
};

GpioOut build_gpio(Builder& b, const std::string& name, const BusReq& bus, NetId pad_in);

} // namespace upec::soc
