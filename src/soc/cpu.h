// 2-stage pipelined RV32I core (IF / EX), modeled on the Pulpissimo paper's
// "2-stage pipelined RISC-V core" (zero-riscy class).
//
// Microarchitecture:
//   - IF: synchronous fetch from a core-local instruction memory (MCU
//     ROM/flash model); one instruction latched per cycle.
//   - EX: decode + ALU + branch resolution + data-memory access + write-back.
//     Loads stall the pipeline until rvalid; stores are posted after grant.
//     Taken branches/jumps redirect the PC and squash the fetched slot
//     (one-cycle bubble).
//   - Register file: 32x32 memory array; x0 is hardwired to zero.
//
// ISA subset: LUI AUIPC JAL JALR, all branches, LW SW (word only), all
// OP-IMM and OP arithmetic including shifts and SRA. No CSRs, fences,
// sub-word accesses, or exceptions — none of which participate in the
// paper's threat model (Sec 2.1 rules out CPU-internal footprints).
//
// All core state lives under the "soc.cpu." scope, which is exactly what
// Def. 1 (1) of the paper excludes from S_¬victim.
#pragma once

#include <string>

#include "soc/bus.h"

namespace upec::soc {

struct CpuOut {
  BusReq data_req;               // data port, master on the crossbars
  std::uint32_t imem = 0;        // rtlir memory index of the instruction ROM
  std::uint32_t regfile = 0;     // rtlir memory index of the register file
  NetId pc = kNullNet;           // current fetch PC (probe)
  NetId retired = kNullNet;      // 1-bit: instruction completed this cycle
};

class Cpu {
public:
  // `imem_words` must be a power of two. The boot PC is 0 (imem-local).
  Cpu(Builder& b, const std::string& name, std::uint32_t imem_words);

  const CpuOut& out() const { return out_; }

  // Connects the data-port response; must run after the interconnect exists.
  void finalize(Builder& b, NetId gnt, NetId rvalid, NetId rdata);

private:
  std::string name_;
  std::uint32_t imem_words_;
  rtlir::MemHandle imem_{}, regs_{};
  rtlir::RegHandle pc_, if_instr_, if_pc_, if_valid_, ex_state_, load_rd_;
  CpuOut out_;

  // Decode/execute nets computed in the constructor (they depend only on
  // architectural state), consumed by finalize() once the bus responses
  // exist. Register updates are all connected in finalize().
  struct Signals {
    NetId fetch_data = kNullNet;
    NetId ex_valid = kNullNet;
    NetId is_load = kNullNet, is_store = kNullNet, is_branch = kNullNet;
    NetId is_jal = kNullNet, is_jalr = kNullNet;
    NetId writes_rd = kNullNet;
    NetId rd = kNullNet;
    NetId taken = kNullNet;     // branch condition result
    NetId target = kNullNet;    // redirect target (branch/jal/jalr)
    NetId wb_val = kNullNet;    // write-back value for non-load instructions
  } sig_;
};

} // namespace upec::soc
