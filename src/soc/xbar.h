// Crossbar interconnect: N masters × M address-decoded slaves with
// per-slave fixed-priority arbitration and one-cycle response routing.
//
// Construction is two-phase because slaves are built by their own modules:
//   Xbar xb(b, "xbar_pub", masters, slave_regions);
//   SlaveIf s0 = build_sram(b, ..., xb.slave_req(0));
//   xb.connect_slave(0, s0);
//   ...
//   BusRsp cpu_rsp = xb.master_rsp(0);   // after all slaves connected
//
// State held by the crossbar (response-select registers) is the canonical
// example of *transient* interconnect state in the paper's Sec 3.4: it is
// overwritten by every transaction and therefore not part of S_pers.
#pragma once

#include <string>
#include <vector>

#include "soc/addr_map.h"
#include "soc/arbiter.h"

namespace upec::soc {

class Xbar {
public:
  Xbar(Builder& b, const std::string& name, std::vector<BusReq> masters,
       std::vector<Region> slave_regions, ArbiterKind arbiter = ArbiterKind::FixedPriority);

  std::size_t num_masters() const { return masters_.size(); }
  std::size_t num_slaves() const { return regions_.size(); }

  // Merged (post-arbitration) request presented to slave `s`.
  const BusReq& slave_req(std::size_t s) const { return slave_req_[s]; }

  void connect_slave(std::size_t s, const SlaveIf& sif);

  // Response bundle for master `m`; requires all slaves connected.
  BusRsp master_rsp(std::size_t m);

  // Grant for master m on slave s (diagnostic probes).
  NetId grant(std::size_t m, std::size_t s) const { return grant_[m][s]; }

private:
  Builder& b_;
  std::string name_;
  std::vector<BusReq> masters_;
  std::vector<Region> regions_;
  std::vector<BusReq> slave_req_;
  std::vector<SlaveIf> slave_if_;
  std::vector<std::vector<NetId>> grant_;  // [master][slave]
  std::vector<NetId> rsel_valid_q_;        // [slave] response pending
  std::vector<NetId> rsel_master_q_;       // [slave] responding master index
  unsigned sel_bits_ = 1;
};

} // namespace upec::soc
