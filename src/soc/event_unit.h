// Event unit: latches completion events from IPs into a sticky, attacker-
// readable pending register, and optionally routes a selected event to the
// timer's hardware start input. The DMA-done → timer-start route is what the
// classic BUSted attack (Fig. 1) uses to start its stopwatch without software
// involvement at the end of the recording phase.
//
// Register map (word offsets):
//   0 PENDING  bit0 = dma_done, bit1 = hwpe_done, bit2 = timer_ovf;
//              sticky, write-1-to-clear
//   1 TRIGSEL  0 = none, 1 = dma_done starts timer, 2 = hwpe_done starts timer
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

class EventUnit {
public:
  EventUnit(Builder& b, const std::string& name);

  SlaveIf slave(Builder& b, const BusReq& cfg_bus);
  // Returns the timer hardware-start pulse.
  NetId finalize(Builder& b, NetId dma_done, NetId hwpe_done, NetId timer_ovf);

  NetId pending_q() const { return pending_.q; }

private:
  std::string name_;
  rtlir::RegHandle pending_, trig_sel_;
  PeriphBus bus_;
  bool have_bus_ = false;
};

} // namespace upec::soc
