// System timer IP.
//
// The timer is the measurement device of the *classic* BUSted attack (Fig. 1
// of the paper): the attacker arranges for it to be started by an event whose
// arrival time depends on victim bus contention, then reads COUNT after the
// context switch. Registers (word offsets within the block):
//   0 CTRL     bit0: enable (software start/stop)
//   1 COUNT    free-running count while enabled (read/write)
//   2 CMP      compare value; reaching it raises the sticky OVF flag
//   3 PRESCALE 8-bit clock divider
//   4 OVF      sticky overflow flag; write-1-to-clear
// A hardware `start` pulse (from the event unit) also sets the enable bit —
// that is the path the attack uses to avoid CPU involvement in timing.
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

class Timer {
public:
  Timer(Builder& b, const std::string& name);

  SlaveIf slave(Builder& b, const BusReq& bus);
  void finalize(Builder& b, NetId hw_start_pulse);

  // Overflow pulse (single cycle, combinational on current state).
  NetId ovf_pulse() const { return ovf_pulse_; }
  NetId count_q() const { return count_.q; }

private:
  std::string name_;
  rtlir::RegHandle en_, count_, cmp_, prescale_, prescale_cnt_, ovf_;
  NetId ovf_pulse_ = kNullNet;
  PeriphBus bus_;
  bool have_bus_ = false;
};

} // namespace upec::soc
