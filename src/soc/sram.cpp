#include "soc/sram.h"

namespace upec::soc {

SramOut build_sram(Builder& b, const std::string& name, const Region& region,
                   std::uint32_t words, const BusReq& bus) {
  Builder::Scope scope(b, name);
  SramOut out;

  const rtlir::MemHandle mem = b.memory("mem", words, kDataBits);
  out.mem_index = mem.index;
  const unsigned aw = b.mem_addr_width(mem);

  // Word index within the bank. The region is bank-aligned, so the low
  // address bits select the word directly.
  const NetId word = b.slice(bus.addr, 2 + aw - 1, 2);
  (void)region;

  // Synchronous write.
  const NetId wen = b.and_(bus.req, bus.we);
  b.mem_write(mem, word, bus.wdata, wen);

  // Synchronous read: data registered, valid next cycle (read-first on
  // simultaneous write to the same word). Writes are posted — no response —
  // so read and write completions can never alias on the return path.
  const NetId rdata_now = b.mem_read(mem, word);
  const NetId ren = b.and_(bus.req, b.not_(bus.we));
  out.slave.rdata = b.pipe("rdata_q", rdata_now, ren);
  out.slave.rvalid = b.pipe("rvalid_q", ren);
  return out;
}

} // namespace upec::soc
