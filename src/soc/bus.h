// OBI-style on-chip bus bundles.
//
// The protocol is the subset of OBI (used by Pulpissimo's TCDM interconnect
// and peripheral bus) that carries the paper's timing side channel:
//   - master drives  req/addr/we/wdata  and holds them until `gnt`,
//   - arbitration happens per slave, combinationally, fixed priority,
//   - a granted access completes with `rvalid`/`rdata` one cycle later.
// Contention is visible to a master purely as delayed `gnt` — exactly the
// effect the BUSted attack family measures.
#pragma once

#include "rtlir/builder.h"

namespace upec::soc {

using rtlir::Builder;
using rtlir::kNullNet;
using rtlir::NetId;

inline constexpr unsigned kAddrBits = 32;
inline constexpr unsigned kDataBits = 32;

// Request side, driven by a master.
struct BusReq {
  NetId req = kNullNet;   // 1
  NetId addr = kNullNet;  // 32 (byte address, word aligned)
  NetId we = kNullNet;    // 1
  NetId wdata = kNullNet; // 32
};

// Response side, driven by the interconnect.
struct BusRsp {
  NetId gnt = kNullNet;    // 1: request accepted this cycle
  NetId rvalid = kNullNet; // 1: rdata valid (cycle after grant)
  NetId rdata = kNullNet;  // 32
};

// Slave-side completion interface (the slave always accepts the request the
// interconnect forwards; arbitration happened upstream).
struct SlaveIf {
  NetId rvalid = kNullNet;
  NetId rdata = kNullNet;
};

// An idle request bundle (constant zeros), useful for tying off ports.
inline BusReq idle_req(Builder& b) {
  return BusReq{b.zero(1), b.zero(kAddrBits), b.zero(1), b.zero(kDataBits)};
}

} // namespace upec::soc
