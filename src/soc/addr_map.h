// SoC address map: the single source of truth shared by the RTL generator
// (address decoding), the UPEC-SSC layer (symbolic victim ranges, attacker
// accessibility of memory words → S_pers), and the simulation tasks.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace upec::soc {

enum class RegionKind : std::uint8_t {
  PrivateRam, // behind the private crossbar; reachable by CPU (and DMA)
  PublicRam,  // behind the public crossbar; reachable by every master
  Peripheral, // memory-mapped IP registers (public crossbar)
};

struct Region {
  std::string name;
  std::uint32_t base = 0;
  std::uint32_t size = 0; // bytes
  RegionKind kind = RegionKind::Peripheral;
  // Whether an attacker task can read state in this region after a context
  // switch. Drives the S_pers classification (Def. 2 of the paper).
  bool attacker_accessible = true;

  bool contains(std::uint32_t addr) const { return addr >= base && addr - base < size; }
  std::uint32_t end() const { return base + size; }
};

class AddrMap {
public:
  // Default Pulpissimo-style map. RAM sizes are in 32-bit words.
  static AddrMap pulpissimo(std::uint32_t pub_ram_words, std::uint32_t priv_ram_words);

  const std::vector<Region>& regions() const { return regions_; }
  const Region& region(const std::string& name) const;
  const Region* find(std::uint32_t addr) const;

  // Canonical region names used throughout the SoC generator.
  static constexpr const char* kPrivRam = "priv_ram";
  static constexpr const char* kPubRam = "pub_ram";
  static constexpr const char* kTimer = "timer";
  static constexpr const char* kGpio = "gpio";
  static constexpr const char* kUart = "uart";
  static constexpr const char* kDma = "dma";
  static constexpr const char* kHwpe = "hwpe";
  static constexpr const char* kEvent = "event";
  static constexpr const char* kSocCtrl = "soc_ctrl";

private:
  std::vector<Region> regions_;
};

} // namespace upec::soc
