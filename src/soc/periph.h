// Shared plumbing for memory-mapped peripheral register files: offset
// decoding, write strobes, and the registered read-response path every APB
// style peripheral in the SoC uses.
#pragma once

#include <utility>
#include <vector>

#include "soc/bus.h"

namespace upec::soc {

// Decoded view of a peripheral's (post-arbitration) bus request.
struct PeriphBus {
  NetId req = kNullNet;
  NetId wr_en = kNullNet;    // req && we
  NetId rd_en = kNullNet;    // req && !we
  NetId word_off = kNullNet; // addr[5:2]: register index within the 64 B block
  NetId wdata = kNullNet;
};

inline PeriphBus periph_decode(Builder& b, const BusReq& bus) {
  PeriphBus p;
  p.req = bus.req;
  p.wr_en = b.and_(bus.req, bus.we);
  p.rd_en = b.and_(bus.req, b.not_(bus.we));
  p.word_off = b.slice(bus.addr, 5, 2);
  p.wdata = bus.wdata;
  return p;
}

// Write strobe for the register at the given word offset.
inline NetId reg_wr(Builder& b, const PeriphBus& p, unsigned offset_words) {
  return b.and_(p.wr_en, b.eq_const(p.word_off, offset_words));
}

// Registered read response over a (offset -> value) map; values narrower than
// 32 bits are zero-extended. rvalid follows one cycle after a *read* request;
// writes are posted (no response), matching the SRAM banks.
inline SlaveIf periph_response(Builder& b, const PeriphBus& p,
                               const std::vector<std::pair<unsigned, NetId>>& read_map) {
  NetId rdata = b.zero(kDataBits);
  for (const auto& [off, value] : read_map) {
    rdata = b.mux(b.eq_const(p.word_off, off), b.zext(value, kDataBits), rdata);
  }
  SlaveIf out;
  out.rdata = b.pipe("rdata_q", rdata, p.rd_en);
  out.rvalid = b.pipe("rvalid_q", p.rd_en);
  return out;
}

} // namespace upec::soc
