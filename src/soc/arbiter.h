// Fixed-priority combinational arbitration helpers.
//
// Pulpissimo's TCDM interconnect resolves same-cycle conflicts with a static
// scheme; the grant-stall a losing master observes is the contention the
// BUSted attack family times. Lower master index = higher priority (the SoC
// instantiates CPU > DMA > HWPE).
#pragma once

#include <vector>

#include "soc/bus.h"

namespace upec::soc {

enum class ArbiterKind : std::uint8_t {
  FixedPriority, // lowest index wins (Pulpissimo TCDM default; CPU > DMA > HWPE)
  RoundRobin,    // rotating pointer; fair, but the pointer is *state* that
                 // survives a context switch — an additional side-channel
                 // surface examined by the arbiter ablation tests/benches
};

struct ArbiterResult {
  std::vector<NetId> grant; // per requester, 1-bit
  NetId any = kNullNet;     // 1-bit: some requester granted
  NetId winner = kNullNet;  // index of the winning requester (sel_bits wide)
  unsigned sel_bits = 1;
};

// Grants the lowest-indexed active requester.
ArbiterResult priority_arbiter(Builder& b, const std::vector<NetId>& requests);

// Work-conserving round-robin: grants the first active requester at or after
// the pointer; the pointer advances past the winner on every grant.
ArbiterResult round_robin_arbiter(Builder& b, const std::string& name,
                                  const std::vector<NetId>& requests);

// Priority-selects one request bundle per the grant vector (assumed one-hot).
BusReq select_request(Builder& b, const std::vector<BusReq>& reqs,
                      const std::vector<NetId>& grants);

} // namespace upec::soc
