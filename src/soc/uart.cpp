#include "soc/uart.h"

namespace upec::soc {

UartOut build_uart(Builder& b, const std::string& name, const BusReq& bus) {
  Builder::Scope scope(b, name);
  const PeriphBus p = periph_decode(b, bus);

  rtlir::RegHandle baud = b.reg("baud_q", 16, 1);
  rtlir::RegHandle txdata = b.reg("txdata_q", 8);
  rtlir::RegHandle busy_cnt = b.reg("busy_cnt_q", 16);

  const NetId busy = b.ne_const(busy_cnt.q, 0);
  const NetId start = b.and_(reg_wr(b, p, 0), b.not_(busy));

  b.connect(baud, b.trunc(p.wdata, 16), reg_wr(b, p, 2));
  b.connect(txdata, b.trunc(p.wdata, 8), start);

  // One frame ≈ 8 baud periods (start/stop abstracted into the shift count).
  const NetId frame_len = b.shl(baud.q, b.constant(4, 3));
  NetId cnt_next = b.mux(busy, b.sub(busy_cnt.q, b.one(16)), busy_cnt.q);
  cnt_next = b.mux(start, frame_len, cnt_next);
  b.connect(busy_cnt, cnt_next);

  UartOut u;
  // TX line: LSB of the byte while busy, idle-high otherwise.
  u.tx = b.mux(busy, b.bit(txdata.q, 0), b.one(1));
  u.slave = periph_response(b, p, {{0, txdata.q}, {1, busy}, {2, baud.q}});
  return u;
}

} // namespace upec::soc
