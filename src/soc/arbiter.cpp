#include "soc/arbiter.h"

#include <cassert>

namespace upec::soc {

ArbiterResult priority_arbiter(Builder& b, const std::vector<NetId>& requests) {
  assert(!requests.empty());
  ArbiterResult out;
  unsigned sel_bits = 1;
  while ((1u << sel_bits) < requests.size()) ++sel_bits;
  out.sel_bits = sel_bits;

  NetId taken = b.zero(1);
  NetId winner = b.zero(sel_bits);
  for (std::size_t m = 0; m < requests.size(); ++m) {
    const NetId g = b.and_(requests[m], b.not_(taken));
    out.grant.push_back(g);
    winner = b.mux(g, b.constant(sel_bits, m), winner);
    taken = b.or_(taken, requests[m]);
  }
  out.any = taken;
  out.winner = winner;
  return out;
}

ArbiterResult round_robin_arbiter(Builder& b, const std::string& name,
                                  const std::vector<NetId>& requests) {
  assert(!requests.empty());
  Builder::Scope scope(b, name);
  const std::size_t n = requests.size();
  ArbiterResult out;
  unsigned sel_bits = 1;
  while ((1u << sel_bits) < n) ++sel_bits;
  out.sel_bits = sel_bits;

  // Rotating priority pointer. Note: this register persists across context
  // switches and is influenced by every master's traffic — it is the
  // arbitration state the ablation studies flag as an extra leak surface.
  const rtlir::RegHandle ptr = b.reg("rr_ptr_q", sel_bits);

  // Unrolled two-pass priority scan: first the requesters at/after the
  // pointer, then the wrap-around ones. First hit wins.
  NetId taken = b.zero(1);
  NetId winner = b.zero(sel_bits);
  std::vector<NetId> grant(n, kNullNet);
  for (std::size_t m = 0; m < n; ++m) grant[m] = b.zero(1);
  for (int pass = 0; pass < 2; ++pass) {
    for (std::size_t m = 0; m < n; ++m) {
      const NetId at_or_after = b.uge(b.constant(sel_bits, m), ptr.q);
      const NetId eligible = pass == 0 ? at_or_after : b.not_(at_or_after);
      const NetId g = b.and_all({requests[m], eligible, b.not_(taken)});
      grant[m] = b.or_(grant[m], g);
      winner = b.mux(g, b.constant(sel_bits, m), winner);
      taken = b.or_(taken, g);
    }
  }
  out.grant = grant;
  out.any = taken;
  out.winner = winner;

  // Advance the pointer one past the winner (mod n) on every grant.
  const NetId at_last = b.uge(winner, b.constant(sel_bits, n - 1));
  const NetId next = b.mux(at_last, b.zero(sel_bits), b.add_const(winner, 1));
  b.connect(ptr, next, taken);
  return out;
}

BusReq select_request(Builder& b, const std::vector<BusReq>& reqs,
                      const std::vector<NetId>& grants) {
  assert(reqs.size() == grants.size() && !reqs.empty());
  BusReq out;
  out.req = b.or_all(grants);
  out.addr = b.zero(kAddrBits);
  out.we = b.zero(1);
  out.wdata = b.zero(kDataBits);
  for (std::size_t m = 0; m < reqs.size(); ++m) {
    out.addr = b.mux(grants[m], reqs[m].addr, out.addr);
    out.we = b.mux(grants[m], reqs[m].we, out.we);
    out.wdata = b.mux(grants[m], reqs[m].wdata, out.wdata);
  }
  return out;
}

} // namespace upec::soc
