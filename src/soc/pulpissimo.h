// Pulpissimo-style MCU uncore: the design under verification of the case
// study (Sec 4), generated into the rtlir netlist.
//
// Structure (matching the paper's description of the SoC):
//   - CPU modeled at the CPU/system interface (Obs. 1): the core's bus port
//     is a set of primary inputs "cpu.*"; the formal layer leaves the
//     interface symbolic, the simulator drives task scripts through it.
//   - Two crossbars: a public one (L2 RAM + all peripherals; masters CPU,
//     DMA, HWPE) and a private one (private RAM; masters CPU and DMA only) —
//     the two-memory-device architecture the countermeasure of Sec 4.2
//     exploits.
//   - IPs: DMA, HWPE accelerator, timer, GPIO, UART, event unit, SoC control.
//   - Fixed-priority arbitration (CPU > DMA > HWPE) — grant stalls under
//     contention are the timing channel.
//
// The symbolic victim address range [spec.victim_lo, spec.victim_hi] is a
// pair of stable specification inputs; they drive no logic and exist so the
// UPEC-SSC macros can refer to one range consistently everywhere.
#pragma once

#include <memory>
#include <string>

#include "rtlir/analyze.h"
#include "soc/addr_map.h"
#include "soc/arbiter.h"
#include "soc/bus.h"

namespace upec::soc {

struct SocConfig {
  std::uint32_t pub_ram_words = 32;
  std::uint32_t priv_ram_words = 16;
  // Hardware variant of the countermeasure (ablation): physically disconnect
  // the DMA from the private crossbar instead of constraining its firmware.
  bool hw_private_guard = false;
  // Arbitration policy of both crossbars (ablation; see soc/arbiter.h —
  // round-robin introduces persistent arbitration state).
  ArbiterKind arbiter = ArbiterKind::FixedPriority;
  // Instantiate the 2-stage RV32I core (soc/cpu.h) instead of exposing the
  // CPU/system interface as primary inputs. The formal flow uses the
  // interface abstraction (the paper's own Obs. 1 modeling); the full-core
  // build runs real software in simulation and for the ISS cross-checks.
  bool with_cpu = false;
  std::uint32_t imem_words = 64;
};

struct Soc {
  SocConfig config;
  AddrMap map;
  std::unique_ptr<rtlir::Design> design;

  std::uint32_t pub_ram_mem = 0;  // rtlir memory index of the public L2 bank
  std::uint32_t priv_ram_mem = 0; // rtlir memory index of the private bank
  std::int64_t cpu_imem = -1;     // instruction ROM (with_cpu builds only)
  std::int64_t cpu_regfile = -1;  // register file (with_cpu builds only)

  // True for primary inputs that form the CPU/system interface (these get
  // per-instance images in the UPEC miter).
  static bool is_cpu_interface(const std::string& input_name);

  // Byte address of a memory word, or -1 if the word is in no mapped RAM.
  std::int64_t word_address(std::uint32_t mem_index, std::uint32_t word) const;
};

// Canonical probe names exported via design outputs.
namespace probe {
inline constexpr const char* kCpuGnt = "cpu_gnt";
inline constexpr const char* kCpuRvalid = "cpu_rvalid";
inline constexpr const char* kCpuRdata = "cpu_rdata";
inline constexpr const char* kHwpeProgress = "hwpe_progress";
inline constexpr const char* kHwpeBusy = "hwpe_busy";
inline constexpr const char* kHwpeGntPub = "hwpe_gnt_pub";
inline constexpr const char* kDmaBusy = "dma_busy";
inline constexpr const char* kTimerCount = "timer_count";
inline constexpr const char* kEventPending = "event_pending";
inline constexpr const char* kUartTx = "uart_tx";
inline constexpr const char* kCpuPc = "cpu_pc";           // with_cpu builds
inline constexpr const char* kCpuRetired = "cpu_retired"; // with_cpu builds
} // namespace probe

Soc build_pulpissimo(const SocConfig& config = {});

} // namespace upec::soc
