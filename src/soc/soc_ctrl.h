// SoC control block: chip id plus general-purpose scratch registers
// (bootstrap mailbox). Scratch registers are the simplest possible S_pers
// members — fully persistent and attacker-readable.
// Offsets: 0 CHIPID (RO), 1 SCRATCH0, 2 SCRATCH1.
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

inline constexpr std::uint32_t kChipId = 0x51E77E51u;

struct SocCtrlOut {
  SlaveIf slave;
};

SocCtrlOut build_soc_ctrl(Builder& b, const std::string& name, const BusReq& bus);

} // namespace upec::soc
