// UART transmitter front-end: enough of a UART to expose the persistent,
// attacker-readable state (busy countdown, baud divisor, last TX byte) that
// makes it a potential side-channel recorder.
// Offsets: 0 TXDATA (write starts a frame), 1 STATUS (bit0 = busy), 2 BAUD.
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

struct UartOut {
  SlaveIf slave;
  NetId tx = kNullNet; // serialized line (level only; framing abstracted)
};

UartOut build_uart(Builder& b, const std::string& name, const BusReq& bus);

} // namespace upec::soc
