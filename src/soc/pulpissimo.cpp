#include "soc/pulpissimo.h"

#include <optional>

#include "rtlir/builder.h"
#include "soc/cpu.h"
#include "soc/dma.h"
#include "soc/event_unit.h"
#include "soc/gpio.h"
#include "soc/hwpe.h"
#include "soc/soc_ctrl.h"
#include "soc/sram.h"
#include "soc/timer.h"
#include "soc/uart.h"
#include "soc/xbar.h"

namespace upec::soc {

bool Soc::is_cpu_interface(const std::string& input_name) {
  return input_name.rfind("soc.cpu.", 0) == 0;
}

std::int64_t Soc::word_address(std::uint32_t mem_index, std::uint32_t word) const {
  const Region* region = nullptr;
  if (mem_index == pub_ram_mem) {
    region = &map.region(AddrMap::kPubRam);
  } else if (mem_index == priv_ram_mem) {
    region = &map.region(AddrMap::kPrivRam);
  } else {
    return -1;
  }
  const std::uint32_t byte = word * 4;
  if (byte >= region->size) return -1;
  return static_cast<std::int64_t>(region->base + byte);
}

Soc build_pulpissimo(const SocConfig& config) {
  Soc soc;
  soc.config = config;
  soc.map = AddrMap::pulpissimo(config.pub_ram_words, config.priv_ram_words);
  soc.design = std::make_unique<rtlir::Design>();
  rtlir::Builder b(*soc.design);

  Builder::Scope soc_scope(b, "soc");

  // --- CPU: either the real 2-stage core or its bus interface as inputs ----------
  BusReq cpu;
  std::optional<Cpu> core;
  if (config.with_cpu) {
    core.emplace(b, "cpu", config.imem_words);
    cpu = core->out().data_req;
    soc.cpu_imem = core->out().imem;
    soc.cpu_regfile = core->out().regfile;
  } else {
    Builder::Scope s(b, "cpu");
    cpu.req = b.input("req", 1);
    cpu.addr = b.input("addr", kAddrBits);
    cpu.we = b.input("we", 1);
    cpu.wdata = b.input("wdata", kDataBits);
  }
  const NetId gpio_pad_in = b.input("pad.gpio_in", 16);
  {
    // Symbolic victim address range (stable specification inputs; no fanout).
    Builder::Scope s(b, "spec");
    b.input("victim_lo", kAddrBits, /*stable=*/true);
    b.input("victim_hi", kAddrBits, /*stable=*/true);
  }

  // --- IP shells (registers + master request bundles) ----------------------------
  Dma dma(b, "dma");
  Hwpe hwpe(b, "hwpe");
  Timer timer(b, "timer");
  EventUnit event_unit(b, "event");

  // --- private crossbar: CPU + DMA -> private RAM --------------------------------
  const Region priv_region = soc.map.region(AddrMap::kPrivRam);
  const BusReq dma_priv =
      config.hw_private_guard ? idle_req(b) : dma.master_req();
  Xbar xb_priv(b, "xbar_priv", {cpu, dma_priv}, {priv_region}, config.arbiter);
  {
    const SramOut priv_ram =
        build_sram(b, "priv_ram", priv_region, config.priv_ram_words, xb_priv.slave_req(0));
    soc.priv_ram_mem = priv_ram.mem_index;
    xb_priv.connect_slave(0, priv_ram.slave);
  }

  // --- public crossbar: CPU + DMA + HWPE -> L2 + peripherals ---------------------
  const std::vector<std::string> pub_slaves = {
      AddrMap::kPubRam, AddrMap::kGpio, AddrMap::kUart,    AddrMap::kDma,
      AddrMap::kHwpe,   AddrMap::kEvent, AddrMap::kSocCtrl, AddrMap::kTimer,
  };
  std::vector<Region> pub_regions;
  for (const auto& name : pub_slaves) pub_regions.push_back(soc.map.region(name));

  Xbar xb_pub(b, "xbar_pub", {cpu, dma.master_req(), hwpe.master_req()}, pub_regions,
              config.arbiter);

  {
    const SramOut pub_ram = build_sram(b, "pub_ram", pub_regions[0], config.pub_ram_words,
                                       xb_pub.slave_req(0));
    soc.pub_ram_mem = pub_ram.mem_index;
    xb_pub.connect_slave(0, pub_ram.slave);
  }
  xb_pub.connect_slave(1, build_gpio(b, "gpio", xb_pub.slave_req(1), gpio_pad_in).slave);
  const UartOut uart = build_uart(b, "uart", xb_pub.slave_req(2));
  xb_pub.connect_slave(2, uart.slave);
  xb_pub.connect_slave(3, dma.slave(b, xb_pub.slave_req(3)));
  xb_pub.connect_slave(4, hwpe.slave(b, xb_pub.slave_req(4)));
  xb_pub.connect_slave(5, event_unit.slave(b, xb_pub.slave_req(5)));
  xb_pub.connect_slave(6, build_soc_ctrl(b, "soc_ctrl", xb_pub.slave_req(6)).slave);
  xb_pub.connect_slave(7, timer.slave(b, xb_pub.slave_req(7)));

  // --- response merge -------------------------------------------------------------
  const BusRsp cpu_pub = xb_pub.master_rsp(0);
  const BusRsp cpu_priv = xb_priv.master_rsp(0);
  const NetId cpu_gnt = b.or_(cpu_pub.gnt, cpu_priv.gnt);
  const NetId cpu_rvalid = b.or_(cpu_pub.rvalid, cpu_priv.rvalid);
  const NetId cpu_rdata = b.mux(cpu_pub.rvalid, cpu_pub.rdata, cpu_priv.rdata);

  const BusRsp dma_pub = xb_pub.master_rsp(1);
  const BusRsp dma_priv_rsp = xb_priv.master_rsp(1);
  const NetId dma_gnt = b.or_(dma_pub.gnt, dma_priv_rsp.gnt);
  const NetId dma_rvalid = b.or_(dma_pub.rvalid, dma_priv_rsp.rvalid);
  const NetId dma_rdata = b.mux(dma_pub.rvalid, dma_pub.rdata, dma_priv_rsp.rdata);

  const BusRsp hwpe_rsp = xb_pub.master_rsp(2);

  // --- IP state updates -------------------------------------------------------------
  if (core) core->finalize(b, cpu_gnt, cpu_rvalid, cpu_rdata);
  dma.finalize(b, dma_gnt, dma_rvalid, dma_rdata);
  hwpe.finalize(b, hwpe_rsp.gnt);
  const NetId timer_start =
      event_unit.finalize(b, dma.done_pulse(), hwpe.done_pulse(), timer.ovf_pulse());
  timer.finalize(b, timer_start);

  // --- probes ------------------------------------------------------------------------
  b.global_output(probe::kCpuGnt, cpu_gnt);
  b.global_output(probe::kCpuRvalid, cpu_rvalid);
  b.global_output(probe::kCpuRdata, cpu_rdata);
  b.global_output(probe::kHwpeProgress, hwpe.progress_q());
  b.global_output(probe::kHwpeBusy, hwpe.busy());
  b.global_output(probe::kHwpeGntPub, hwpe_rsp.gnt);
  b.global_output(probe::kDmaBusy, dma.busy());
  b.global_output(probe::kTimerCount, timer.count_q());
  b.global_output(probe::kEventPending, event_unit.pending_q());
  b.global_output(probe::kUartTx, uart.tx);
  if (core) {
    b.global_output(probe::kCpuPc, core->out().pc);
    b.global_output(probe::kCpuRetired, core->out().retired);
  }

  return soc;
}

} // namespace upec::soc
