// Single-port synchronous SRAM bank (TCDM-style): accepts one access per
// cycle (arbitration upstream), write-through on `we`, read data registered
// and valid the following cycle. Word addressed; sub-word region offsets are
// byte addresses with the low two bits ignored.
#pragma once

#include <string>

#include "soc/addr_map.h"
#include "soc/bus.h"

namespace upec::soc {

struct SramOut {
  SlaveIf slave;
  std::uint32_t mem_index = 0; // index of the rtlir memory array
};

SramOut build_sram(Builder& b, const std::string& name, const Region& region,
                   std::uint32_t words, const BusReq& bus);

} // namespace upec::soc
