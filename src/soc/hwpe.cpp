#include "soc/hwpe.h"

#include <cassert>

namespace upec::soc {

Hwpe::Hwpe(Builder& b, const std::string& name) : name_(name) {
  Builder::Scope scope(b, name_);
  dst_ = b.reg("dst_q", 32);
  len_ = b.reg("len_q", 16);
  progress_ = b.reg("progress_q", 16);
  running_ = b.reg("running_q", 1);
  stream_stage_ = b.reg("stream_stage_q", 1);
  done_q_ = b.reg("done_q", 1);

  // Staged streamer (initiation interval 2): issue dst + 4*progress <-
  // progress + 1, commit the grant through the stream stage, then advance
  // PROGRESS. The stage register is rewritten every cycle — transient
  // interconnect-facing state — while PROGRESS is the architecturally
  // readable, persistent record the attack retrieves.
  master_.req = b.and_(running_.q, b.not_(stream_stage_.q));
  master_.addr = b.add(dst_.q, b.shl(b.zext(progress_.q, 32), b.constant(5, 2)));
  master_.we = master_.req;
  master_.wdata = b.zext(b.add_const(progress_.q, 1), 32);
}

SlaveIf Hwpe::slave(Builder& b, const BusReq& cfg_bus) {
  Builder::Scope scope(b, name_);
  bus_ = periph_decode(b, cfg_bus);
  have_bus_ = true;
  return periph_response(
      b, bus_, {{0, dst_.q}, {1, len_.q}, {2, b.zero(1)}, {3, running_.q}, {4, progress_.q}});
}

void Hwpe::finalize(Builder& b, NetId gnt) {
  assert(have_bus_ && "slave() must run before finalize()");
  Builder::Scope scope(b, name_);

  // Configuration is locked while the engine runs (otherwise a mid-stream
  // LEN rewrite could make PROGRESS overshoot the region — caught by the
  // SocFormal.HwpeProgressNeverExceedsLen inductive check).
  const NetId idle = b.not_(running_.q);
  b.connect(dst_, bus_.wdata, b.and_(reg_wr(b, bus_, 0), idle));
  b.connect(len_, b.trunc(bus_.wdata, 16), b.and_(reg_wr(b, bus_, 1), idle));

  const NetId wr_ctrl = reg_wr(b, bus_, 2);
  const NetId go = b.and_all({wr_ctrl, b.bit(bus_.wdata, 0), b.not_(running_.q),
                              b.ne_const(len_.q, 0)});
  const NetId stop = b.and_(wr_ctrl, b.not_(b.bit(bus_.wdata, 0)));

  // Grant commits through the stream stage; PROGRESS advances a cycle later.
  b.connect(stream_stage_, b.and_(master_.req, gnt));

  const NetId wrote = stream_stage_.q;
  const NetId last = b.eq(b.add_const(progress_.q, 1), len_.q);
  const NetId finished = b.and_all({running_.q, wrote, last});

  NetId prog_next = b.mux(wrote, b.add_const(progress_.q, 1), progress_.q);
  prog_next = b.mux(go, b.zero(16), prog_next);
  b.connect(progress_, prog_next);

  NetId run_next = b.mux(b.or_(finished, stop), b.zero(1), running_.q);
  run_next = b.mux(go, b.one(1), run_next);
  b.connect(running_, run_next);

  b.connect(done_q_, finished);
}

} // namespace upec::soc
