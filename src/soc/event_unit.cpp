#include "soc/event_unit.h"

#include <cassert>

namespace upec::soc {

EventUnit::EventUnit(Builder& b, const std::string& name) : name_(name) {
  Builder::Scope scope(b, name_);
  pending_ = b.reg("pending_q", 3);
  trig_sel_ = b.reg("trig_sel_q", 2);
}

SlaveIf EventUnit::slave(Builder& b, const BusReq& cfg_bus) {
  Builder::Scope scope(b, name_);
  bus_ = periph_decode(b, cfg_bus);
  have_bus_ = true;
  return periph_response(b, bus_, {{0, pending_.q}, {1, trig_sel_.q}});
}

NetId EventUnit::finalize(Builder& b, NetId dma_done, NetId hwpe_done, NetId timer_ovf) {
  assert(have_bus_ && "slave() must run before finalize()");
  Builder::Scope scope(b, name_);

  // Sticky pending bits with write-1-to-clear.
  const NetId events = b.concat(b.concat(timer_ovf, hwpe_done), dma_done);
  const NetId wr_pending = reg_wr(b, bus_, 0);
  const NetId clear_mask = b.mux(wr_pending, b.trunc(bus_.wdata, 3), b.zero(3));
  b.connect(pending_, b.or_(b.and_(pending_.q, b.not_(clear_mask)), events));

  b.connect(trig_sel_, b.trunc(bus_.wdata, 2), reg_wr(b, bus_, 1));

  // Timer hardware-start routing.
  const NetId sel_dma = b.eq_const(trig_sel_.q, 1);
  const NetId sel_hwpe = b.eq_const(trig_sel_.q, 2);
  return b.or_(b.and_(sel_dma, dma_done), b.and_(sel_hwpe, hwpe_done));
}

} // namespace upec::soc
