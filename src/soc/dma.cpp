#include "soc/dma.h"

#include <cassert>

namespace upec::soc {

namespace {
constexpr unsigned kIdle = 0, kRead = 1, kReadWait = 2, kWrite = 3;
} // namespace

Dma::Dma(Builder& b, const std::string& name) : name_(name) {
  Builder::Scope scope(b, name_);
  src_ = b.reg("src_q", 32);
  dst_ = b.reg("dst_q", 32);
  len_ = b.reg("len_q", 16);
  cnt_ = b.reg("cnt_q", 16);
  state_ = b.reg("state_q", 2);
  rlatch_ = b.reg("rlatch_q", 32);
  done_pulse_q_ = b.reg("done_q", 1);
  done_pulse_net_ = done_pulse_q_.q;

  busy_ = b.ne_const(state_.q, kIdle);
  const NetId reading = b.eq_const(state_.q, kRead);
  const NetId writing = b.eq_const(state_.q, kWrite);
  const NetId word_off = b.shl(b.zext(cnt_.q, 32), b.constant(5, 2));

  master_.req = b.or_(reading, writing);
  master_.addr = b.add(b.mux(reading, src_.q, dst_.q), word_off);
  master_.we = writing;
  master_.wdata = rlatch_.q;
}

SlaveIf Dma::slave(Builder& b, const BusReq& cfg_bus) {
  Builder::Scope scope(b, name_);
  bus_ = periph_decode(b, cfg_bus);
  have_bus_ = true;
  return periph_response(
      b, bus_, {{0, src_.q}, {1, dst_.q}, {2, len_.q}, {3, b.zero(1)}, {4, busy_}});
}

void Dma::finalize(Builder& b, NetId gnt, NetId rvalid, NetId rdata) {
  assert(have_bus_ && "slave() must run before finalize()");
  Builder::Scope scope(b, name_);

  b.connect(src_, bus_.wdata, reg_wr(b, bus_, 0));
  b.connect(dst_, bus_.wdata, reg_wr(b, bus_, 1));
  b.connect(len_, b.trunc(bus_.wdata, 16), reg_wr(b, bus_, 2));

  const NetId go = b.and_all(
      {reg_wr(b, bus_, 3), b.bit(bus_.wdata, 0), b.not_(busy_), b.ne_const(len_.q, 0)});

  const NetId st_idle = b.eq_const(state_.q, kIdle);
  const NetId st_rd = b.eq_const(state_.q, kRead);
  const NetId st_rdw = b.eq_const(state_.q, kReadWait);
  const NetId st_wr = b.eq_const(state_.q, kWrite);

  const NetId last_word = b.eq(b.add_const(cnt_.q, 1), len_.q);
  const NetId wr_done = b.and_(st_wr, gnt);
  const NetId xfer_done = b.and_(wr_done, last_word);

  // Next state.
  NetId next = state_.q;
  next = b.mux(b.and_(st_idle, go), b.constant(2, kRead), next);
  next = b.mux(b.and_(st_rd, gnt), b.constant(2, kReadWait), next);
  next = b.mux(b.and_(st_rdw, rvalid), b.constant(2, kWrite), next);
  next = b.mux(wr_done, b.mux(last_word, b.constant(2, kIdle), b.constant(2, kRead)), next);
  b.connect(state_, next);

  // Word counter: clear on go, advance after each completed word.
  NetId cnt_next = b.mux(b.and_(wr_done, b.not_(last_word)), b.add_const(cnt_.q, 1), cnt_.q);
  cnt_next = b.mux(go, b.zero(16), cnt_next);
  b.connect(cnt_, cnt_next);

  // Read-data latch.
  b.connect(rlatch_, rdata, b.and_(st_rdw, rvalid));

  // Registered completion pulse for the event unit.
  b.connect(done_pulse_q_, xfer_done);
}

} // namespace upec::soc
