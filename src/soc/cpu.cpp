#include "soc/cpu.h"

#include <cassert>

namespace upec::soc {

namespace {
// EX-stage memory FSM.
constexpr unsigned kNorm = 0;     // executing (or idle bubble)
constexpr unsigned kWaitGnt = 1;  // memory request issued, not yet granted
constexpr unsigned kWaitRv = 2;   // load granted, waiting for data
} // namespace

Cpu::Cpu(Builder& b, const std::string& name, std::uint32_t imem_words)
    : name_(name), imem_words_(imem_words) {
  Builder::Scope scope(b, name_);
  assert((imem_words & (imem_words - 1)) == 0 && "imem size must be a power of two");

  imem_ = b.memory("imem", imem_words, 32);
  regs_ = b.memory("regs", 32, 32);
  pc_ = b.reg("pc_q", 32);
  if_instr_ = b.reg("if_instr_q", 32, /*reset=*/0x13); // NOP (addi x0,x0,0)
  if_pc_ = b.reg("if_pc_q", 32);
  if_valid_ = b.reg("if_valid_q", 1);
  ex_state_ = b.reg("ex_state_q", 2);
  load_rd_ = b.reg("load_rd_q", 5);

  // --- IF: synchronous fetch ------------------------------------------------------
  const unsigned iaw = b.mem_addr_width(imem_);
  sig_.fetch_data = b.mem_read(imem_, b.slice(pc_.q, 2 + iaw - 1, 2));

  // --- EX: decode -----------------------------------------------------------------
  const NetId instr = if_instr_.q;
  const NetId pc = if_pc_.q;
  const NetId opcode = b.slice(instr, 6, 0);
  const NetId rd = b.slice(instr, 11, 7);
  const NetId funct3 = b.slice(instr, 14, 12);
  const NetId rs1 = b.slice(instr, 19, 15);
  const NetId rs2 = b.slice(instr, 24, 20);
  const NetId funct7b5 = b.bit(instr, 30);

  const NetId is_lui = b.eq_const(opcode, 0b0110111);
  const NetId is_auipc = b.eq_const(opcode, 0b0010111);
  const NetId is_jal = b.eq_const(opcode, 0b1101111);
  const NetId is_jalr = b.eq_const(opcode, 0b1100111);
  const NetId is_branch = b.eq_const(opcode, 0b1100011);
  const NetId is_load = b.eq_const(opcode, 0b0000011);
  const NetId is_store = b.eq_const(opcode, 0b0100011);
  const NetId is_opimm = b.eq_const(opcode, 0b0010011);
  const NetId is_op = b.eq_const(opcode, 0b0110011);

  // Immediates.
  const NetId imm_i = b.sext(b.slice(instr, 31, 20), 32);
  const NetId imm_s = b.sext(b.concat(b.slice(instr, 31, 25), b.slice(instr, 11, 7)), 32);
  const NetId imm_b = b.sext(
      b.concat(b.concat(b.bit(instr, 31), b.bit(instr, 7)),
               b.concat(b.concat(b.slice(instr, 30, 25), b.slice(instr, 11, 8)), b.zero(1))),
      32);
  const NetId imm_u = b.concat(b.slice(instr, 31, 12), b.zero(12));
  const NetId imm_j = b.sext(
      b.concat(b.concat(b.bit(instr, 31), b.slice(instr, 19, 12)),
               b.concat(b.concat(b.bit(instr, 20), b.slice(instr, 30, 21)), b.zero(1))),
      32);

  // Register file reads with hardwired x0.
  const NetId rs1_raw = b.mem_read(regs_, rs1);
  const NetId rs2_raw = b.mem_read(regs_, rs2);
  const NetId rs1v = b.mux(b.eq_const(rs1, 0), b.zero(32), rs1_raw);
  const NetId rs2v = b.mux(b.eq_const(rs2, 0), b.zero(32), rs2_raw);

  // --- ALU ------------------------------------------------------------------------
  const NetId opb = b.mux(is_op, rs2v, imm_i);
  const NetId shamt = b.mux(is_op, b.slice(rs2v, 4, 0), b.slice(instr, 24, 20));

  const NetId sum = b.add(rs1v, opb);
  const NetId diff = b.sub(rs1v, rs2v);
  const NetId sltu = b.ult(rs1v, opb);
  const NetId sa = b.bit(rs1v, 31);
  const NetId sb = b.bit(opb, 31);
  const NetId slt = b.mux(b.xor_(sa, sb), sa, sltu);
  const NetId shl = b.shl(rs1v, shamt);
  const NetId srl = b.lshr(rs1v, shamt);
  // SRA: logical shift with the vacated high bits filled from the sign.
  const NetId high_mask = b.not_(b.lshr(b.ones(32), shamt));
  const NetId sra = b.or_(srl, b.mux(sa, high_mask, b.zero(32)));

  const NetId use_sub = b.and_all({is_op, funct7b5});
  const NetId shr_val = b.mux(funct7b5, sra, srl);
  NetId alu = b.mux(use_sub, diff, sum); // funct3 000
  alu = b.mux(b.eq_const(funct3, 0b001), shl, alu);
  alu = b.mux(b.eq_const(funct3, 0b010), b.zext(slt, 32), alu);
  alu = b.mux(b.eq_const(funct3, 0b011), b.zext(sltu, 32), alu);
  alu = b.mux(b.eq_const(funct3, 0b100), b.xor_(rs1v, opb), alu);
  alu = b.mux(b.eq_const(funct3, 0b101), shr_val, alu);
  alu = b.mux(b.eq_const(funct3, 0b110), b.or_(rs1v, opb), alu);
  alu = b.mux(b.eq_const(funct3, 0b111), b.and_(rs1v, opb), alu);

  // --- branches ---------------------------------------------------------------------
  const NetId eq = b.eq(rs1v, rs2v);
  const NetId ltu = b.ult(rs1v, rs2v);
  const NetId sb2 = b.bit(rs2v, 31);
  const NetId lts = b.mux(b.xor_(sa, sb2), sa, ltu);
  NetId taken = eq; // BEQ
  taken = b.mux(b.eq_const(funct3, 0b001), b.not_(eq), taken);
  taken = b.mux(b.eq_const(funct3, 0b100), lts, taken);
  taken = b.mux(b.eq_const(funct3, 0b101), b.not_(lts), taken);
  taken = b.mux(b.eq_const(funct3, 0b110), ltu, taken);
  taken = b.mux(b.eq_const(funct3, 0b111), b.not_(ltu), taken);

  NetId target = b.add(pc, imm_b); // branch
  target = b.mux(is_jal, b.add(pc, imm_j), target);
  target = b.mux(is_jalr, b.and_(sum, b.constant(32, ~1u)), target); // sum = rs1+imm_i

  // --- write-back value (non-load) ----------------------------------------------------
  const NetId pc4 = b.add_const(pc, 4);
  NetId wb = alu;
  wb = b.mux(is_lui, imm_u, wb);
  wb = b.mux(is_auipc, b.add(pc, imm_u), wb);
  wb = b.mux(b.or_(is_jal, is_jalr), pc4, wb);

  // --- data port (no combinational dependence on gnt) ---------------------------------
  const NetId ex_valid = if_valid_.q;
  const NetId memop = b.and_(ex_valid, b.or_(is_load, is_store));
  const NetId in_norm = b.eq_const(ex_state_.q, kNorm);
  const NetId in_wgnt = b.eq_const(ex_state_.q, kWaitGnt);

  out_.data_req.req = b.or_(b.and_(in_norm, memop), in_wgnt);
  out_.data_req.addr = b.add(rs1v, b.mux(is_store, imm_s, imm_i));
  out_.data_req.we = is_store;
  out_.data_req.wdata = rs2v;
  out_.imem = imem_.index;
  out_.regfile = regs_.index;
  out_.pc = pc_.q;

  sig_.ex_valid = ex_valid;
  sig_.is_load = is_load;
  sig_.is_store = is_store;
  sig_.is_branch = is_branch;
  sig_.is_jal = is_jal;
  sig_.is_jalr = is_jalr;
  sig_.writes_rd =
      b.or_all({is_lui, is_auipc, is_jal, is_jalr, is_opimm, is_op, is_load});
  sig_.rd = rd;
  sig_.taken = taken;
  sig_.target = target;
  sig_.wb_val = wb;
}

void Cpu::finalize(Builder& b, NetId gnt, NetId rvalid, NetId rdata) {
  Builder::Scope scope(b, name_);

  const NetId in_norm = b.eq_const(ex_state_.q, kNorm);
  const NetId in_wgnt = b.eq_const(ex_state_.q, kWaitGnt);
  const NetId in_wrv = b.eq_const(ex_state_.q, kWaitRv);
  const NetId memop = b.and_(sig_.ex_valid, b.or_(sig_.is_load, sig_.is_store));

  // Completion of the instruction currently in EX.
  const NetId store_done_norm = b.and_all({in_norm, sig_.ex_valid, sig_.is_store, gnt});
  const NetId nonmem_done = b.and_all({in_norm, sig_.ex_valid, b.not_(memop)});
  const NetId store_done_wgnt = b.and_all({in_wgnt, sig_.is_store, gnt});
  const NetId load_done = b.and_(in_wrv, rvalid);
  const NetId done = b.or_all({nonmem_done, store_done_norm, store_done_wgnt, load_done});
  const NetId advance = b.or_(done, b.not_(sig_.ex_valid));

  // EX memory FSM.
  NetId state_next = ex_state_.q;
  {
    const NetId issue_load = b.and_all({in_norm, sig_.ex_valid, sig_.is_load});
    const NetId issue_store_stall =
        b.and_all({in_norm, sig_.ex_valid, sig_.is_store, b.not_(gnt)});
    state_next = b.mux(issue_load, b.mux(gnt, b.constant(2, kWaitRv), b.constant(2, kWaitGnt)),
                       state_next);
    state_next = b.mux(issue_store_stall, b.constant(2, kWaitGnt), state_next);
    state_next = b.mux(store_done_wgnt, b.constant(2, kNorm), state_next);
    state_next = b.mux(b.and_all({in_wgnt, sig_.is_load, gnt}), b.constant(2, kWaitRv),
                       state_next);
    state_next = b.mux(load_done, b.constant(2, kNorm), state_next);
  }
  b.connect(ex_state_, state_next);

  // Redirect & fetch advance.
  const NetId branch_taken = b.and_(sig_.is_branch, sig_.taken);
  const NetId redirect =
      b.and_(done, b.or_all({sig_.is_jal, sig_.is_jalr, branch_taken}));
  NetId pc_next = b.mux(advance, b.add_const(pc_.q, 4), pc_.q);
  pc_next = b.mux(redirect, sig_.target, pc_next);
  b.connect(pc_, pc_next);
  b.connect(if_instr_, sig_.fetch_data, advance);
  b.connect(if_pc_, pc_.q, advance);
  NetId if_valid_next = b.mux(advance, b.one(1), if_valid_.q);
  if_valid_next = b.mux(redirect, b.zero(1), if_valid_next);
  b.connect(if_valid_, if_valid_next);

  // Track the destination of an in-flight load.
  b.connect(load_rd_, sig_.rd, b.and_all({in_norm, sig_.ex_valid, sig_.is_load}));

  // Register-file write-back (x0 writes dropped).
  const NetId waddr = b.mux(load_done, load_rd_.q, sig_.rd);
  const NetId wdata = b.mux(load_done, rdata, sig_.wb_val);
  const NetId non_load_wb = b.and_all({done, b.not_(load_done), sig_.writes_rd});
  const NetId wen =
      b.and_(b.or_(non_load_wb, load_done), b.ne_const(waddr, 0));
  b.mem_write(regs_, waddr, wdata, wen);

  out_.retired = done;
  b.output("retired", done);
}

} // namespace upec::soc
