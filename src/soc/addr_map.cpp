#include "soc/addr_map.h"

#include <stdexcept>

namespace upec::soc {

AddrMap AddrMap::pulpissimo(std::uint32_t pub_ram_words, std::uint32_t priv_ram_words) {
  AddrMap map;
  // Bases loosely follow the Pulpissimo memory map: L2 memory in the
  // 0x1C00_0000 range, a private (Quentin "secure") bank at 0x1000_0000, and
  // APB peripherals in the 0x1A10_0000 block. The private RAM is the only
  // region an attacker task cannot touch (Sec 4.2's countermeasure relies on
  // exactly this separation).
  map.regions_ = {
      {kPrivRam, 0x10000000u, priv_ram_words * 4, RegionKind::PrivateRam, false},
      {kPubRam, 0x1C000000u, pub_ram_words * 4, RegionKind::PublicRam, true},
      {kGpio, 0x1A101000u, 64, RegionKind::Peripheral, true},
      {kUart, 0x1A102000u, 64, RegionKind::Peripheral, true},
      {kDma, 0x1A103000u, 64, RegionKind::Peripheral, true},
      {kHwpe, 0x1A104000u, 64, RegionKind::Peripheral, true},
      {kEvent, 0x1A105000u, 64, RegionKind::Peripheral, true},
      {kSocCtrl, 0x1A106000u, 64, RegionKind::Peripheral, true},
      {kTimer, 0x1A10B000u, 64, RegionKind::Peripheral, true},
  };
  return map;
}

const Region& AddrMap::region(const std::string& name) const {
  for (const Region& r : regions_) {
    if (r.name == name) return r;
  }
  throw std::out_of_range("unknown region: " + name);
}

const Region* AddrMap::find(std::uint32_t addr) const {
  for (const Region& r : regions_) {
    if (r.contains(addr)) return &r;
  }
  return nullptr;
}

} // namespace upec::soc
