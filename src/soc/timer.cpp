#include "soc/timer.h"

#include <cassert>

namespace upec::soc {

Timer::Timer(Builder& b, const std::string& name) : name_(name) {
  Builder::Scope scope(b, name_);
  en_ = b.reg("en_q", 1);
  count_ = b.reg("count_q", 32);
  cmp_ = b.reg("cmp_q", 32);
  prescale_ = b.reg("prescale_q", 8);
  prescale_cnt_ = b.reg("prescale_cnt_q", 8);
  ovf_ = b.reg("ovf_q", 1);

  // Tick when the prescaler wraps; overflow when enabled and count hits CMP.
  const NetId tick = b.eq(prescale_cnt_.q, prescale_.q);
  ovf_pulse_ = b.and_all({en_.q, tick, b.eq(count_.q, cmp_.q)});
}

SlaveIf Timer::slave(Builder& b, const BusReq& bus) {
  Builder::Scope scope(b, name_);
  bus_ = periph_decode(b, bus);
  have_bus_ = true;
  return periph_response(b, bus_,
                         {{0, en_.q}, {1, count_.q}, {2, cmp_.q}, {3, prescale_.q}, {4, ovf_.q}});
}

void Timer::finalize(Builder& b, NetId hw_start_pulse) {
  assert(have_bus_ && "slave() must run before finalize()");
  Builder::Scope scope(b, name_);

  const NetId wr_ctrl = reg_wr(b, bus_, 0);
  const NetId wr_count = reg_wr(b, bus_, 1);
  const NetId wr_cmp = reg_wr(b, bus_, 2);
  const NetId wr_presc = reg_wr(b, bus_, 3);
  const NetId wr_ovf = reg_wr(b, bus_, 4);

  // Enable: software write of CTRL.bit0 or hardware start pulse.
  NetId en_next = b.mux(wr_ctrl, b.bit(bus_.wdata, 0), en_.q);
  en_next = b.or_(en_next, hw_start_pulse);
  b.connect(en_, en_next);

  const NetId tick = b.eq(prescale_cnt_.q, prescale_.q);
  const NetId presc_next =
      b.mux(b.or_(tick, wr_presc), b.zero(8), b.add_const(prescale_cnt_.q, 1));
  b.connect(prescale_cnt_, presc_next, en_.q);

  NetId count_next = b.mux(b.and_(en_.q, tick), b.add_const(count_.q, 1), count_.q);
  count_next = b.mux(wr_count, bus_.wdata, count_next);
  b.connect(count_, count_next);

  b.connect(cmp_, bus_.wdata, wr_cmp);
  b.connect(prescale_, b.trunc(bus_.wdata, 8), wr_presc);

  // Sticky overflow; write-1-to-clear.
  const NetId clear = b.and_(wr_ovf, b.bit(bus_.wdata, 0));
  const NetId ovf_next = b.or_(b.and_(ovf_.q, b.not_(clear)), ovf_pulse_);
  b.connect(ovf_, ovf_next);
}

} // namespace upec::soc
