// uDMA-style memory-to-memory copy engine.
//
// The DMA is one of the "spying IPs" of the paper's threat model: an attacker
// configures a copy before the context switch; the copy's completion time —
// and therefore when it fires the done event — depends on bus contention with
// the victim. In Pulpissimo, the DMA is also one of the "very few IPs" that
// can reach the private memory, making it the IP whose configurations the
// Sec 4.2 countermeasure restricts via firmware constraints.
//
// Register map (word offsets): 0 SRC, 1 DST, 2 LEN, 3 CTRL (write bit0 = go),
// 4 STATUS (bit0 = busy). FSM per word: issue read, wait rvalid, issue write.
#pragma once

#include <string>

#include "soc/periph.h"

namespace upec::soc {

class Dma {
public:
  Dma(Builder& b, const std::string& name);

  // Master request bundle (function of DMA registers only — no combinational
  // dependence on grant, which keeps the SoC free of arbitration loops).
  const BusReq& master_req() const { return master_; }

  SlaveIf slave(Builder& b, const BusReq& cfg_bus);
  void finalize(Builder& b, NetId gnt, NetId rvalid, NetId rdata);

  NetId done_pulse() const { return done_pulse_net_; }
  NetId busy() const { return busy_; }
  NetId src_q() const { return src_.q; }
  NetId dst_q() const { return dst_.q; }

private:
  std::string name_;
  rtlir::RegHandle src_, dst_, len_, cnt_, state_, rlatch_;
  BusReq master_;
  NetId busy_ = kNullNet;
  NetId done_pulse_net_ = kNullNet;
  rtlir::RegHandle done_pulse_q_;
  PeriphBus bus_;
  bool have_bus_ = false;
};

} // namespace upec::soc
