#include "soc/xbar.h"

#include <cassert>

namespace upec::soc {

Xbar::Xbar(Builder& b, const std::string& name, std::vector<BusReq> masters,
           std::vector<Region> slave_regions, ArbiterKind arbiter)
    : b_(b), name_(name), masters_(std::move(masters)), regions_(std::move(slave_regions)) {
  Builder::Scope scope(b_, name_);
  const std::size_t nm = masters_.size();
  const std::size_t ns = regions_.size();

  while ((1u << sel_bits_) < nm) ++sel_bits_;

  // Address decode: want[m][s] = master m requests an address in region s.
  std::vector<std::vector<NetId>> want(nm, std::vector<NetId>(ns));
  for (std::size_t m = 0; m < nm; ++m) {
    for (std::size_t s = 0; s < ns; ++s) {
      const Region& r = regions_[s];
      const NetId ge = b_.uge(masters_[m].addr, b_.constant(kAddrBits, r.base));
      const NetId lt = b_.ult(masters_[m].addr, b_.constant(kAddrBits, r.end()));
      want[m][s] = b_.and_all({masters_[m].req, ge, lt});
    }
  }

  // Per-slave fixed-priority arbitration, request merge, and a registered
  // request stage (TCDM-style elastic slice): the winning request is latched
  // and presented to the slave one cycle after the grant. These latches are
  // the "buffers in the interconnect which are overwritten with every
  // communication transaction" of Sec 3.4 — the first place victim-dependent
  // differences land, and never part of S_pers.
  grant_.assign(nm, std::vector<NetId>(ns));
  for (std::size_t s = 0; s < ns; ++s) {
    std::vector<NetId> reqs(nm);
    for (std::size_t m = 0; m < nm; ++m) reqs[m] = want[m][s];
    const ArbiterResult arb =
        arbiter == ArbiterKind::FixedPriority
            ? priority_arbiter(b_, reqs)
            : round_robin_arbiter(b_, "arb_s" + std::to_string(s), reqs);
    for (std::size_t m = 0; m < nm; ++m) grant_[m][s] = arb.grant[m];

    const BusReq merged = select_request(b_, masters_, arb.grant);

    Builder::Scope sscope(b_, "s" + std::to_string(s));
    BusReq staged;
    staged.req = b_.pipe("sreq_q", merged.req);
    staged.addr = b_.pipe("saddr_q", merged.addr, merged.req);
    staged.we = b_.pipe("swe_q", merged.we, merged.req);
    staged.wdata = b_.pipe("swdata_q", merged.wdata, merged.req);
    slave_req_.push_back(staged);

    // Response routing pipeline, aligned with the slave's registered response
    // (grant at T, slave access at T+1, rvalid/rdata at T+2).
    const NetId rsel_valid = b_.pipe("rsel_valid_q", arb.any);
    const NetId rsel_master = b_.pipe("rsel_master_q", b_.resize(arb.winner, sel_bits_), arb.any);
    rsel_valid_q_.push_back(b_.pipe("rsel_valid_q2", rsel_valid));
    rsel_master_q_.push_back(b_.pipe("rsel_master_q2", rsel_master, rsel_valid));
  }
  slave_if_.resize(ns);
}

void Xbar::connect_slave(std::size_t s, const SlaveIf& sif) {
  assert(s < slave_if_.size());
  slave_if_[s] = sif;
}

BusRsp Xbar::master_rsp(std::size_t m) {
  Builder::Scope scope(b_, name_);
  BusRsp rsp;
  // gnt: won arbitration on the addressed slave.
  std::vector<NetId> gnts;
  for (std::size_t s = 0; s < regions_.size(); ++s) gnts.push_back(grant_[m][s]);
  rsp.gnt = b_.or_all(gnts);

  // rvalid/rdata: a slave responded and the response-select points at us.
  NetId rvalid = b_.zero(1);
  NetId rdata = b_.zero(kDataBits);
  for (std::size_t s = 0; s < regions_.size(); ++s) {
    assert(slave_if_[s].rvalid != kNullNet && "slave not connected");
    const NetId mine = b_.eq_const(rsel_master_q_[s], m);
    const NetId hit = b_.and_all({slave_if_[s].rvalid, rsel_valid_q_[s], mine});
    rvalid = b_.or_(rvalid, hit);
    rdata = b_.mux(hit, slave_if_[s].rdata, rdata);
  }
  rsp.rvalid = rvalid;
  rsp.rdata = rdata;
  return rsp;
}

} // namespace upec::soc
