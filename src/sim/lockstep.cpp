#include "sim/lockstep.h"

#include <sstream>

namespace upec::sim {

Lockstep::Lockstep(const rtlir::Design& design, const rtlir::StateVarTable& svt)
    : svt_(svt), a_(design), b_(design) {}

void Lockstep::set_input_both(const std::string& name, std::uint64_t value) {
  a_.set_input(name, value);
  b_.set_input(name, value);
}

std::vector<rtlir::StateVarId> Lockstep::current_divergence() {
  std::vector<rtlir::StateVarId> out;
  for (rtlir::StateVarId sv = 0; sv < svt_.size(); ++sv) {
    if (a_.state_value(svt_, sv) != b_.state_value(svt_, sv)) out.push_back(sv);
  }
  return out;
}

void Lockstep::step() {
  a_.step();
  b_.step();
  DivergenceFrame frame;
  frame.cycle = a_.cycle();
  frame.differing = current_divergence();
  history_.push_back(std::move(frame));
}

std::string Lockstep::describe_divergence(std::size_t max_items) {
  std::ostringstream os;
  for (const DivergenceFrame& f : history_) {
    if (f.differing.empty()) continue;
    os << "cycle " << f.cycle << ": " << f.differing.size() << " differing [";
    for (std::size_t i = 0; i < f.differing.size() && i < max_items; ++i) {
      if (i) os << ", ";
      os << svt_.name(f.differing[i]);
    }
    if (f.differing.size() > max_items) os << ", ...";
    os << "]\n";
  }
  return os.str();
}

} // namespace upec::sim
