// Scripted bus-master tasks: software modeled at the CPU/system interface.
//
// The formal side of this repository abstracts the CPU behind its bus port
// (Obs. 1 — the proofs cover *all* software). The simulation side drives that
// same port with concrete task scripts: sequences of loads, stores and idle
// cycles, with OBI handshake handling (hold req until gnt, collect rdata on
// rvalid). Context switches between attacker and victim tasks are modeled by
// switching which script drives the port — matching the time-multiplexed
// threat model of Sec 2.1.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace upec::sim {

struct TaskOp {
  enum class Kind : std::uint8_t { Store, Load, Idle };
  Kind kind = Kind::Idle;
  std::uint32_t addr = 0;
  std::uint32_t data = 0;   // Store payload
  std::uint32_t cycles = 1; // Idle duration
};

// Convenience constructors.
inline TaskOp store(std::uint32_t addr, std::uint32_t data) {
  return TaskOp{TaskOp::Kind::Store, addr, data, 1};
}
inline TaskOp load(std::uint32_t addr) { return TaskOp{TaskOp::Kind::Load, addr, 0, 1}; }
inline TaskOp idle(std::uint32_t cycles) { return TaskOp{TaskOp::Kind::Idle, 0, 0, cycles}; }

using TaskScript = std::vector<TaskOp>;

// Drives the "soc.cpu.*" inputs of a Simulator through one task script.
// run() executes the whole script and returns the values loaded by Load ops,
// in script order. A cycle budget guards against lost grants.
class BusDriver {
public:
  explicit BusDriver(Simulator& sim) : sim_(sim) {}

  // Executes the script; returns collected load results.
  std::vector<std::uint32_t> run(const TaskScript& script, std::uint64_t max_cycles = 100000);

  // Runs a single op (load returns the value, store/idle return 0).
  std::uint32_t run_op(const TaskOp& op, std::uint64_t max_cycles = 100000);

  // Releases the bus (req = 0) and advances the given number of cycles.
  void drain(unsigned cycles);

private:
  Simulator& sim_;
};

} // namespace upec::sim
