// Cycle-accurate interpreter for rtlir designs.
//
// Used three ways in this repository:
//   - unit/property tests cross-check every IP and the whole SoC against the
//     CNF encoder (same netlist, same semantics — rtlir::eval_cell is shared),
//   - the attack harness executes the paper's three-phase attacks end-to-end
//     on the very RTL the UPEC-SSC proofs run on,
//   - counterexample replay: waveforms from the formal engine can be checked
//     by driving the same inputs here.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "rtlir/analyze.h"
#include "rtlir/fold.h"

namespace upec::sim {

class Simulator {
public:
  explicit Simulator(const rtlir::Design& design);

  // Registers to reset values, memories to init contents, inputs to zero.
  void reset();

  void set_input(const std::string& name, std::uint64_t value);
  void set_input(std::uint32_t input_index, std::uint64_t value);

  // Evaluate a net in the current cycle (before the next step()).
  std::uint64_t value(rtlir::NetId net);
  std::uint64_t output(const std::string& probe_name);

  // Advance one clock edge.
  void step();

  std::uint64_t cycle() const { return cycle_; }

  // Direct state access (tests, attack harness bookkeeping).
  std::uint64_t reg_value(std::uint32_t reg) const { return reg_state_[reg]; }
  void set_reg(std::uint32_t reg, std::uint64_t v);
  std::uint64_t mem_word(std::uint32_t mem, std::uint32_t word) const {
    return mem_state_[mem][word];
  }
  void set_mem_word(std::uint32_t mem, std::uint32_t word, std::uint64_t v);
  std::uint64_t state_value(const rtlir::StateVarTable& svt, rtlir::StateVarId sv) const;

  const rtlir::Design& design() const { return design_; }

private:
  std::uint64_t eval(rtlir::NetId net);

  const rtlir::Design& design_;
  std::vector<std::uint64_t> reg_state_;
  std::vector<std::vector<std::uint64_t>> mem_state_;
  std::vector<std::uint64_t> input_val_;
  std::unordered_map<std::string, std::uint32_t> input_by_name_;

  // Per-cycle memoization.
  std::vector<std::uint64_t> net_val_;
  std::vector<std::uint64_t> net_stamp_;
  std::uint64_t stamp_ = 1;
  std::uint64_t cycle_ = 0;
};

} // namespace upec::sim
