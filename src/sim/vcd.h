// VCD (Value Change Dump) writer: records selected design outputs and state
// variables from a Simulator run into the standard waveform format consumed
// by GTKWave & co. Used by the examples to export attack traces and by tests
// to validate the writer itself.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace upec::sim {

class VcdWriter {
public:
  // `os` must outlive the writer. Timescale is one clock cycle = 1 ns.
  VcdWriter(std::ostream& os, Simulator& sim);

  // Register signals to trace (before the first sample).
  void add_output(const std::string& probe_name);
  void add_state(const rtlir::StateVarTable& svt, rtlir::StateVarId sv);

  // Emits the header and the initial values; then call sample() once per
  // simulated cycle (after Simulator::step()).
  void start();
  void sample();

private:
  struct Channel {
    std::string name;
    unsigned width = 1;
    std::string id; // VCD identifier code
    bool is_output = false;
    rtlir::NetId net = rtlir::kNullNet;
    const rtlir::StateVarTable* svt = nullptr;
    rtlir::StateVarId sv = 0;
    std::uint64_t last = 0;
    bool has_last = false;
  };

  std::uint64_t read(Channel& c);
  void emit_value(const Channel& c, std::uint64_t v);
  static std::string make_id(std::size_t index);

  std::ostream& os_;
  Simulator& sim_;
  std::vector<Channel> channels_;
  std::uint64_t time_ = 0;
  bool started_ = false;
};

} // namespace upec::sim
