// End-to-end three-phase attack scenarios (preparation / recording /
// retrieval, Sec 2.2) executed on the generated SoC RTL.
//
// Two scenarios are provided:
//
//  * run_hwpe_attack — the paper's newly discovered, timer-free BUSted
//    variant (Sec 4.1): the attacker primes a public-RAM region with zeros,
//    programs the HWPE to progressively overwrite it with non-zero values,
//    and context-switches to the victim. Victim accesses to the same memory
//    device steal arbitration slots from the HWPE; after switching back, the
//    attacker reads the overwrite progress (PROGRESS register and the primed
//    region's high-water mark) — each victim access shows up as lag.
//
//  * run_timer_attack — the classic variant (Fig. 1): a DMA transfer whose
//    completion (delayed by victim contention) starts the timer through the
//    event unit; the attacker later reads COUNT. More victim accesses → later
//    start → smaller count.
//
// Both functions take the number of *secret* victim accesses and return the
// attacker's observation, so sweeping the secret reproduces the leakage
// curves (bench_busted_variant, bench_fig1_attack_anatomy).
#pragma once

#include "sim/task.h"
#include "soc/pulpissimo.h"

namespace upec::sim {

struct AttackConfig {
  std::uint32_t primed_words = 28;     // length of the HWPE-overwritten region
  std::uint32_t dma_copy_words = 8;    // words copied in the timer scenario
  std::uint32_t recording_cycles = 48; // fixed-length recording window
  // Victim accesses target the private RAM instead of the public RAM —
  // modeling the Sec 4.2 countermeasure (security-critical region mapped to
  // the access-restricted private memory device).
  bool victim_uses_private_ram = false;
};

struct HwpeAttackResult {
  std::uint32_t progress_observed = 0; // HWPE PROGRESS, first retrieval read
  std::uint32_t progress_at_stop = 0;  // PROGRESS after stopping the engine
  std::uint32_t highwater_mark = 0;    // first still-zero word of primed region
};

struct TimerAttackResult {
  std::uint32_t timer_count = 0;   // COUNT read in retrieval
  bool dma_done_event = false;     // event-unit pending bit observed
};

HwpeAttackResult run_hwpe_attack(const soc::Soc& soc, std::uint32_t victim_accesses,
                                 const AttackConfig& config = {});

TimerAttackResult run_timer_attack(const soc::Soc& soc, std::uint32_t victim_accesses,
                                   const AttackConfig& config = {});

} // namespace upec::sim
