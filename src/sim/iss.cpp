#include "sim/iss.h"

namespace upec::sim {

namespace {
std::int32_t sext(std::uint32_t v, unsigned bits) {
  const std::uint32_t m = 1u << (bits - 1);
  return static_cast<std::int32_t>((v ^ m) - m);
}
} // namespace

bool Iss::step() {
  const std::uint32_t word_index = (pc_ >> 2);
  const std::uint32_t instr = word_index < imem_.size() ? imem_[word_index] : 0;
  const std::uint32_t opcode = instr & 0x7f;
  const std::uint32_t rd = (instr >> 7) & 31;
  const std::uint32_t f3 = (instr >> 12) & 7;
  const std::uint32_t rs1 = (instr >> 15) & 31;
  const std::uint32_t rs2 = (instr >> 20) & 31;
  const bool f7b5 = (instr >> 30) & 1;
  const std::uint32_t a = regs_[rs1];
  const std::uint32_t b = regs_[rs2];

  const std::int32_t imm_i = sext(instr >> 20, 12);
  const std::int32_t imm_s = sext(((instr >> 25) << 5) | ((instr >> 7) & 31), 12);
  const std::int32_t imm_b = sext((((instr >> 31) & 1) << 12) | (((instr >> 7) & 1) << 11) |
                                      (((instr >> 25) & 0x3f) << 5) | (((instr >> 8) & 0xf) << 1),
                                  13);
  const std::uint32_t imm_u = instr & 0xfffff000u;
  const std::int32_t imm_j = sext((((instr >> 31) & 1) << 20) | (((instr >> 12) & 0xff) << 12) |
                                      (((instr >> 20) & 1) << 11) | (((instr >> 21) & 0x3ff) << 1),
                                  21);

  std::uint32_t next_pc = pc_ + 4;
  auto wb = [&](std::uint32_t v) {
    if (rd != 0) regs_[rd] = v;
  };

  switch (opcode) {
    case 0b0110111: wb(imm_u); break;                      // LUI
    case 0b0010111: wb(pc_ + imm_u); break;                // AUIPC
    case 0b1101111:                                        // JAL
      wb(pc_ + 4);
      next_pc = pc_ + static_cast<std::uint32_t>(imm_j);
      break;
    case 0b1100111:                                        // JALR
      wb(pc_ + 4);
      next_pc = (a + static_cast<std::uint32_t>(imm_i)) & ~1u;
      break;
    case 0b1100011: {                                      // branches
      bool taken = false;
      switch (f3) {
        case 0b000: taken = a == b; break;
        case 0b001: taken = a != b; break;
        case 0b100: taken = static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b); break;
        case 0b101: taken = static_cast<std::int32_t>(a) >= static_cast<std::int32_t>(b); break;
        case 0b110: taken = a < b; break;
        case 0b111: taken = a >= b; break;
        default: return false;
      }
      if (taken) next_pc = pc_ + static_cast<std::uint32_t>(imm_b);
      break;
    }
    case 0b0000011:                                        // LW
      if (f3 != 0b010) return false;
      wb(load(a + static_cast<std::uint32_t>(imm_i)));
      break;
    case 0b0100011:                                        // SW
      if (f3 != 0b010) return false;
      store(a + static_cast<std::uint32_t>(imm_s), b);
      break;
    case 0b0010011: {                                      // OP-IMM
      const std::uint32_t i = static_cast<std::uint32_t>(imm_i);
      const unsigned sh = instr >> 20 & 31;
      switch (f3) {
        case 0b000: wb(a + i); break;
        case 0b010: wb(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(i)); break;
        case 0b011: wb(a < i); break;
        case 0b100: wb(a ^ i); break;
        case 0b110: wb(a | i); break;
        case 0b111: wb(a & i); break;
        case 0b001: wb(a << sh); break;
        case 0b101:
          wb(f7b5 ? static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> sh) : a >> sh);
          break;
      }
      break;
    }
    case 0b0110011: {                                      // OP
      const unsigned sh = b & 31;
      switch (f3) {
        case 0b000: wb(f7b5 ? a - b : a + b); break;
        case 0b001: wb(a << sh); break;
        case 0b010: wb(static_cast<std::int32_t>(a) < static_cast<std::int32_t>(b)); break;
        case 0b011: wb(a < b); break;
        case 0b100: wb(a ^ b); break;
        case 0b101:
          wb(f7b5 ? static_cast<std::uint32_t>(static_cast<std::int32_t>(a) >> sh) : a >> sh);
          break;
        case 0b110: wb(a | b); break;
        case 0b111: wb(a & b); break;
      }
      break;
    }
    default: return false;
  }
  pc_ = next_pc;
  return true;
}

unsigned Iss::run(unsigned max_steps) {
  unsigned executed = 0;
  while (executed < max_steps) {
    const std::uint32_t before = pc_;
    if (!step()) break;
    ++executed;
    if (pc_ == before) break; // jump-to-self: program finished
  }
  return executed;
}

} // namespace upec::sim
