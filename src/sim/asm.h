// Minimal RV32I instruction encoders: enough of an assembler to write the
// test programs and attack firmware in-line, with the encodings checked
// against the ISS and the RTL core by the cross-validation tests.
#pragma once

#include <cstdint>
#include <vector>

namespace upec::sim::rv {

using std::uint32_t;

// --- encoding helpers -------------------------------------------------------------
inline uint32_t r_type(uint32_t f7, uint32_t rs2, uint32_t rs1, uint32_t f3, uint32_t rd,
                       uint32_t op) {
  return (f7 << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op;
}
inline uint32_t i_type(std::int32_t imm, uint32_t rs1, uint32_t f3, uint32_t rd, uint32_t op) {
  return (static_cast<uint32_t>(imm & 0xfff) << 20) | (rs1 << 15) | (f3 << 12) | (rd << 7) | op;
}
inline uint32_t s_type(std::int32_t imm, uint32_t rs2, uint32_t rs1, uint32_t f3, uint32_t op) {
  const uint32_t u = static_cast<uint32_t>(imm) & 0xfff;
  return ((u >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (f3 << 12) | ((u & 0x1f) << 7) | op;
}
inline uint32_t b_type(std::int32_t imm, uint32_t rs2, uint32_t rs1, uint32_t f3) {
  const uint32_t u = static_cast<uint32_t>(imm);
  return (((u >> 12) & 1) << 31) | (((u >> 5) & 0x3f) << 25) | (rs2 << 20) | (rs1 << 15) |
         (f3 << 12) | (((u >> 1) & 0xf) << 8) | (((u >> 11) & 1) << 7) | 0b1100011;
}
inline uint32_t j_type(std::int32_t imm, uint32_t rd) {
  const uint32_t u = static_cast<uint32_t>(imm);
  return (((u >> 20) & 1) << 31) | (((u >> 1) & 0x3ff) << 21) | (((u >> 11) & 1) << 20) |
         (((u >> 12) & 0xff) << 12) | (rd << 7) | 0b1101111;
}

// --- mnemonics ---------------------------------------------------------------------
inline uint32_t addi(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b000, rd, 0b0010011);
}
inline uint32_t slti(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b010, rd, 0b0010011);
}
inline uint32_t sltiu(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b011, rd, 0b0010011);
}
inline uint32_t xori(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b100, rd, 0b0010011);
}
inline uint32_t ori(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b110, rd, 0b0010011);
}
inline uint32_t andi(uint32_t rd, uint32_t rs1, std::int32_t imm) {
  return i_type(imm, rs1, 0b111, rd, 0b0010011);
}
inline uint32_t slli(uint32_t rd, uint32_t rs1, uint32_t sh) {
  return i_type(static_cast<std::int32_t>(sh & 31), rs1, 0b001, rd, 0b0010011);
}
inline uint32_t srli(uint32_t rd, uint32_t rs1, uint32_t sh) {
  return i_type(static_cast<std::int32_t>(sh & 31), rs1, 0b101, rd, 0b0010011);
}
inline uint32_t srai(uint32_t rd, uint32_t rs1, uint32_t sh) {
  return i_type(static_cast<std::int32_t>((sh & 31) | 0x400), rs1, 0b101, rd, 0b0010011);
}
inline uint32_t add(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b000, rd, 0b0110011);
}
inline uint32_t sub(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0b0100000, rs2, rs1, 0b000, rd, 0b0110011);
}
inline uint32_t sll(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b001, rd, 0b0110011);
}
inline uint32_t slt(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b010, rd, 0b0110011);
}
inline uint32_t sltu(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b011, rd, 0b0110011);
}
inline uint32_t xor_(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b100, rd, 0b0110011);
}
inline uint32_t srl(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b101, rd, 0b0110011);
}
inline uint32_t sra(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0b0100000, rs2, rs1, 0b101, rd, 0b0110011);
}
inline uint32_t or_(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b110, rd, 0b0110011);
}
inline uint32_t and_(uint32_t rd, uint32_t rs1, uint32_t rs2) {
  return r_type(0, rs2, rs1, 0b111, rd, 0b0110011);
}
inline uint32_t lui(uint32_t rd, uint32_t imm20) { return (imm20 << 12) | (rd << 7) | 0b0110111; }
inline uint32_t auipc(uint32_t rd, uint32_t imm20) {
  return (imm20 << 12) | (rd << 7) | 0b0010111;
}
inline uint32_t lw(uint32_t rd, uint32_t rs1, std::int32_t off) {
  return i_type(off, rs1, 0b010, rd, 0b0000011);
}
inline uint32_t sw(uint32_t rs2, uint32_t rs1, std::int32_t off) {
  return s_type(off, rs2, rs1, 0b010, 0b0100011);
}
inline uint32_t beq(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b000);
}
inline uint32_t bne(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b001);
}
inline uint32_t blt(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b100);
}
inline uint32_t bge(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b101);
}
inline uint32_t bltu(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b110);
}
inline uint32_t bgeu(uint32_t rs1, uint32_t rs2, std::int32_t off) {
  return b_type(off, rs2, rs1, 0b111);
}
inline uint32_t jal(uint32_t rd, std::int32_t off) { return j_type(off, rd); }
inline uint32_t jalr(uint32_t rd, uint32_t rs1, std::int32_t off) {
  return i_type(off, rs1, 0b000, rd, 0b1100111);
}
inline uint32_t nop() { return addi(0, 0, 0); }

// Loads a full 32-bit constant into rd (lui + addi pair).
inline std::vector<uint32_t> li32(uint32_t rd, uint32_t value) {
  const uint32_t lo = value & 0xfff;
  uint32_t hi = value >> 12;
  if (lo & 0x800) hi += 1; // addi sign-extends: compensate
  return {lui(rd, hi & 0xfffff), addi(rd, rd, static_cast<std::int32_t>(lo << 20) >> 20)};
}

} // namespace upec::sim::rv
