#include "sim/vcd.h"

#include <cassert>

namespace upec::sim {

VcdWriter::VcdWriter(std::ostream& os, Simulator& sim) : os_(os), sim_(sim) {}

std::string VcdWriter::make_id(std::size_t index) {
  // Printable identifier codes: base-94 over '!'..'~'.
  std::string id;
  do {
    id.push_back(static_cast<char>('!' + index % 94));
    index /= 94;
  } while (index != 0);
  return id;
}

void VcdWriter::add_output(const std::string& probe_name) {
  assert(!started_);
  const rtlir::NetId net = sim_.design().find_output(probe_name);
  if (net == rtlir::kNullNet) return;
  Channel c;
  c.name = probe_name;
  c.width = sim_.design().width(net);
  c.id = make_id(channels_.size());
  c.is_output = true;
  c.net = net;
  channels_.push_back(std::move(c));
}

void VcdWriter::add_state(const rtlir::StateVarTable& svt, rtlir::StateVarId sv) {
  assert(!started_);
  Channel c;
  c.name = svt.name(sv);
  c.width = svt.width(sv);
  c.id = make_id(channels_.size());
  c.is_output = false;
  c.svt = &svt;
  c.sv = sv;
  channels_.push_back(std::move(c));
}

std::uint64_t VcdWriter::read(Channel& c) {
  return c.is_output ? sim_.value(c.net) : sim_.state_value(*c.svt, c.sv);
}

void VcdWriter::emit_value(const Channel& c, std::uint64_t v) {
  if (c.width == 1) {
    os_ << (v & 1) << c.id << '\n';
    return;
  }
  os_ << 'b';
  bool leading = true;
  for (int i = static_cast<int>(c.width) - 1; i >= 0; --i) {
    const bool bit = (v >> i) & 1;
    if (bit) leading = false;
    if (!leading || i == 0) os_ << (bit ? '1' : '0');
  }
  os_ << ' ' << c.id << '\n';
}

void VcdWriter::start() {
  assert(!started_);
  started_ = true;
  os_ << "$timescale 1ns $end\n$scope module soc $end\n";
  for (const Channel& c : channels_) {
    // VCD identifiers must not contain whitespace; hierarchical dots are fine.
    os_ << "$var wire " << c.width << ' ' << c.id << ' ' << c.name << " $end\n";
  }
  os_ << "$upscope $end\n$enddefinitions $end\n$dumpvars\n";
  for (Channel& c : channels_) {
    const std::uint64_t v = read(c);
    emit_value(c, v);
    c.last = v;
    c.has_last = true;
  }
  os_ << "$end\n";
}

void VcdWriter::sample() {
  assert(started_);
  ++time_;
  bool stamped = false;
  for (Channel& c : channels_) {
    const std::uint64_t v = read(c);
    if (c.has_last && v == c.last) continue;
    if (!stamped) {
      os_ << '#' << time_ << '\n';
      stamped = true;
    }
    emit_value(c, v);
    c.last = v;
  }
}

} // namespace upec::sim
