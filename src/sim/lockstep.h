// Lockstep two-instance simulation: the concrete analogue of the UPEC miter.
//
// Two copies of the design run with identical inputs except for a chosen set
// of overrides (the victim's protected accesses); after every cycle the
// divergence set — state variables whose values differ between the copies —
// is recorded. This gives the cycle-by-cycle propagation timeline that the
// formal counterexamples summarize, and the integration tests assert that
// both views agree (first divergence in transient interconnect state, then in
// persistent IP state).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace upec::sim {

struct DivergenceFrame {
  std::uint64_t cycle = 0;
  std::vector<rtlir::StateVarId> differing;
};

class Lockstep {
public:
  Lockstep(const rtlir::Design& design, const rtlir::StateVarTable& svt);

  Simulator& inst_a() { return a_; }
  Simulator& inst_b() { return b_; }

  // Applies the value to both instances.
  void set_input_both(const std::string& name, std::uint64_t value);

  // Steps both instances and records the divergence set.
  void step();

  std::vector<rtlir::StateVarId> current_divergence();
  const std::vector<DivergenceFrame>& history() const { return history_; }

  std::string describe_divergence(std::size_t max_items = 16);

private:
  const rtlir::StateVarTable& svt_;
  Simulator a_;
  Simulator b_;
  std::vector<DivergenceFrame> history_;
};

} // namespace upec::sim
