#include "sim/task.h"

#include <stdexcept>

#include "soc/pulpissimo.h"

namespace upec::sim {

namespace {
constexpr const char* kReq = "soc.cpu.req";
constexpr const char* kAddr = "soc.cpu.addr";
constexpr const char* kWe = "soc.cpu.we";
constexpr const char* kWdata = "soc.cpu.wdata";
} // namespace

void BusDriver::drain(unsigned cycles) {
  sim_.set_input(kReq, 0);
  for (unsigned i = 0; i < cycles; ++i) sim_.step();
}

std::uint32_t BusDriver::run_op(const TaskOp& op, std::uint64_t max_cycles) {
  if (op.kind == TaskOp::Kind::Idle) {
    sim_.set_input(kReq, 0);
    for (std::uint32_t i = 0; i < op.cycles; ++i) sim_.step();
    return 0;
  }

  const bool is_store = op.kind == TaskOp::Kind::Store;
  sim_.set_input(kReq, 1);
  sim_.set_input(kAddr, op.addr);
  sim_.set_input(kWe, is_store ? 1 : 0);
  sim_.set_input(kWdata, op.data);

  // Hold the request until granted (contention shows up here as extra cycles).
  std::uint64_t waited = 0;
  while (!(sim_.output(soc::probe::kCpuGnt) & 1)) {
    sim_.step();
    if (++waited > max_cycles) throw std::runtime_error("bus grant timeout");
  }
  sim_.step(); // the granted cycle
  sim_.set_input(kReq, 0);

  if (is_store) return 0; // writes are posted

  // Wait for read data.
  waited = 0;
  while (!(sim_.output(soc::probe::kCpuRvalid) & 1)) {
    sim_.step();
    if (++waited > max_cycles) throw std::runtime_error("bus rvalid timeout");
  }
  const auto data = static_cast<std::uint32_t>(sim_.output(soc::probe::kCpuRdata));
  sim_.step();
  return data;
}

std::vector<std::uint32_t> BusDriver::run(const TaskScript& script, std::uint64_t max_cycles) {
  std::vector<std::uint32_t> loads;
  for (const TaskOp& op : script) {
    const std::uint32_t v = run_op(op, max_cycles);
    if (op.kind == TaskOp::Kind::Load) loads.push_back(v);
  }
  return loads;
}

} // namespace upec::sim
