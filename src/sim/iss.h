// Reference RV32I instruction-set simulator.
//
// Purely architectural (no timing): executes the same ISA subset as the RTL
// core in soc/cpu.h against a flat memory view. The cross-validation tests
// run random and directed programs on both and compare architectural state
// (register file + memory), pinning the RTL core's semantics to an
// independent implementation.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

namespace upec::sim {

class Iss {
public:
  explicit Iss(std::vector<std::uint32_t> imem) : imem_(std::move(imem)) {}

  std::uint32_t reg(unsigned i) const { return regs_[i]; }
  void set_reg(unsigned i, std::uint32_t v) {
    if (i != 0) regs_[i] = v;
  }
  std::uint32_t pc() const { return pc_; }

  // Word-granular data memory (byte addresses, word aligned).
  std::uint32_t load(std::uint32_t addr) const {
    auto it = dmem_.find(addr & ~3u);
    return it == dmem_.end() ? 0 : it->second;
  }
  void store(std::uint32_t addr, std::uint32_t v) { dmem_[addr & ~3u] = v; }
  const std::unordered_map<std::uint32_t, std::uint32_t>& dmem() const { return dmem_; }

  // Executes one instruction; returns false on an undecodable opcode.
  bool step();
  // Runs up to `max_steps` instructions; stops early on a jump-to-self
  // (the idiomatic end-of-program spin). Returns instructions executed.
  unsigned run(unsigned max_steps);

private:
  std::vector<std::uint32_t> imem_;
  std::unordered_map<std::uint32_t, std::uint32_t> dmem_;
  std::uint32_t regs_[32] = {0};
  std::uint32_t pc_ = 0;
};

} // namespace upec::sim
