#include "sim/attack.h"

#include <stdexcept>

namespace upec::sim {

namespace {

// Victim recording phase, shared by both scenarios: performs the secret
// number of accesses to its working memory, spread across a fixed-length
// window so that total window time does not itself encode the secret.
void victim_phase(Simulator& sim, BusDriver& cpu, const soc::Soc& soc,
                  std::uint32_t accesses, const AttackConfig& config) {
  const soc::Region& ram = config.victim_uses_private_ram
                               ? soc.map.region(soc::AddrMap::kPrivRam)
                               : soc.map.region(soc::AddrMap::kPubRam);
  // The victim's working set: the last words of its RAM (away from the
  // attacker's primed region at the start of public RAM).
  const std::uint32_t victim_word_addr = ram.end() - 4;

  const std::uint64_t window_end = sim.cycle() + config.recording_cycles;
  for (std::uint32_t i = 0; i < accesses; ++i) {
    cpu.run_op(store(victim_word_addr, 0xC0FFEE00u + i));
  }
  while (sim.cycle() < window_end) {
    sim.set_input("soc.cpu.req", 0);
    sim.step();
  }
}

} // namespace

HwpeAttackResult run_hwpe_attack(const soc::Soc& soc, std::uint32_t victim_accesses,
                                 const AttackConfig& config) {
  Simulator sim(*soc.design);
  BusDriver cpu(sim);
  HwpeAttackResult result;

  const soc::Region& pub = soc.map.region(soc::AddrMap::kPubRam);
  const soc::Region& hwpe = soc.map.region(soc::AddrMap::kHwpe);
  const std::uint32_t primed_base = pub.base;

  // --- preparation (attacker task) ---------------------------------------------
  // Prime the region with zeros, then program the HWPE to overwrite it with
  // non-zero values, and start it.
  for (std::uint32_t w = 0; w < config.primed_words; ++w) {
    cpu.run_op(store(primed_base + 4 * w, 0));
  }
  cpu.run(TaskScript{
      store(hwpe.base + 0x0, primed_base),          // DST
      store(hwpe.base + 0x4, config.primed_words),  // LEN
      store(hwpe.base + 0x8, 1),                    // CTRL.go
  });

  // --- context switch to the victim; recording phase ----------------------------
  victim_phase(sim, cpu, soc, victim_accesses, config);

  // --- context switch back; retrieval phase -------------------------------------
  // One timed PROGRESS read (fixed latency: this is the measurement), then
  // stop the engine so the primed-region scan is not a moving target.
  result.progress_observed =
      static_cast<std::uint32_t>(cpu.run_op(load(hwpe.base + 0x10))); // PROGRESS
  cpu.run_op(store(hwpe.base + 0x8, 0));                              // CTRL.stop
  cpu.run_op(sim::idle(4));
  result.progress_at_stop = static_cast<std::uint32_t>(cpu.run_op(load(hwpe.base + 0x10)));
  result.highwater_mark = config.primed_words;
  for (std::uint32_t w = 0; w < config.primed_words; ++w) {
    const std::uint32_t v = static_cast<std::uint32_t>(cpu.run_op(load(primed_base + 4 * w)));
    if (v == 0) {
      result.highwater_mark = w;
      break;
    }
  }
  return result;
}

TimerAttackResult run_timer_attack(const soc::Soc& soc, std::uint32_t victim_accesses,
                                   const AttackConfig& config) {
  Simulator sim(*soc.design);
  BusDriver cpu(sim);
  TimerAttackResult result;

  const soc::Region& pub = soc.map.region(soc::AddrMap::kPubRam);
  const soc::Region& dma = soc.map.region(soc::AddrMap::kDma);
  const soc::Region& event = soc.map.region(soc::AddrMap::kEvent);
  const soc::Region& timer = soc.map.region(soc::AddrMap::kTimer);

  const std::uint32_t copy_words = config.dma_copy_words;

  // --- preparation (attacker task) -----------------------------------------------
  cpu.run(TaskScript{
      store(timer.base + 0x4, 0),            // COUNT = 0
      store(timer.base + 0xC, 0),            // PRESCALE = 0 (count every cycle)
      store(event.base + 0x4, 1),            // TRIGSEL = 1: DMA done starts timer
      store(dma.base + 0x0, pub.base),       // SRC
      store(dma.base + 0x4, pub.base + 4 * copy_words), // DST
      store(dma.base + 0x8, copy_words),     // LEN
      store(dma.base + 0xC, 1),              // CTRL.go
  });

  // --- recording phase -------------------------------------------------------------
  victim_phase(sim, cpu, soc, victim_accesses, config);

  // --- retrieval phase ---------------------------------------------------------------
  result.timer_count = static_cast<std::uint32_t>(cpu.run_op(load(timer.base + 0x4)));
  result.dma_done_event =
      (cpu.run_op(load(event.base + 0x0)) & 1) != 0; // PENDING.bit0 = dma done
  return result;
}

} // namespace upec::sim
