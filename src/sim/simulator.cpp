#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace upec::sim {

using rtlir::kNullNet;
using rtlir::NetId;
using rtlir::NetKind;

Simulator::Simulator(const rtlir::Design& design) : design_(design) {
  reg_state_.resize(design.registers().size(), 0);
  mem_state_.resize(design.memories().size());
  for (std::size_t m = 0; m < design.memories().size(); ++m) {
    mem_state_[m].resize(design.memories()[m].words, 0);
  }
  input_val_.resize(design.inputs().size(), 0);
  for (std::uint32_t i = 0; i < design.inputs().size(); ++i) {
    input_by_name_[design.net(design.inputs()[i].net).name] = i;
  }
  net_val_.resize(design.num_nets(), 0);
  net_stamp_.resize(design.num_nets(), 0);
  reset();
}

void Simulator::reset() {
  for (std::size_t r = 0; r < design_.registers().size(); ++r) {
    reg_state_[r] = design_.registers()[r].reset_value.value();
  }
  for (std::size_t m = 0; m < design_.memories().size(); ++m) {
    for (std::size_t w = 0; w < mem_state_[m].size(); ++w) {
      mem_state_[m][w] = design_.memories()[m].init[w].value();
    }
  }
  std::fill(input_val_.begin(), input_val_.end(), 0);
  ++stamp_;
  cycle_ = 0;
}

void Simulator::set_input(const std::string& name, std::uint64_t value) {
  auto it = input_by_name_.find(name);
  if (it == input_by_name_.end()) throw std::out_of_range("no such input: " + name);
  set_input(it->second, value);
}

void Simulator::set_input(std::uint32_t input_index, std::uint64_t value) {
  const unsigned w = design_.width(design_.inputs()[input_index].net);
  input_val_[input_index] = value & BitVec::mask(w);
  ++stamp_; // inputs changed: invalidate this cycle's memoized evaluations
}

std::uint64_t Simulator::eval(NetId net) {
  assert(net != kNullNet);
  if (net_stamp_[net] == stamp_) return net_val_[net];
  const rtlir::Net& info = design_.net(net);
  std::uint64_t v = 0;
  switch (info.kind) {
    case NetKind::Const: v = design_.consts()[info.payload].value(); break;
    case NetKind::Input: v = input_val_[info.payload]; break;
    case NetKind::RegQ: v = reg_state_[info.payload]; break;
    case NetKind::MemRead: {
      const rtlir::MemReadPort& rp = design_.mem_reads()[info.payload];
      const std::uint64_t addr = eval(rp.addr);
      v = addr < mem_state_[rp.mem].size() ? mem_state_[rp.mem][addr] : 0;
      break;
    }
    case NetKind::Cell: {
      const rtlir::CellNode& c = design_.cells()[info.payload];
      auto operand = [&](NetId x) {
        return x == kNullNet ? BitVec(1, 0) : BitVec(design_.width(x), eval(x));
      };
      v = rtlir::eval_cell(c, operand(c.a), operand(c.b), operand(c.c), info.width).value();
      break;
    }
  }
  net_val_[net] = v;
  net_stamp_[net] = stamp_;
  return v;
}

std::uint64_t Simulator::value(NetId net) { return eval(net); }

std::uint64_t Simulator::output(const std::string& probe) {
  const NetId net = design_.find_output(probe);
  if (net == kNullNet) throw std::out_of_range("no such output: " + probe);
  return eval(net);
}

void Simulator::step() {
  // Evaluate all next-state values against the current state, then commit.
  std::vector<std::uint64_t> next_regs(reg_state_.size());
  for (std::size_t r = 0; r < design_.registers().size(); ++r) {
    const rtlir::Register& reg = design_.registers()[r];
    const bool en = reg.en == kNullNet || (eval(reg.en) & 1);
    next_regs[r] = en ? eval(reg.d) : reg_state_[r];
  }
  struct PendingWrite {
    std::uint32_t mem, word;
    std::uint64_t data;
  };
  std::vector<PendingWrite> writes;
  for (std::uint32_t m = 0; m < design_.memories().size(); ++m) {
    for (const rtlir::MemWritePort& wp : design_.memories()[m].writes) {
      const bool en = wp.en == kNullNet || (eval(wp.en) & 1);
      if (!en) continue;
      const std::uint64_t addr = eval(wp.addr);
      if (addr < mem_state_[m].size()) {
        writes.push_back({m, static_cast<std::uint32_t>(addr), eval(wp.data)});
      }
    }
  }
  reg_state_ = std::move(next_regs);
  for (const PendingWrite& w : writes) mem_state_[w.mem][w.word] = w.data;
  ++stamp_;
  ++cycle_;
}

void Simulator::set_reg(std::uint32_t reg, std::uint64_t v) {
  reg_state_[reg] = v & BitVec::mask(design_.width(design_.registers()[reg].q));
  ++stamp_;
}

void Simulator::set_mem_word(std::uint32_t mem, std::uint32_t word, std::uint64_t v) {
  mem_state_[mem][word] = v & BitVec::mask(design_.memories()[mem].width);
  ++stamp_;
}

std::uint64_t Simulator::state_value(const rtlir::StateVarTable& svt,
                                     rtlir::StateVarId sv) const {
  const rtlir::StateVar& v = svt.var(sv);
  if (v.kind == rtlir::StateVar::Kind::Reg) return reg_state_[v.index];
  return mem_state_[v.index][v.word];
}

} // namespace upec::sim
