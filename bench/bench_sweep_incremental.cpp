// Experiment T-INCR — cross-iteration incremental sweeps on the Alg. 1
// workloads: persistent assumption-activated candidates + UNSAT-core frontier
// pruning + the shared verdict cache, against the legacy per-round re-encode
// baseline.
//
// The legacy path poses every sweep round as a freshly encoded activation
// disjunction and re-proves, iteration after iteration, that the surviving
// candidates still cannot differ. The incremental path encodes each
// candidate's activation literal once, selects per-round subsets purely
// through assumptions (the store never grows mid-sweep), skips candidates
// whose recorded refutation core is still entailed by the current assumption
// set, and answers repeated UNSAT queries from the verdict cache. Per row
// this bench reports:
//   * summed work = conflicts + propagations over the full Alg. 1 run, main
//     solver plus workers (the honest single-core cost metric; wall clock on
//     a 1-core container only measures time-slicing),
//   * the work reduction incremental mode buys on the same thread count,
//   * incremental-machinery counters (cache hits, pruned candidates), and
//   * the `identical` column: the incremental run must report bit-equal
//     verdicts/iterations/frontiers to both the legacy run on the same
//     thread count and the 1-thread legacy run. The machinery only removes
//     re-proving work, so any reading other than "yes" is a soundness bug.
//
// Writes a JSON artifact (default BENCH_sweep_incremental.json, or argv
// path) and exits non-zero if the identical column regresses or the secure
// rows drop below the committed reduction bar — CI runs the reduced
// configuration (--quick) and fails loudly on either signal.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "upec/report.h"

namespace {

upec::VerifyOptions configure(upec::VerifyOptions options, unsigned threads, bool incremental) {
  options.threads = threads;
  options.incremental_sweeps = incremental;
  options.verdict_cache = incremental;
  return options;
}

std::uint64_t total_work(const upec::Alg1Result& r) {
  return r.stats.total.conflicts + r.stats.total.propagations;
}

// Compact unified-metrics snapshot for the row (README "Observability").
std::string row_metrics(const upec::Alg1Result& r) {
  return r.stats.metrics
      .filtered({"sat.channel.", "sat.simplify.", "sat.solver.total.", "upec."})
      .to_json();
}

bool identical_results(const upec::Alg1Result& a, const upec::Alg1Result& b) {
  bool same = a.verdict == b.verdict && a.iterations.size() == b.iterations.size() &&
              a.persistent_hits == b.persistent_hits && a.full_cex == b.full_cex &&
              a.final_s == b.final_s;
  for (std::size_t i = 0; same && i < a.iterations.size(); ++i) {
    same = a.iterations[i].removed == b.iterations[i].removed;
  }
  return same;
}

struct Row {
  std::uint32_t pub_words;
  const char* scenario;
  unsigned threads;
  double legacy_s, incr_s;
  std::uint64_t work_legacy, work_incr;
  std::uint64_t cache_hits, pruned;
  bool identical;
  const char* verdict;
  std::string metrics; // of the incremental run

  double reduction() const {
    if (work_legacy == 0) return 0.0;
    return 1.0 - static_cast<double>(work_incr) / static_cast<double>(work_legacy);
  }
};

} // namespace

int main(int argc, char** argv) {
  using namespace upec;

  bool quick = false;
  std::string out_path = "BENCH_sweep_incremental.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{8} : std::vector<std::uint32_t>{16, 32};
  const std::vector<unsigned> thread_counts = {1, 4};
  // Committed bar for the secure rows (the UNSAT-heavy workload the
  // incremental machinery targets); the reduced config uses a looser bar
  // because the tiny design amortizes less re-encoding.
  const double reduction_bar = quick ? 0.20 : 0.25;

  std::printf("# T-INCR — Alg. 1, legacy re-encode sweeps vs incremental sweeps%s\n\n",
              quick ? " (reduced config)" : "");
  std::printf("%-10s %-10s %-8s %-12s %-12s %-14s %-14s %-10s %-12s %-8s %-10s\n", "pub_words",
              "scenario", "threads", "legacy[s]", "incr[s]", "work legacy", "work incr",
              "reduction", "cache hits", "pruned", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  bool bar_met = true;
  for (const std::uint32_t pub : sizes) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);

    struct Scenario {
      const char* name;
      VerifyOptions options;
      bool gated; // reduction bar applies
    };
    const Scenario scenarios[] = {
        {"detect", VerifyOptions{}, false},
        {"secure", countermeasure_options(), true},
    };
    for (const Scenario& sc : scenarios) {
      Alg1Options opts;
      opts.extract_waveform = false;
      const Alg1Result t1_legacy = verify_2cycle(soc, configure(sc.options, 1, false), opts);
      for (const unsigned threads : thread_counts) {
        const Alg1Result legacy =
            threads == 1 ? t1_legacy : verify_2cycle(soc, configure(sc.options, threads, false), opts);
        const Alg1Result incr = verify_2cycle(soc, configure(sc.options, threads, true), opts);

        Row row;
        row.pub_words = pub;
        row.scenario = sc.name;
        row.threads = threads;
        row.legacy_s = legacy.total_seconds;
        row.incr_s = incr.total_seconds;
        row.work_legacy = total_work(legacy);
        row.work_incr = total_work(incr);
        row.cache_hits = incr.stats.cache_hits;
        row.pruned = incr.stats.pruned_candidates;
        row.identical = identical_results(t1_legacy, incr) && identical_results(legacy, incr);
        row.verdict = verdict_name(incr.verdict);
        row.metrics = row_metrics(incr);
        all_identical = all_identical && row.identical;
        if (sc.gated && row.reduction() < reduction_bar) bar_met = false;
        rows.push_back(row);

        std::printf("%-10u %-10s %-8u %-12.3f %-12.3f %-14llu %-14llu %-10.3f %-12llu %-8llu %s\n",
                    pub, sc.name, threads, row.legacy_s, row.incr_s,
                    static_cast<unsigned long long>(row.work_legacy),
                    static_cast<unsigned long long>(row.work_incr), row.reduction(),
                    static_cast<unsigned long long>(row.cache_hits),
                    static_cast<unsigned long long>(row.pruned), row.identical ? "yes" : "NO");
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"sweep_incremental\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"reduction_bar\": %.2f,\n  \"rows\": [\n", reduction_bar);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"pub_words\": %u, \"scenario\": \"%s\", \"threads\": %u, "
                 "\"verdict\": \"%s\", \"legacy_s\": %.3f, \"incr_s\": %.3f, "
                 "\"work_legacy\": %llu, \"work_incr\": %llu, \"work_reduction\": %.4f, "
                 "\"cache_hits\": %llu, \"pruned\": %llu, \"identical\": %s, "
                 "\"metrics\": %s}%s\n",
                 r.pub_words, r.scenario, r.threads, r.verdict, r.legacy_s, r.incr_s,
                 static_cast<unsigned long long>(r.work_legacy),
                 static_cast<unsigned long long>(r.work_incr), r.reduction(),
                 static_cast<unsigned long long>(r.cache_hits),
                 static_cast<unsigned long long>(r.pruned), r.identical ? "true" : "false",
                 r.metrics.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n# wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: identical column regressed — the incremental machinery changed a "
                 "verdict or frontier, breaking the determinism contract\n");
    return 1;
  }
  if (!bar_met) {
    std::fprintf(stderr,
                 "FAIL: secure-row work reduction fell below the committed bar (%.2f) — the "
                 "incremental sweeps stopped paying for themselves\n",
                 reduction_bar);
    return 1;
  }
  return 0;
}
