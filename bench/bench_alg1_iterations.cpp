// Experiment F3 / T-4.2 — Fig. 3 + Algorithm 1: iteration-by-iteration trace
// of the 2-cycle UPEC-SSC fixed point on (a) the baseline SoC (vulnerable,
// Sec 4.1) and (b) the SoC with the Sec 4.2 countermeasure (secure after 3
// iterations in the paper; the same 3-iteration shape reproduces here).
//
// Columns mirror what the paper reports: |S| entering the iteration, |S_cex|,
// persistent hits, check runtime and solver conflicts.
#include <cstdio>

#include "upec/report.h"

namespace {

void run_case(const char* title, const upec::soc::Soc& soc, upec::VerifyOptions options) {
  using namespace upec;
  UpecContext ctx(soc, std::move(options));
  const Alg1Result result = run_alg1(ctx);
  std::printf("%s\n%s", title, iteration_table(ctx, result).c_str());
  std::printf("verdict: %s   iterations: %zu   total: %.3f s\n", verdict_name(result.verdict),
              result.iterations.size(), result.total_seconds);
  if (result.verdict == Verdict::Vulnerable) {
    std::printf("persistent hits:\n");
    for (rtlir::StateVarId sv : result.persistent_hits) {
      std::printf("  ! %s\n", ctx.svt.name(sv).c_str());
    }
  }
  std::printf("\n");
}

} // namespace

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  std::printf("# F3 — Algorithm 1 iteration traces (2-cycle UPEC-SSC property)\n\n");
  run_case("baseline SoC (victim range symbolic over all RAM):", soc, VerifyOptions{});
  run_case("countermeasure SoC (victim range in private RAM + firmware constraints):", soc,
           countermeasure_options());

  std::printf("# paper shape: baseline -> vulnerable within the first iterations\n");
  std::printf("# (runtime \"below one minute\"); countermeasure -> secure after 3\n");
  std::printf("# iterations (paper runtimes 58 s - 2 h 52 min on a >5M-bit SoC with a\n");
  std::printf("# commercial solver; our SoC is parameterized smaller, see DESIGN.md).\n");
  return 0;
}
