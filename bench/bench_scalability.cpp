// Experiment T-SCALE — scalability of the method with design size.
//
// The paper's claim: UPEC-SSC is "scalable for an SoC of realistic size"
// (their Pulpissimo build has >5M state bits; per-iteration runtimes ranged
// from 58 s to 2 h 52 min on a commercial property checker). Our SoC
// generator is parameterized, so the claim's *shape* — proof cost grows
// benignly (roughly linearly in state bits for the memory-dominated sweep,
// not exponentially) because the property window stays at 2 cycles — can be
// measured directly. Both verdicts are exercised: vulnerable detection on the
// baseline and the 3-iteration secure proof on the countermeasure build.
#include <cstdio>

#include "rtlir/pretty.h"
#include "upec/report.h"

int main() {
  using namespace upec;

  std::printf("# T-SCALE — proof cost vs SoC size (2-cycle property, Alg. 1)\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-14s %-12s %-12s %-10s\n", "pub_words", "priv_words",
              "state_vars", "state_bits", "cnf_clauses", "detect[s]", "secure[s]", "verdicts");

  for (std::uint32_t pub : {8u, 16u, 32u, 64u, 128u}) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);
    const rtlir::DesignStats stats = rtlir::design_stats(*soc.design);

    UpecContext vctx(soc);
    const Alg1Result vul = run_alg1(vctx);
    UpecContext sctx(soc, countermeasure_options());
    const Alg1Result sec = run_alg1(sctx);

    std::printf("%-10u %-10u %-12zu %-12zu %-14llu %-12.3f %-12.3f %s/%s\n", pub, pub / 2,
                stats.state_vars, stats.state_bits,
                static_cast<unsigned long long>(vctx.miter.cnf().num_gate_clauses()),
                vul.total_seconds, sec.total_seconds, verdict_name(vul.verdict),
                verdict_name(sec.verdict));
  }
  std::printf("\n# shape check (paper): verdicts stay vulnerable/secure at every size;\n");
  std::printf("# cost grows with state count (memory mux trees + more assumptions) but\n");
  std::printf("# the bounded window keeps the growth polynomial, not exponential.\n");
  return 0;
}
