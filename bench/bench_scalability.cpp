// Experiment T-SCALE — scalability of the method with design size and with
// worker-solver count.
//
// The paper's claim: UPEC-SSC is "scalable for an SoC of realistic size"
// (their Pulpissimo build has >5M state bits; per-iteration runtimes ranged
// from 58 s to 2 h 52 min on a commercial property checker). Our SoC
// generator is parameterized, so the claim's *shape* — proof cost grows
// benignly (roughly linearly in state bits for the memory-dominated sweep,
// not exponentially) because the property window stays at 2 cycles — can be
// measured directly. Both verdicts are exercised: vulnerable detection on the
// baseline and the 3-iteration secure proof on the countermeasure build.
//
// The second table measures the check scheduler: the same Alg. 1 runs with
// 1 vs N worker solvers. Results are bit-identical by construction (see
// ipc/scheduler.h and test_determinism); the speedup column shows how much
// of the per-iteration fan-out the hardware converts into wall-clock. Each
// chunk proves its own quarter-disjunction UNSAT, so total CPU rises vs the
// single big proof (~2-2.5x observed); the fan-out pays off once the chunks
// actually run on separate cores (wall ≈ slowest chunk). On a single-core
// container the speedup column therefore reads *below* 1.0 — that run only
// validates the "identical" column. Worker-to-worker learned-clause sharing
// is the known follow-up to cut the duplicated UNSAT work.
#include <cstdio>

#include "rtlir/pretty.h"
#include "upec/report.h"

namespace {

upec::VerifyOptions with_threads(upec::VerifyOptions options, unsigned threads) {
  options.threads = threads;
  return options;
}

} // namespace

int main() {
  using namespace upec;

  std::printf("# T-SCALE — proof cost vs SoC size (2-cycle property, Alg. 1)\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-14s %-12s %-12s %-10s\n", "pub_words", "priv_words",
              "state_vars", "state_bits", "cnf_clauses", "detect[s]", "secure[s]", "verdicts");

  for (std::uint32_t pub : {8u, 16u, 32u, 64u, 128u}) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);
    const rtlir::DesignStats stats = rtlir::design_stats(*soc.design);

    UpecContext vctx(soc);
    const Alg1Result vul = run_alg1(vctx);
    UpecContext sctx(soc, countermeasure_options());
    const Alg1Result sec = run_alg1(sctx);

    std::printf("%-10u %-10u %-12zu %-12zu %-14llu %-12.3f %-12.3f %s/%s\n", pub, pub / 2,
                stats.state_vars, stats.state_bits,
                static_cast<unsigned long long>(vctx.miter.cnf().num_gate_clauses()),
                vul.total_seconds, sec.total_seconds, verdict_name(vul.verdict),
                verdict_name(sec.verdict));
  }
  std::printf("\n# shape check (paper): verdicts stay vulnerable/secure at every size;\n");
  std::printf("# cost grows with state count (memory mux trees + more assumptions) but\n");
  std::printf("# the bounded window keeps the growth polynomial, not exponential.\n");

  std::printf("\n# T-SCALE-MT — same Alg. 1 workload, 1 vs 4 worker solvers\n\n");
  std::printf("%-10s %-10s %-12s %-12s %-12s %-12s %-10s %-10s\n", "pub_words", "scenario",
              "t1[s]", "t4[s]", "speedup", "t4 solves", "verdict ok", "identical");
  for (std::uint32_t pub : {16u, 32u, 64u}) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);

    struct Scenario {
      const char* name;
      VerifyOptions options;
      Verdict expected;
    };
    const Scenario scenarios[] = {
        {"detect", VerifyOptions{}, Verdict::Vulnerable},
        {"secure", countermeasure_options(), Verdict::Secure},
    };
    for (const Scenario& sc : scenarios) {
      Alg1Options opts;
      opts.extract_waveform = false;
      const Alg1Result t1 = verify_2cycle(soc, with_threads(sc.options, 1), opts);
      const Alg1Result t4 = verify_2cycle(soc, with_threads(sc.options, 4), opts);

      bool identical = t1.verdict == t4.verdict && t1.iterations.size() == t4.iterations.size() &&
                       t1.persistent_hits == t4.persistent_hits && t1.full_cex == t4.full_cex;
      for (std::size_t i = 0; identical && i < t1.iterations.size(); ++i) {
        identical = t1.iterations[i].removed == t4.iterations[i].removed;
      }
      std::uint64_t t4_solves = 0;
      for (const auto& w : t4.stats.per_worker) t4_solves += w.solve_calls;
      std::printf("%-10u %-10s %-12.3f %-12.3f %-12.2f %-10llu %-10s %-10s\n", pub, sc.name,
                  t1.total_seconds, t4.total_seconds,
                  t4.total_seconds > 0 ? t1.total_seconds / t4.total_seconds : 0.0,
                  static_cast<unsigned long long>(t4_solves),
                  t1.verdict == sc.expected ? "yes" : "NO",
                  identical ? "yes" : "NO");
    }
  }
  std::printf("\n# identical must read yes everywhere: the scheduler's per-chunk saturation\n");
  std::printf("# reports the semantic set {sv : diff(sv) satisfiable}, which no partition\n");
  std::printf("# or model order can change. speedup tracks available cores.\n");
  return 0;
}
