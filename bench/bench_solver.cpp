// Experiment T-SOLVER — solver / encoder microbenchmarks and the two encoder
// ablations called out in DESIGN.md:
//
//  - cone-of-influence reduction: fraction of the design a 2-cycle property
//    actually touches (the lazy encoder materializes only this),
//  - shared-prefix miter vs assumption-mode miter: CNF size for the same
//    State_Equivalence(S) constraint,
//  - CDCL throughput on the SoC transition relation and on classic hard
//    instances (pigeonhole), via google-benchmark timing loops.
#include <benchmark/benchmark.h>
#include "sat/solver.h"

#include <cstdio>

#include "encode/coi.h"
#include "upec/report.h"

namespace {

using namespace upec;

soc::Soc make_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

void BM_EncodeSocTwoFrames(benchmark::State& state) {
  const soc::Soc soc = make_soc();
  const rtlir::StateVarTable svt(*soc.design);
  for (auto _ : state) {
    sat::Solver solver;
    encode::CnfBuilder cnf(solver);
    encode::UnrolledInstance inst(cnf, *soc.design, svt, "bm");
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) inst.state_at(1, sv);
    benchmark::DoNotOptimize(cnf.num_gate_clauses());
    state.counters["clauses"] = static_cast<double>(cnf.num_gate_clauses());
    state.counters["aux_vars"] = static_cast<double>(cnf.num_aux_vars());
  }
}
BENCHMARK(BM_EncodeSocTwoFrames)->Unit(benchmark::kMillisecond);

void BM_DetectVulnerability(benchmark::State& state) {
  const soc::Soc soc = make_soc();
  for (auto _ : state) {
    UpecContext ctx(soc);
    Alg1Options opts;
    opts.extract_waveform = false;
    const Alg1Result r = run_alg1(ctx, opts);
    if (r.verdict != Verdict::Vulnerable) state.SkipWithError("expected vulnerable");
    state.counters["iterations"] = static_cast<double>(r.iterations.size());
  }
}
BENCHMARK(BM_DetectVulnerability)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SecureProof(benchmark::State& state) {
  const soc::Soc soc = make_soc();
  for (auto _ : state) {
    UpecContext ctx(soc, countermeasure_options());
    Alg1Options opts;
    opts.extract_waveform = false;
    const Alg1Result r = run_alg1(ctx, opts);
    if (r.verdict != Verdict::Secure) state.SkipWithError("expected secure");
    state.counters["iterations"] = static_cast<double>(r.iterations.size());
  }
}
BENCHMARK(BM_SecureProof)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_SatPigeonhole(benchmark::State& state) {
  const int holes = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sat::Solver s;
    const int pigeons = holes + 1;
    std::vector<std::vector<sat::Var>> x(pigeons, std::vector<sat::Var>(holes));
    for (auto& row : x) {
      for (auto& v : row) v = s.new_var();
    }
    for (int p = 0; p < pigeons; ++p) {
      std::vector<sat::Lit> c;
      for (int h = 0; h < holes; ++h) c.push_back(sat::Lit(x[p][h], false));
      s.add_clause(c);
    }
    for (int h = 0; h < holes; ++h) {
      for (int p1 = 0; p1 < pigeons; ++p1) {
        for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
          s.add_clause(sat::Lit(x[p1][h], true), sat::Lit(x[p2][h], true));
        }
      }
    }
    const bool res = s.solve();
    if (res) state.SkipWithError("pigeonhole must be UNSAT");
    state.counters["conflicts"] = static_cast<double>(s.stats().conflicts);
  }
}
BENCHMARK(BM_SatPigeonhole)->Arg(6)->Arg(7)->Arg(8)->Unit(benchmark::kMillisecond);

void print_ablation_tables() {
  const soc::Soc soc = make_soc();
  const rtlir::StateVarTable svt(*soc.design);

  // --- COI reduction ------------------------------------------------------------
  std::printf("\n## cone-of-influence reduction (2-cycle property roots = HWPE progress)\n");
  const rtlir::NetId probe = soc.design->find_output(soc::probe::kHwpeProgress);
  const encode::CoiResult coi = encode::cone_of_influence(*soc.design, svt, {probe}, 2);
  std::printf("reachable nets: %zu / %zu (%.1f%%), state vars in cone: %zu / %zu\n",
              coi.reachable_nets, coi.total_nets,
              100.0 * static_cast<double>(coi.reachable_nets) /
                  static_cast<double>(coi.total_nets),
              coi.state_vars.size(), svt.size());

  // --- shared-prefix vs assumption-mode miter -------------------------------------
  std::printf("\n## miter encodings for State_Equivalence(S_all) at t\n");
  {
    sat::Solver solver;
    encode::Miter m(solver, *soc.design, svt,
                    encode::MiterOptions{.per_instance = soc::Soc::is_cpu_interface,
                                         .shared_prefix = false});
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) {
      m.eq_assumption(sv);
      m.diff_literal(sv, 1);
    }
    std::printf("assumption-mode:  vars=%-10llu clauses=%-10llu (incremental across "
                "iterations)\n",
                static_cast<unsigned long long>(m.cnf().num_aux_vars()),
                static_cast<unsigned long long>(m.cnf().num_gate_clauses()));
  }
  {
    sat::Solver solver;
    encode::Miter m(solver, *soc.design, svt,
                    encode::MiterOptions{.per_instance = soc::Soc::is_cpu_interface,
                                         .shared_prefix = true});
    std::vector<rtlir::StateVarId> all;
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) all.push_back(sv);
    m.bind_shared_prefix(all);
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) m.diff_literal(sv, 1);
    std::printf("shared-prefix:    vars=%-10llu clauses=%-10llu (re-encode per iteration)\n",
                static_cast<unsigned long long>(m.cnf().num_aux_vars()),
                static_cast<unsigned long long>(m.cnf().num_gate_clauses()));
  }
}

} // namespace

int main(int argc, char** argv) {
  std::printf("# T-SOLVER — encoder/solver microbenchmarks and ablations\n");
  print_ablation_tables();
  std::printf("\n");
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
