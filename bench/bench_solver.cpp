// Experiment T-SOLVER — solver / encoder microbenchmarks and the two encoder
// ablations called out in DESIGN.md:
//
//  - cone-of-influence reduction: fraction of the design a 2-cycle property
//    actually touches (the lazy encoder materializes only this),
//  - shared-prefix miter vs assumption-mode miter: CNF size for the same
//    State_Equivalence(S) constraint,
//  - CDCL throughput on the SoC transition relation and on classic hard
//    instances (pigeonhole), on the same self-timed harness as the other
//    bench binaries (no external benchmark library).
//
// Writes a JSON artifact (default BENCH_solver.json, or argv path). --quick
// runs one repetition per row and caps the pigeonhole size for CI.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "encode/coi.h"
#include "sat/solver.h"
#include "upec/report.h"

namespace {

using namespace upec;

soc::Soc make_soc() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return soc::build_pulpissimo(cfg);
}

struct Row {
  std::string name;
  unsigned reps;
  double mean_s;       // per repetition
  std::uint64_t work;  // benchmark-specific counter (clauses / conflicts / iterations)
  const char* work_label;
};

// Runs `fn` `reps` times and returns the mean wall-clock seconds. `fn`
// returns its work counter; the last repetition's value is kept (the
// workloads are deterministic, so every repetition agrees).
Row run_bench(const char* name, unsigned reps, const char* work_label,
              const std::function<std::uint64_t()>& fn) {
  Row row{name, reps, 0.0, 0, work_label};
  const auto t0 = std::chrono::steady_clock::now();
  for (unsigned i = 0; i < reps; ++i) row.work = fn();
  row.mean_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count() /
               static_cast<double>(reps);
  std::printf("%-28s %8.3f ms/rep   %12llu %s   (%u reps)\n", name, row.mean_s * 1e3,
              static_cast<unsigned long long>(row.work), work_label, reps);
  return row;
}

std::uint64_t encode_soc_two_frames(const soc::Soc& soc, const rtlir::StateVarTable& svt) {
  sat::Solver solver;
  encode::CnfBuilder cnf(solver);
  encode::UnrolledInstance inst(cnf, *soc.design, svt, "bm");
  for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) inst.state_at(1, sv);
  return cnf.num_gate_clauses();
}

std::uint64_t detect_vulnerability(const soc::Soc& soc) {
  UpecContext ctx(soc);
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  if (r.verdict != Verdict::Vulnerable) {
    std::fprintf(stderr, "FAIL: expected vulnerable verdict\n");
    std::exit(2);
  }
  return r.iterations.size();
}

std::uint64_t secure_proof(const soc::Soc& soc) {
  UpecContext ctx(soc, countermeasure_options());
  Alg1Options opts;
  opts.extract_waveform = false;
  const Alg1Result r = run_alg1(ctx, opts);
  if (r.verdict != Verdict::Secure) {
    std::fprintf(stderr, "FAIL: expected secure verdict\n");
    std::exit(2);
  }
  return r.iterations.size();
}

std::uint64_t sat_pigeonhole(int holes) {
  sat::Solver s;
  const int pigeons = holes + 1;
  std::vector<std::vector<sat::Var>> x(pigeons, std::vector<sat::Var>(holes));
  for (auto& row : x) {
    for (auto& v : row) v = s.new_var();
  }
  for (int p = 0; p < pigeons; ++p) {
    std::vector<sat::Lit> c;
    for (int h = 0; h < holes; ++h) c.push_back(sat::Lit(x[p][h], false));
    s.add_clause(c);
  }
  for (int h = 0; h < holes; ++h) {
    for (int p1 = 0; p1 < pigeons; ++p1) {
      for (int p2 = p1 + 1; p2 < pigeons; ++p2) {
        s.add_clause(sat::Lit(x[p1][h], true), sat::Lit(x[p2][h], true));
      }
    }
  }
  if (s.solve()) {
    std::fprintf(stderr, "FAIL: pigeonhole must be UNSAT\n");
    std::exit(2);
  }
  return s.stats().conflicts;
}

void print_ablation_tables() {
  const soc::Soc soc = make_soc();
  const rtlir::StateVarTable svt(*soc.design);

  // --- COI reduction ------------------------------------------------------------
  std::printf("\n## cone-of-influence reduction (2-cycle property roots = HWPE progress)\n");
  const rtlir::NetId probe = soc.design->find_output(soc::probe::kHwpeProgress);
  const encode::CoiResult coi = encode::cone_of_influence(*soc.design, svt, {probe}, 2);
  std::printf("reachable nets: %zu / %zu (%.1f%%), state vars in cone: %zu / %zu\n",
              coi.reachable_nets, coi.total_nets,
              100.0 * static_cast<double>(coi.reachable_nets) /
                  static_cast<double>(coi.total_nets),
              coi.state_vars.size(), svt.size());

  // --- shared-prefix vs assumption-mode miter -------------------------------------
  std::printf("\n## miter encodings for State_Equivalence(S_all) at t\n");
  {
    sat::Solver solver;
    encode::Miter m(solver, *soc.design, svt,
                    encode::MiterOptions{.per_instance = soc::Soc::is_cpu_interface,
                                         .shared_prefix = false});
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) {
      m.eq_assumption(sv);
      m.diff_literal(sv, 1);
    }
    std::printf("assumption-mode:  vars=%-10llu clauses=%-10llu (incremental across "
                "iterations)\n",
                static_cast<unsigned long long>(m.cnf().num_aux_vars()),
                static_cast<unsigned long long>(m.cnf().num_gate_clauses()));
  }
  {
    sat::Solver solver;
    encode::Miter m(solver, *soc.design, svt,
                    encode::MiterOptions{.per_instance = soc::Soc::is_cpu_interface,
                                         .shared_prefix = true});
    std::vector<rtlir::StateVarId> all;
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) all.push_back(sv);
    m.bind_shared_prefix(all);
    for (rtlir::StateVarId sv = 0; sv < svt.size(); ++sv) m.diff_literal(sv, 1);
    std::printf("shared-prefix:    vars=%-10llu clauses=%-10llu (re-encode per iteration)\n",
                static_cast<unsigned long long>(m.cnf().num_aux_vars()),
                static_cast<unsigned long long>(m.cnf().num_gate_clauses()));
  }
}

} // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string out_path = "BENCH_solver.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }

  std::printf("# T-SOLVER — encoder/solver microbenchmarks and ablations%s\n",
              quick ? " (reduced config)" : "");
  print_ablation_tables();
  std::printf("\n## microbenchmarks\n");

  const soc::Soc soc = make_soc();
  const rtlir::StateVarTable svt(*soc.design);
  const unsigned reps = quick ? 1 : 3;
  const int max_holes = quick ? 7 : 8;

  std::vector<Row> rows;
  rows.push_back(run_bench("encode_soc_two_frames", quick ? 3 : 10, "clauses",
                           [&] { return encode_soc_two_frames(soc, svt); }));
  rows.push_back(
      run_bench("detect_vulnerability", reps, "iterations", [&] { return detect_vulnerability(soc); }));
  rows.push_back(run_bench("secure_proof", reps, "iterations", [&] { return secure_proof(soc); }));
  for (int holes = 6; holes <= max_holes; ++holes) {
    const std::string name = "pigeonhole_" + std::to_string(holes);
    rows.push_back(
        run_bench(name.c_str(), reps, "conflicts", [holes] { return sat_pigeonhole(holes); }));
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"solver\",\n  \"quick\": %s,\n  \"rows\": [\n",
               quick ? "true" : "false");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"reps\": %u, \"mean_s\": %.4f, "
                 "\"%s\": %llu}%s\n",
                 r.name.c_str(), r.reps, r.mean_s, r.work_label,
                 static_cast<unsigned long long>(r.work), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n# wrote %s\n", out_path.c_str());
  return 0;
}
