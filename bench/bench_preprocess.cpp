// Experiment T-PREP — SatELite-style preprocessing (sat::Simplifier) on the
// Alg. 1 workloads: occurrence-list subsumption / self-subsuming resolution,
// bounded variable elimination with model reconstruction, and failed-literal
// probing over the shared sweep snapshot, against the same run with
// preprocessing disabled.
//
// Preprocessing engages on the scheduler's worker path (threads > 1): the
// sweep snapshot is simplified once per store generation under the frozen-var
// contract (miter interface variables + sweep assumption variables are never
// eliminated) and every worker hydrates from the simplified view. Per row
// this bench reports:
//   * summed work = conflicts + propagations over the full Alg. 1 run, main
//     solver plus workers (the honest single-core cost metric; wall clock on
//     a 1-core container only measures time-slicing),
//   * the work reduction preprocessing buys on the same thread count,
//   * simplifier counters (runs/reuses, eliminated vars, subsumed clauses),
//   * the `identical` column: the preprocessed run must report bit-equal
//     verdicts/iterations/frontiers to both the preprocess-off run on the
//     same thread count and the 1-thread run. The simplifier only removes
//     entailed work, so any reading other than "yes" is a soundness bug —
//     as is a single frozen-variable elimination (checked per row).
//
// Writes a JSON artifact (default BENCH_preprocess.json, or argv path) and
// exits non-zero if the identical column regresses, a frozen variable was
// eliminated, or the secure rows drop below the committed reduction bar — CI
// runs the reduced configuration (--quick) and fails loudly on any signal.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "upec/report.h"

namespace {

upec::VerifyOptions configure(upec::VerifyOptions options, unsigned threads, bool preprocess) {
  options.threads = threads;
  options.preprocess = preprocess;
  return options;
}

std::uint64_t total_work(const upec::Alg1Result& r) {
  return r.stats.total.conflicts + r.stats.total.propagations;
}

// Compact unified-metrics snapshot for the row (README "Observability").
std::string row_metrics(const upec::Alg1Result& r) {
  return r.stats.metrics
      .filtered({"sat.channel.", "sat.simplify.", "sat.solver.total.", "upec."})
      .to_json();
}

bool identical_results(const upec::Alg1Result& a, const upec::Alg1Result& b) {
  bool same = a.verdict == b.verdict && a.iterations.size() == b.iterations.size() &&
              a.persistent_hits == b.persistent_hits && a.full_cex == b.full_cex &&
              a.final_s == b.final_s;
  for (std::size_t i = 0; same && i < a.iterations.size(); ++i) {
    same = a.iterations[i].removed == b.iterations[i].removed;
  }
  return same;
}

struct Row {
  std::uint32_t pub_words;
  const char* scenario;
  unsigned threads;
  double off_s, on_s;
  std::uint64_t work_off, work_on;
  std::uint64_t runs, reuses, eliminated, subsumed;
  bool identical;
  bool frozen_safe;  // zero frozen-variable eliminations
  const char* verdict;
  std::string metrics; // of the preprocess-on run

  double reduction() const {
    if (work_off == 0) return 0.0;
    return 1.0 - static_cast<double>(work_on) / static_cast<double>(work_off);
  }
};

} // namespace

int main(int argc, char** argv) {
  using namespace upec;

  bool quick = false;
  std::string out_path = "BENCH_preprocess.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{8} : std::vector<std::uint32_t>{16, 32};
  const std::vector<unsigned> thread_counts = {4};
  // Committed bar for the secure rows (the UNSAT-heavy workload where removed
  // clauses pay off on every repeated proof); the reduced config uses a
  // looser bar because the tiny design gives the simplifier less to remove.
  const double reduction_bar = quick ? 0.10 : 0.20;

  std::printf("# T-PREP — Alg. 1, preprocessing off vs on (worker sweep path)%s\n\n",
              quick ? " (reduced config)" : "");
  std::printf("%-10s %-10s %-8s %-12s %-12s %-14s %-14s %-10s %-11s %-8s %-9s %-10s\n",
              "pub_words", "scenario", "threads", "off[s]", "on[s]", "work off", "work on",
              "reduction", "runs/reuse", "elim", "subsumed", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  bool frozen_safe = true;
  bool bar_met = true;
  for (const std::uint32_t pub : sizes) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);

    struct Scenario {
      const char* name;
      VerifyOptions options;
      bool gated; // reduction bar applies
    };
    const Scenario scenarios[] = {
        {"detect", VerifyOptions{}, false},
        {"secure", countermeasure_options(), true},
    };
    for (const Scenario& sc : scenarios) {
      Alg1Options opts;
      opts.extract_waveform = false;
      const Alg1Result t1_base = verify_2cycle(soc, configure(sc.options, 1, false), opts);
      for (const unsigned threads : thread_counts) {
        const Alg1Result off = verify_2cycle(soc, configure(sc.options, threads, false), opts);
        const Alg1Result on = verify_2cycle(soc, configure(sc.options, threads, true), opts);

        Row row;
        row.pub_words = pub;
        row.scenario = sc.name;
        row.threads = threads;
        row.off_s = off.total_seconds;
        row.on_s = on.total_seconds;
        row.work_off = total_work(off);
        row.work_on = total_work(on);
        row.runs = on.stats.simplify.runs;
        row.reuses = on.stats.simplify.reuses;
        row.eliminated = on.stats.simplify.eliminated_vars;
        row.subsumed = on.stats.simplify.subsumed_clauses;
        row.identical = identical_results(t1_base, on) && identical_results(off, on);
        row.frozen_safe = on.stats.simplify.frozen_eliminations == 0;
        row.verdict = verdict_name(on.verdict);
        row.metrics = row_metrics(on);
        all_identical = all_identical && row.identical;
        frozen_safe = frozen_safe && row.frozen_safe;
        if (sc.gated && row.reduction() < reduction_bar) bar_met = false;
        rows.push_back(row);

        std::printf(
            "%-10u %-10s %-8u %-12.3f %-12.3f %-14llu %-14llu %-10.3f %4llu/%-6llu %-8llu "
            "%-9llu %s%s\n",
            pub, sc.name, threads, row.off_s, row.on_s,
            static_cast<unsigned long long>(row.work_off),
            static_cast<unsigned long long>(row.work_on), row.reduction(),
            static_cast<unsigned long long>(row.runs),
            static_cast<unsigned long long>(row.reuses),
            static_cast<unsigned long long>(row.eliminated),
            static_cast<unsigned long long>(row.subsumed), row.identical ? "yes" : "NO",
            row.frozen_safe ? "" : "  FROZEN-ELIM");
      }
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"preprocess\",\n  \"quick\": %s,\n",
               quick ? "true" : "false");
  std::fprintf(f, "  \"reduction_bar\": %.2f,\n  \"rows\": [\n", reduction_bar);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"pub_words\": %u, \"scenario\": \"%s\", \"threads\": %u, "
                 "\"verdict\": \"%s\", \"off_s\": %.3f, \"on_s\": %.3f, "
                 "\"work_off\": %llu, \"work_on\": %llu, \"work_reduction\": %.4f, "
                 "\"simplify_runs\": %llu, \"simplify_reuses\": %llu, "
                 "\"eliminated_vars\": %llu, \"subsumed_clauses\": %llu, "
                 "\"identical\": %s, \"frozen_safe\": %s, \"metrics\": %s}%s\n",
                 r.pub_words, r.scenario, r.threads, r.verdict, r.off_s, r.on_s,
                 static_cast<unsigned long long>(r.work_off),
                 static_cast<unsigned long long>(r.work_on), r.reduction(),
                 static_cast<unsigned long long>(r.runs),
                 static_cast<unsigned long long>(r.reuses),
                 static_cast<unsigned long long>(r.eliminated),
                 static_cast<unsigned long long>(r.subsumed), r.identical ? "true" : "false",
                 r.frozen_safe ? "true" : "false", r.metrics.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n# wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: identical column regressed — preprocessing changed a verdict or "
                 "frontier, breaking the equisatisfiability contract\n");
    return 1;
  }
  if (!frozen_safe) {
    std::fprintf(stderr,
                 "FAIL: a frozen variable was eliminated — the frozen-set contract between "
                 "the encode layer and sat::Simplifier is broken\n");
    return 1;
  }
  if (!bar_met) {
    std::fprintf(stderr,
                 "FAIL: secure-row work reduction fell below the committed bar (%.2f) — "
                 "preprocessing stopped paying for itself\n",
                 reduction_bar);
    return 1;
  }
  return 0;
}
