// Experiment T-4.2 — the Sec 4.2 countermeasure, measured:
//
//  - secure proof of the firmware-constraint variant (iteration trace),
//  - ablation: hardware guard (DMA physically cut off the private crossbar),
//  - negative controls: countermeasure without the private mapping, and the
//    baseline without any constraints,
//  - firmware-constraint compliance check in simulation: a legal DMA config
//    works; an illegal one (src in private RAM) either leaks (baseline) or is
//    inert (hardware guard).
#include <cstdio>

#include "sim/task.h"
#include "upec/report.h"

namespace {

void formal_row(const char* name, const upec::soc::Soc& soc, upec::VerifyOptions options) {
  using namespace upec;
  UpecContext ctx(soc, std::move(options));
  const Alg1Result r = run_alg1(ctx);
  std::printf("%-46s %-12s %4zu iter   %8.3f s\n", name, verdict_name(r.verdict),
              r.iterations.size(), r.total_seconds);
}

} // namespace

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc base = soc::build_pulpissimo(cfg);
  soc::SocConfig gcfg = cfg;
  gcfg.hw_private_guard = true;
  const soc::Soc guarded = soc::build_pulpissimo(gcfg);

  std::printf("# T-4.2 — countermeasure evaluation (formal)\n\n");
  std::printf("%-46s %-12s %-12s %-10s\n", "configuration", "verdict", "iterations", "time");
  formal_row("baseline (no constraints)", base, VerifyOptions{});
  formal_row("countermeasure (priv mapping + fw constraints)", base, countermeasure_options());
  {
    VerifyOptions v = countermeasure_options();
    v.macros.victim_regions = {soc::AddrMap::kPubRam};
    formal_row("fw constraints only (victim still in pub RAM)", base, std::move(v));
  }
  {
    VerifyOptions v;
    v.macros.victim_regions = {soc::AddrMap::kPrivRam};
    formal_row("priv mapping only (no fw constraints)", base, std::move(v));
  }
  formal_row("hardware guard ablation", guarded, countermeasure_options());

  // --- firmware-constraint compliance in simulation --------------------------------
  std::printf("\nfirmware-constraint compliance (simulation):\n");
  auto dma_copy = [](const soc::Soc& s, std::uint32_t src, std::uint32_t dst) {
    sim::Simulator sim(*s.design);
    sim::BusDriver cpu(sim);
    const std::uint32_t d = s.map.region(soc::AddrMap::kDma).base;
    cpu.run_op(sim::store(src, 0x5ec2e7));
    cpu.run(sim::TaskScript{sim::store(d + 0x0, src), sim::store(d + 0x4, dst),
                            sim::store(d + 0x8, 1), sim::store(d + 0xC, 1)});
    cpu.drain(60);
    return static_cast<std::uint32_t>(cpu.run_op(sim::load(dst)));
  };
  const std::uint32_t pub = base.map.region(soc::AddrMap::kPubRam).base;
  const std::uint32_t priv = base.map.region(soc::AddrMap::kPrivRam).base;
  std::printf("  legal copy pub->pub:               copied=%s\n",
              dma_copy(base, pub, pub + 0x20) == 0x5ec2e7 ? "yes" : "no");
  std::printf("  illegal copy priv->pub (baseline): copied=%s  <- the gap fw constraints close\n",
              dma_copy(base, priv, pub + 0x20) == 0x5ec2e7 ? "yes" : "no");
  std::printf("  illegal copy priv->pub (hw guard): copied=%s\n",
              dma_copy(guarded, priv, pub + 0x20) == 0x5ec2e7 ? "yes" : "no");

  std::printf("\n# paper shape: only the full countermeasure (private mapping + restricted\n");
  std::printf("# IP configurations) yields `secure`, after 3 iterations.\n");
  return 0;
}
