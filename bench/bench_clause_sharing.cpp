// Experiment T-SHARE — worker-to-worker learned-clause sharing on the Alg. 1
// workloads (the committed follow-up to T-SCALE-MT in bench_scalability).
//
// T-SCALE-MT measured that chunked per-worker saturation re-proves ~2-2.5x of
// the UNSAT CPU a single big disjunction proves once — mostly re-derived
// conflict clauses. This bench runs the same 1-vs-4-worker Alg. 1 workloads
// with the sharing channel off and on and reports, per row:
//   * summed worker conflicts (the honest single-core cost metric; wall clock
//     on a 1-core container only measures time-slicing),
//   * the conflict reduction sharing buys on the same thread count,
//   * sharing traffic (exported/imported clauses), and
//   * the `identical` column: the 4-worker sharing run must report bit-equal
//     verdicts/iterations/frontiers to the 1-thread run. Sharing only adds
//     clauses implied by the shared store, so any reading other than "yes" is
//     a soundness bug.
//
// Writes a JSON artifact (default BENCH_clause_sharing.json, or argv path)
// and exits non-zero if the identical column regresses — CI runs the reduced
// configuration (--quick) and fails loudly on that signal.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "upec/report.h"

namespace {

upec::VerifyOptions configure(upec::VerifyOptions options, unsigned threads, bool share) {
  options.threads = threads;
  options.share_clauses = share;
  return options;
}

std::uint64_t worker_conflicts(const upec::Alg1Result& r) {
  std::uint64_t total = 0;
  for (const auto& w : r.stats.per_worker) total += w.conflicts;
  return total;
}

std::uint64_t worker_field(const upec::Alg1Result& r,
                           std::uint64_t upec::sat::SolverStats::*field) {
  std::uint64_t total = 0;
  for (const auto& w : r.stats.per_worker) total += w.*field;
  return total;
}

// Compact unified-metrics snapshot for the row (README "Observability"):
// the aggregate counters only — per-worker/member breakdowns stay in the
// full JSON report, not the committed bench artifact.
std::string row_metrics(const upec::Alg1Result& r) {
  return r.stats.metrics
      .filtered({"sat.channel.", "sat.simplify.", "sat.solver.total.", "upec."})
      .to_json();
}

bool identical_results(const upec::Alg1Result& a, const upec::Alg1Result& b) {
  bool same = a.verdict == b.verdict && a.iterations.size() == b.iterations.size() &&
              a.persistent_hits == b.persistent_hits && a.full_cex == b.full_cex;
  for (std::size_t i = 0; same && i < a.iterations.size(); ++i) {
    same = a.iterations[i].removed == b.iterations[i].removed;
  }
  return same;
}

struct Row {
  std::uint32_t pub_words;
  const char* scenario;
  double t1_s, t4_off_s, t4_on_s;
  std::uint64_t conflicts_off, conflicts_on;
  std::uint64_t exported, imported;
  bool identical;
  const char* verdict;
  std::string metrics; // of the sharing-on run
};

} // namespace

int main(int argc, char** argv) {
  using namespace upec;

  bool quick = false;
  std::string out_path = "BENCH_clause_sharing.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{8} : std::vector<std::uint32_t>{16, 32};
  constexpr unsigned kThreads = 4;

  std::printf("# T-SHARE — Alg. 1 with %u workers, clause sharing off vs on%s\n\n", kThreads,
              quick ? " (reduced config)" : "");
  std::printf("%-10s %-10s %-10s %-12s %-12s %-14s %-14s %-10s %-18s %-10s\n", "pub_words",
              "scenario", "t1[s]", "t4 off[s]", "t4 on[s]", "conflicts off", "conflicts on",
              "reduction", "exported/imported", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::uint32_t pub : sizes) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);

    struct Scenario {
      const char* name;
      VerifyOptions options;
    };
    const Scenario scenarios[] = {
        {"detect", VerifyOptions{}},
        {"secure", countermeasure_options()},
    };
    for (const Scenario& sc : scenarios) {
      Alg1Options opts;
      opts.extract_waveform = false;
      const Alg1Result t1 = verify_2cycle(soc, configure(sc.options, 1, false), opts);
      const Alg1Result off = verify_2cycle(soc, configure(sc.options, kThreads, false), opts);
      const Alg1Result on = verify_2cycle(soc, configure(sc.options, kThreads, true), opts);

      Row row;
      row.pub_words = pub;
      row.scenario = sc.name;
      row.t1_s = t1.total_seconds;
      row.t4_off_s = off.total_seconds;
      row.t4_on_s = on.total_seconds;
      row.conflicts_off = worker_conflicts(off);
      row.conflicts_on = worker_conflicts(on);
      row.exported = worker_field(on, &sat::SolverStats::exported_clauses);
      row.imported = worker_field(on, &sat::SolverStats::imported_clauses);
      row.identical = identical_results(t1, on) && identical_results(t1, off);
      row.verdict = verdict_name(on.verdict);
      row.metrics = row_metrics(on);
      all_identical = all_identical && row.identical;
      rows.push_back(row);

      const double reduction =
          row.conflicts_off > 0
              ? 1.0 - static_cast<double>(row.conflicts_on) / static_cast<double>(row.conflicts_off)
              : 0.0;
      std::printf("%-10u %-10s %-10.3f %-12.3f %-12.3f %-14llu %-14llu %-10.2f %-8llu/%-9llu %s\n",
                  pub, sc.name, row.t1_s, row.t4_off_s, row.t4_on_s,
                  static_cast<unsigned long long>(row.conflicts_off),
                  static_cast<unsigned long long>(row.conflicts_on), reduction,
                  static_cast<unsigned long long>(row.exported),
                  static_cast<unsigned long long>(row.imported), row.identical ? "yes" : "NO");
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"clause_sharing\",\n  \"threads\": %u,\n  \"quick\": %s,\n",
               kThreads, quick ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const double reduction =
        r.conflicts_off > 0
            ? 1.0 - static_cast<double>(r.conflicts_on) / static_cast<double>(r.conflicts_off)
            : 0.0;
    std::fprintf(f,
                 "    {\"pub_words\": %u, \"scenario\": \"%s\", \"verdict\": \"%s\", "
                 "\"t1_s\": %.3f, \"t4_off_s\": %.3f, \"t4_on_s\": %.3f, "
                 "\"worker_conflicts_off\": %llu, \"worker_conflicts_on\": %llu, "
                 "\"conflict_reduction\": %.4f, \"exported\": %llu, \"imported\": %llu, "
                 "\"identical\": %s, \"metrics\": %s}%s\n",
                 r.pub_words, r.scenario, r.verdict, r.t1_s, r.t4_off_s, r.t4_on_s,
                 static_cast<unsigned long long>(r.conflicts_off),
                 static_cast<unsigned long long>(r.conflicts_on), reduction,
                 static_cast<unsigned long long>(r.exported),
                 static_cast<unsigned long long>(r.imported), r.identical ? "true" : "false",
                 r.metrics.c_str(), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n# wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: identical column regressed — a sharing or scheduling change broke the "
                 "semantic-frontier determinism contract\n");
    return 1;
  }
  return 0;
}
