// Experiment F2 — Fig. 2: reduction of the property time window.
//
// The paper's argument: a property describing the *entire* attack (hundreds
// to thousands of cycles across preparation, recording and retrieval) is
// computationally infeasible; Obs. 1 folds the preparation phase into the
// symbolic starting state, Obs. 2 bounds the window at the first effect on
// S_pers — two cycles suffice.
//
// This bench quantifies that argument on our SoC: cost of one UPEC-SSC check
// as a function of the window length k (CNF growth and solver time), next to
// the window each formulation needs. The exponential-ish growth of per-check
// cost with k is exactly why the 2-cycle formulation matters.
#include <chrono>
#include <cstdio>

#include "upec/report.h"

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  std::printf("# F2 — property window reduction (Fig. 2)\n\n");
  std::printf("cost of one UPEC-SSC check vs window length k (fresh context per k):\n");
  std::printf("%-4s %-14s %-14s %-12s %-12s\n", "k", "cnf_vars", "gate_clauses", "time[s]",
              "conflicts");

  for (unsigned k = 1; k <= 6; ++k) {
    UpecContext ctx(soc);
    ipc::BoundedProperty prop;
    prop.window = k;
    prop.assumptions = ctx.macros.assumptions(k);
    const StateSet S = s_not_victim(ctx.svt);
    std::vector<encode::Lit> diffs;
    for (rtlir::StateVarId sv : S.to_vector()) {
      prop.assumptions.push_back(ctx.miter.eq_assumption(sv));
      diffs.push_back(ctx.miter.diff_literal(sv, k));
    }
    prop.violation = ctx.engine.violation_any(ctx.miter.cnf(), diffs);
    const ipc::CheckResult r = ctx.engine.check(prop);
    std::printf("%-4u %-14llu %-14llu %-12.3f %-12llu\n", k,
                static_cast<unsigned long long>(ctx.miter.cnf().num_aux_vars()),
                static_cast<unsigned long long>(ctx.miter.cnf().num_gate_clauses()),
                r.seconds, static_cast<unsigned long long>(r.conflicts));
  }

  std::printf("\nwindow each formulation needs (cycles covered by the bounded property):\n");
  std::printf("  naive (entire 3-phase attack):        O(100..1000s)  [infeasible]\n");
  std::printf("  + Obs.1 (symbolic start = preparation): recording + retrieval window\n");
  std::printf("  + Obs.2 (stop at first S_pers effect):  2 cycles (Fig. 3 property)\n");
  std::printf("\n# shape check (paper): per-check cost grows steeply with k, while the\n");
  std::printf("# 2-cycle property already yields unbounded-validity verdicts.\n");
  return 0;
}
