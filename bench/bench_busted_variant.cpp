// Experiment T-4.1 — the new BUSted variant (Sec 4.1), both views:
//
//  (a) formal: UPEC-SSC counterexample naming the HWPE progress register and
//      public-RAM words as the persistent sinks of victim information;
//  (b) empirical: the end-to-end attack on the same RTL — HWPE overwrite
//      progress vs victim access count, with channel statistics (lag per
//      access, decode resolution), plus the countermeasure control.
#include <cstdio>
#include <memory>

#include "sim/attack.h"
#include "upec/report.h"

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc small = soc::build_pulpissimo(cfg);

  std::printf("# T-4.1 — timer-free BUSted variant (HWPE + memory device)\n\n");

  // --- (a) formal detection ------------------------------------------------------
  VerifyOptions options;
  auto svt = std::make_shared<rtlir::StateVarTable>(*small.design);
  options.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  UpecContext ctx(small, options);
  const Alg1Result formal = run_alg1(ctx);
  std::printf("formal verdict: %s (iterations: %zu, %.3f s)\n",
              verdict_name(formal.verdict), formal.iterations.size(), formal.total_seconds);
  for (rtlir::StateVarId sv : formal.persistent_hits) {
    std::printf("  persistent sink: %s\n", ctx.svt.name(sv).c_str());
  }

  // --- (b) empirical channel ------------------------------------------------------
  const soc::Soc full = soc::build_pulpissimo();
  std::printf("\nempirical channel (full-size SoC):\n");
  std::printf("%-16s %-12s %-12s %-8s %-16s\n", "victim_accesses", "progress", "highwater",
              "lag", "lag_countermeasure");
  sim::AttackConfig cm;
  cm.victim_uses_private_ram = true;
  const std::uint32_t calib = sim::run_hwpe_attack(full, 0).progress_observed;
  const std::uint32_t calib_cm = sim::run_hwpe_attack(full, 0, cm).progress_observed;
  for (std::uint32_t secret = 0; secret <= 10; ++secret) {
    const sim::HwpeAttackResult r = sim::run_hwpe_attack(full, secret);
    const sim::HwpeAttackResult rc = sim::run_hwpe_attack(full, secret, cm);
    std::printf("%-16u %-12u %-12u %-8d %-16d\n", secret, r.progress_observed,
                r.highwater_mark, static_cast<int>(calib) - static_cast<int>(r.progress_observed),
                static_cast<int>(calib_cm) - static_cast<int>(rc.progress_observed));
  }
  std::printf("\n# shape check (paper): lag grows monotonically with the victim's access\n");
  std::printf("# count (resolution: one progress unit per 2 accesses at streamer II=2);\n");
  std::printf("# no timer IP is involved; the countermeasure flattens the series to 0.\n");
  return 0;
}
