// Experiment T-PORT — portfolio racing and supervised external solving on the
// Alg. 1 workloads.
//
// Three configurations per workload row:
//   * t1        — the single-solver baseline,
//   * portfolio — every check raced on 2 diversified in-proc members
//                 (restart pacing + seeded phases), first answer wins,
//   * hostile   — the same portfolio with a garbage-printing external solver
//                 supervised alongside (quarantined after its first degraded
//                 solve), the worst-case "supervised portfolio mode".
//
// The headline column is `identical`: both portfolio configurations must
// report bit-equal verdicts/iterations/frontiers to the baseline. Racing and
// fault recovery are allowed to move CPU around, never a verdict — any
// reading other than "yes" is a soundness bug, and CI fails on it (--quick).
// Member win counts are reported as a diversity diagnostic: a portfolio whose
// member 0 wins everything is paying thread overhead for nothing.
//
// Writes a JSON artifact (default BENCH_portfolio.json, or argv path) and
// exits non-zero if the identical column regresses.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "sat/pipe_backend.h"
#include "upec/report.h"

namespace {

upec::VerifyOptions configure(upec::VerifyOptions options, unsigned members, bool hostile) {
  options.portfolio = members;
  if (hostile) {
    options.external_solver = upec::sat::self_solver_argv("garbage");
    options.supervise.max_restarts = 0;
    options.supervise.quarantine_after = 1;
  }
  return options;
}

// Compact unified-metrics snapshot for the row (README "Observability").
std::string row_metrics(const upec::Alg1Result& r) {
  return r.stats.metrics
      .filtered({"sat.channel.", "sat.simplify.", "sat.solver.total.", "upec."})
      .to_json();
}

bool identical_results(const upec::Alg1Result& a, const upec::Alg1Result& b) {
  bool same = a.verdict == b.verdict && a.iterations.size() == b.iterations.size() &&
              a.persistent_hits == b.persistent_hits && a.full_cex == b.full_cex;
  for (std::size_t i = 0; same && i < a.iterations.size(); ++i) {
    same = a.iterations[i].removed == b.iterations[i].removed;
  }
  return same;
}

std::uint64_t total_conflicts(const upec::Alg1Result& r) { return r.stats.total.conflicts; }

struct Row {
  std::uint32_t pub_words;
  const char* scenario;
  double t1_s, port_s, hostile_s;
  std::uint64_t conflicts_t1, conflicts_port;
  std::uint64_t external_failures, degraded;
  bool quarantined;
  bool identical;
  const char* verdict;
  std::string metrics; // of the portfolio run
};

} // namespace

int main(int argc, char** argv) {
  using namespace upec;

  // This binary doubles as the external DIMACS solver for the hostile rows.
  const int solver_rc = sat::self_solver_main(argc, argv);
  if (solver_rc >= 0) return solver_rc;

  bool quick = false;
  std::string out_path = "BENCH_portfolio.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) {
      quick = true;
    } else {
      out_path = argv[i];
    }
  }
  const std::vector<std::uint32_t> sizes =
      quick ? std::vector<std::uint32_t>{8} : std::vector<std::uint32_t>{16};
  constexpr unsigned kMembers = 2;

  std::printf("# T-PORT — Alg. 1 baseline vs %u-member portfolio vs hostile external%s\n\n",
              kMembers, quick ? " (reduced config)" : "");
  std::printf("%-10s %-10s %-10s %-10s %-12s %-14s %-14s %-22s %-10s\n", "pub_words", "scenario",
              "t1[s]", "port[s]", "hostile[s]", "conflicts t1", "conflicts port",
              "ext fail/degr/quar", "identical");

  std::vector<Row> rows;
  bool all_identical = true;
  for (const std::uint32_t pub : sizes) {
    soc::SocConfig cfg;
    cfg.pub_ram_words = pub;
    cfg.priv_ram_words = pub / 2;
    const soc::Soc soc = soc::build_pulpissimo(cfg);

    struct Scenario {
      const char* name;
      VerifyOptions options;
    };
    const Scenario scenarios[] = {
        {"detect", VerifyOptions{}},
        {"secure", countermeasure_options()},
    };
    for (const Scenario& sc : scenarios) {
      Alg1Options opts;
      opts.extract_waveform = false;
      const Alg1Result t1 = verify_2cycle(soc, configure(sc.options, 1, false), opts);
      const Alg1Result port = verify_2cycle(soc, configure(sc.options, kMembers, false), opts);
      const Alg1Result hostile = verify_2cycle(soc, configure(sc.options, kMembers, true), opts);

      sat::BackendHealth health;
      for (const sat::BackendHealth& h : hostile.stats.per_worker_health) health += h;

      Row row;
      row.pub_words = pub;
      row.scenario = sc.name;
      row.t1_s = t1.total_seconds;
      row.port_s = port.total_seconds;
      row.hostile_s = hostile.total_seconds;
      row.conflicts_t1 = total_conflicts(t1);
      row.conflicts_port = total_conflicts(port);
      row.external_failures = health.external_failures;
      row.degraded = health.degraded_solves;
      row.quarantined = health.quarantined;
      row.identical = identical_results(t1, port) && identical_results(t1, hostile);
      row.verdict = verdict_name(port.verdict);
      row.metrics = row_metrics(port);
      all_identical = all_identical && row.identical;
      rows.push_back(row);

      std::printf("%-10u %-10s %-10.3f %-10.3f %-12.3f %-14llu %-14llu %6llu/%4llu/%-6s %s\n",
                  pub, sc.name, row.t1_s, row.port_s, row.hostile_s,
                  static_cast<unsigned long long>(row.conflicts_t1),
                  static_cast<unsigned long long>(row.conflicts_port),
                  static_cast<unsigned long long>(row.external_failures),
                  static_cast<unsigned long long>(row.degraded),
                  row.quarantined ? "yes" : "no", row.identical ? "yes" : "NO");
    }
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s for writing\n", out_path.c_str());
    return 2;
  }
  std::fprintf(f, "{\n  \"bench\": \"portfolio\",\n  \"members\": %u,\n  \"quick\": %s,\n",
               kMembers, quick ? "true" : "false");
  std::fprintf(f, "  \"rows\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(f,
                 "    {\"pub_words\": %u, \"scenario\": \"%s\", \"verdict\": \"%s\", "
                 "\"t1_s\": %.3f, \"portfolio_s\": %.3f, \"hostile_s\": %.3f, "
                 "\"conflicts_t1\": %llu, \"conflicts_portfolio\": %llu, "
                 "\"external_failures\": %llu, \"degraded_solves\": %llu, "
                 "\"quarantined\": %s, \"identical\": %s, \"metrics\": %s}%s\n",
                 r.pub_words, r.scenario, r.verdict, r.t1_s, r.port_s, r.hostile_s,
                 static_cast<unsigned long long>(r.conflicts_t1),
                 static_cast<unsigned long long>(r.conflicts_port),
                 static_cast<unsigned long long>(r.external_failures),
                 static_cast<unsigned long long>(r.degraded), r.quarantined ? "true" : "false",
                 r.identical ? "true" : "false", r.metrics.c_str(),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\n# wrote %s\n", out_path.c_str());

  if (!all_identical) {
    std::fprintf(stderr,
                 "FAIL: identical column regressed — portfolio racing or fault recovery changed "
                 "a verdict or frontier\n");
    return 1;
  }
  return 0;
}
