// Design-choice ablations called out in DESIGN.md §6, beyond the encoder
// ones in bench_solver:
//
//  - counterexample saturation on/off: same verdicts, different iteration
//    granularity and total solver effort,
//  - arbitration policy: fixed priority vs round-robin — the attack class
//    persists under fair arbitration, and round-robin adds persistent
//    arbitration state (the rotating pointer),
//  - victim window length (the "during t..t+1" of the paper's macros):
//    longer windows give the victim more differing accesses but do not
//    change the verdicts.
#include <cstdio>

#include "upec/report.h"

namespace {

using namespace upec;

soc::SocConfig small_cfg() {
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  return cfg;
}

void row(const char* name, const soc::Soc& soc, VerifyOptions vopts, const Alg1Options& aopts) {
  UpecContext ctx(soc, std::move(vopts));
  const Alg1Result r = run_alg1(ctx, aopts);
  std::uint64_t conflicts = 0;
  for (const auto& it : r.iterations) conflicts += it.conflicts;
  std::printf("%-44s %-12s %6zu iter %10llu confl %9.3f s\n", name,
              verdict_name(r.verdict), r.iterations.size(),
              static_cast<unsigned long long>(conflicts), r.total_seconds);
}

} // namespace

int main() {
  std::printf("# ablations — saturation, arbitration policy, victim window\n\n");

  const soc::Soc fixed = soc::build_pulpissimo(small_cfg());
  soc::SocConfig rr_cfg = small_cfg();
  rr_cfg.arbiter = soc::ArbiterKind::RoundRobin;
  const soc::Soc rr = soc::build_pulpissimo(rr_cfg);

  Alg1Options sat_on;
  sat_on.extract_waveform = false;
  Alg1Options sat_off = sat_on;
  sat_off.saturate_cex = false;

  std::printf("## counterexample saturation (baseline SoC / countermeasure SoC)\n");
  row("baseline, saturated (default)", fixed, VerifyOptions{}, sat_on);
  row("baseline, unsaturated", fixed, VerifyOptions{}, sat_off);
  row("countermeasure, saturated", fixed, countermeasure_options(), sat_on);
  row("countermeasure, unsaturated", fixed, countermeasure_options(), sat_off);

  std::printf("\n## arbitration policy (baseline verdicts must not depend on fairness)\n");
  row("fixed priority (CPU > DMA > HWPE)", fixed, VerifyOptions{}, sat_on);
  row("round robin", rr, VerifyOptions{}, sat_on);

  std::printf("\n## victim window length (macros' \"during t..t+vte\")\n");
  for (unsigned vte : {1u, 2u, 4u}) {
    VerifyOptions v;
    v.macros.vte_frames = vte;
    char name[64];
    std::snprintf(name, sizeof name, "baseline, vte_frames=%u", vte);
    row(name, fixed, std::move(v), sat_on);
  }

  std::printf("\n# expected shape: verdicts identical across every row; saturation\n");
  std::printf("# trades a few extra SAT calls for paper-granularity iteration counts;\n");
  std::printf("# round-robin additionally flags its arbitration pointer for inspection.\n");
  return 0;
}
