// Experiment F4 — Fig. 4 + Algorithm 2: the unrolled UPEC-SSC procedure.
//
// Prints the per-step trace (k, |S[k]|, removals, runtime) for the baseline
// SoC — where the procedure stops at k=2 with the explicit HWPE-delay
// counterexample of Sec 4.1 — and for the countermeasure SoC, where the
// unrolling converges ("hold") and the closing induction proves security.
#include <cstdio>
#include <memory>

#include "upec/report.h"

namespace {

void run_case(const char* title, const upec::soc::Soc& soc, upec::VerifyOptions options) {
  using namespace upec;
  UpecContext ctx(soc, std::move(options));
  const Alg2Result result = run_alg2(ctx);
  std::printf("%s\n%s", title, iteration_table(ctx, result).c_str());
  std::printf("verdict: %s   final k: %u   total: %.3f s\n\n", verdict_name(result.verdict),
              result.final_k, result.total_seconds);
  if (result.waveform) {
    std::printf("explicit %u-cycle counterexample (diverging signals only):\n%s\n",
                result.final_k, result.waveform->pretty(/*only_diverging=*/true).c_str());
  }
  if (result.induction) {
    std::printf("closing induction: %s after %zu iteration(s)\n\n",
                verdict_name(result.induction->verdict), result.induction->iterations.size());
  }
}

} // namespace

int main() {
  using namespace upec;
  soc::SocConfig cfg;
  cfg.pub_ram_words = 16;
  cfg.priv_ram_words = 8;
  const soc::Soc soc = soc::build_pulpissimo(cfg);

  std::printf("# F4 — Algorithm 2 (unrolled UPEC-SSC)\n\n");

  // Sec 4.1 scenario: focus S_pers on the accelerator + public memory.
  VerifyOptions hwpe;
  auto svt = std::make_shared<rtlir::StateVarTable>(*soc.design);
  hwpe.s_pers_filter = [svt](rtlir::StateVarId sv) {
    const std::string name = svt->name(sv);
    return name.find(".hwpe.") != std::string::npos ||
           name.find("pub_ram.mem[") != std::string::npos;
  };
  run_case("baseline SoC, S_pers = {HWPE, public RAM} (Sec 4.1 scenario):", soc,
           std::move(hwpe));
  run_case("countermeasure SoC:", soc, countermeasure_options());

  std::printf("# paper shape: detection at k=2 (\"unrolled for 2 clock cycles to observe\n");
  std::printf("# the delay of the HWPE memory access\"); secure SoC converges and the\n");
  std::printf("# closing induction (Alg. 1 seeded with S[k]) holds.\n");
  return 0;
}
