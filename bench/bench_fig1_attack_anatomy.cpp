// Experiment F1 — Fig. 1 of the paper: anatomy of the classic MCU timing
// side-channel attack (preparation / recording / retrieval; DMA + timer).
//
// Regenerates the figure's quantitative content as a series: the attacker's
// timer COUNT observation as a function of the victim's secret access count,
// for several DMA transfer lengths. More victim contention delays the DMA's
// completion event, which starts the timer later — a smaller COUNT at the
// fixed retrieval point. The countermeasure column shows the same series with
// the victim's working set in the private memory device (channel closed).
#include <cstdio>

#include "sim/attack.h"

int main() {
  using namespace upec;
  const soc::Soc soc = soc::build_pulpissimo();

  std::printf("# F1 / Fig.1 — classic BUSted: timer COUNT vs victim accesses\n");
  std::printf("# (per DMA copy length; fixed recording window of 48 + 16 cycles)\n\n");

  for (std::uint32_t copy_words : {4u, 8u}) {
    std::printf("dma_copy_words=%u\n", copy_words);
    std::printf("%-16s %-16s %-16s %-20s\n", "victim_accesses", "timer_count",
                "count_delta", "count_countermeasure");
    sim::AttackConfig cfg;
    cfg.dma_copy_words = copy_words;
    sim::AttackConfig cm = cfg;
    cm.victim_uses_private_ram = true;

    const std::uint32_t calib = sim::run_timer_attack(soc, 0, cfg).timer_count;
    for (std::uint32_t secret = 0; secret <= 8; ++secret) {
      const sim::TimerAttackResult r = sim::run_timer_attack(soc, secret, cfg);
      const sim::TimerAttackResult rc = sim::run_timer_attack(soc, secret, cm);
      std::printf("%-16u %-16u %-16d %-20u\n", secret, r.timer_count,
                  static_cast<int>(calib) - static_cast<int>(r.timer_count), rc.timer_count);
    }
    std::printf("\n");
  }
  std::printf("# shape check (paper): count strictly decreases with victim activity;\n");
  std::printf("# countermeasure column is constant.\n");
  return 0;
}
